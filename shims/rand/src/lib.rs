//! Offline stand-in for `rand` 0.8.
//!
//! Implements the subset the workspace uses: `rngs::SmallRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::{gen_range, gen_bool, gen}`
//! over integer ranges. The generator is SplitMix64 — deterministic,
//! fast, and statistically fine for simulation/test workloads. Not
//! cryptographically secure (neither is the real `SmallRng`).

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        // 53 high-quality mantissa bits -> uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::generate(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types producible uniformly "at large" (`rng.gen()`).
pub trait Standard: Sized {
    fn generate<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn generate<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn generate<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn generate<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that can be sampled uniformly, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_signed!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64: tiny, seedable, and passes the statistical bar for
    /// simulation use. Stands in for `rand::rngs::SmallRng`.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = a.gen_range(0u64..17);
            assert_eq!(x, b.gen_range(0u64..17));
            assert!(x < 17);
        }
        let mut c = SmallRng::seed_from_u64(3);
        let hits = (0..1000).filter(|_| c.gen_bool(0.25)).count();
        assert!(
            (150..350).contains(&hits),
            "gen_bool(0.25) gave {hits}/1000"
        );
    }

    #[test]
    fn inclusive_and_signed_ranges() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..100 {
            let x = r.gen_range(2u32..=5);
            assert!((2..=5).contains(&x));
            let y = r.gen_range(-3i64..3);
            assert!((-3..3).contains(&y));
            let f = r.gen_range(0.5f64..2.0);
            assert!((0.5..2.0).contains(&f));
        }
    }
}

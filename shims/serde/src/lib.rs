//! Offline stand-in for `serde`.
//!
//! The workspace only ever *derives* `Serialize`/`Deserialize` to mark
//! wire-safe types — the actual byte encoding lives in `esds-wire`'s
//! hand-rolled codec — so this shim provides the two marker traits and
//! re-exports no-op derive macros. Replace with the real crate by
//! editing `[workspace.dependencies]` once a registry is reachable.

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that can be serialized (see crate docs).
pub trait Serialize {}

/// Marker for types that can be deserialized (see crate docs).
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

//! Offline stand-in for `proptest`.
//!
//! A deterministic property-testing mini-framework covering the API the
//! workspace uses: the `proptest!` macro (with an optional
//! `#![proptest_config(..)]` header), `Strategy` with
//! `prop_map`/`prop_flat_map`/`boxed`, range and tuple strategies,
//! `collection::{vec, btree_set}`, `option::of`, `any::<T>()`,
//! `prop_oneof!`, and the `prop_assert*` macros.
//!
//! Differences from the real crate: no shrinking (failures report the
//! already-small generated input), and case generation is seeded from
//! the test name, so every run of a given test sees the same inputs.

pub mod test_runner {
    /// Per-block configuration; only `cases` is consulted.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(32);
            ProptestConfig { cases }
        }
    }

    /// SplitMix64 seeded from a string (the test name), so runs are
    /// reproducible without any global state.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }

        /// Uniform in `[0, 1)`.
        pub fn unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { source: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    #[derive(Clone, Debug)]
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, T, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;

        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.source.generate(rng)).generate(rng)
        }
    }

    /// Weighted choice between strategies of a common value type.
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            assert!(
                arms.iter().any(|(w, _)| *w > 0),
                "all prop_oneof! weights are zero"
            );
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let total: u64 = self.arms.iter().map(|(w, _)| u64::from(*w)).sum();
            let mut pick = rng.below(total);
            for (w, strat) in &self.arms {
                let w = u64::from(*w);
                if pick < w {
                    return strat.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weighted pick out of range")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty inclusive range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);

    /// String strategies from a regex-flavoured pattern. This shim
    /// understands the `<atom>{lo,hi}` form where the atom is `.` (any
    /// char, with occasional multibyte picks to exercise UTF-8 paths)
    /// or a `[ab0-9]` class; any other pattern generates its literal
    /// text.
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            fn repetition(pat: &str) -> Option<(&str, u64, u64)> {
                let open = pat.rfind('{')?;
                let body = pat.strip_suffix('}')?.get(open + 1..)?;
                let (lo, hi) = body.split_once(',')?;
                Some((&pat[..open], lo.parse().ok()?, hi.parse().ok()?))
            }

            fn class_chars(atom: &str) -> Option<Vec<char>> {
                let inner: Vec<char> = atom.strip_prefix('[')?.strip_suffix(']')?.chars().collect();
                let mut out = Vec::new();
                let mut i = 0;
                while i < inner.len() {
                    if i + 2 < inner.len() && inner[i + 1] == '-' {
                        let (lo, hi) = (inner[i] as u32, inner[i + 2] as u32);
                        out.extend((lo..=hi).filter_map(char::from_u32));
                        i += 3;
                    } else {
                        out.push(inner[i]);
                        i += 1;
                    }
                }
                Some(out)
            }

            const ANY_EXTRA: &[char] = &['é', 'ß', '日', '本', '🦀', '\u{2603}'];
            if let Some((atom, lo, hi)) = repetition(self) {
                let n = lo + rng.below(hi - lo + 1);
                let class = class_chars(atom);
                return (0..n)
                    .map(|_| match &class {
                        Some(chars) => chars[rng.below(chars.len() as u64) as usize],
                        // `.`: mostly printable ASCII, sometimes multibyte.
                        None => {
                            if rng.below(8) == 0 {
                                ANY_EXTRA[rng.below(ANY_EXTRA.len() as u64) as usize]
                            } else {
                                char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap()
                            }
                        }
                    })
                    .collect();
            }
            (*self).to_owned()
        }
    }

    /// Types with a canonical "any value" strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    #[derive(Clone, Debug)]
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Element-count bound for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            if self.hi_exclusive <= self.lo {
                return self.lo;
            }
            self.lo + rng.below((self.hi_exclusive - self.lo) as u64) as usize
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: r.end() + 1,
            }
        }
    }

    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    #[derive(Clone, Debug)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            // Duplicates may land short of the target size, matching the
            // real crate's "size is an upper bound" behaviour.
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    #[derive(Clone, Debug)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = std::collections::BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }

    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    #[derive(Clone, Debug)]
    pub struct VecDequeStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecDequeStrategy<S> {
        type Value = std::collections::VecDeque<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec_deque<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecDequeStrategy<S> {
        VecDequeStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[derive(Clone, Debug)]
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Some three times out of four, like the real crate's default.
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// The `proptest!` block macro: wraps each contained `fn name(pat in
/// strategy, ..) { .. }` in a case loop driven by a deterministic RNG.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $($(#[$attr:meta])* fn $name:ident($($params:tt)*) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    let _ = __case;
                    $crate::__proptest_bindings!(__rng; $($params)*);
                    $body
                }
            }
        )*
    };
}

/// Expands one `pat in strategy` or `ident: Type` parameter at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bindings {
    ($rng:ident;) => {};
    ($rng:ident; $pat:pat in $strat:expr) => {
        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident; $pat:pat in $strat:expr, $($rest:tt)*) => {
        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bindings!($rng; $($rest)*);
    };
    ($rng:ident; $var:ident : $ty:ty) => {
        let $var: $ty = $crate::strategy::Arbitrary::arbitrary(&mut $rng);
    };
    ($rng:ident; $var:ident : $ty:ty, $($rest:tt)*) => {
        let $var: $ty = $crate::strategy::Arbitrary::arbitrary(&mut $rng);
        $crate::__proptest_bindings!($rng; $($rest)*);
    };
}

/// `prop_assert!` panics directly in this shim (no shrink phase).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Weighted (`w => strategy`) or uniform choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u64..10, y in 1u8..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn combinators_compose(
            v in crate::collection::vec((0u32..5).prop_map(|n| n * 2), 1..6),
            o in crate::option::of(0i32..3),
            pick in prop_oneof![3 => Just(1u8), 1 => Just(2u8)],
        ) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(v.iter().all(|n| n % 2 == 0));
            if let Some(x) = o {
                prop_assert!((0..3).contains(&x));
            }
            prop_assert!(pick == 1 || pick == 2);
        }

        #[test]
        fn flat_map_nests(pair in (2u64..6).prop_flat_map(|n| (Just(n), 0u64..n))) {
            let (n, k) = pair;
            prop_assert!(k < n);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_header_accepted(b in any::<bool>()) {
            prop_assert!(u8::from(b) <= 1);
        }
    }
}

//! Offline stand-in for `criterion` 0.5.
//!
//! Provides the API surface the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with `sample_size`/`throughput`/`bench_with_input`,
//! and `Bencher::{iter, iter_batched}` — backed by a simple
//! median-of-samples wall-clock loop instead of criterion's statistical
//! machinery. Output is one line per benchmark on stdout.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched setup output is grouped; accepted and ignored.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

/// Top-level driver handed to each `criterion_group!` target.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().name, self.sample_size, None, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size,
            throughput: None,
        }
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().name);
        run_one(&label, self.sample_size, self.throughput, f);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().name);
        run_one(&label, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Collects per-sample timings for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(routine());
        }
        self.samples
            .push(start.elapsed() / self.iters_per_sample as u32);
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters_per_sample {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.samples.push(total / self.iters_per_sample as u32);
    }

    pub fn iter_batched_ref<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters_per_sample {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            total += start.elapsed();
        }
        self.samples.push(total / self.iters_per_sample as u32);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters_per_sample: 1,
    };
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    if bencher.samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    bencher.samples.sort();
    let median = bencher.samples[bencher.samples.len() / 2];
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => {
            format!("  {:.1} Melem/s", n as f64 / median.as_secs_f64() / 1e6)
        }
        Throughput::Bytes(n) | Throughput::BytesDecimal(n) => {
            format!(
                "  {:.1} MiB/s",
                n as f64 / median.as_secs_f64() / (1024.0 * 1024.0)
            )
        }
    });
    println!(
        "{label:<48} median {median:>12.2?}{}",
        rate.unwrap_or_default()
    );
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_target(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("grouped");
        group.sample_size(5);
        group.throughput(Throughput::Elements(4));
        group.bench_function("sum", |b| {
            b.iter_batched(
                || vec![1u64, 2, 3, 4],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("len", 4), &[1u8, 2, 3, 4][..], |b, s| {
            b.iter(|| s.len())
        });
        group.finish();
    }

    criterion_group!(benches, sample_target);

    #[test]
    fn harness_runs() {
        benches();
    }
}

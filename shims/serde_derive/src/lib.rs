//! No-op `Serialize`/`Deserialize` derives for the offline `serde` shim.
//!
//! The shim's traits carry blanket impls, so the derives have nothing to
//! generate — they exist so `#[derive(Serialize, Deserialize)]` on the
//! workspace's wire types keeps compiling unchanged.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

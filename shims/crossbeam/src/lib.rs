//! Offline stand-in for `crossbeam` (the `channel` module only).
//!
//! A straightforward MPMC channel over `Mutex<VecDeque>` + `Condvar`:
//! clonable senders *and* receivers, bounded/unbounded flavours, and
//! timeout-aware receive — the surface `esds-wire`'s TCP node and
//! `esds-runtime`'s threaded service use. Throughput is far below real
//! crossbeam's lock-free queues, but correctness semantics match.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    /// Sending half; clonable.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// Receiving half; clonable (MPMC, each message delivered once).
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    struct Chan<T> {
        inner: Mutex<Inner<T>>,
        /// Signalled when a message arrives or the last receiver leaves.
        recv_ready: Condvar,
        /// Signalled when capacity frees up or the last receiver leaves.
        send_ready: Condvar,
        cap: Option<usize>,
    }

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    pub struct RecvError;

    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    #[derive(Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        Full(T),
        Disconnected(T),
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("Full(..)"),
                TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
            }
        }
    }

    impl std::error::Error for RecvError {}

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            fmt::Debug::fmt(self, f)
        }
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            fmt::Debug::fmt(self, f)
        }
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            fmt::Debug::fmt(self, f)
        }
    }

    /// Creates a channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    /// Creates a channel buffering at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(Some(cap.max(1)))
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            recv_ready: Condvar::new(),
            send_ready: Condvar::new(),
            cap,
        });
        (Sender { chan: chan.clone() }, Receiver { chan })
    }

    impl<T> Sender<T> {
        /// Blocks while the channel is full; errors when every receiver
        /// is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.chan.inner.lock().unwrap();
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.chan.cap {
                    Some(cap) if inner.queue.len() >= cap => {
                        inner = self.chan.send_ready.wait(inner).unwrap();
                    }
                    _ => break,
                }
            }
            inner.queue.push_back(value);
            drop(inner);
            self.chan.recv_ready.notify_one();
            Ok(())
        }

        /// Never blocks: errors when the channel is full or dead.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut inner = self.chan.inner.lock().unwrap();
            if inner.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if let Some(cap) = self.chan.cap {
                if inner.queue.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            inner.queue.push_back(value);
            drop(inner);
            self.chan.recv_ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.chan.inner.lock().unwrap();
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    drop(inner);
                    self.chan.send_ready.notify_one();
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.chan.recv_ready.wait(inner).unwrap();
            }
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut inner = self.chan.inner.lock().unwrap();
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    drop(inner);
                    self.chan.send_ready.notify_one();
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timed_out) = self
                    .chan
                    .recv_ready
                    .wait_timeout(inner, deadline - now)
                    .unwrap();
                inner = guard;
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.chan.inner.lock().unwrap();
            if let Some(v) = inner.queue.pop_front() {
                drop(inner);
                self.chan.send_ready.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        pub fn len(&self) -> usize {
            self.chan.inner.lock().unwrap().queue.len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.inner.lock().unwrap().senders += 1;
            Sender {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.inner.lock().unwrap().receivers += 1;
            Receiver {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut inner = self.chan.inner.lock().unwrap();
                inner.senders -= 1;
                inner.senders
            };
            if remaining == 0 {
                self.chan.recv_ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut inner = self.chan.inner.lock().unwrap();
                inner.receivers -= 1;
                inner.receivers
            };
            if remaining == 0 {
                self.chan.send_ready.notify_all();
                self.chan.recv_ready.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvTimeoutError, TryRecvError};
    use std::time::Duration;

    #[test]
    fn unbounded_roundtrip_and_disconnect() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.try_recv().unwrap(), 2);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn timeout_fires() {
        let (tx, rx) = unbounded::<i32>();
        let got = rx.recv_timeout(Duration::from_millis(5));
        assert_eq!(got, Err(RecvTimeoutError::Timeout));
        drop(tx);
    }

    #[test]
    fn bounded_blocks_then_drains() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let t = std::thread::spawn(move || tx.send(3).map_err(|_| ()));
        assert_eq!(rx.recv().unwrap(), 1);
        t.join().unwrap().unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv().unwrap(), 3);
    }

    #[test]
    fn cloned_receiver_shares_stream() {
        let (tx, rx1) = unbounded();
        let rx2 = rx1.clone();
        tx.send(10).unwrap();
        tx.send(20).unwrap();
        let a = rx1.recv().unwrap();
        let b = rx2.recv().unwrap();
        assert_eq!(a + b, 30);
    }
}

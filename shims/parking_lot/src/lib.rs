//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind the poison-free `parking_lot`
//! API (`lock()` returns the guard directly). A poisoned std lock is
//! recovered rather than propagated, matching parking_lot's behaviour
//! of never poisoning.

use std::sync;

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }
}

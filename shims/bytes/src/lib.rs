//! Offline stand-in for `bytes` 1.x.
//!
//! Implements the subset the wire layer uses: `Buf`/`BufMut` traits,
//! a `BytesMut` that appends at the tail and consumes from the head,
//! and an immutable `Bytes`. Contiguous `Vec<u8>` storage — no
//! refcounted slabs — which is plenty for the framed codec here.

use std::ops::{Deref, DerefMut};

/// Read cursor over a contiguous byte region.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        assert!(self.has_remaining(), "get_u8 past end of buffer");
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.remaining() >= dst.len(),
            "copy_to_slice past end of buffer"
        );
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

/// Write cursor that appends to a growable byte region.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of slice");
        *self = &self[cnt..];
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Growable buffer: writes append at the tail, reads consume from the
/// head. The consumed prefix is reclaimed lazily.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
    head: usize,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
            head: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.data.len() - self.head
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn clear(&mut self) {
        self.data.clear();
        self.head = 0;
    }

    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Splits off and returns the first `at` readable bytes.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to past end of buffer");
        let out = BytesMut {
            data: self.as_slice()[..at].to_vec(),
            head: 0,
        };
        self.head += at;
        self.compact();
        out
    }

    /// Freezes the readable region into an immutable `Bytes`.
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.as_slice().to_vec(),
            head: 0,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.head..]
    }

    fn compact(&mut self) {
        // Reclaim the consumed prefix once it dominates the allocation.
        if self.head > 0 && (self.head >= self.data.len() || self.head > 4096) {
            self.data.drain(..self.head);
            self.head = 0;
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        let head = self.head;
        &mut self.data[head..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> Self {
        BytesMut {
            data: src.to_vec(),
            head: 0,
        }
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(data: Vec<u8>) -> Self {
        BytesMut { data, head: 0 }
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        self.head += cnt;
        self.compact();
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Extend<u8> for BytesMut {
    fn extend<I: IntoIterator<Item = u8>>(&mut self, iter: I) {
        self.data.extend(iter);
    }
}

/// Immutable byte buffer (plain owned storage in this shim).
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes {
    data: Vec<u8>,
    head: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::default()
    }

    pub const fn from_static(src: &'static [u8]) -> Self {
        // No borrowed representation in the shim; copy on first use.
        // (const fn: only an empty Vec can be built in const context.)
        match src.len() {
            0 => Bytes {
                data: Vec::new(),
                head: 0,
            },
            _ => panic!("shim Bytes::from_static supports only empty slices in const context"),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len() - self.head
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes {
            data: self.as_slice()[range].to_vec(),
            head: 0,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.head..]
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, head: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(src: &[u8]) -> Self {
        Bytes {
            data: src.to_vec(),
            head: 0,
        }
    }
}

impl From<BytesMut> for Bytes {
    fn from(src: BytesMut) -> Self {
        src.freeze()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        self.head += cnt;
    }
}

#[cfg(test)]
mod tests {
    use super::{Buf, BufMut, Bytes, BytesMut};

    #[test]
    fn roundtrip_and_split() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(7);
        b.put_u32_le(0xdead_beef);
        b.put_slice(b"xyz");
        assert_eq!(b.len(), 8);

        let mut first = b.split_to(5);
        assert_eq!(first.get_u8(), 7);
        assert_eq!(first.get_u32_le(), 0xdead_beef);
        assert_eq!(&b[..], b"xyz");

        let frozen: Bytes = b.freeze();
        assert_eq!(frozen.as_ref(), b"xyz");
    }

    #[test]
    fn slice_buf_advances() {
        let data = [1u8, 2, 3, 4];
        let mut s = &data[..];
        assert_eq!(s.get_u8(), 1);
        assert_eq!(s.remaining(), 3);
        let mut out = [0u8; 2];
        s.copy_to_slice(&mut out);
        assert_eq!(out, [2, 3]);
    }
}

//! Wire-trace capture and replay for the **CI audit lane**: a JSONL
//! trace format for sharded kv deployments, plus the replay driver the
//! `audit_replay` binary and the chaos-matrix tests share.
//!
//! A trace is one JSON object per line, in stream order:
//!
//! ```text
//! {"e":"req","shard":0,"id":"c0:0","strict":false,"prev":[],"op":{"k":"Put","key":"a","val":"1"}}
//! {"e":"resp","shard":0,"id":"c0:0","value":{"k":"Ack"},"witness":["c0:0"]}
//! {"e":"stab","shard":0,"id":"c0:0"}
//! ```
//!
//! `req`/`resp` lines are recorded at the client (shard-local ids, as
//! the per-shard ESDS instances see them); `stab` lines are each
//! shard's eventual total order — emitted live from watermark polls or
//! appended after shutdown from the converged final orders, whichever
//! the producer can see. [`replay`] feeds the lines through one
//! [`StreamingChecker`] per shard and
//! fails on the first violation with its counterexample window.
//!
//! The encoding is hand-rolled (this workspace builds offline, with no
//! serde): a tiny escaped-string JSON emitter and a recursive-descent
//! parser for exactly the subset the trace uses.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::core::{ClientId, OpDescriptor, OpId};
use crate::datatypes::{KvOp, KvStore, KvValue};
use crate::spec::{AuditCertificate, AuditEvent, AuditStatus, StreamingChecker};

/// One trace line: a shard tag plus the audit event it carries.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// The shard whose ESDS instance the event belongs to.
    pub shard: u32,
    /// The event, in shard-local ids.
    pub event: AuditEvent<KvOp, KvValue>,
}

// ---------------------------------------------------------------------
// Encoding.

fn esc(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn enc_id(out: &mut String, id: OpId) {
    let _ = write!(out, "\"c{}:{}\"", id.client().0, id.seq());
}

fn enc_ids(out: &mut String, ids: &[OpId]) {
    out.push('[');
    for (i, id) in ids.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        enc_id(out, *id);
    }
    out.push(']');
}

fn enc_op(out: &mut String, op: &KvOp) {
    match op {
        KvOp::Put(k, v) => {
            out.push_str("{\"k\":\"Put\",\"key\":");
            esc(out, k);
            out.push_str(",\"val\":");
            esc(out, v);
            out.push('}');
        }
        KvOp::Get(k) => {
            out.push_str("{\"k\":\"Get\",\"key\":");
            esc(out, k);
            out.push('}');
        }
        KvOp::Remove(k) => {
            out.push_str("{\"k\":\"Remove\",\"key\":");
            esc(out, k);
            out.push('}');
        }
        KvOp::Keys => out.push_str("{\"k\":\"Keys\"}"),
    }
}

fn enc_value(out: &mut String, v: &KvValue) {
    match v {
        KvValue::Ack => out.push_str("{\"k\":\"Ack\"}"),
        KvValue::Value(opt) => {
            out.push_str("{\"k\":\"Value\"");
            if let Some(s) = opt {
                out.push_str(",\"val\":");
                esc(out, s);
            }
            out.push('}');
        }
        KvValue::Removed(b) => {
            let _ = write!(out, "{{\"k\":\"Removed\",\"b\":{b}}}");
        }
        KvValue::Keys(ks) => {
            out.push_str("{\"k\":\"Keys\",\"keys\":[");
            for (i, k) in ks.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                esc(out, k);
            }
            out.push_str("]}");
        }
    }
}

/// Encodes one trace event as its JSONL line (no trailing newline).
pub fn encode_line(ev: &TraceEvent) -> String {
    let mut out = String::with_capacity(96);
    match &ev.event {
        AuditEvent::Request(desc) => {
            let _ = write!(out, "{{\"e\":\"req\",\"shard\":{},\"id\":", ev.shard);
            enc_id(&mut out, desc.id);
            let _ = write!(out, ",\"strict\":{},\"prev\":", desc.strict);
            let prev: Vec<OpId> = desc.prev.iter().copied().collect();
            enc_ids(&mut out, &prev);
            out.push_str(",\"op\":");
            enc_op(&mut out, &desc.op);
            out.push('}');
        }
        AuditEvent::Response { id, value, witness } => {
            let _ = write!(out, "{{\"e\":\"resp\",\"shard\":{},\"id\":", ev.shard);
            enc_id(&mut out, *id);
            out.push_str(",\"value\":");
            enc_value(&mut out, value);
            if let Some(w) = witness {
                out.push_str(",\"witness\":");
                enc_ids(&mut out, w);
            }
            out.push('}');
        }
        AuditEvent::Stabilize(id) => {
            let _ = write!(out, "{{\"e\":\"stab\",\"shard\":{},\"id\":", ev.shard);
            enc_id(&mut out, *id);
            out.push('}');
        }
    }
    out
}

// ---------------------------------------------------------------------
// Parsing: a minimal JSON subset (objects, arrays, strings, unsigned
// numbers, booleans) — exactly what the trace emits.

#[derive(Clone, Debug, PartialEq)]
enum Json {
    Str(String),
    Num(u64),
    Bool(bool),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
    fn str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn ws(&mut self) {
        while self.i < self.s.len() && (self.s[self.i] as char).is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        self.ws();
        if self.i < self.s.len() && self.s[self.i] == c {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.i))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.ws();
        self.s.get(self.i).copied()
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.s.get(self.i) else {
                return Err("unterminated string".into());
            };
            self.i += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&e) = self.s.get(self.i) else {
                        return Err("dangling escape".into());
                    };
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .s
                                .get(self.i..self.i + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("short \\u escape")?;
                            let cp =
                                u32::from_str_radix(hex, 16).map_err(|e| format!("\\u: {e}"))?;
                            self.i += 4;
                            out.push(char::from_u32(cp).ok_or("bad \\u codepoint")?);
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                b => {
                    // Recover the full UTF-8 sequence starting at b.
                    let len = match b {
                        0x00..=0x7f => 0,
                        0xc0..=0xdf => 1,
                        0xe0..=0xef => 2,
                        _ => 3,
                    };
                    let start = self.i - 1;
                    self.i += len;
                    let chunk = self.s.get(start..self.i).ok_or("truncated utf-8")?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                }
            }
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'{') => {
                self.expect(b'{')?;
                let mut fields = Vec::new();
                if self.peek() == Some(b'}') {
                    self.expect(b'}')?;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    let k = self.string()?;
                    self.expect(b':')?;
                    let v = self.value()?;
                    fields.push((k, v));
                    match self.peek() {
                        Some(b',') => self.expect(b',')?,
                        Some(b'}') => {
                            self.expect(b'}')?;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(format!("bad object at byte {}", self.i)),
                    }
                }
            }
            Some(b'[') => {
                self.expect(b'[')?;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.expect(b']')?;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek() {
                        Some(b',') => self.expect(b',')?,
                        Some(b']') => {
                            self.expect(b']')?;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("bad array at byte {}", self.i)),
                    }
                }
            }
            Some(b't') if self.s[self.i..].starts_with(b"true") => {
                self.i += 4;
                Ok(Json::Bool(true))
            }
            Some(b'f') if self.s[self.i..].starts_with(b"false") => {
                self.i += 5;
                Ok(Json::Bool(false))
            }
            Some(c) if c.is_ascii_digit() => {
                let start = self.i;
                while self.s.get(self.i).is_some_and(|b| b.is_ascii_digit()) {
                    self.i += 1;
                }
                std::str::from_utf8(&self.s[start..self.i])
                    .ok()
                    .and_then(|t| t.parse().ok())
                    .map(Json::Num)
                    .ok_or_else(|| "bad number".into())
            }
            other => Err(format!("unexpected {other:?} at byte {}", self.i)),
        }
    }
}

fn parse_id(s: &str) -> Result<OpId, String> {
    let rest = s.strip_prefix('c').ok_or_else(|| format!("bad id {s}"))?;
    let (c, q) = rest.split_once(':').ok_or_else(|| format!("bad id {s}"))?;
    Ok(OpId::new(
        ClientId(c.parse().map_err(|e| format!("bad id {s}: {e}"))?),
        q.parse().map_err(|e| format!("bad id {s}: {e}"))?,
    ))
}

fn parse_ids(j: &Json) -> Result<Vec<OpId>, String> {
    match j {
        Json::Arr(items) => items
            .iter()
            .map(|it| parse_id(it.str().ok_or("id must be a string")?))
            .collect(),
        _ => Err("expected id array".into()),
    }
}

fn field<'j>(j: &'j Json, key: &str) -> Result<&'j Json, String> {
    j.get(key).ok_or_else(|| format!("missing \"{key}\""))
}

fn parse_op(j: &Json) -> Result<KvOp, String> {
    let key = |j: &Json| {
        field(j, "key")?
            .str()
            .map(String::from)
            .ok_or_else(|| "key".to_string())
    };
    match field(j, "k")?.str() {
        Some("Put") => Ok(KvOp::Put(
            key(j)?,
            field(j, "val")?.str().ok_or("val")?.to_string(),
        )),
        Some("Get") => Ok(KvOp::Get(key(j)?)),
        Some("Remove") => Ok(KvOp::Remove(key(j)?)),
        Some("Keys") => Ok(KvOp::Keys),
        other => Err(format!("unknown op kind {other:?}")),
    }
}

fn parse_value(j: &Json) -> Result<KvValue, String> {
    match field(j, "k")?.str() {
        Some("Ack") => Ok(KvValue::Ack),
        Some("Value") => Ok(KvValue::Value(
            j.get("val")
                .map(|v| v.str().ok_or("val"))
                .transpose()?
                .map(String::from),
        )),
        Some("Removed") => match field(j, "b")? {
            Json::Bool(b) => Ok(KvValue::Removed(*b)),
            _ => Err("\"b\" must be a bool".into()),
        },
        Some("Keys") => match field(j, "keys")? {
            Json::Arr(items) => items
                .iter()
                .map(|it| it.str().map(String::from).ok_or_else(|| "keys".to_string()))
                .collect::<Result<Vec<_>, _>>()
                .map(KvValue::Keys),
            _ => Err("\"keys\" must be an array".into()),
        },
        other => Err(format!("unknown value kind {other:?}")),
    }
}

/// Parses one JSONL trace line. `Ok(None)` for a well-formed line of an
/// *unknown* event kind: trace files may interleave records from other
/// codecs sharing the `{"e":…}` envelope — notably `esds_obs::OpTracer`
/// lifecycle spans (`"e":"span"`) — and the audit replay skips them
/// rather than rejecting the whole file.
///
/// # Errors
///
/// A description of the first malformed token.
pub fn parse_line(line: &str) -> Result<Option<TraceEvent>, String> {
    let mut p = Parser {
        s: line.as_bytes(),
        i: 0,
    };
    let j = p.value()?;
    let kind = field(&j, "e")?
        .str()
        .ok_or("\"e\" must be a string")?
        .to_string();
    if !matches!(kind.as_str(), "req" | "resp" | "stab") {
        return Ok(None);
    }
    let shard = match field(&j, "shard")? {
        Json::Num(n) => *n as u32,
        _ => return Err("\"shard\" must be a number".into()),
    };
    let id = parse_id(field(&j, "id")?.str().ok_or("\"id\" must be a string")?)?;
    let event = match kind.as_str() {
        "req" => {
            let strict = match field(&j, "strict")? {
                Json::Bool(b) => *b,
                _ => return Err("\"strict\" must be a bool".into()),
            };
            let prev: BTreeSet<OpId> = parse_ids(field(&j, "prev")?)?.into_iter().collect();
            let op = parse_op(field(&j, "op")?)?;
            let mut desc = OpDescriptor::new(id, op).with_strict(strict);
            desc.prev = prev;
            AuditEvent::Request(desc)
        }
        "resp" => AuditEvent::Response {
            id,
            value: parse_value(field(&j, "value")?)?,
            witness: j.get("witness").map(parse_ids).transpose()?,
        },
        "stab" => AuditEvent::Stabilize(id),
        _ => unreachable!("kind was matched above"),
    };
    Ok(Some(TraceEvent { shard, event }))
}

// ---------------------------------------------------------------------
// Replay.

/// The outcome of replaying a trace through per-shard streaming
/// checkers.
#[derive(Clone, Debug)]
pub struct ReplayReport {
    /// One certificate per shard (shard index = position).
    pub certificates: Vec<AuditCertificate>,
    /// One status per shard.
    pub statuses: Vec<AuditStatus>,
}

/// A replay failure: where it happened and the audit context.
#[derive(Clone, Debug)]
pub struct ReplayError {
    /// 1-based trace line of the event that failed (0 for end-of-trace
    /// coverage failures).
    pub line: usize,
    /// The failing shard.
    pub shard: u32,
    /// The violation, with its counterexample window — or a parse
    /// description when the trace itself is malformed.
    pub detail: String,
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trace line {} (shard {}): {}",
            self.line, self.shard, self.detail
        )
    }
}

/// Replays a JSONL trace through one
/// [`StreamingChecker`] per shard,
/// failing on the first malformed line or audit violation.
///
/// # Errors
///
/// The first parse failure or [`AuditViolation`]
/// (counterexample window included in the rendered detail).
///
/// [`AuditViolation`]: crate::spec::AuditViolation
pub fn replay(lines: impl IntoIterator<Item = String>) -> Result<ReplayReport, ReplayError> {
    let mut checkers: Vec<StreamingChecker<KvStore>> = Vec::new();
    for (n, line) in lines.into_iter().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let ev = parse_line(line).map_err(|detail| ReplayError {
            line: n + 1,
            shard: u32::MAX,
            detail,
        })?;
        // Foreign-but-well-formed lines (e.g. lifecycle spans) interleave
        // freely with audit events; they carry no audit obligations.
        let Some(ev) = ev else { continue };
        while checkers.len() <= ev.shard as usize {
            checkers.push(StreamingChecker::new(KvStore));
        }
        checkers[ev.shard as usize]
            .on_event(ev.event)
            .map_err(|v| ReplayError {
                line: n + 1,
                shard: ev.shard,
                detail: v.to_string(),
            })?;
    }
    let mut certificates = Vec::new();
    for (s, c) in checkers.iter().enumerate() {
        certificates.push(c.finish().map_err(|v| ReplayError {
            line: 0,
            shard: s as u32,
            detail: v.to_string(),
        })?);
    }
    Ok(ReplayReport {
        statuses: checkers.iter().map(|c| c.status()).collect(),
        certificates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(ev: TraceEvent) {
        let line = encode_line(&ev);
        assert_eq!(parse_line(&line).unwrap(), Some(ev), "roundtrip of {line}");
    }

    #[test]
    fn roundtrips() {
        let id = OpId::new(ClientId(3), 7);
        let p = OpId::new(ClientId(0), 1);
        rt(TraceEvent {
            shard: 0,
            event: AuditEvent::Request(
                OpDescriptor::new(id, KvOp::put("k\"ey\\", "v\nal"))
                    .with_prev([p])
                    .with_strict(true),
            ),
        });
        rt(TraceEvent {
            shard: 2,
            event: AuditEvent::Request(OpDescriptor::new(id, KvOp::Keys)),
        });
        rt(TraceEvent {
            shard: 1,
            event: AuditEvent::Response {
                id,
                value: KvValue::Value(Some("v".into())),
                witness: Some(vec![p, id]),
            },
        });
        rt(TraceEvent {
            shard: 1,
            event: AuditEvent::Response {
                id,
                value: KvValue::Value(None),
                witness: None,
            },
        });
        rt(TraceEvent {
            shard: 0,
            event: AuditEvent::Response {
                id,
                value: KvValue::Keys(vec!["a".into(), "ü".into()]),
                witness: None,
            },
        });
        rt(TraceEvent {
            shard: 0,
            event: AuditEvent::Stabilize(id),
        });
    }

    #[test]
    fn replay_verifies_and_rejects() {
        let id0 = OpId::new(ClientId(0), 0);
        let id1 = OpId::new(ClientId(0), 1);
        let good = vec![
            TraceEvent {
                shard: 0,
                event: AuditEvent::Request(OpDescriptor::new(id0, KvOp::put("a", "1"))),
            },
            TraceEvent {
                shard: 0,
                event: AuditEvent::Request(
                    OpDescriptor::new(id1, KvOp::get("a")).with_strict(true),
                ),
            },
            TraceEvent {
                shard: 0,
                event: AuditEvent::Response {
                    id: id0,
                    value: KvValue::Ack,
                    witness: Some(vec![id0]),
                },
            },
            TraceEvent {
                shard: 0,
                event: AuditEvent::Stabilize(id0),
            },
            TraceEvent {
                shard: 0,
                event: AuditEvent::Stabilize(id1),
            },
            TraceEvent {
                shard: 0,
                event: AuditEvent::Response {
                    id: id1,
                    value: KvValue::Value(Some("1".into())),
                    witness: Some(vec![id0, id1]),
                },
            },
        ];
        let lines: Vec<String> = good.iter().map(encode_line).collect();
        let report = replay(lines.clone()).expect("honest trace is green");
        assert_eq!(report.certificates.len(), 1);
        assert_eq!(report.certificates[0].ops, 2);

        // Corrupt the strict read's value: replay must reject, naming
        // the line.
        let mut bad = good;
        if let AuditEvent::Response { value, .. } = &mut bad[5].event {
            *value = KvValue::Value(Some("corrupted".into()));
        }
        let err = replay(bad.iter().map(encode_line)).expect_err("lying trace");
        assert_eq!(err.line, 6);
        assert!(err.detail.contains("Theorem"), "{err}");
    }

    #[test]
    fn malformed_lines_are_located() {
        let err = replay(vec!["{\"e\":\"req\"".to_string()]).expect_err("truncated");
        assert_eq!(err.line, 1);
        let err = replay(vec!["{\"shard\":0,\"id\":\"c0:0\"}".into()]).expect_err("missing kind");
        assert!(err.detail.contains("missing"), "{err}");
    }

    #[test]
    fn foreign_event_kinds_are_skipped() {
        // Lifecycle spans (esds-obs) share the trace stream; replay must
        // step over them without audit obligations — and still verify
        // the audit events around them.
        assert_eq!(
            parse_line(r#"{"e":"span","shard":0,"id":"c0:0","stage":"submit","us":12}"#).unwrap(),
            None
        );
        let id0 = OpId::new(ClientId(0), 0);
        let lines = vec![
            encode_line(&TraceEvent {
                shard: 0,
                event: AuditEvent::Request(OpDescriptor::new(id0, KvOp::put("a", "1"))),
            }),
            r#"{"e":"span","shard":0,"id":"c0:0","stage":"replica_accept","us":40}"#.into(),
            encode_line(&TraceEvent {
                shard: 0,
                event: AuditEvent::Response {
                    id: id0,
                    value: KvValue::Ack,
                    witness: None,
                },
            }),
            r#"{"e":"span","shard":0,"id":"c0:0","stage":"answer","us":90}"#.into(),
            encode_line(&TraceEvent {
                shard: 0,
                event: AuditEvent::Stabilize(id0),
            }),
        ];
        let report = replay(lines).expect("spans interleave with audit events");
        assert_eq!(report.certificates[0].ops, 1);
    }
}

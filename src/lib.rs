//! # esds — Eventually-Serializable Data Services
//!
//! A complete Rust reproduction of *Eventually-Serializable Data Services*
//! (Fekete, Gupta, Luchangco, Lynch, Shvartsman; PODC 1996 / TCS 220 (1999)
//! 113–156): the formal specification (ESDS-I / ESDS-II), the lazy-replication
//! algorithm that implements it, the Section 10 optimizations, a deterministic
//! discrete-event simulator, a threaded runtime, and the experiment harness
//! that regenerates the paper's evaluation.
//!
//! This facade crate re-exports the workspace crates under stable module
//! names. See `README.md` for a tour and `DESIGN.md` for the system inventory.
//!
//! ## Quickstart
//!
//! ```rust
//! use esds::harness::{SimSystem, SystemConfig};
//! use esds::datatypes::Counter;
//! use esds::core::OpDescriptor;
//! use esds::datatypes::CounterOp;
//!
//! // A 3-replica service over an integer counter.
//! let config = SystemConfig::new(3).with_seed(7);
//! let mut sys = SimSystem::new(Counter, config);
//! let c = sys.add_client(0);
//!
//! // One strict increment, then a nonstrict read.
//! let inc = sys.submit(c, CounterOp::Increment(5), &[], true);
//! let read = sys.submit(c, CounterOp::Read, &[inc], false);
//! sys.run_until_quiescent();
//!
//! assert!(sys.response(read).is_some());
//! ```
//!
//! ## Sharded quickstart
//!
//! Keyed data types ([`datatypes::KvStore`], [`datatypes::Directory`],
//! [`datatypes::Bank`]) can be hash-partitioned across independent
//! replica groups, one full ESDS instance per shard, so throughput
//! scales with the shard count:
//!
//! ```rust
//! use esds::harness::{ShardedSimSystem, ShardedSystemConfig, SystemConfig};
//! use esds::datatypes::{KvOp, KvStore, KvValue};
//!
//! // 4 shards × 3 replicas: 12 replicas, 4 independent gossip domains.
//! let cfg = ShardedSystemConfig::new(4, SystemConfig::new(3).with_seed(7));
//! let mut sys = ShardedSimSystem::new(KvStore, cfg);
//! let c = sys.add_client(0);
//!
//! // Writes are routed to the shard owning their key; a `prev`
//! // constraint that crosses shards holds the dependent back until the
//! // foreign shard has answered its predecessor.
//! let put = sys.submit(c, KvOp::put("user:1", "ada"), &[], false);
//! let get = sys.submit(c, KvOp::get("user:1"), &[put], false);
//! sys.run_until_quiescent();
//!
//! assert_eq!(sys.response(get), Some(&KvValue::Value(Some("ada".into()))));
//! ```
//!
//! Whole-object queries **scatter-gather**: `Keys` reads state no
//! single shard holds, so the deployment fans one hidden sub-query out
//! to every involved shard and merges the answers. Submitted *strict*,
//! the gather takes a per-shard stability barrier first, and the
//! merged answer is exactly what an unsharded deployment would return:
//!
//! ```rust
//! use esds::harness::{ShardedSimSystem, ShardedSystemConfig, SystemConfig};
//! use esds::datatypes::{KvOp, KvStore, KvValue};
//!
//! // 2 shards × 3 replicas.
//! let cfg = ShardedSystemConfig::new(2, SystemConfig::new(3).with_seed(11));
//! let mut sys = ShardedSimSystem::new(KvStore, cfg);
//! let c = sys.add_client(0);
//!
//! // The writes land on whichever shard owns each key.
//! let a = sys.submit(c, KvOp::put("user:1", "ada"), &[], false);
//! let b = sys.submit(c, KvOp::put("user:2", "lin"), &[], false);
//!
//! // Barrier-strict `Keys`: each involved shard snapshots its answered
//! // frontier, waits until that frontier is stable at every replica,
//! // then runs a strict sub-query — the union is exact, never one
//! // shard's partial slice.
//! let keys = sys.submit(c, KvOp::Keys, &[a, b], true);
//! sys.run_until_quiescent();
//!
//! assert_eq!(
//!     sys.response(keys),
//!     Some(&KvValue::Keys(vec!["user:1".into(), "user:2".into()]))
//! );
//! ```
//!
//! The threaded analogue is [`runtime::ShardedService`]; over real
//! sockets it is [`wire::ShardedWireService`] (one TCP cluster per
//! shard, with a routing-table-version handshake so reads never route
//! stale). The routing vocabulary ([`core::KeyedDataType`],
//! [`core::ShardRouter`]) lives in `esds-core`. See `ARCHITECTURE.md`
//! for the full crate map and data flow.

pub mod audit;

pub use esds_alg as alg;
pub use esds_core as core;
pub use esds_datatypes as datatypes;
pub use esds_harness as harness;
pub use esds_mc as mc;
pub use esds_obs as obs;
pub use esds_runtime as runtime;
pub use esds_sim as sim;
pub use esds_spec as spec;
pub use esds_store as store;
pub use esds_wire as wire;

/// `VERIFICATION.md`'s Rust blocks compile and run as doctests of this
/// facade (`cargo test --doc -p esds`), so the document's examples
/// cannot drift from the API. Only exists while doctests are
/// collected; `cargo doc` never publishes it.
#[cfg(doctest)]
#[doc = include_str!("../VERIFICATION.md")]
pub struct VerificationDoctests;

//! # esds — Eventually-Serializable Data Services
//!
//! A complete Rust reproduction of *Eventually-Serializable Data Services*
//! (Fekete, Gupta, Luchangco, Lynch, Shvartsman; PODC 1996 / TCS 220 (1999)
//! 113–156): the formal specification (ESDS-I / ESDS-II), the lazy-replication
//! algorithm that implements it, the Section 10 optimizations, a deterministic
//! discrete-event simulator, a threaded runtime, and the experiment harness
//! that regenerates the paper's evaluation.
//!
//! This facade crate re-exports the workspace crates under stable module
//! names. See `README.md` for a tour and `DESIGN.md` for the system inventory.
//!
//! ## Quickstart
//!
//! ```rust
//! use esds::harness::{SimSystem, SystemConfig};
//! use esds::datatypes::Counter;
//! use esds::core::OpDescriptor;
//! use esds::datatypes::CounterOp;
//!
//! // A 3-replica service over an integer counter.
//! let config = SystemConfig::new(3).with_seed(7);
//! let mut sys = SimSystem::new(Counter, config);
//! let c = sys.add_client(0);
//!
//! // One strict increment, then a nonstrict read.
//! let inc = sys.submit(c, CounterOp::Increment(5), &[], true);
//! let read = sys.submit(c, CounterOp::Read, &[inc], false);
//! sys.run_until_quiescent();
//!
//! assert!(sys.response(read).is_some());
//! ```

pub use esds_alg as alg;
pub use esds_core as core;
pub use esds_datatypes as datatypes;
pub use esds_harness as harness;
pub use esds_mc as mc;
pub use esds_runtime as runtime;
pub use esds_sim as sim;
pub use esds_spec as spec;
pub use esds_wire as wire;

//! `esds_top` — a `top`-style dashboard over a live ESDS deployment.
//!
//! The dashboard is a pure consumer of the wire protocol's
//! `MetricsQuery`/`MetricsInfo` frames: any node of a deployment whose
//! config installed a metrics registry (`ShardedWireConfig::with_obs`)
//! answers its **process-wide** snapshot, and this binary turns the
//! hierarchical counter/gauge/histogram names (`shard0/replica1/…`,
//! `client0/…`) into a per-shard summary, re-rendered every poll tick.
//!
//! ```text
//! esds_top --demo [SECONDS]
//! ```
//!
//! The `--demo` mode hosts the cluster in-process: a 2-shard KV
//! deployment fronted by chaos proxies (loss, duplication, reordering),
//! with a background workload hammering both shards while the dashboard
//! polls over real sockets. That makes the whole loop — instrumented
//! nodes, wire exposition, rendering — exercisable offline and in CI;
//! pointing the same poller at an external cluster is only a matter of
//! dialing its address and speaking the same two frames.
//!
//! Environment:
//!
//! * `ESDS_TOP_CHAOS=0` — disable the demo's fault injection.
//! * `ESDS_OBS_TRACE=<path>` / `ESDS_OBS_SAMPLE=<n>` — additionally
//!   write sampled op-lifecycle spans (see `esds_obs::OpTracer`).

use std::process::ExitCode;
use std::time::{Duration, Instant};

use esds::datatypes::{KvOp, KvStore, KvValue};
use esds::obs::{format_duration_us, MetricsRegistry, MetricsSnapshot, OpTracer};
use esds::wire::{ChaosConfig, ShardedWireConfig, ShardedWireService};

/// Poll-and-redraw period of the dashboard.
const TICK: Duration = Duration::from_millis(400);

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--demo") => {
            let secs = args.get(1).and_then(|s| s.parse::<u64>().ok()).unwrap_or(4);
            demo(Duration::from_secs(secs))
        }
        _ => {
            eprintln!("usage: esds_top --demo [SECONDS]");
            eprintln!("  hosts a 2-shard chaos deployment in-process and watches it");
            ExitCode::FAILURE
        }
    }
}

/// Launches the in-process deployment, drives a background workload, and
/// renders the dashboard until `run_for` elapses.
fn demo(run_for: Duration) -> ExitCode {
    let registry = MetricsRegistry::new();
    let mut config = ShardedWireConfig::new(2)
        .with_obs(registry.clone())
        .with_tracer(OpTracer::from_env());
    if std::env::var("ESDS_TOP_CHAOS").map_or(true, |v| v != "0") {
        config = config.with_chaos(
            ChaosConfig::lossy(0.05, 42)
                .with_duplication(0.03)
                .with_reordering(0.05),
        );
    }
    let mut svc = ShardedWireService::launch(KvStore, 2, config);
    let mut poller = svc.client();
    let mut worker = svc.client();

    // Background workload: puts and reads spread across the keyspace so
    // both shards see traffic (and under chaos, resends and NAK-free
    // retries happen organically).
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let stop2 = stop.clone();
    let workload = std::thread::spawn(move || {
        let mut i = 0u64;
        while !stop2.load(std::sync::atomic::Ordering::Relaxed) {
            let key = format!("k{}", i % 64);
            let put = worker.submit(KvOp::put(key.clone(), format!("{i}")), &[], false);
            if worker
                .await_response(put, Duration::from_secs(10))
                .is_none()
            {
                break;
            }
            let get = worker.submit(KvOp::get(key), &[put], false);
            match worker.await_response(get, Duration::from_secs(10)) {
                Some(KvValue::Value(_)) => {}
                _ => break,
            }
            i += 1;
        }
    });

    let start = Instant::now();
    let mut frame = 0u64;
    while start.elapsed() < run_for {
        std::thread::sleep(TICK);
        // The demo runs every shard in this process, so one node's
        // answer carries the whole registry; polling shard 0's relay
        // still exercises the real query frames over real (chaotic)
        // sockets. Fall back to the in-process registry if the probe
        // frame loses the coin flip repeatedly.
        let snap = poller
            .metrics_snapshot(0, Duration::from_secs(2))
            .unwrap_or_else(|| registry.snapshot());
        frame += 1;
        render(frame, start.elapsed(), &snap);
    }

    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let _ = workload.join();
    svc.shutdown();
    println!("esds_top: demo complete ({frame} frames)");
    ExitCode::SUCCESS
}

/// Sums every counter named `<prefix>…/<suffix>` (or exactly equal).
fn sum(snap: &MetricsSnapshot, prefix: &str, suffix: &str) -> u64 {
    snap.counters
        .iter()
        .filter(|(n, _)| n.starts_with(prefix) && (n.ends_with(suffix)))
        .map(|(_, v)| v)
        .sum()
}

/// Max over every gauge named `<prefix>…/<suffix>`.
fn gauge_max(snap: &MetricsSnapshot, prefix: &str, suffix: &str) -> u64 {
    snap.gauges
        .iter()
        .filter(|(n, _)| n.starts_with(prefix) && n.ends_with(suffix))
        .map(|(_, v)| *v)
        .max()
        .unwrap_or(0)
}

/// One dashboard frame: a per-shard line plus a client roll-up.
fn render(frame: u64, elapsed: Duration, snap: &MetricsSnapshot) {
    println!(
        "── esds_top frame {frame} · t={:.1}s ──",
        elapsed.as_secs_f64()
    );
    for shard in 0..2u32 {
        let p = format!("shard{shard}/");
        println!(
            "  shard{shard}: req={} gossip_msgs={} gossip_bytes={} unstable={} wm_age={} \
             chaos[drop={} dup={} reorder={}]",
            sum(snap, &p, "/requests"),
            sum(snap, &p, "/gossip_msgs"),
            sum(snap, &p, "/gossip_bytes"),
            gauge_max(snap, &p, "/unstable_window"),
            format_duration_us(gauge_max(snap, &p, "/stable_watermark_age_ms") * 1000),
            sum(snap, &p, "/dropped"),
            sum(snap, &p, "/duplicated"),
            sum(snap, &p, "/reordered"),
        );
    }
    // Several clients register `client{N}/await_us` (the poller included);
    // show the busiest one rather than whichever sorts first.
    let await_line = snap
        .histograms
        .iter()
        .filter(|(n, _)| n.starts_with("client") && n.ends_with("/await_us"))
        .max_by_key(|(_, h)| h.count)
        .map(|(_, h)| h.render_us())
        .unwrap_or_else(|| "n=0".into());
    println!(
        "  clients: submitted={} answered={} resends={} naks={} await[{}]",
        sum(snap, "client", "/ops_submitted"),
        sum(snap, "client", "/ops_answered"),
        sum(snap, "client", "/resends"),
        sum(snap, "client", "/nak_reroutes"),
        await_line,
    );
}

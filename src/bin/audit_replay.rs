//! Replays a JSONL wire trace through the per-shard streaming audit.
//!
//! ```text
//! audit_replay <trace.jsonl>     # verify a captured trace
//! audit_replay --self-check      # corrupt a synthetic trace, expect rejection
//! ```
//!
//! Exit code 0 means every shard's externally-visible behaviour is
//! explained by its own eventually-serializable instance (windowed
//! Theorem 5.7 per response, Theorem 5.8 coverage at end of trace);
//! nonzero means a violation, printed with its counterexample window,
//! or a malformed trace. Used by the CI `audit` lane after the
//! chaos-matrix wire test emits its trace via `ESDS_TRACE_OUT`.

use std::io::BufRead;
use std::process::ExitCode;

use esds::audit::{encode_line, parse_line, replay, TraceEvent};
use esds::core::{ClientId, OpDescriptor, OpId};
use esds::datatypes::{KvOp, KvValue};
use esds::spec::AuditEvent;

fn verify(path: &str) -> ExitCode {
    let file = match std::fs::File::open(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("audit_replay: cannot open {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let lines: Vec<String> = match std::io::BufReader::new(file).lines().collect() {
        Ok(ls) => ls,
        Err(e) => {
            eprintln!("audit_replay: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let n_lines = lines.len();
    match replay(lines) {
        Ok(report) => {
            println!("audit_replay: {path}: {n_lines} trace lines verified");
            for (shard, (cert, status)) in
                report.certificates.iter().zip(&report.statuses).enumerate()
            {
                println!(
                    "  shard {shard}: certificate {{ ops: {}, digest: {:#018x} }} \
                     responses={} witnesses_checked={} stale_skipped={} peak_resident={}",
                    cert.ops,
                    cert.digest,
                    status.responses,
                    status.witnesses_checked,
                    status.stale_skipped,
                    status.peak_resident,
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("audit_replay: VIOLATION in {path}");
            eprintln!("  {e}");
            ExitCode::FAILURE
        }
    }
}

/// A small honest single-shard trace: put, causally-constrained strict
/// get, full stabilization.
fn synthetic_trace() -> Vec<TraceEvent> {
    let c = ClientId(0);
    let ids: Vec<OpId> = (0..4).map(|s| OpId::new(c, s)).collect();
    let sh = |event| TraceEvent { shard: 0, event };
    vec![
        sh(AuditEvent::Request(OpDescriptor::new(
            ids[0],
            KvOp::put("a", "1"),
        ))),
        sh(AuditEvent::Request(
            OpDescriptor::new(ids[1], KvOp::put("b", "2")).with_prev([ids[0]]),
        )),
        sh(AuditEvent::Response {
            id: ids[0],
            value: KvValue::Ack,
            witness: Some(vec![ids[0]]),
        }),
        sh(AuditEvent::Response {
            id: ids[1],
            value: KvValue::Ack,
            witness: Some(vec![ids[0], ids[1]]),
        }),
        sh(AuditEvent::Request(
            OpDescriptor::new(ids[2], KvOp::get("a"))
                .with_prev([ids[0], ids[1]])
                .with_strict(true),
        )),
        sh(AuditEvent::Stabilize(ids[0])),
        sh(AuditEvent::Stabilize(ids[1])),
        sh(AuditEvent::Stabilize(ids[2])),
        sh(AuditEvent::Response {
            id: ids[2],
            value: KvValue::Value(Some("1".into())),
            witness: Some(vec![ids[0], ids[1], ids[2]]),
        }),
    ]
}

/// A crash/restart trace, shaped like what the durability lane captures:
/// client 0's answered prefix survives the kill (sync-before-release —
/// an answered op's frame was on disk), one in-flight op survives as a
/// synced-but-unanswered frame (stabilizes, never answered), and a
/// fresh post-restart client — numbered above every recovered identity
/// — strictly reads the survivor.
fn recovery_trace() -> Vec<TraceEvent> {
    let pre = ClientId(0);
    let post = ClientId(1);
    let answered = OpId::new(pre, 0);
    let inflight = OpId::new(pre, 1);
    let read = OpId::new(post, 0);
    let sh = |event| TraceEvent { shard: 0, event };
    vec![
        sh(AuditEvent::Request(OpDescriptor::new(
            answered,
            KvOp::put("k", "pre"),
        ))),
        sh(AuditEvent::Response {
            id: answered,
            value: KvValue::Ack,
            witness: Some(vec![answered]),
        }),
        // In flight at the cut; its frame reached the disk, so the
        // recovered order re-admits it, but nobody was ever told.
        sh(AuditEvent::Request(OpDescriptor::new(
            inflight,
            KvOp::put("m", "unacked"),
        ))),
        // ---- kill -9, restart from disk ----
        sh(AuditEvent::Request(
            OpDescriptor::new(read, KvOp::get("k"))
                .with_prev([answered])
                .with_strict(true),
        )),
        sh(AuditEvent::Stabilize(answered)),
        sh(AuditEvent::Stabilize(inflight)),
        sh(AuditEvent::Stabilize(read)),
        sh(AuditEvent::Response {
            id: read,
            value: KvValue::Value(Some("pre".into())),
            witness: Some(vec![answered, inflight, read]),
        }),
    ]
}

/// The §9.3 half of the self-check: the honest crash/restart trace must
/// verify, and a **resurrected label** — the recovered order naming an
/// operation whose request the cut dropped (a frame that never synced
/// cannot reappear; if it does, the store invented history) — must be
/// rejected with the theorem named.
fn self_check_recovery() -> Result<(), String> {
    let honest = recovery_trace();
    replay(honest.iter().map(encode_line))
        .map_err(|e| format!("honest recovery trace rejected: {e}"))?;

    let mut lying = honest;
    let resurrected = OpId::new(ClientId(0), 7);
    lying.insert(
        lying.len() - 1,
        TraceEvent {
            shard: 0,
            event: AuditEvent::Stabilize(resurrected),
        },
    );
    match replay(lying.iter().map(encode_line)) {
        Ok(_) => Err("resurrected pre-crash label accepted".into()),
        Err(e) => {
            let msg = e.to_string();
            if !msg.contains("Theorem") {
                return Err(format!("rejection does not name its theorem: {msg}"));
            }
            println!("audit_replay: self-check ok — resurrected label rejected as expected:");
            println!("  {msg}");
            Ok(())
        }
    }
}

/// Proves the lane can actually fail: the honest trace must verify, a
/// value-corrupted copy of it must be rejected with a counterexample.
fn self_check() -> ExitCode {
    let honest = synthetic_trace();
    let lines: Vec<String> = honest.iter().map(encode_line).collect();
    // Round-trip through the codec so the self-check covers parsing too.
    for l in &lines {
        if let Err(e) = parse_line(l) {
            eprintln!("audit_replay: self-check codec failure on {l}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = replay(lines) {
        eprintln!("audit_replay: self-check failed — honest trace rejected: {e}");
        return ExitCode::FAILURE;
    }

    let mut lying = honest;
    let last = lying.last_mut().expect("nonempty");
    if let AuditEvent::Response { value, .. } = &mut last.event {
        *value = KvValue::Value(Some("corrupted".into()));
    }
    match replay(lying.iter().map(encode_line)) {
        Ok(_) => {
            eprintln!("audit_replay: self-check failed — corrupted strict read accepted");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            println!("audit_replay: self-check ok — corruption rejected as expected:");
            println!("  {e}");
        }
    }

    match self_check_recovery() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("audit_replay: self-check failed — {msg}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [flag] if flag == "--self-check" => self_check(),
        [path] => verify(path),
        _ => {
            eprintln!("usage: audit_replay <trace.jsonl> | audit_replay --self-check");
            ExitCode::from(2)
        }
    }
}

//! CI durability lane: a durable sharded cluster under a chaos
//! workload, killed for real (`kill -9` from the workflow), restarted
//! from the surviving directories, and audited end to end.
//!
//! ```text
//! durability_lane run <dir>      # loop forever; the workflow kills -9
//! durability_lane recover <dir>  # restart from disk, verify, audit
//! ```
//!
//! The `run` phase appends every externally-visible event (requests at
//! submission, responses as they land, shard-local ids) to
//! `<dir>/trace.jsonl`, flushed line by line — `kill -9` loses at most
//! a torn trailing line, never an acknowledged response that the OS
//! already had. The `recover` phase reopens every replica's store
//! (all must report a recovered image), restarts the cluster, fences
//! each shard with a strict read, and then checks, per shard:
//!
//! * **recover ⊇ answered** — every response line in the trace names
//!   an operation present in the recovered eventual order;
//! * the whole joined history — surviving trace requests, operations
//!   whose trace line was cut but whose WAL frame survived (descriptors
//!   harvested from the recovered replicas), responses, and the
//!   recovered stabilization order — passes the [`StreamingChecker`]
//!   with a full-coverage certificate (Theorems 5.7/5.8).
//!
//! Exit code 0 = verified; 1 = durability or audit violation; 2 =
//! setup/usage error.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

use esds::alg::{Persistence, Replica, ReplicaConfig};
use esds::audit::{encode_line, parse_line, TraceEvent};
use esds::core::{OpDescriptor, OpId, ReplicaId, ShardedOpId};
use esds::datatypes::{KvOp, KvStore, KvValue};
use esds::runtime::{RuntimeConfig, ShardedClient, ShardedService};
use esds::spec::{check_converged, AuditEvent, StreamingChecker};
use esds::store::{DurableConfig, DurableStore, FileStorage};

const N_SHARDS: usize = 2;
const N_REPLICAS: usize = 3;

type Groups = Vec<Vec<(Replica<KvStore>, Box<dyn Persistence<KvStore>>)>>;

fn runtime_config() -> RuntimeConfig {
    let mut cfg = RuntimeConfig::new(N_REPLICAS);
    cfg.replica = ReplicaConfig::default().with_durable();
    cfg
}

/// Opens every `(shard, replica)` store under `root`. When
/// `require_recovered` is set, a fresh (empty) image is an error — the
/// recover phase must actually be recovering something.
fn open_groups(root: &Path, require_recovered: bool) -> Result<Groups, String> {
    (0..N_SHARDS)
        .map(|s| {
            (0..N_REPLICAS)
                .map(|r| {
                    let dir = root.join(format!("shard{s}")).join(format!("rep{r}"));
                    std::fs::create_dir_all(&dir)
                        .map_err(|e| format!("create {}: {e}", dir.display()))?;
                    let storage = FileStorage::open(&dir).map_err(|e| e.to_string())?;
                    let (store, rep, report) = DurableStore::open(
                        KvStore,
                        storage,
                        ReplicaId(r as u32),
                        N_REPLICAS,
                        ReplicaConfig::default(),
                        DurableConfig {
                            snapshot_every: Some(64),
                        },
                    )
                    .map_err(|e| format!("shard {s} replica {r}: {e}"))?;
                    if require_recovered && !report.recovered {
                        return Err(format!(
                            "shard {s} replica {r}: nothing to recover ({report})"
                        ));
                    }
                    println!("durability_lane: shard {s} replica {r}: {report}");
                    Ok((rep, Box::new(store) as Box<dyn Persistence<KvStore>>))
                })
                .collect()
        })
        .collect()
}

/// Deterministic keystream for the chaos workload (no external RNG in
/// a lane binary that must behave identically on every runner).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

fn trace_request(
    client: &ShardedClient<KvStore>,
    gid: ShardedOpId,
    op: KvOp,
    strict: bool,
) -> TraceEvent {
    let shard = client.shard_of(gid).expect("routed");
    let local = client.local_id(gid).expect("submitted");
    TraceEvent {
        shard,
        event: AuditEvent::Request(OpDescriptor::new(local, op).with_strict(strict)),
    }
}

fn trace_response(client: &ShardedClient<KvStore>, gid: ShardedOpId, value: KvValue) -> TraceEvent {
    TraceEvent {
        shard: client.shard_of(gid).expect("routed"),
        event: AuditEvent::Response {
            id: client.local_id(gid).expect("submitted"),
            value,
            witness: None,
        },
    }
}

/// Runs the durable cluster under the chaos workload until killed.
fn run(root: &Path) -> Result<(), String> {
    let groups = open_groups(root, false)?;
    let mut svc = ShardedService::start_durable(KvStore, runtime_config(), groups);
    let mut client = svc.client();

    let trace_path = root.join("trace.jsonl");
    let file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&trace_path)
        .map_err(|e| format!("open {}: {e}", trace_path.display()))?;
    let mut trace = std::io::BufWriter::new(file);
    let mut emit = |ev: &TraceEvent| -> Result<(), String> {
        writeln!(trace, "{}", encode_line(ev)).map_err(|e| e.to_string())?;
        // Line-by-line flush: once the OS has the bytes, kill -9 of
        // this process cannot take them back.
        trace.flush().map_err(|e| e.to_string())
    };

    let mut rng = Lcg(0x9e3779b97f4a7c15);
    let mut pending: VecDeque<ShardedOpId> = VecDeque::new();
    let mut i = 0u64;
    println!("durability_lane: running (kill -9 me mid-flight)");
    loop {
        i += 1;
        let key = format!("k{}", rng.next() % 32);
        let strict = rng.next().is_multiple_of(7);
        let op = if rng.next().is_multiple_of(3) {
            KvOp::get(&key)
        } else {
            KvOp::put(&key, format!("v{i}"))
        };
        let gid = client.submit(op.clone(), &[], strict);
        emit(&trace_request(&client, gid, op, strict))?;
        pending.push_back(gid);
        while pending.len() > 8 {
            let gid = pending.pop_front().expect("nonempty");
            let v = client
                .await_response(gid, Duration::from_secs(30))
                .ok_or_else(|| format!("operation {gid} unanswered after 30s"))?;
            emit(&trace_response(&client, gid, v))?;
        }
        if i.is_multiple_of(256) {
            println!("durability_lane: {i} operations submitted");
        }
    }
}

/// Torn-tail-tolerant trace read: a parse failure on the **last** line
/// is the expected `kill -9` artifact and is dropped (reported);
/// anywhere else it is a hard error.
fn read_trace(path: &Path) -> Result<Vec<TraceEvent>, String> {
    let raw = std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let lines: Vec<&str> = raw.lines().filter(|l| !l.trim().is_empty()).collect();
    let mut events = Vec::with_capacity(lines.len());
    for (n, line) in lines.iter().enumerate() {
        match parse_line(line) {
            Ok(Some(ev)) => events.push(ev),
            Ok(None) => {} // foreign codec line (e.g. a lifecycle span)
            Err(e) if n + 1 == lines.len() => {
                println!("durability_lane: dropped torn trailing trace line: {e}");
            }
            Err(e) => return Err(format!("corrupt trace line {}: {e}", n + 1)),
        }
    }
    println!("durability_lane: {} trace events read", events.len());
    Ok(events)
}

/// Restarts the cluster from disk and audits the joined history.
fn recover(root: &Path) -> Result<(), String> {
    let mut events = read_trace(&root.join("trace.jsonl"))?;
    let groups = open_groups(root, true)?;

    // Descriptors the trace may be missing: an operation submitted in
    // the instant between `submit()` and its trace line hitting the OS
    // can still have reached a replica's synced WAL. The recovered
    // replicas' admitted sets are harvested *before* the cluster runs
    // (recovery replays the WAL suffix into `rcvd`; only the
    // pre-crash stable prefix is memo-pruned, and those operations are
    // old enough to have trace lines).
    let mut harvested: Vec<BTreeMap<OpId, OpDescriptor<KvOp>>> = vec![BTreeMap::new(); N_SHARDS];
    for (s, group) in groups.iter().enumerate() {
        for (rep, _) in group {
            for (id, d) in rep.rcvd() {
                harvested[s].insert(*id, d.clone());
            }
        }
    }

    let mut svc = ShardedService::start_durable(KvStore, runtime_config(), groups);
    let mut client = svc.client();

    // Fence every shard: a strict answer pins everything before it as
    // stable everywhere in its group, so the shutdown below reads
    // converged, fully-stabilized replicas.
    let mut fenced = [false; N_SHARDS];
    for j in 0..64u64 {
        if fenced.iter().all(|f| *f) {
            break;
        }
        let op = KvOp::get(format!("fence{j}"));
        let gid = client.submit(op.clone(), &[], true);
        events.push(trace_request(&client, gid, op, true));
        let v = client
            .await_response(gid, Duration::from_secs(60))
            .ok_or_else(|| format!("fence read {gid} unanswered — recovery gate stuck?"))?;
        events.push(trace_response(&client, gid, v));
        fenced[client.shard_of(gid).expect("routed") as usize] = true;
    }
    if !fenced.iter().all(|f| *f) {
        return Err("fence probes missed a shard".into());
    }

    let final_reps = svc.shutdown();
    let mut violations = 0usize;
    for (s, reps) in final_reps.iter().enumerate() {
        let orders: Vec<Vec<OpId>> = reps.iter().map(|r| r.local_order()).collect();
        let states: Vec<_> = reps.iter().map(|r| r.current_state()).collect();
        check_converged(&orders, &states)
            .map_err(|e| format!("shard {s} diverged after recovery: {e}"))?;
        let order = &orders[0];
        let in_order: BTreeSet<OpId> = order.iter().copied().collect();

        // recover ⊇ answered.
        for ev in events.iter().filter(|e| e.shard == s as u32) {
            if let AuditEvent::Response { id, .. } = &ev.event {
                if !in_order.contains(id) {
                    eprintln!(
                        "durability_lane: VIOLATION shard {s}: answered {id} \
                         missing from the recovered order"
                    );
                    violations += 1;
                }
            }
        }

        // Streaming audit: surviving requests (trace order, then
        // harvested orphans), all responses, the recovered order as
        // the stabilize stream.
        let mut chk = StreamingChecker::new(KvStore);
        let mut requested: BTreeSet<OpId> = BTreeSet::new();
        let feed = |chk: &mut StreamingChecker<KvStore>, r| match r {
            Ok(()) => 0usize,
            Err(_) => {
                let v = chk.violation().expect("latched").clone();
                eprintln!("durability_lane: VIOLATION shard {s}: {v}");
                1
            }
        };
        for ev in events.iter().filter(|e| e.shard == s as u32) {
            if let AuditEvent::Request(desc) = &ev.event {
                if in_order.contains(&desc.id) {
                    requested.insert(desc.id);
                    let r = chk.on_request(desc.clone());
                    violations += feed(&mut chk, r);
                }
            }
        }
        for id in order {
            if !requested.contains(id) {
                let desc = harvested[s].get(id).ok_or_else(|| {
                    format!(
                        "shard {s}: recovered {id} has neither a trace line nor a \
                         harvested descriptor"
                    )
                })?;
                let r = chk.on_request(desc.clone());
                violations += feed(&mut chk, r);
            }
        }
        for ev in events.iter().filter(|e| e.shard == s as u32) {
            if let AuditEvent::Response { id, value, witness } = &ev.event {
                let r = chk.on_response(*id, value.clone(), witness.clone());
                violations += feed(&mut chk, r);
            }
        }
        for id in order {
            let r = chk.on_stabilize(*id);
            violations += feed(&mut chk, r);
        }
        match chk.finish() {
            Ok(cert) => {
                println!(
                    "durability_lane: shard {s}: certificate {{ ops: {}, digest: {:#018x} }}",
                    cert.ops, cert.digest
                );
                if cert.ops as usize != order.len() {
                    eprintln!(
                        "durability_lane: VIOLATION shard {s}: certificate covers {} of {} ops",
                        cert.ops,
                        order.len()
                    );
                    violations += 1;
                }
            }
            Err(v) => {
                eprintln!("durability_lane: VIOLATION shard {s}: {v}");
                violations += 1;
            }
        }
    }
    if violations > 0 {
        return Err(format!("{violations} violation(s)"));
    }
    println!("durability_lane: recovery verified — every answered operation survived");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (mode, dir) = match args.as_slice() {
        [m, d] if m == "run" || m == "recover" => (m.as_str(), PathBuf::from(d)),
        _ => {
            eprintln!("usage: durability_lane run <dir> | durability_lane recover <dir>");
            return ExitCode::from(2);
        }
    };
    let res = match mode {
        "run" => run(&dir),
        _ => recover(&dir),
    };
    match res {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("durability_lane: {e}");
            ExitCode::FAILURE
        }
    }
}

//! A replicated directory service — the application domain the paper
//! motivates (§1, §11.2): "naming and directory services … access is
//! dominated by queries and it is unnecessary for the updates to be atomic
//! in all cases".
//!
//! Shows the §11.2 idiom: create a name, then initialize its attributes
//! with operations whose `prev` sets contain the creation's identifier, so
//! no replica ever applies the initialization before the creation. Lookups
//! are nonstrict (fast, possibly stale); an administrative audit uses a
//! strict ListNames.
//!
//! Run with `cargo run --example directory_service`.

use esds::datatypes::{Directory, DirectoryOp, DirectoryValue};
use esds::harness::{SimSystem, SystemConfig};

fn main() {
    let mut sys = SimSystem::new(Directory, SystemConfig::new(5).with_seed(42));
    let admin = sys.add_client(0);
    let resolver_a = sys.add_client(1); // query client at replica 1
    let resolver_b = sys.add_client(3); // query client at replica 3

    // Admin registers a host and initializes its address; the attribute
    // write carries the creation in `prev` (the §11.2 pattern).
    let create = sys.submit(admin, DirectoryOp::create("www.example"), &[], false);
    let init = sys.submit(
        admin,
        DirectoryOp::set_attr("www.example", "addr", "10.1.2.3"),
        &[create],
        false,
    );

    // Resolvers look the name up immediately — nonstrict, served from
    // their local replicas, which may not have heard the update yet.
    let early_a = sys.submit(
        resolver_a,
        DirectoryOp::lookup("www.example", "addr"),
        &[],
        false,
    );
    let early_b = sys.submit(
        resolver_b,
        DirectoryOp::lookup("www.example", "addr"),
        &[],
        false,
    );

    // A dependent lookup: "answer only after the initialization applies".
    let after = sys.submit(
        resolver_a,
        DirectoryOp::lookup("www.example", "addr"),
        &[init],
        false,
    );

    // Administrative audit: a strict listing, consistent with the eventual
    // total order.
    let audit = sys.submit(admin, DirectoryOp::ListNames, &[], true);

    sys.run_until_quiescent();

    println!("create            -> {:?}", sys.response(create));
    println!(
        "early lookup (r1) -> {:?}   (stale None is legal)",
        sys.response(early_a)
    );
    println!(
        "early lookup (r3) -> {:?}   (stale None is legal)",
        sys.response(early_b)
    );
    println!("lookup after init -> {:?}", sys.response(after));
    println!("strict audit      -> {:?}", sys.response(audit));

    // The `prev`-constrained lookup is never stale.
    assert_eq!(
        sys.response(after),
        Some(&DirectoryValue::Attr(Some("10.1.2.3".to_string())))
    );
    // The strict audit reflects the eventual order: the name exists.
    assert_eq!(
        sys.response(audit),
        Some(&DirectoryValue::Names(vec!["www.example".to_string()]))
    );

    esds::spec::check_converged(&sys.local_orders(), &sys.replica_states())
        .expect("directory replicas converged");
    println!("\nall {} replicas converged", sys.config().n_replicas);
}

//! Bounded exhaustive model checking from the public API: enumerate every
//! reachable state of the specification automata and every message
//! schedule of a small deployment, discharging the paper's proof
//! obligations (invariants, the §5.3 equivalence, terminal convergence)
//! in each.
//!
//! Run with `cargo run --release --example model_check`.

use esds::core::{ClientId, OpDescriptor, OpId, ReplicaId};
use esds::datatypes::{Counter, CounterOp};
use esds::mc::{explore_alg, explore_spec, AlgScope, SpecScope};
use esds::spec::SpecVariant;

fn id(c: u32, s: u64) -> OpId {
    OpId::new(ClientId(c), s)
}

fn main() {
    // The §10.3 conflict pair plus a dependent strict read: the hardest
    // tiny workload — values differ across linear extensions, so every
    // calculate/stabilize decision is visible.
    let ops = vec![
        OpDescriptor::new(id(0, 0), CounterOp::Increment(1)),
        OpDescriptor::new(id(1, 0), CounterOp::Double),
        OpDescriptor::new(id(0, 1), CounterOp::Read)
            .with_prev([id(0, 0)])
            .with_strict(true),
    ];

    println!("== specification automata (ESDS-I / ESDS-II, paper §5) ==");
    for variant in [SpecVariant::EsdsI, SpecVariant::EsdsII] {
        let mut scope = SpecScope::new(Counter, ops.clone());
        scope.max_states = 500_000;
        let report = explore_spec(scope, variant);
        println!(
            "  {variant:?}: {} states, {} transitions, truncated={}, violations={}",
            report.states,
            report.transitions,
            report.truncated,
            report.violations.len(),
        );
        assert!(report.passed(), "{:#?}", report.violations);
    }
    println!("  → Invariants 5.2–5.6 hold in every reachable state;");
    println!("    every ESDS-I action is an ESDS-II action, and every ESDS-II");
    println!("    stabilization is simulated by ESDS-I gap-filling (Fig. 4).\n");

    println!("== algorithm, all message schedules (paper §6–§8) ==");
    let mut scope = AlgScope::new(
        Counter,
        vec![
            (
                OpDescriptor::new(id(0, 0), CounterOp::Increment(1)),
                ReplicaId(0),
            ),
            (OpDescriptor::new(id(1, 0), CounterOp::Double), ReplicaId(1)),
        ],
    )
    .with_duplicates(2); // §9.3: every message may arrive twice
    scope.gossip_budget = 2;
    scope.max_states = 1_000_000;
    let report = explore_alg(scope);
    println!(
        "  {} states, {} transitions, {} terminals ({} converged), violations={}",
        report.states,
        report.transitions,
        report.terminals,
        report.converged_terminals,
        report.violations.len(),
    );
    assert!(report.passed(), "{:#?}", report.violations);
    println!("  → Invariants 7.1–7.21 / 8.1 / 8.3 hold in every state of every");
    println!("    schedule (including duplicated deliveries), and every fully-");
    println!("    gossiped schedule converges to one eventual total order.");
}

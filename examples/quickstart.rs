//! Quickstart: a 3-replica eventually-serializable counter.
//!
//! Demonstrates the request interface of the paper (§2.3): nonstrict
//! operations answer fast but may be reordered later; `prev` sets order
//! specific operations; strict operations wait until their place in the
//! eventual total order is fixed.
//!
//! Run with `cargo run --example quickstart`.

use esds::datatypes::{Counter, CounterOp, CounterValue};
use esds::harness::{SimSystem, SystemConfig};

fn main() {
    // Three replicas, deterministic seed; channels default to 5 ms, gossip
    // every 20 ms.
    let mut sys = SimSystem::new(Counter, SystemConfig::new(3).with_seed(7));
    let alice = sys.add_client(0); // attached to replica 0
    let bob = sys.add_client(1); // attached to replica 1

    // Alice increments; nonstrict — answers in one round trip.
    let a1 = sys.submit(alice, CounterOp::Increment(5), &[], false);

    // Bob reads concurrently, nonstrict, with no constraints: the service
    // may answer from any subset of previously requested operations — his
    // replica has not heard of Alice's increment yet.
    let b1 = sys.submit(bob, CounterOp::Read, &[], false);

    // Bob also asks for a read that must follow Alice's increment: the
    // `prev` set is the paper's client-specified constraint.
    let b2 = sys.submit(bob, CounterOp::Read, &[a1], false);

    // And finally a strict read: its answer is consistent with the
    // eventual total order and will never be invalidated.
    let b3 = sys.submit(bob, CounterOp::Read, &[], true);

    sys.run_until_quiescent();

    println!("increment           -> {:?}", sys.response(a1));
    println!(
        "concurrent read     -> {:?} (transiently stale is legal)",
        sys.response(b1)
    );
    println!(
        "read after inc      -> {:?} (prev constraint honoured)",
        sys.response(b2)
    );
    println!(
        "strict read         -> {:?} (eventual-order value)",
        sys.response(b3)
    );

    // The constraint-ordered read must have seen the increment.
    assert_eq!(sys.response(b2), Some(&CounterValue::Count(5)));

    // All replicas converged to the same order and state.
    let orders = sys.local_orders();
    let states = sys.replica_states();
    esds::spec::check_converged(&orders, &states).expect("replicas converged");
    println!("\nconverged state at every replica: {}", states[0]);

    // Latency per class, echoing the paper's Theorem 9.3 classes.
    for (class, mut h) in sys.latency_by_class() {
        println!("{class:?}: {}", h.summary());
    }
}

//! A replicated bank account: the canonical mixed-consistency workload.
//!
//! Deposits commute, so ATMs issue them *nonstrict* — they are answered
//! from the local replica at gossip-free latency. A withdrawal's admission
//! decision ("sufficient funds?") must never be reversed, so ATMs issue
//! withdrawals *strict*: the response waits until the operation is stable
//! (totally ordered with a fixed prefix, paper §5), making the decision
//! consistent with the eventual total order (Theorem 5.8).
//!
//! The example also shows the hazard the paper's semantics make precise:
//! a *nonstrict* withdrawal can be answered from a replica that has not
//! yet seen a racing withdrawal, and the answer may disagree with the
//! eventual order — fine for a toy, fatal for a bank.
//!
//! Run with `cargo run --example bank_atm`.

use esds::datatypes::{Bank, BankOp, BankValue};
use esds::harness::{OpClass, SimSystem, SystemConfig};

fn main() {
    let cfg = SystemConfig::new(3).with_seed(11).with_tracking();
    let mut sys = SimSystem::new(Bank, cfg);

    // Two ATMs in different cities, each attached to a different replica.
    let atm_east = sys.add_client(0);
    let atm_west = sys.add_client(1);

    // Payday: lots of commuting deposits, all nonstrict.
    let mut deposits = Vec::new();
    for _ in 0..10 {
        deposits.push(sys.submit(atm_east, BankOp::Deposit(10), &[], false));
        deposits.push(sys.submit(atm_west, BankOp::Deposit(5), &[], false));
    }
    sys.run_until_quiescent();
    println!("20 nonstrict deposits answered; balance should reach 150");

    // A strict audit pinned after every deposit sees exactly 150.
    let audit = sys.submit(atm_east, BankOp::Balance, &deposits, true);
    sys.run_until_quiescent();
    assert_eq!(sys.response(audit), Some(&BankValue::Balance(150)));
    println!("strict audit: balance = 150");

    // Two ATMs race to withdraw 100 from the 150 balance. Both strict:
    // the service serializes them; both may be admitted only because
    // 150 ≥ 100 holds for the first and the second sees 50 < 100.
    let w_east = sys.submit(atm_east, BankOp::Withdraw(100), &[audit], true);
    let w_west = sys.submit(atm_west, BankOp::Withdraw(100), &[audit], true);
    sys.run_until_quiescent();

    let east = sys.response(w_east).cloned();
    let west = sys.response(w_west).cloned();
    println!("strict withdrawals: east={east:?}, west={west:?}");
    let admitted = [&east, &west]
        .iter()
        .filter(|v| matches!(v, Some(BankValue::Withdrawn(true))))
        .count();
    assert_eq!(
        admitted, 1,
        "exactly one 100-withdrawal fits in a 150 balance"
    );

    // The final strict balance reflects the single admitted withdrawal.
    let closing = sys.submit(atm_east, BankOp::Balance, &[w_east, w_west], true);
    sys.run_until_quiescent();
    assert_eq!(sys.response(closing), Some(&BankValue::Balance(50)));
    println!("closing balance = 50 — the double-spend was refused");

    // Show the latency asymmetry the paper's trade-off predicts
    // (nonstrict deposits ≈ 2·df; strict ops pay up to 3 gossip rounds).
    for (class, hist) in sys.latency_by_class() {
        if matches!(class, OpClass::NonstrictEmptyPrev | OpClass::Strict) {
            if let Some(mean) = hist.mean() {
                println!("  {class:?}: mean latency {mean} over {} ops", hist.count());
            }
        }
    }

    let states = sys.replica_states();
    assert!(states.iter().all(|s| *s == 50));
    println!("all replicas converged to 50");
}

//! The paper's §10.3 divergence example, and the two cures.
//!
//! "Suppose an increment and a double operation are requested
//! concurrently, and are done in different orders at two replicas. If the
//! value at both replicas was initially 1, then the replica that does the
//! increment first will have a final value of 4, while the replica that
//! does the double first will have a final value of 3."
//!
//! In an *eventually-serializable* service this divergence is transient:
//! the minimum-label order wins and both replicas converge — that is the
//! paper's core improvement over lazy replication without convergence. The
//! cures for clients that cannot tolerate even transient disagreement:
//! (1) order the conflicting pair with `prev`, or (2) make the dependent
//! read strict.
//!
//! Run with `cargo run --example increment_double`.

use esds::alg::SafeSubmitter;
use esds::datatypes::{Counter, CounterOp, CounterValue};
use esds::harness::{SimSystem, SystemConfig};

fn main() {
    // --- Act 1: concurrent inc & double, transient divergence. ---------
    let mut sys = SimSystem::new(Counter, SystemConfig::new(2).with_seed(3));
    let left = sys.add_client(0); // replica 0
    let right = sys.add_client(1); // replica 1

    // Start from 1.
    let seed_op = sys.submit(left, CounterOp::Increment(1), &[], false);
    sys.run_until_quiescent();

    // Concurrent conflicting updates at different replicas.
    sys.submit(left, CounterOp::Increment(1), &[seed_op], false);
    sys.submit(right, CounterOp::Double, &[seed_op], false);

    // Peek *before* gossip settles: reads at each replica may disagree.
    let peek_l = sys.submit(left, CounterOp::Read, &[], false);
    let peek_r = sys.submit(right, CounterOp::Read, &[], false);
    sys.run_for(esds::sim::SimDuration::from_millis(12)); // < gossip interval
    println!("transient read at r0: {:?}", sys.response(peek_l));
    println!("transient read at r1: {:?}", sys.response(peek_r));

    // Let gossip finish: the labels converge to one total order.
    sys.run_until_quiescent();
    let states = sys.replica_states();
    println!(
        "after convergence both replicas hold: {:?} (no eternal 3-vs-4 split)",
        states
    );
    assert_eq!(
        states[0], states[1],
        "eventual serializability restores agreement"
    );

    // --- Act 2: the SafeUsers discipline orders conflicts up front. ----
    let mut sys = SimSystem::new(Counter, SystemConfig::new(2).with_seed(4));
    let c0 = sys.add_client(0);
    let c1 = sys.add_client(1);
    let mut safe = SafeSubmitter::new(Counter);

    let ops = [
        (c0, CounterOp::Increment(1)),
        (c1, CounterOp::Double),
        (c0, CounterOp::Double),
        (c1, CounterOp::Increment(3)),
    ];
    let mut issued = Vec::new();
    for (client, op) in ops {
        let prev = safe.prev_for(&op);
        let id = sys.submit(
            client,
            op.clone(),
            &prev.iter().copied().collect::<Vec<_>>(),
            false,
        );
        safe.record_with_prev(id, op.clone(), prev);
        issued.push(id);
    }
    // Strictness fixes the read's value in the eventual order; to also see
    // *these four* updates it must name them in `prev` (strict ≠ "sees all
    // earlier submissions" — ordering against specific ops is always the
    // client's `prev` constraint).
    let audit = sys.submit(c0, CounterOp::Read, &issued, true);
    sys.run_until_quiescent();

    // ((0+1)·2)·2+3 = 7 — every replica and the audited read agree.
    println!(
        "SafeUsers workload: strict audited read = {:?}, states = {:?}",
        sys.response(audit),
        sys.replica_states()
    );
    assert_eq!(sys.response(audit), Some(&CounterValue::Count(7)));
}

//! A real TCP deployment: replica servers on localhost sockets, framed
//! binary wire protocol, gossip over long-lived peer connections — the
//! reproduction's analogue of Cheiner's MPI-on-workstations system
//! (paper §11.1).
//!
//! The replicas here run the *same* state machines as the simulator and
//! the threaded runtime; only the transport differs. The example runs a
//! small directory-service workload (the paper's §11.2 application) over
//! three replica processes' worth of sockets, once with plain gossip and
//! once with the §10.2 summarized-gossip encoding.
//!
//! Run with `cargo run --example tcp_cluster`.

use std::time::Duration;

use esds::datatypes::{Directory, DirectoryOp, DirectoryValue};
use esds::wire::{TcpCluster, TcpClusterConfig};

fn main() {
    for summarized in [false, true] {
        let mut config = TcpClusterConfig::new(3);
        if summarized {
            config = config.with_summarized_gossip();
        }
        println!(
            "--- launching 3-replica TCP cluster ({} gossip) ---",
            if summarized { "summarized" } else { "plain" }
        );
        run_directory_workload(config);
    }
}

fn run_directory_workload(config: TcpClusterConfig) {
    let mut cluster = TcpCluster::launch(Directory, config);
    println!(
        "replicas listening on {:?}",
        cluster.addrs().iter().map(|a| a.port()).collect::<Vec<_>>()
    );

    let mut admin = cluster.client();
    let mut user = cluster.client();

    // The §11.2 idiom: attribute writes carry the name-creation operation
    // in their prev set, so no replica ever applies them out of order.
    let create = admin.submit(DirectoryOp::create("mail.example.org"), &[], false);
    let set_a = admin.submit(
        DirectoryOp::set_attr("mail.example.org", "A", "203.0.113.25"),
        &[create],
        false,
    );
    let set_mx = admin.submit(
        DirectoryOp::set_attr("mail.example.org", "MX", "10"),
        &[create],
        false,
    );
    for id in [create, set_a, set_mx] {
        admin
            .await_response(id, Duration::from_secs(10))
            .expect("admin op answered");
    }
    println!("admin: created name and set A/MX attributes (nonstrict, causal prev)");

    // Another client reads through a different replica. A nonstrict read
    // with the causal prev is answered as soon as gossip delivers the
    // writes to its replica.
    let lookup = user.submit(
        DirectoryOp::Lookup {
            name: "mail.example.org".into(),
            attr: "A".into(),
        },
        &[set_a],
        false,
    );
    let got = user
        .await_response(lookup, Duration::from_secs(10))
        .expect("lookup answered");
    assert_eq!(got, DirectoryValue::Attr(Some("203.0.113.25".into())));
    println!("user: causal lookup of A record → 203.0.113.25");

    // A strict listing is consistent with the eventual total order.
    let listing = user.submit(DirectoryOp::ListNames, &[create], true);
    let got = user
        .await_response(listing, Duration::from_secs(30))
        .expect("strict listing answered");
    assert_eq!(got, DirectoryValue::Names(vec!["mail.example.org".into()]));
    println!("user: strict ListNames → [mail.example.org]");

    let reps = cluster.shutdown();
    let states: Vec<_> = reps.iter().map(|r| r.current_state()).collect();
    assert!(states.windows(2).all(|w| w[0] == w[1]), "replicas diverged");
    println!("cluster shut down; all {} replicas converged\n", reps.len());
}

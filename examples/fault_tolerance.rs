//! Fault tolerance (paper §9.3): message loss, duplication, a replica
//! crash with volatile memory, and recovery from stable storage — all
//! without violating safety, with liveness restored once the failures end
//! (Theorem 9.4).
//!
//! Run with `cargo run --example fault_tolerance`.

use esds::core::ReplicaId;
use esds::datatypes::{Counter, CounterOp, CounterValue};
use esds::harness::{FaultEvent, SimSystem, SystemConfig};
use esds::sim::{ChannelConfig, SimDuration, SimTime};

fn main() {
    // Lossy, duplicating channels; front ends retry every 40 ms
    // (the paper's footnotes 3–4: retries are legal and replicas tolerate
    // duplicates).
    let lossy = ChannelConfig::fixed(SimDuration::from_millis(5))
        .with_loss(0.25)
        .with_dup(0.15);
    let cfg = SystemConfig::new(3)
        .with_seed(2024)
        .with_replica(esds::alg::ReplicaConfig::basic())
        .with_channels(lossy, lossy)
        .with_retry(SimDuration::from_millis(40));
    let mut sys = SimSystem::new(Counter, cfg);

    let c0 = sys.add_client(0);
    let c1 = sys.add_client(1);

    // Phase 1: work under message loss and duplication.
    for _ in 0..10 {
        sys.submit(c0, CounterOp::Increment(1), &[], false);
        sys.submit(c1, CounterOp::Increment(1), &[], false);
    }
    sys.run_until_converged(SimTime::from_millis(60_000))
        .expect("retries defeat loss");
    println!("phase 1: 20 increments completed under 25% loss / 15% duplication");

    // Phase 2: crash replica 1 (volatile memory lost; only the label
    // counter and locally-generated minimum labels survive, §9.3).
    let crash_at = sys.now() + SimDuration::from_millis(10);
    sys.schedule_fault(crash_at, FaultEvent::Crash(ReplicaId(1)));
    // Clients keep working against the surviving replicas.
    for _ in 0..5 {
        sys.submit(c0, CounterOp::Increment(1), &[], false);
    }
    sys.run_for(SimDuration::from_millis(300));
    println!("phase 2: replica 1 crashed; replica 0 kept serving its clients");

    // Phase 3: recover. The replica waits for gossip from every peer
    // before resuming, then the whole system converges again.
    sys.schedule_fault(
        sys.now() + SimDuration::from_millis(10),
        FaultEvent::Recover(ReplicaId(1)),
    );
    let strict_read = sys.submit(c0, CounterOp::Read, &[], true);
    sys.run_until_converged(SimTime::from_millis(120_000))
        .expect("recovery restores liveness");

    println!(
        "phase 3: recovered; strict read sees {:?} (= 25 increments)",
        sys.response(strict_read)
    );
    assert_eq!(sys.response(strict_read), Some(&CounterValue::Count(25)));

    let states = sys.replica_states();
    assert!(
        states.iter().all(|s| *s == 25),
        "replicas diverged: {states:?}"
    );
    println!("all replicas converged to 25 — crash, loss, and duplication were absorbed");
}

//! # esds-mc
//!
//! Bounded explicit-state model checking for the eventually-serializable
//! data service. The paper proves its results with invariants and forward
//! simulations (Sections 5, 7, 8); this crate is the executable analogue,
//! exhaustively enumerating every reachable state of bounded
//! configurations and discharging the same proof obligations in each:
//!
//! * [`explore_spec`] — exhaustive exploration of `ESDS-I`/`ESDS-II`
//!   (paper §5) with the other automaton as a *shadow*: it validates
//!   Invariants 5.2–5.6 in every state and the §5.3 equivalence in both
//!   directions (trace inclusion of `ESDS-I` in `ESDS-II`; the Fig. 4
//!   gap-filling simulation of `ESDS-II` by `ESDS-I`);
//! * [`explore_alg`] — exhaustive exploration of every message schedule
//!   of a small algorithm deployment (paper §6), checking the Section 7/8
//!   invariants in every state and the eventual-total-order guarantees at
//!   every fully-stable terminal state.
//!
//! Unlike the randomized executions driven by `esds-harness`, these
//! explorations cover **all** interleavings of their bounded scopes — the
//! strongest executable evidence short of the paper's proofs. Scopes are
//! deliberately tiny (2 replicas, 2–3 operations); the state count grows
//! exponentially, which is exactly the trade bounded model checking makes.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod alg_explorer;
mod spec_explorer;

pub use alg_explorer::{explore_alg, AlgCheckReport, AlgScope};
pub use spec_explorer::{explore_spec, SpecCheckReport, SpecScope};

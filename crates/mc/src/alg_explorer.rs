//! Bounded exhaustive exploration of the *algorithm* (paper §6).
//!
//! The simulator and the threaded runtime each exercise one schedule per
//! run; this explorer enumerates **all** schedules of a small
//! configuration — every interleaving of request deliveries, gossip
//! sends, and gossip deliveries, with channels as unordered multisets
//! (the paper assumes reliable but non-FIFO channels) — and checks the
//! Section 7/8 invariants in every reachable state via
//! [`esds_alg::invariants::check_all`].
//!
//! Terminal states (everything delivered, gossip budget exhausted) are
//! additionally checked for the paper's end-state guarantees: once every
//! operation is done at every replica with agreed labels, replicas agree
//! on the eventual total order (the minlabel order), every strict
//! response equals the value in that order, and all replicas converge to
//! the same object state.
//!
//! ## Bounding
//!
//! Channels never lose messages and delivery is the only source of
//! nondeterminism, so the model is finite once gossip is bounded: each
//! ordered replica pair `(r, r')` may send at most `gossip_budget`
//! messages along any one path. With the default `Full` gossip strategy a
//! budget of 3 suffices for two replicas to reach stability (done →
//! stable → learn-stable), matching the three gossip rounds in the
//! Theorem 9.3 bound `2·df + 3·(g + dg)`.

use std::collections::{BTreeMap, BTreeSet, HashSet, VecDeque};

use esds_alg::{check_all, GossipMsg, Replica, ReplicaConfig, SystemView};
use esds_core::{OpDescriptor, OpId, ReplicaId, SerialDataType};

/// A bounded algorithm configuration for exhaustive exploration.
#[derive(Clone, Debug)]
pub struct AlgScope<T: SerialDataType> {
    /// The serial data type.
    pub dt: T,
    /// Number of replicas (keep at 2 for exhaustive runs).
    pub n_replicas: usize,
    /// Operations with their relay replica, submitted in this order.
    pub ops: Vec<(OpDescriptor<T::Operator>, ReplicaId)>,
    /// Max gossip messages per ordered replica pair per path.
    pub gossip_budget: usize,
    /// Per-pair overrides of [`gossip_budget`](Self::gossip_budget), keyed
    /// by `(from, to)`. Setting some pairs to 0 restricts the gossip
    /// topology (e.g. a star), which tames the schedule explosion for
    /// 3-replica scopes while still reaching full stability.
    pub pair_budgets: BTreeMap<(u32, u32), usize>,
    /// How many times each in-flight message may be delivered (1 = exactly
    /// once; 2+ explores the §9.3 duplication tolerance: "duplicate
    /// messages do not compromise any safety properties").
    pub deliveries_per_message: u8,
    /// Exploration cap on distinct states.
    pub max_states: usize,
    /// Replica state-machine configuration.
    pub replica: ReplicaConfig,
}

impl<T: SerialDataType> AlgScope<T> {
    /// A two-replica scope with gossip budget 3 and a 200 000-state cap.
    pub fn new(dt: T, ops: Vec<(OpDescriptor<T::Operator>, ReplicaId)>) -> Self {
        AlgScope {
            dt,
            n_replicas: 2,
            ops,
            gossip_budget: 3,
            pair_budgets: BTreeMap::new(),
            deliveries_per_message: 1,
            max_states: 200_000,
            replica: ReplicaConfig::default(),
        }
    }

    /// Restricts gossip to a star around `hub`: spoke↔hub pairs get
    /// `budget`, spoke↔spoke pairs get 0. Full stability stays reachable
    /// (stability knowledge relays through the hub's `S` sets) with far
    /// fewer schedules than the complete topology.
    #[must_use]
    pub fn with_star_gossip(mut self, hub: ReplicaId, budget: usize) -> Self {
        for from in 0..self.n_replicas as u32 {
            for to in 0..self.n_replicas as u32 {
                if from == to {
                    continue;
                }
                let through_hub = from == hub.0 || to == hub.0;
                self.pair_budgets
                    .insert((from, to), if through_hub { budget } else { 0 });
            }
        }
        self
    }

    /// Explores duplicate deliveries: every in-flight message may be
    /// delivered up to `n` times (paper §9.3).
    #[must_use]
    pub fn with_duplicates(mut self, n: u8) -> Self {
        assert!(n >= 1, "messages must be deliverable at least once");
        self.deliveries_per_message = n;
        self
    }
}

/// Outcome of an exhaustive algorithm exploration.
#[derive(Clone, Debug)]
pub struct AlgCheckReport {
    /// Distinct states visited.
    pub states: usize,
    /// Transitions executed.
    pub transitions: usize,
    /// Terminal states reached (no action enabled).
    pub terminals: usize,
    /// Terminal states in which every operation was done at every replica
    /// with agreed labels — the eventual order is fixed there, so these
    /// get the full convergence and strict-response checks.
    pub converged_terminals: usize,
    /// Whether `max_states` cut the exploration short.
    pub truncated: bool,
    /// All violations found, with the schedule that exposed each.
    pub violations: Vec<String>,
}

impl AlgCheckReport {
    /// Whether the exploration found no violations.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

#[derive(Clone)]
struct Node<T: SerialDataType> {
    replicas: Vec<Replica<T>>,
    /// Requests in flight: (scope op index, remaining deliveries).
    requests: Vec<(usize, u8)>,
    /// Gossip in flight: (destination, message, remaining deliveries).
    gossip: Vec<(ReplicaId, GossipMsg<T::Operator>, u8)>,
    /// Gossip messages sent per ordered pair (from, to) along this path.
    sent: BTreeMap<(u32, u32), usize>,
    /// Responses observed per operation (all deliveries, in order).
    responses: BTreeMap<OpId, Vec<T::Value>>,
    /// Next scope op to submit.
    submitted: usize,
    trace: Vec<String>,
}

/// Exhaustively explores every schedule of `scope`.
///
/// # Panics
///
/// Panics if the scope names a relay replica outside `0..n_replicas`.
pub fn explore_alg<T>(scope: AlgScope<T>) -> AlgCheckReport
where
    T: SerialDataType + Clone,
{
    for (_, r) in &scope.ops {
        assert!(
            (r.0 as usize) < scope.n_replicas,
            "relay replica out of range"
        );
    }
    let mut report = AlgCheckReport {
        states: 0,
        transitions: 0,
        terminals: 0,
        converged_terminals: 0,
        truncated: false,
        violations: Vec::new(),
    };
    let root = Node {
        replicas: (0..scope.n_replicas)
            .map(|i| {
                Replica::new(
                    scope.dt.clone(),
                    ReplicaId(i as u32),
                    scope.n_replicas,
                    scope.replica,
                )
            })
            .collect(),
        requests: Vec::new(),
        gossip: Vec::new(),
        sent: BTreeMap::new(),
        responses: BTreeMap::new(),
        submitted: 0,
        trace: Vec::new(),
    };
    let mut visited: HashSet<String> = HashSet::new();
    visited.insert(fingerprint(&root));
    let mut frontier: VecDeque<Node<T>> = VecDeque::from([root]);

    while let Some(node) = frontier.pop_front() {
        report.states += 1;
        if report.states >= scope.max_states {
            report.truncated = true;
            break;
        }
        check_invariants(&scope, &node, &mut report);
        let succ = successors(&scope, &node);
        if succ.is_empty() {
            report.terminals += 1;
            check_terminal(&scope, &node, &mut report);
            continue;
        }
        for (label, mut next) in succ {
            report.transitions += 1;
            next.trace.push(label);
            let fp = fingerprint(&next);
            if visited.insert(fp) {
                frontier.push_back(next);
            }
        }
    }
    report
}

fn successors<T>(scope: &AlgScope<T>, node: &Node<T>) -> Vec<(String, Node<T>)>
where
    T: SerialDataType + Clone,
{
    let mut out = Vec::new();

    // submit(next op): the front end relays it (paper Fig. 6).
    if node.submitted < scope.ops.len() {
        let (desc, _) = &scope.ops[node.submitted];
        let mut next = node.clone();
        next.requests
            .push((node.submitted, scope.deliveries_per_message));
        next.submitted += 1;
        out.push((format!("submit({})", desc.id), next));
    }

    // deliver a request (any in-flight one: channels are not FIFO). With
    // duplication enabled, a copy stays in flight until its deliveries
    // are used up.
    for (slot, (op_idx, _)) in node.requests.iter().enumerate() {
        let (desc, dest) = &scope.ops[*op_idx];
        let mut next = node.clone();
        next.requests[slot].1 -= 1;
        if next.requests[slot].1 == 0 {
            next.requests.swap_remove(slot);
        }
        let effects = next.replicas[dest.0 as usize].on_request(desc.clone());
        for e in effects {
            next.responses
                .entry(e.msg.id)
                .or_default()
                .push(e.msg.value);
        }
        out.push((format!("deliver_req({}→{dest})", desc.id), next));
    }

    // deliver a gossip message.
    for slot in 0..node.gossip.len() {
        let mut next = node.clone();
        next.gossip[slot].2 -= 1;
        let (dest, msg) = if next.gossip[slot].2 == 0 {
            let (dest, msg, _) = next.gossip.swap_remove(slot);
            (dest, msg)
        } else {
            let (dest, msg, _) = &next.gossip[slot];
            (*dest, msg.clone())
        };
        let effects = next.replicas[dest.0 as usize].on_gossip(msg);
        for e in effects {
            next.responses
                .entry(e.msg.id)
                .or_default()
                .push(e.msg.value);
        }
        out.push((format!("deliver_gossip(→{dest})"), next));
    }

    // send gossip r → r' (budget-bounded).
    for from in 0..scope.n_replicas as u32 {
        for to in 0..scope.n_replicas as u32 {
            if from == to {
                continue;
            }
            let budget = scope
                .pair_budgets
                .get(&(from, to))
                .copied()
                .unwrap_or(scope.gossip_budget);
            let used = node.sent.get(&(from, to)).copied().unwrap_or(0);
            if used >= budget {
                continue;
            }
            let mut next = node.clone();
            let msg = next.replicas[from as usize].make_gossip(ReplicaId(to));
            *next.sent.entry((from, to)).or_insert(0) += 1;
            next.gossip
                .push((ReplicaId(to), msg, scope.deliveries_per_message));
            out.push((format!("gossip(r{from}→r{to})"), next));
        }
    }

    out
}

/// Builds the §6.4 bird's-eye view and runs every Section 7/8 invariant.
fn check_invariants<T>(scope: &AlgScope<T>, node: &Node<T>, report: &mut AlgCheckReport)
where
    T: SerialDataType + Clone,
{
    let requested: BTreeMap<OpId, OpDescriptor<T::Operator>> = scope.ops[..node.submitted]
        .iter()
        .map(|(d, _)| (d.id, d.clone()))
        .collect();
    let responded: BTreeSet<OpId> = node.responses.keys().copied().collect();
    let waiting: BTreeSet<OpId> = requested
        .keys()
        .filter(|id| !responded.contains(id))
        .copied()
        .collect();
    let view = SystemView {
        replicas: node.replicas.iter().collect(),
        gossip_in_flight: node
            .gossip
            .iter()
            .map(|(dest, msg, _)| (*dest, msg.clone()))
            .collect(),
        requested,
        waiting,
        responded,
    };
    for v in check_all(&view) {
        report
            .violations
            .push(format!("{v} after {:?}", node.trace));
    }
}

/// End-state guarantees on a terminal node (see module docs).
fn check_terminal<T>(scope: &AlgScope<T>, node: &Node<T>, report: &mut AlgCheckReport)
where
    T: SerialDataType + Clone,
{
    let all_ids: BTreeSet<OpId> = scope.ops.iter().map(|(d, _)| d.id).collect();
    let all_done = node.submitted == scope.ops.len()
        && node
            .replicas
            .iter()
            .all(|r| all_ids.iter().all(|id| r.done_here().contains(id)));
    if !all_done {
        return; // the gossip budget ended this path early; nothing to check
    }
    // The eventual order is fixed once every replica holds the same
    // (minimum) label for every operation.
    let labels_agree = all_ids.iter().all(|id| {
        let l0 = node.replicas[0].labels().get(*id);
        node.replicas.iter().all(|r| r.labels().get(*id) == l0)
    });
    if !labels_agree {
        return;
    }
    report.converged_terminals += 1;

    // The eventual total order: every replica agrees (labels converged).
    let orders: BTreeSet<Vec<OpId>> = node.replicas.iter().map(|r| r.local_order()).collect();
    if orders.len() != 1 {
        report.violations.push(format!(
            "replicas disagree on the eventual order: {orders:?} after {:?}",
            node.trace
        ));
        return;
    }
    let order = orders.into_iter().next().expect("one order");

    // All replicas converge to the same object state.
    let states: Vec<T::State> = node.replicas.iter().map(|r| r.current_state()).collect();
    if states.windows(2).any(|w| w[0] != w[1]) {
        report.violations.push(format!(
            "replica states diverged at a fully-stable terminal after {:?}",
            node.trace
        ));
    }

    // Strict responses match the eventual-order values (Theorem 5.8).
    let by_id: BTreeMap<OpId, &OpDescriptor<T::Operator>> =
        scope.ops.iter().map(|(d, _)| (d.id, d)).collect();
    let mut state = scope.dt.initial_state();
    for id in &order {
        let desc = by_id[id];
        let (next_state, value) = scope.dt.apply(&state, &desc.op);
        state = next_state;
        if desc.strict {
            if let Some(got) = node.responses.get(id) {
                for v in got {
                    if *v != value {
                        report.violations.push(format!(
                            "strict {id} answered {v:?} but the eventual order \
                             gives {value:?} after {:?}",
                            node.trace
                        ));
                    }
                }
            }
        }
    }
}

/// Canonical fingerprint of a node. Stats are deliberately excluded (they
/// count messages, which would make every path distinct); the label
/// generator is captured through the label map and the replicas'
/// observable state.
fn fingerprint<T: SerialDataType>(node: &Node<T>) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = write!(s, "{}|{:?}|", node.submitted, node.requests);
    for r in &node.replicas {
        let labels: Vec<(OpId, esds_core::Label)> = r.labels().iter().collect();
        let done: Vec<&BTreeSet<OpId>> = (0..node.replicas.len())
            .map(|i| r.done(ReplicaId(i as u32)))
            .collect();
        let stable: Vec<&BTreeSet<OpId>> = (0..node.replicas.len())
            .map(|i| r.stable(ReplicaId(i as u32)))
            .collect();
        let _ = write!(
            s,
            "R{}:{:?}{:?}{:?}{:?}{:?};",
            r.id(),
            r.pending(),
            r.rcvd().keys().collect::<Vec<_>>(),
            done,
            stable,
            labels,
        );
    }
    // Gossip multiset: order-independent fingerprint via sorted rendering.
    let mut gossip: Vec<String> = node
        .gossip
        .iter()
        .map(|(dest, m, copies)| {
            format!(
                "{dest}x{copies}<{:?}{:?}{:?}{:?}",
                m.rcvd.iter().map(|d| d.id).collect::<Vec<_>>(),
                m.done,
                m.labels,
                m.stable
            )
        })
        .collect();
    gossip.sort();
    let _ = write!(s, "G{gossip:?}|{:?}|{:?}", node.sent, responses_fp(node));
    s
}

fn responses_fp<T: SerialDataType>(node: &Node<T>) -> String {
    let mut out = String::new();
    for (id, vs) in &node.responses {
        use std::fmt::Write;
        let _ = write!(out, "{id}={vs:?};");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use esds_core::ClientId;

    /// Inc/read counter.
    #[derive(Clone, Copy, Debug)]
    struct Ctr;
    #[derive(Clone, PartialEq, Eq, Debug)]
    enum Op {
        Inc,
        Read,
    }
    impl SerialDataType for Ctr {
        type State = i64;
        type Operator = Op;
        type Value = i64;
        fn initial_state(&self) -> i64 {
            0
        }
        fn apply(&self, s: &i64, op: &Op) -> (i64, i64) {
            match op {
                Op::Inc => (s + 1, s + 1),
                Op::Read => (*s, *s),
            }
        }
    }

    fn id(c: u32, s: u64) -> OpId {
        OpId::new(ClientId(c), s)
    }

    #[test]
    fn single_op_all_schedules() {
        let scope = AlgScope::new(
            Ctr,
            vec![(OpDescriptor::new(id(0, 0), Op::Inc), ReplicaId(0))],
        );
        let report = explore_alg(scope);
        assert!(report.passed(), "{:#?}", report.violations);
        assert!(!report.truncated);
        assert!(report.terminals > 0);
        assert!(
            report.converged_terminals > 0,
            "budget 3 must reach full stability on some schedule"
        );
    }

    #[test]
    fn two_ops_different_replicas_all_schedules() {
        let mut scope = AlgScope::new(
            Ctr,
            vec![
                (OpDescriptor::new(id(0, 0), Op::Inc), ReplicaId(0)),
                (OpDescriptor::new(id(1, 0), Op::Inc), ReplicaId(1)),
            ],
        );
        scope.gossip_budget = 2;
        let report = explore_alg(scope);
        assert!(report.passed(), "{:#?}", report.violations);
        assert!(!report.truncated, "explored {} states", report.states);
        assert!(report.states > 500);
    }

    #[test]
    fn strict_read_all_schedules() {
        // A strict read racing an increment from the other replica: in
        // every schedule, any response it gets must match the eventual
        // order (checked at fully-stable terminals).
        let mut scope = AlgScope::new(
            Ctr,
            vec![
                (OpDescriptor::new(id(0, 0), Op::Inc), ReplicaId(0)),
                (
                    OpDescriptor::new(id(1, 0), Op::Read).with_strict(true),
                    ReplicaId(1),
                ),
            ],
        );
        scope.gossip_budget = 3;
        scope.max_states = 400_000;
        let report = explore_alg(scope);
        assert!(report.passed(), "{:#?}", report.violations);
        assert!(report.converged_terminals > 0);
    }

    #[test]
    fn three_replicas_all_schedules() {
        // Three replicas exercise the multi-peer stability machinery:
        // stable-at-r requires done at *all three*, learned through two
        // distinct gossip paths that the explorer interleaves freely.
        let mut scope = AlgScope::new(
            Ctr,
            vec![(
                OpDescriptor::new(id(0, 0), Op::Inc).with_strict(true),
                ReplicaId(0),
            )],
        );
        scope.n_replicas = 3;
        scope.max_states = 600_000;
        let scope = scope.with_star_gossip(ReplicaId(0), 2);
        let report = explore_alg(scope);
        assert!(report.passed(), "{:#?}", report.violations);
        assert!(!report.truncated, "truncated at {} states", report.states);
        assert!(
            report.converged_terminals > 0,
            "budget 2 reaches full stability on some 3-replica schedule"
        );
    }

    #[test]
    fn duplicated_messages_preserve_safety() {
        // §9.3: "duplicate messages do not compromise any safety
        // properties" — here verified over ALL schedules in which every
        // message (request and gossip) may arrive twice.
        let mut scope = AlgScope::new(
            Ctr,
            vec![
                (OpDescriptor::new(id(0, 0), Op::Inc), ReplicaId(0)),
                (OpDescriptor::new(id(1, 0), Op::Read), ReplicaId(1)),
            ],
        )
        .with_duplicates(2);
        scope.gossip_budget = 2;
        scope.max_states = 600_000;
        let report = explore_alg(scope);
        assert!(report.passed(), "{:#?}", report.violations);
        assert!(!report.truncated, "truncated at {} states", report.states);
    }

    #[test]
    fn prev_constraint_all_schedules() {
        let mut scope = AlgScope::new(
            Ctr,
            vec![
                (OpDescriptor::new(id(0, 0), Op::Inc), ReplicaId(0)),
                (
                    OpDescriptor::new(id(0, 1), Op::Read).with_prev([id(0, 0)]),
                    ReplicaId(1),
                ),
            ],
        );
        scope.gossip_budget = 2;
        let report = explore_alg(scope);
        assert!(report.passed(), "{:#?}", report.violations);
        // The read relayed to r1 must wait for gossip to deliver its prev:
        // every response it produced anywhere must be 1, never 0.
        // (Covered by invariant 7.10/7.16 checks; assert exploration size
        // as a sanity floor.)
        assert!(report.states > 200);
    }
}

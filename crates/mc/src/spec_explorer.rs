//! Bounded exhaustive exploration of the specification automata.
//!
//! `ESDS-I` and `ESDS-II` (paper Figs. 2–3) are small enough to model
//! check directly for bounded workloads: this module enumerates *every*
//! reachable state of the automaton under an action-bounding policy (see
//! [`SpecScope`]), and at each state
//!
//! 1. evaluates Invariants 5.2–5.6, and
//! 2. drives a *shadow* copy of the other automaton through the same
//!    action, realizing the two halves of the §5.3 equivalence:
//!    - primary `ESDS-I`, shadow `ESDS-II`: every `ESDS-I` action must be
//!      accepted verbatim ("every execution of ESDS-I is an execution of
//!      ESDS-II");
//!    - primary `ESDS-II`, shadow `ESDS-I`: a `stabilize(x)` with gaps is
//!      mapped to the *sequence* of `ESDS-I` stabilizations of every
//!      unstable predecessor in prefix order, then `x` — exactly the
//!      forward simulation of Fig. 4 — and every step must be accepted.
//!
//! A rejected shadow action or a violated invariant is reported as a
//! counterexample with the action trace that reached it.
//!
//! ## Action bounding
//!
//! `enter`'s `new-po` parameter ranges over an infinite set; the explorer
//! considers the *minimal* extension (old `po` + the client-specified and
//! stability constraints) plus every single-edge refinement against an
//! incomparable entered operation. Multi-edge refinements are reachable
//! through subsequent `add_constraints` actions (also enumerated one edge
//! at a time), so the reachable *state* set is unaffected by the bounding
//! — only path multiplicity is reduced.

use std::collections::{BTreeSet, HashSet, VecDeque};

use esds_core::{valset, Digraph, OpDescriptor, OpId, SerialDataType};
use esds_spec::{EsdsSpec, SpecVariant};

/// A bounded workload for spec exploration.
///
/// Keep it tiny: state counts grow roughly exponentially in the number of
/// operations. Three operations with one constraint explore in well under
/// a second; five is the practical ceiling.
#[derive(Clone, Debug)]
pub struct SpecScope<T: SerialDataType> {
    /// The serial data type.
    pub dt: T,
    /// The operations, requested in this order (so `prev` sets may only
    /// name earlier entries, per the `Users` well-formedness assumptions).
    pub ops: Vec<OpDescriptor<T::Operator>>,
    /// Exploration cap on distinct states (reported as truncation).
    pub max_states: usize,
    /// Cap on linear extensions enumerated per `calculate`.
    pub valset_cap: usize,
}

impl<T: SerialDataType> SpecScope<T> {
    /// A scope with default caps (100 000 states).
    pub fn new(dt: T, ops: Vec<OpDescriptor<T::Operator>>) -> Self {
        SpecScope {
            dt,
            ops,
            max_states: 100_000,
            valset_cap: 10_000,
        }
    }
}

/// Outcome of an exhaustive spec exploration.
#[derive(Clone, Debug)]
pub struct SpecCheckReport {
    /// Which automaton was primary.
    pub primary: SpecVariant,
    /// Distinct states visited.
    pub states: usize,
    /// Transitions executed.
    pub transitions: usize,
    /// Whether `max_states` cut the exploration short.
    pub truncated: bool,
    /// Invariant violations and shadow-simulation failures, each with the
    /// action trace that exposed it. Empty = all checks passed.
    pub violations: Vec<String>,
}

impl SpecCheckReport {
    /// Whether the exploration found no violations.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// One explored state: the primary automaton, its shadow, and how many of
/// the scope's operations have been requested.
#[derive(Clone)]
struct Node<T: SerialDataType> {
    primary: EsdsSpec<T>,
    shadow: EsdsSpec<T>,
    requested: usize,
    trace: Vec<String>,
}

/// Exhaustively explores `scope` with `primary` as the automaton under
/// test and the other variant as the shadow (see module docs).
///
/// # Examples
///
/// ```
/// use esds_core::{ClientId, OpDescriptor, OpId, SerialDataType};
/// use esds_mc::{explore_spec, SpecScope};
/// use esds_spec::SpecVariant;
///
/// #[derive(Clone)]
/// struct Reg;
/// impl SerialDataType for Reg {
///     type State = i64;
///     type Operator = i64;
///     type Value = i64;
///     fn initial_state(&self) -> i64 { 0 }
///     fn apply(&self, s: &i64, op: &i64) -> (i64, i64) { (*op, *s) }
/// }
///
/// let ops = vec![
///     OpDescriptor::new(OpId::new(ClientId(0), 0), 7),
///     OpDescriptor::new(OpId::new(ClientId(0), 1), 9).with_strict(true),
/// ];
/// let report = explore_spec(SpecScope::new(Reg, ops), SpecVariant::EsdsI);
/// assert!(report.passed());
/// assert!(report.states > 10);
/// ```
pub fn explore_spec<T>(scope: SpecScope<T>, primary: SpecVariant) -> SpecCheckReport
where
    T: SerialDataType + Clone,
{
    let shadow_variant = match primary {
        SpecVariant::EsdsI => SpecVariant::EsdsII,
        SpecVariant::EsdsII => SpecVariant::EsdsI,
    };
    let mut report = SpecCheckReport {
        primary,
        states: 0,
        transitions: 0,
        truncated: false,
        violations: Vec::new(),
    };
    let root = Node {
        primary: EsdsSpec::new(scope.dt.clone(), primary),
        shadow: EsdsSpec::new(scope.dt.clone(), shadow_variant),
        requested: 0,
        trace: Vec::new(),
    };
    let mut visited: HashSet<String> = HashSet::new();
    visited.insert(fingerprint(&root));
    let mut frontier: VecDeque<Node<T>> = VecDeque::from([root]);

    while let Some(node) = frontier.pop_front() {
        report.states += 1;
        if report.states >= scope.max_states {
            report.truncated = true;
            break;
        }
        check_state(&node, scope.valset_cap, &mut report);
        for (label, next) in successors(&scope, &node, &mut report) {
            report.transitions += 1;
            let mut next = next;
            next.trace.push(label);
            let fp = fingerprint(&next);
            if visited.insert(fp) {
                frontier.push_back(next);
            }
        }
    }
    report
}

/// Evaluates the §5.2 invariants (including the Invariant 5.6 uniqueness
/// of stable values, which is cheap at model-checking scopes) on the
/// primary automaton.
fn check_state<T>(node: &Node<T>, valset_cap: usize, report: &mut SpecCheckReport)
where
    T: SerialDataType + Clone,
{
    for v in node.primary.check_invariants() {
        report
            .violations
            .push(format!("{v} after {:?}", node.trace));
    }
    for v in node.primary.check_unique_stable_values(valset_cap) {
        report
            .violations
            .push(format!("{v} after {:?}", node.trace));
    }
}

/// Enumerates every enabled action under the bounding policy, applying it
/// to primary and shadow. Shadow rejections are recorded as violations.
fn successors<T>(
    scope: &SpecScope<T>,
    node: &Node<T>,
    report: &mut SpecCheckReport,
) -> Vec<(String, Node<T>)>
where
    T: SerialDataType + Clone,
{
    let mut out = Vec::new();

    // request(next): requests are issued in scope order (well-formedness).
    if node.requested < scope.ops.len() {
        let desc = scope.ops[node.requested].clone();
        let mut next = node.clone();
        next.primary.request(desc.clone());
        next.shadow.request(desc.clone());
        next.requested += 1;
        out.push((format!("request({})", desc.id), next));
    }

    let entered: BTreeSet<OpId> = node.primary.ops().keys().copied().collect();

    // enter(x, new-po) for waiting, unentered x with prev satisfied.
    for x in node.primary.waiting() {
        if entered.contains(&x) {
            continue;
        }
        let desc = scope
            .ops
            .iter()
            .find(|d| d.id == x)
            .expect("waiting ops come from the scope");
        if !desc.prev.iter().all(|p| entered.contains(p)) {
            continue;
        }
        for new_po in enter_po_candidates(node, desc) {
            let mut next = node.clone();
            match next.primary.enter(x, new_po.clone()) {
                Ok(()) => {}
                Err(_) => continue, // bounding generated an inapplicable po
            }
            match next.shadow.enter(x, new_po.clone()) {
                Ok(()) => {}
                Err(e) => {
                    report.violations.push(format!(
                        "shadow rejected enter({x}): {e} after {:?}",
                        node.trace
                    ));
                    continue;
                }
            }
            out.push((format!("enter({x})"), next));
        }
    }

    // add_constraints(po + one edge) for each incomparable entered pair.
    let ids: Vec<OpId> = entered.iter().copied().collect();
    for (i, a) in ids.iter().enumerate() {
        for b in ids.iter().skip(i + 1) {
            if node.primary.po().comparable(a, b) {
                continue;
            }
            for (lo, hi) in [(*a, *b), (*b, *a)] {
                let mut po = node.primary.po().clone();
                po.add_edge(lo, hi);
                if !po.is_strict_partial_order() {
                    continue;
                }
                let mut next = node.clone();
                if next.primary.add_constraints(po.clone()).is_err() {
                    continue;
                }
                if let Err(e) = next.shadow.add_constraints(po) {
                    report.violations.push(format!(
                        "shadow rejected add_constraints({lo}≺{hi}): {e} after {:?}",
                        node.trace
                    ));
                    continue;
                }
                out.push((format!("constrain({lo}≺{hi})"), next));
            }
        }
    }

    // stabilize(x) for each eligible x.
    for x in &entered {
        if node.primary.stabilized().contains(x) {
            continue;
        }
        let mut next = node.clone();
        if next.primary.stabilize(*x).is_err() {
            continue;
        }
        if let Err(e) = apply_shadow_stabilize(&mut next.shadow, *x) {
            report.violations.push(format!(
                "shadow rejected stabilize({x}): {e} after {:?}",
                node.trace
            ));
            continue;
        }
        out.push((format!("stabilize({x})"), next));
    }

    // calculate(x, v) for every waiting entered x and every legal value.
    for x in node.primary.waiting() {
        if !entered.contains(&x) {
            continue;
        }
        let values = valset(
            &scope.dt,
            &scope.dt.initial_state(),
            node.primary.ops(),
            node.primary.po(),
            x,
            scope.valset_cap,
        );
        for v in values {
            let mut next = node.clone();
            if next.primary.calculate(x, &v, None).is_err() {
                continue; // e.g. strict and not yet stable
            }
            if let Err(e) = next.shadow.calculate(x, &v, None) {
                report.violations.push(format!(
                    "shadow rejected calculate({x}, {v:?}): {e} after {:?}",
                    node.trace
                ));
                continue;
            }
            out.push((format!("calculate({x},{v:?})"), next));
        }
    }

    // response(x, v) for every computed candidate (explore each value;
    // dedup by equality — T::Value need not be Ord).
    let mut candidates: Vec<(OpId, T::Value)> = Vec::new();
    for (id, v) in node.primary.rept() {
        if !candidates.iter().any(|(i, u)| i == id && u == v) {
            candidates.push((*id, v.clone()));
        }
    }
    for (x, v) in candidates {
        let mut next = node.clone();
        if next.primary.respond_with(x, &v).is_err() {
            continue;
        }
        if let Err(e) = next.shadow.respond_with(x, &v) {
            report.violations.push(format!(
                "shadow rejected response({x}, {v:?}): {e} after {:?}",
                node.trace
            ));
            continue;
        }
        out.push((format!("response({x},{v:?})"), next));
    }

    out
}

/// `new-po` candidates for entering `x` (see module docs, "Action
/// bounding"): the minimal legal extension plus every single-edge
/// refinement against an incomparable entered operation.
fn enter_po_candidates<T>(node: &Node<T>, desc: &OpDescriptor<T::Operator>) -> Vec<Digraph<OpId>>
where
    T: SerialDataType + Clone,
{
    let x = desc.id;
    let mut minimal = node.primary.po().clone();
    minimal.add_node(x);
    for p in &desc.prev {
        minimal.add_edge(*p, x);
    }
    for y in node.primary.stabilized() {
        if *y != x {
            minimal.add_edge(*y, x);
        }
    }
    if !minimal.is_strict_partial_order() {
        return Vec::new();
    }
    let mut out = vec![minimal.clone()];
    for y in node.primary.ops().keys() {
        if minimal.comparable(y, &x) {
            continue;
        }
        for (lo, hi) in [(*y, x), (x, *y)] {
            let mut refined = minimal.clone();
            refined.add_edge(lo, hi);
            if refined.is_strict_partial_order() {
                out.push(refined);
            }
        }
    }
    out
}

/// Applies `stabilize(x)` to the shadow. For an `ESDS-I` shadow this is
/// the Fig. 4 simulation: first stabilize every unstable predecessor of
/// `x` in prefix order (the "gaps"), then `x` itself. For an `ESDS-II`
/// shadow the single action suffices (weaker precondition).
fn apply_shadow_stabilize<T>(
    shadow: &mut EsdsSpec<T>,
    x: OpId,
) -> Result<(), esds_core::PreconditionError>
where
    T: SerialDataType + Clone,
{
    if shadow.variant() == SpecVariant::EsdsI {
        let mut gaps: Vec<OpId> = shadow
            .po()
            .ancestors(&x)
            .into_iter()
            .filter(|y| shadow.ops().contains_key(y) && !shadow.stabilized().contains(y))
            .collect();
        // Prefix order: by po (total on the prefix, so topo order is it).
        let gap_set: BTreeSet<OpId> = gaps.iter().copied().collect();
        if let Some(sorted) = shadow.po().induced_on(&gap_set).topo_sort() {
            gaps = sorted;
        }
        for g in gaps {
            shadow.stabilize(g)?;
        }
    }
    if shadow.stabilized().contains(&x) {
        return Ok(()); // ESDS-I forbids re-stabilizing; a repeat is a no-op.
    }
    shadow.stabilize(x)
}

/// A canonical fingerprint of the (primary, shadow) pair. Debug formatting
/// of the canonical components is stable because every container is
/// ordered (`BTreeMap`/`BTreeSet`/sorted `Vec`).
fn fingerprint<T: SerialDataType>(node: &Node<T>) -> String {
    let po_edges: BTreeSet<(OpId, OpId)> = node.primary.po().edges().collect();
    let mut rept: Vec<String> = node
        .primary
        .rept()
        .iter()
        .map(|(id, v)| format!("{id}:{v:?}"))
        .collect();
    rept.sort();
    rept.dedup();
    let shadow_po: BTreeSet<(OpId, OpId)> = node.shadow.po().edges().collect();
    format!(
        "{}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
        node.requested,
        node.primary.waiting(),
        node.primary.ops().keys().collect::<Vec<_>>(),
        po_edges,
        node.primary.stabilized(),
        rept,
        node.shadow.stabilized(),
        shadow_po,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use esds_core::ClientId;

    /// Inc/read counter, the running example of the paper.
    #[derive(Clone, Copy, Debug)]
    struct Ctr;
    #[derive(Clone, PartialEq, Eq, Debug)]
    enum Op {
        Inc,
        Read,
    }
    impl SerialDataType for Ctr {
        type State = i64;
        type Operator = Op;
        type Value = i64;
        fn initial_state(&self) -> i64 {
            0
        }
        fn apply(&self, s: &i64, op: &Op) -> (i64, i64) {
            match op {
                Op::Inc => (s + 1, s + 1),
                Op::Read => (*s, *s),
            }
        }
    }

    fn id(s: u64) -> OpId {
        OpId::new(ClientId(0), s)
    }

    fn two_op_scope() -> SpecScope<Ctr> {
        SpecScope::new(
            Ctr,
            vec![
                OpDescriptor::new(id(0), Op::Inc),
                OpDescriptor::new(id(1), Op::Read).with_prev([id(0)]),
            ],
        )
    }

    #[test]
    fn esds1_two_ops_exhaustive() {
        let report = explore_spec(two_op_scope(), SpecVariant::EsdsI);
        assert!(report.passed(), "{:?}", report.violations);
        assert!(!report.truncated);
        assert!(report.states > 20, "only {} states", report.states);
    }

    #[test]
    fn esds2_two_ops_exhaustive_with_gap_filling_shadow() {
        let report = explore_spec(two_op_scope(), SpecVariant::EsdsII);
        assert!(report.passed(), "{:?}", report.violations);
        assert!(!report.truncated);
    }

    #[test]
    fn esds2_gaps_are_reachable_and_simulable() {
        // Two unrelated ops + one dependent: ESDS-II can stabilize out of
        // prefix order; the shadow ESDS-I must keep up via gap filling.
        let scope = SpecScope::new(
            Ctr,
            vec![
                OpDescriptor::new(id(0), Op::Inc),
                OpDescriptor::new(id(1), Op::Inc),
                OpDescriptor::new(id(2), Op::Read).with_prev([id(0), id(1)]),
            ],
        );
        let report = explore_spec(scope, SpecVariant::EsdsII);
        assert!(report.passed(), "{:?}", report.violations);
        assert!(report.states > 100);
    }

    #[test]
    fn strict_op_explored() {
        let scope = SpecScope::new(
            Ctr,
            vec![
                OpDescriptor::new(id(0), Op::Inc),
                OpDescriptor::new(id(1), Op::Read).with_strict(true),
            ],
        );
        for variant in [SpecVariant::EsdsI, SpecVariant::EsdsII] {
            let report = explore_spec(scope.clone(), variant);
            assert!(report.passed(), "{variant:?}: {:?}", report.violations);
        }
    }

    #[test]
    fn truncation_is_reported() {
        let mut scope = two_op_scope();
        scope.max_states = 5;
        let report = explore_spec(scope, SpecVariant::EsdsI);
        assert!(report.truncated);
    }
}

//! The **barrier-cut predicate** for cross-shard strict (scatter-gather)
//! queries.
//!
//! A sharded deployment runs one independent ESDS instance per shard, so
//! Theorems 5.7/5.8 are checked *per shard* by [`crate::TraceChecker`] /
//! [`crate::StreamingChecker`] exactly as in the unsharded service — a
//! gathered query's per-shard sub-operations are ordinary strict
//! operations in their shard's trace and need no new theory. What those
//! checkers cannot see is the *cross-shard* claim of barrier-strict mode:
//! that the merged answer is a **consistent cut** — on every involved
//! shard, the sub-operation observed (at least) every operation that had
//! been answered *anywhere* before the gather began.
//!
//! The protocol earns that claim without 2PC, one shard at a time:
//!
//! 1. snapshot shard `s`'s **answered frontier** `F_s` (every operation a
//!    replica of `s` has responded to);
//! 2. wait until `F_s` is **stable everywhere** in `s` — then every
//!    replica's label clock has passed every label in `F_s`, so any label
//!    minted later in `s` is greater;
//! 3. only then submit the strict sub-operation — its fresh label
//!    necessarily orders after all of `F_s` in `s`'s eventual total
//!    order, and strictness means its response is consistent with that
//!    order (Theorem 5.8).
//!
//! Step 2 is the part a bare strict sub-operation does not give: an
//! operation answered at a fast-clocked replica *before* the gather could
//! still carry a label larger than a fresh sub-operation's label minted
//! at a slow-clocked relay, and would then be ordered after the
//! sub-operation — excluded from the answer despite having been answered
//! first. Waiting for stability-cover closes exactly that race.
//!
//! The checkable residue of steps 1–3 is purely per shard, which is what
//! keeps shards independent: **each sub-operation appears after its
//! shard's entire frontier in that shard's eventual total order**.
//! [`check_barrier_cut`] decides it given the orders the existing
//! checkers already consume (e.g. [`crate::TraceChecker::default_eto`]
//! or a stable watermark).

use std::collections::BTreeMap;
use std::fmt;

use esds_core::{OpId, ShardedOpId};

/// What barrier-strict execution promised for one shard of a gathered
/// query: the answered frontier snapshotted (and stability-covered)
/// before the sub-operation was submitted there.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ShardBarrier {
    /// The involved shard.
    pub shard: u32,
    /// The answered frontier of `shard` at the barrier: per-shard ids of
    /// every operation some replica of the shard had responded to.
    pub frontier: Vec<OpId>,
    /// The per-shard id of the gathered query's sub-operation.
    pub sub: OpId,
}

/// A gathered query's full barrier obligation — one [`ShardBarrier`] per
/// involved shard. Produced by the deployment layers in barrier-strict
/// mode, consumed by [`check_barrier_cut`] per shard.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BarrierObligation {
    /// The gathered query's global identity.
    pub gathered: ShardedOpId,
    /// Per-shard barriers, ascending by shard.
    pub shards: Vec<ShardBarrier>,
}

/// How a barrier cut failed verification.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BarrierViolation {
    /// The sub-operation never appeared in its shard's eventual order.
    SubOpMissing {
        /// The shard whose order was checked.
        shard: u32,
        /// The missing sub-operation.
        sub: OpId,
    },
    /// A frontier operation never appeared in the shard's eventual order
    /// (the snapshot named an operation the shard does not know).
    FrontierOpMissing {
        /// The shard whose order was checked.
        shard: u32,
        /// The missing frontier operation.
        op: OpId,
    },
    /// The sub-operation was ordered **before** a frontier operation —
    /// the cut excluded an operation that was answered before the gather
    /// began. This is exactly the wrong-partial-answer bug class the
    /// barrier exists to rule out.
    SubOpBeforeFrontier {
        /// The shard whose order was checked.
        shard: u32,
        /// The sub-operation.
        sub: OpId,
        /// The frontier operation found after it.
        frontier_op: OpId,
    },
}

impl fmt::Display for BarrierViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BarrierViolation::SubOpMissing { shard, sub } => {
                write!(f, "shard {shard}: sub-op {sub} absent from eventual order")
            }
            BarrierViolation::FrontierOpMissing { shard, op } => {
                write!(
                    f,
                    "shard {shard}: frontier op {op} absent from eventual order"
                )
            }
            BarrierViolation::SubOpBeforeFrontier {
                shard,
                sub,
                frontier_op,
            } => write!(
                f,
                "shard {shard}: sub-op {sub} ordered before frontier op {frontier_op} — \
                 the gathered answer is not a consistent cut"
            ),
        }
    }
}

/// Checks one shard's half of the barrier-cut claim: in `eventual_order`
/// (that shard's eventual total order, or any prefix of it that has
/// grown past the sub-operation), the sub-operation appears **after
/// every frontier operation**.
///
/// Returns every violation found (empty = the cut holds on this shard).
///
/// # Examples
///
/// ```
/// use esds_core::{ClientId, OpId};
/// use esds_spec::{check_barrier_cut, ShardBarrier};
///
/// let id = |c: u32, s: u64| OpId::new(ClientId(c), s);
/// let order = [id(1, 1), id(2, 1), id(9, 1)]; // sub-op last
/// let b = ShardBarrier { shard: 0, frontier: vec![id(1, 1), id(2, 1)], sub: id(9, 1) };
/// assert!(check_barrier_cut(&b, &order).is_empty());
///
/// let bad = ShardBarrier { shard: 0, frontier: vec![id(9, 1)], sub: id(1, 1) };
/// assert_eq!(check_barrier_cut(&bad, &order).len(), 1);
/// ```
pub fn check_barrier_cut(b: &ShardBarrier, eventual_order: &[OpId]) -> Vec<BarrierViolation> {
    let pos: BTreeMap<OpId, usize> = eventual_order
        .iter()
        .enumerate()
        .map(|(i, id)| (*id, i))
        .collect();
    let mut out = Vec::new();
    let Some(sub_pos) = pos.get(&b.sub) else {
        out.push(BarrierViolation::SubOpMissing {
            shard: b.shard,
            sub: b.sub,
        });
        return out;
    };
    for f in &b.frontier {
        match pos.get(f) {
            None => out.push(BarrierViolation::FrontierOpMissing {
                shard: b.shard,
                op: *f,
            }),
            Some(fp) if fp >= sub_pos => out.push(BarrierViolation::SubOpBeforeFrontier {
                shard: b.shard,
                sub: b.sub,
                frontier_op: *f,
            }),
            Some(_) => {}
        }
    }
    out
}

/// Checks a full obligation against per-shard eventual orders:
/// `order_of(shard)` supplies each involved shard's order (`None` = the
/// caller has no order for that shard, reported as every frontier op and
/// the sub-op missing would be overkill — it is reported as a single
/// [`BarrierViolation::SubOpMissing`]).
pub fn check_barrier_obligation(
    ob: &BarrierObligation,
    mut order_of: impl FnMut(u32) -> Option<Vec<OpId>>,
) -> Vec<BarrierViolation> {
    let mut out = Vec::new();
    for b in &ob.shards {
        match order_of(b.shard) {
            Some(order) => out.extend(check_barrier_cut(b, &order)),
            None => out.push(BarrierViolation::SubOpMissing {
                shard: b.shard,
                sub: b.sub,
            }),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use esds_core::ClientId;

    fn id(c: u32, s: u64) -> OpId {
        OpId::new(ClientId(c), s)
    }

    #[test]
    fn cut_holds_when_sub_follows_whole_frontier() {
        let b = ShardBarrier {
            shard: 3,
            frontier: vec![id(1, 1), id(1, 2), id(2, 1)],
            sub: id(7, 1),
        };
        let order = [id(1, 1), id(2, 1), id(1, 2), id(7, 1), id(2, 2)];
        assert!(check_barrier_cut(&b, &order).is_empty());
    }

    #[test]
    fn empty_frontier_needs_only_the_sub_op() {
        let b = ShardBarrier {
            shard: 0,
            frontier: vec![],
            sub: id(7, 1),
        };
        assert!(check_barrier_cut(&b, &[id(7, 1)]).is_empty());
        assert_eq!(
            check_barrier_cut(&b, &[]),
            vec![BarrierViolation::SubOpMissing {
                shard: 0,
                sub: id(7, 1)
            }]
        );
    }

    #[test]
    fn sub_before_frontier_is_the_bug_class() {
        let b = ShardBarrier {
            shard: 1,
            frontier: vec![id(1, 1), id(2, 1)],
            sub: id(7, 1),
        };
        // The sub-op slid between the frontier ops: one violation.
        let order = [id(1, 1), id(7, 1), id(2, 1)];
        assert_eq!(
            check_barrier_cut(&b, &order),
            vec![BarrierViolation::SubOpBeforeFrontier {
                shard: 1,
                sub: id(7, 1),
                frontier_op: id(2, 1),
            }]
        );
    }

    #[test]
    fn missing_frontier_op_reported() {
        let b = ShardBarrier {
            shard: 0,
            frontier: vec![id(1, 1), id(9, 9)],
            sub: id(7, 1),
        };
        let order = [id(1, 1), id(7, 1)];
        assert_eq!(
            check_barrier_cut(&b, &order),
            vec![BarrierViolation::FrontierOpMissing {
                shard: 0,
                op: id(9, 9)
            }]
        );
    }

    #[test]
    fn obligation_checks_every_shard_and_flags_missing_orders() {
        let ob = BarrierObligation {
            gathered: ShardedOpId::new(ClientId(5), 3),
            shards: vec![
                ShardBarrier {
                    shard: 0,
                    frontier: vec![id(1, 1)],
                    sub: id(7, 1),
                },
                ShardBarrier {
                    shard: 1,
                    frontier: vec![],
                    sub: id(7, 1),
                },
            ],
        };
        let v = check_barrier_obligation(&ob, |s| match s {
            0 => Some(vec![id(1, 1), id(7, 1)]),
            _ => None,
        });
        assert_eq!(
            v,
            vec![BarrierViolation::SubOpMissing {
                shard: 1,
                sub: id(7, 1)
            }]
        );
    }

    #[test]
    fn violations_display() {
        let texts = [
            BarrierViolation::SubOpMissing {
                shard: 0,
                sub: id(1, 1),
            }
            .to_string(),
            BarrierViolation::FrontierOpMissing {
                shard: 1,
                op: id(2, 1),
            }
            .to_string(),
            BarrierViolation::SubOpBeforeFrontier {
                shard: 2,
                sub: id(1, 1),
                frontier_op: id(2, 1),
            }
            .to_string(),
        ];
        assert!(texts[0].contains("absent"));
        assert!(texts[1].contains("frontier op"));
        assert!(texts[2].contains("consistent cut"));
    }
}

//! # esds-spec
//!
//! Executable specifications and checkers for eventually-serializable data
//! services (paper Sections 4–5):
//!
//! * [`Users`] — the client well-formedness automaton (Fig. 1);
//! * [`EsdsSpec`] — the `ESDS-I` (Fig. 2) and `ESDS-II` (Fig. 3) automata
//!   with precondition-checked actions and the §5.2 invariants;
//! * [`ReferenceService`] — `ESDS-I` + eager serializer = a linearizable
//!   centralized object (the semantic oracle and baseline);
//! * [`TraceChecker`] — black-box validation of Theorems 5.7/5.8 and
//!   Corollary 5.9 over request/response traces with witnesses.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod automaton;
mod checker;
mod reference;
mod users;

pub use automaton::{EsdsSpec, SpecVariant};
pub use checker::{check_converged, RecordedResponse, TraceChecker, TraceViolation};
pub use reference::{replay_serial, ReferenceService};
pub use users::Users;

//! # esds-spec
//!
//! Executable specifications and checkers for eventually-serializable data
//! services (paper Sections 4–5):
//!
//! * [`Users`] — the client well-formedness automaton (Fig. 1);
//! * [`EsdsSpec`] — the `ESDS-I` (Fig. 2) and `ESDS-II` (Fig. 3) automata
//!   with precondition-checked actions and the §5.2 invariants;
//! * [`ReferenceService`] — `ESDS-I` + eager serializer = a linearizable
//!   centralized object (the semantic oracle and baseline);
//! * [`TraceChecker`] — black-box validation of Theorems 5.7/5.8 and
//!   Corollary 5.9 over request/response traces with witnesses;
//! * [`StreamingChecker`] — the same theorems as an *online* decision
//!   procedure with `O(unstable window)` memory: operations behind the
//!   stable watermark are retired into a running [`AuditCertificate`]
//!   (count + chain digest) instead of being held forever.
//!
//! # Paper definitions, in paper vocabulary
//!
//! * A **valid serialization** of a descriptor set `X` (paper §3) is a
//!   total order over `X` consistent with the client-specified
//!   constraints `CSC(X)` — the transitive closure of every
//!   descriptor's `prev` set. [`Users::csc`] computes the relation;
//!   `esds_core::total_order_consistent` decides membership.
//! * A service is **eventually serializable** (paper §5) when its trace
//!   is explained by valid serializations two ways: every response by
//!   *some* valid serialization of the operations the replica had
//!   applied (**Theorem 5.7**, checked from witnesses), and every
//!   *strict* response by the single **eventual total order** that all
//!   replicas converge to (**Theorem 5.8**; all responses when every
//!   operation is strict, **Corollary 5.9**).
//! * The checkers consume the *stable watermark* — the solid prefix of
//!   the eventual total order the algorithm certifies via `∩ᵢ stable_r[i]`
//!   — as ground truth for that order; the batch checker receives it
//!   whole, the streaming checker one operation at a time.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod automaton;
mod barrier;
mod checker;
mod reference;
mod streaming;
mod users;

pub use automaton::{EsdsSpec, SpecVariant};
pub use barrier::{
    check_barrier_cut, check_barrier_obligation, BarrierObligation, BarrierViolation, ShardBarrier,
};
pub use checker::{check_converged, RecordedResponse, TraceChecker, TraceViolation};
pub use reference::{replay_serial, ReferenceService};
pub use streaming::{
    fold_digest, order_digest, AuditCertificate, AuditConfig, AuditEvent, AuditResult, AuditStatus,
    AuditViolation, StreamingChecker,
};
pub use users::Users;

//! The eventually-serializable data service specification automata:
//! `ESDS-I` (paper Fig. 2) and `ESDS-II` (Fig. 3).
//!
//! Both maintain a strict partial order `po` over entered operations that
//! can only grow, and a set of *stable* operations whose prefix is fixed.
//! `ESDS-II` differs only in the preconditions of `enter` and `stabilize`
//! (repeatable actions; stability "gaps" allowed); the two automata are
//! equivalent (§5.3), which `tests/` exercise by simulation.
//!
//! The automata here are *executable checkers*: every action validates its
//! precondition and returns a [`PreconditionError`] naming the violated
//! clause — these are exactly the proof obligations discharged in the
//! paper's simulation proof, which the conformance harness replays against
//! the real algorithm.

use std::collections::{BTreeMap, BTreeSet};

use esds_core::{
    valset_contains, value_along, Digraph, OpDescriptor, OpId, PreconditionError, SerialDataType,
};

/// Which specification automaton to enforce.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum SpecVariant {
    /// `ESDS-I` (Fig. 2): single `enter`/`stabilize` per operation, stable
    /// prefixes have no gaps.
    EsdsI,
    /// `ESDS-II` (Fig. 3): repeatable actions, stability gaps allowed —
    /// the simulation target for the algorithm (Theorem 8.4).
    EsdsII,
}

/// An executable `ESDS-I` / `ESDS-II` automaton.
///
/// # Examples
///
/// ```
/// use esds_core::{ClientId, Digraph, OpDescriptor, OpId, SerialDataType};
/// use esds_spec::{EsdsSpec, SpecVariant};
///
/// struct Reg;
/// impl SerialDataType for Reg {
///     type State = i64;
///     type Operator = i64; // "write this value"; value returned = old state
///     type Value = i64;
///     fn initial_state(&self) -> i64 { 0 }
///     fn apply(&self, s: &i64, op: &i64) -> (i64, i64) { (*op, *s) }
/// }
///
/// let mut spec = EsdsSpec::new(Reg, SpecVariant::EsdsI);
/// let x = OpDescriptor::new(OpId::new(ClientId(0), 0), 7i64);
/// spec.request(x.clone());
/// let mut po = Digraph::new();
/// po.add_node(x.id);
/// spec.enter(x.id, po).unwrap();
/// spec.stabilize(x.id).unwrap();
/// spec.calculate(x.id, &0, None).unwrap(); // old state was 0
/// assert_eq!(spec.response(x.id).unwrap(), 0);
/// ```
#[derive(Clone, Debug)]
pub struct EsdsSpec<T: SerialDataType> {
    dt: T,
    variant: SpecVariant,
    /// `wait`: requested but not yet responded to.
    wait: BTreeMap<OpId, OpDescriptor<T::Operator>>,
    /// `rept`: computed candidate responses (a multiset).
    rept: Vec<(OpId, T::Value)>,
    /// `ops`: entered operations.
    ops: BTreeMap<OpId, OpDescriptor<T::Operator>>,
    /// `po`: the strict partial order on entered operations.
    po: Digraph<OpId>,
    /// `stabilized`.
    stabilized: BTreeSet<OpId>,
    /// Cap on linear-extension enumeration in `calculate` without witness.
    valset_cap: usize,
}

impl<T: SerialDataType> EsdsSpec<T> {
    /// Creates the automaton in its initial state.
    pub fn new(dt: T, variant: SpecVariant) -> Self {
        EsdsSpec {
            dt,
            variant,
            wait: BTreeMap::new(),
            rept: Vec::new(),
            ops: BTreeMap::new(),
            po: Digraph::new(),
            stabilized: BTreeSet::new(),
            valset_cap: 100_000,
        }
    }

    /// The enforced variant.
    pub fn variant(&self) -> SpecVariant {
        self.variant
    }

    /// `wait` ids.
    pub fn waiting(&self) -> BTreeSet<OpId> {
        self.wait.keys().copied().collect()
    }

    /// Entered operations.
    pub fn ops(&self) -> &BTreeMap<OpId, OpDescriptor<T::Operator>> {
        &self.ops
    }

    /// The current partial order.
    pub fn po(&self) -> &Digraph<OpId> {
        &self.po
    }

    /// The stable operations.
    pub fn stabilized(&self) -> &BTreeSet<OpId> {
        &self.stabilized
    }

    /// Candidate responses currently in `rept`.
    pub fn rept(&self) -> &[(OpId, T::Value)] {
        &self.rept
    }

    // ------------------------------------------------------------------
    // Actions
    // ------------------------------------------------------------------

    /// Input action `request(x)`: always enabled.
    pub fn request(&mut self, desc: OpDescriptor<T::Operator>) {
        self.wait.insert(desc.id, desc);
    }

    /// Internal action `enter(x, new-po)`.
    ///
    /// # Errors
    ///
    /// Returns the violated precondition clause, quoted from Fig. 2/3.
    pub fn enter(&mut self, x: OpId, new_po: Digraph<OpId>) -> Result<(), PreconditionError> {
        let err = |clause, detail: String| Err(PreconditionError::new("enter", clause, detail));
        let Some(desc) = self.wait.get(&x) else {
            return err("x ∈ wait", format!("{x} not waiting"));
        };
        if self.variant == SpecVariant::EsdsI && self.ops.contains_key(&x) {
            return err("x ∉ ops", format!("{x} already entered"));
        }
        for p in &desc.prev {
            if !self.ops.contains_key(p) {
                return err("x.prev ⊆ ops.id", format!("{x} needs {p}"));
            }
        }
        let mut allowed: BTreeSet<OpId> = self.ops.keys().copied().collect();
        allowed.insert(x);
        if !new_po.span().is_subset(&allowed) {
            return err(
                "span(new-po) ⊆ ops.id ∪ {x.id}",
                "new-po mentions unentered operations".to_string(),
            );
        }
        if !new_po.is_strict_partial_order() {
            return err("new-po is a strict partial order", "cycle".to_string());
        }
        if !new_po.contains_relation(&self.po) {
            return err("po ⊆ new-po", "constraints were dropped".to_string());
        }
        for p in &desc.prev {
            if !new_po.precedes(p, &x) {
                return err("CSC({x}) ⊆ new-po", format!("{p} ⊀ {x}"));
            }
        }
        for y in &self.stabilized {
            if *y != x && !new_po.precedes(y, &x) {
                return err(
                    "{(y.id, x.id) : y ∈ stabilized} ⊆ new-po",
                    format!("stable {y} ⊀ {x}"),
                );
            }
        }
        let desc = desc.clone();
        self.ops.insert(x, desc);
        self.po = new_po;
        Ok(())
    }

    /// Internal action `add_constraints(new-po)`.
    ///
    /// # Errors
    ///
    /// Returns the violated precondition clause.
    pub fn add_constraints(&mut self, new_po: Digraph<OpId>) -> Result<(), PreconditionError> {
        let err =
            |clause, detail: String| Err(PreconditionError::new("add_constraints", clause, detail));
        let allowed: BTreeSet<OpId> = self.ops.keys().copied().collect();
        if !new_po.span().is_subset(&allowed) {
            return err("span(new-po) ⊆ ops.id", "unentered operations".to_string());
        }
        if !new_po.is_strict_partial_order() {
            return err("new-po is a partial order", "cycle".to_string());
        }
        if !new_po.contains_relation(&self.po) {
            return err("po ⊆ new-po", "constraints were dropped".to_string());
        }
        self.po = new_po;
        Ok(())
    }

    /// Internal action `stabilize(x)`.
    ///
    /// # Errors
    ///
    /// Returns the violated precondition clause.
    pub fn stabilize(&mut self, x: OpId) -> Result<(), PreconditionError> {
        let err = |clause, detail: String| Err(PreconditionError::new("stabilize", clause, detail));
        if !self.ops.contains_key(&x) {
            return err("x ∈ ops", format!("{x} not entered"));
        }
        match self.variant {
            SpecVariant::EsdsI => {
                if self.stabilized.contains(&x) {
                    return err("x ∉ stabilized", format!("{x} already stable"));
                }
                for y in self.ops.keys() {
                    if !self.po.comparable(y, &x) {
                        return err("∀y ∈ ops: y ≼ x ∨ x ≼ y", format!("{y} incomparable"));
                    }
                }
                let preceding = self.po.ancestors(&x);
                for y in self.ops.keys() {
                    if preceding.contains(y) && !self.stabilized.contains(y) {
                        return err("ops|≺x ⊆ stabilized", format!("{y} precedes but unstable"));
                    }
                }
            }
            SpecVariant::EsdsII => {
                for y in self.ops.keys() {
                    if !self.po.comparable(y, &x) {
                        return err("∀y ∈ ops: y ≼ x ∨ x ≼ y", format!("{y} incomparable"));
                    }
                }
                // Gaps allowed, but the prefix must be totally ordered.
                let preceding: BTreeSet<OpId> = self
                    .po
                    .ancestors(&x)
                    .into_iter()
                    .filter(|y| self.ops.contains_key(y))
                    .collect();
                if !self.po.is_total_on(&preceding) {
                    return err("po totally orders ops|≺x", "prefix not total".to_string());
                }
            }
        }
        self.stabilized.insert(x);
        Ok(())
    }

    /// Internal action `calculate(x, v)`: validates `v ∈ valset(x, ops,
    /// ≺po)`. With a `witness` (a total order over a subset of `ops`
    /// containing `x`), the check is polynomial: the witness is extended
    /// with the remaining operations (topologically by `po`) and must be
    /// consistent with `po` and reproduce `v`. Without a witness, linear
    /// extensions are enumerated up to the cap — exponential, test-sized
    /// inputs only.
    ///
    /// # Errors
    ///
    /// Returns the violated precondition clause.
    pub fn calculate(
        &mut self,
        x: OpId,
        v: &T::Value,
        witness: Option<&[OpId]>,
    ) -> Result<(), PreconditionError> {
        let err = |clause, detail: String| Err(PreconditionError::new("calculate", clause, detail));
        let Some(desc) = self.ops.get(&x) else {
            return err("x ∈ ops", format!("{x} not entered"));
        };
        if desc.strict && !self.stabilized.contains(&x) {
            return err("x.strict ⇒ x ∈ stabilized", format!("{x} unstable"));
        }
        match witness {
            Some(w) => {
                let total = self.extend_witness(w)?;
                if !esds_core::total_order_consistent(&total, &self.po) {
                    return err(
                        "v ∈ valset(x, ops, ≺po)",
                        "witness order inconsistent with po".to_string(),
                    );
                }
                let got = value_along(
                    &self.dt,
                    &self.dt.initial_state(),
                    total.iter().map(|id| &self.ops[id]),
                    x,
                );
                if got.as_ref() != Some(v) {
                    return err(
                        "v ∈ valset(x, ops, ≺po)",
                        format!("witness yields {got:?}, not the claimed value"),
                    );
                }
            }
            None => {
                if !valset_contains(
                    &self.dt,
                    &self.dt.initial_state(),
                    &self.ops,
                    &self.po,
                    x,
                    v,
                    self.valset_cap,
                ) {
                    return err(
                        "v ∈ valset(x, ops, ≺po)",
                        "no linear extension yields the claimed value".to_string(),
                    );
                }
            }
        }
        if self.wait.contains_key(&x) {
            self.rept.push((x, v.clone()));
        }
        Ok(())
    }

    /// Output action `response(x, v)`: picks a computed value for `x`
    /// (nondeterministically — here, the first), removes `x` from `wait`
    /// and purges `rept`.
    ///
    /// # Errors
    ///
    /// Returns the violated precondition clause.
    pub fn response(&mut self, x: OpId) -> Result<T::Value, PreconditionError> {
        if !self.wait.contains_key(&x) {
            return Err(PreconditionError::new(
                "response",
                "x ∈ wait",
                format!("{x} not waiting"),
            ));
        }
        let Some(pos) = self.rept.iter().position(|(id, _)| *id == x) else {
            return Err(PreconditionError::new(
                "response",
                "(x, v) ∈ rept",
                format!("no calculated value for {x}"),
            ));
        };
        let (_, v) = self.rept.swap_remove(pos);
        self.wait.remove(&x);
        self.rept.retain(|(id, _)| *id != x);
        Ok(v)
    }

    /// Output action `response(x, v)` with the value chosen externally:
    /// used by the conformance harness, where the *algorithm* resolved the
    /// nondeterminism and the spec must confirm `(x, v) ∈ rept`.
    ///
    /// # Errors
    ///
    /// Returns the violated precondition clause.
    pub fn respond_with(&mut self, x: OpId, v: &T::Value) -> Result<(), PreconditionError> {
        if !self.wait.contains_key(&x) {
            return Err(PreconditionError::new(
                "response",
                "x ∈ wait",
                format!("{x} not waiting"),
            ));
        }
        if !self.rept.iter().any(|(id, u)| *id == x && u == v) {
            return Err(PreconditionError::new(
                "response",
                "(x, v) ∈ rept",
                format!("the delivered value for {x} was never calculated"),
            ));
        }
        self.wait.remove(&x);
        self.rept.retain(|(id, _)| *id != x);
        Ok(())
    }

    /// Extends a witness order over a subset of `ops` to a total order on
    /// all of `ops`: remaining operations are appended in a `po`-consistent
    /// topological order (this mirrors the proof of Theorem 5.7, where the
    /// replica's order is a prefix of `to(x)`).
    fn extend_witness(&self, witness: &[OpId]) -> Result<Vec<OpId>, PreconditionError> {
        let mut seen = BTreeSet::new();
        for id in witness {
            if !self.ops.contains_key(id) {
                return Err(PreconditionError::new(
                    "calculate",
                    "witness ⊆ ops",
                    format!("{id} not entered"),
                ));
            }
            if !seen.insert(*id) {
                return Err(PreconditionError::new(
                    "calculate",
                    "witness is an order",
                    format!("{id} repeated"),
                ));
            }
        }
        let mut total: Vec<OpId> = witness.to_vec();
        let rest: BTreeSet<OpId> = self
            .ops
            .keys()
            .filter(|id| !seen.contains(id))
            .copied()
            .collect();
        let sorted_rest = self
            .po
            .induced_on(&rest)
            .topo_sort()
            .expect("po is acyclic");
        // topo_sort only returns nodes known to the induced graph; include
        // any ops with no po constraints at all.
        let mut emitted: BTreeSet<OpId> = sorted_rest.iter().copied().collect();
        total.extend(sorted_rest);
        for id in rest {
            if emitted.insert(id) {
                total.push(id);
            }
        }
        Ok(total)
    }

    // ------------------------------------------------------------------
    // Invariants (§5.2)
    // ------------------------------------------------------------------

    /// Checks Invariants 5.2–5.5 on the current state; returns violation
    /// descriptions (empty = hold). Invariant 5.5 (no stability gaps) is
    /// `ESDS-I`-only.
    pub fn check_invariants(&self) -> Vec<String> {
        let mut out = Vec::new();
        // 5.2: span(po) ⊆ ops.id ∧ CSC(ops) ⊆ po.
        let ops_ids: BTreeSet<OpId> = self.ops.keys().copied().collect();
        if !self.po.span().is_subset(&ops_ids) {
            out.push("Invariant 5.2: span(po) ⊄ ops.id".to_string());
        }
        for d in self.ops.values() {
            for p in &d.prev {
                if !self.po.precedes(p, &d.id) {
                    out.push(format!("Invariant 5.2: CSC pair {p} ≺ {} missing", d.id));
                }
            }
        }
        // 5.3: stable ops comparable with everything.
        for x in &self.stabilized {
            for y in self.ops.keys() {
                if !self.po.comparable(x, y) {
                    out.push(format!("Invariant 5.3: stable {x} incomparable with {y}"));
                }
            }
        }
        // 5.4: stabilized totally ordered.
        if !self.po.is_total_on(&self.stabilized) {
            out.push("Invariant 5.4: stabilized not totally ordered".to_string());
        }
        // 5.5 (ESDS-I only): no gaps before stable ops.
        if self.variant == SpecVariant::EsdsI {
            for x in &self.stabilized {
                for y in self.po.ancestors(x) {
                    if self.ops.contains_key(&y) && !self.stabilized.contains(&y) {
                        out.push(format!("Invariant 5.5: {y} ≺ stable {x} but unstable"));
                    }
                }
            }
        }
        out
    }

    /// Checks Invariant 5.6 (stable operations have a unique value) by
    /// enumeration — exponential; intended for small spec-level tests.
    pub fn check_unique_stable_values(&self, cap: usize) -> Vec<String> {
        let mut out = Vec::new();
        for x in &self.stabilized {
            let vs = esds_core::valset(
                &self.dt,
                &self.dt.initial_state(),
                &self.ops,
                &self.po,
                *x,
                cap,
            );
            if vs.len() != 1 {
                out.push(format!(
                    "Invariant 5.6: stable {x} has {} candidate values",
                    vs.len()
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esds_core::ClientId;

    /// Counter: Inc returns new value, Read returns current.
    #[derive(Clone, Copy, Debug)]
    struct Ctr;
    #[derive(Clone, PartialEq, Eq, Debug)]
    enum Op {
        Inc,
        Read,
    }
    impl SerialDataType for Ctr {
        type State = i64;
        type Operator = Op;
        type Value = i64;
        fn initial_state(&self) -> i64 {
            0
        }
        fn apply(&self, s: &i64, op: &Op) -> (i64, i64) {
            match op {
                Op::Inc => (s + 1, s + 1),
                Op::Read => (*s, *s),
            }
        }
    }

    fn id(s: u64) -> OpId {
        OpId::new(ClientId(0), s)
    }

    fn spec(variant: SpecVariant) -> EsdsSpec<Ctr> {
        EsdsSpec::new(Ctr, variant)
    }

    #[test]
    fn happy_path_single_op() {
        let mut s = spec(SpecVariant::EsdsI);
        let d = OpDescriptor::new(id(0), Op::Inc).with_strict(true);
        s.request(d);
        let mut po = Digraph::new();
        po.add_node(id(0));
        s.enter(id(0), po).unwrap();
        s.stabilize(id(0)).unwrap();
        s.calculate(id(0), &1, None).unwrap();
        assert_eq!(s.response(id(0)).unwrap(), 1);
        assert!(s.waiting().is_empty());
        assert!(s.check_invariants().is_empty());
    }

    #[test]
    fn enter_rejects_missing_prev() {
        let mut s = spec(SpecVariant::EsdsI);
        let d = OpDescriptor::new(id(1), Op::Inc).with_prev([id(0)]);
        s.request(d);
        let e = s.enter(id(1), Digraph::new()).unwrap_err();
        assert_eq!(e.clause, "x.prev ⊆ ops.id");
    }

    #[test]
    fn enter_rejects_dropped_constraints() {
        let mut s = spec(SpecVariant::EsdsI);
        s.request(OpDescriptor::new(id(0), Op::Inc));
        s.request(OpDescriptor::new(id(1), Op::Inc));
        s.request(OpDescriptor::new(id(2), Op::Inc));
        s.enter(id(0), Digraph::new()).unwrap();
        let po1 = Digraph::from_pairs([(id(0), id(1))]);
        s.enter(id(1), po1).unwrap();
        // Entering id(2) with an empty po drops the existing constraint.
        let mut empty = Digraph::new();
        empty.add_node(id(2));
        let e = s.enter(id(2), empty).unwrap_err();
        assert_eq!(e.clause, "po ⊆ new-po");
    }

    #[test]
    fn enter_requires_following_stabilized() {
        let mut s = spec(SpecVariant::EsdsI);
        s.request(OpDescriptor::new(id(0), Op::Inc));
        s.request(OpDescriptor::new(id(1), Op::Inc));
        s.enter(id(0), Digraph::new()).unwrap();
        s.stabilize(id(0)).unwrap();
        // new-po lacking stable-0 ≺ 1 is rejected.
        let mut po = Digraph::new();
        po.add_node(id(0));
        po.add_node(id(1));
        let e = s.enter(id(1), po).unwrap_err();
        assert!(e.clause.contains("stabilized"));
        // With the edge it succeeds.
        let po = Digraph::from_pairs([(id(0), id(1))]);
        s.enter(id(1), po).unwrap();
    }

    #[test]
    fn esds1_stabilize_needs_stable_prefix_but_esds2_does_not() {
        for variant in [SpecVariant::EsdsI, SpecVariant::EsdsII] {
            let mut s = spec(variant);
            s.request(OpDescriptor::new(id(0), Op::Inc));
            s.request(OpDescriptor::new(id(1), Op::Inc));
            s.enter(id(0), Digraph::new()).unwrap();
            s.enter(id(1), Digraph::from_pairs([(id(0), id(1))]))
                .unwrap();
            // Stabilizing id(1) first: ESDS-I rejects (gap), ESDS-II allows.
            let r = s.stabilize(id(1));
            match variant {
                SpecVariant::EsdsI => {
                    assert_eq!(r.unwrap_err().clause, "ops|≺x ⊆ stabilized");
                }
                SpecVariant::EsdsII => {
                    r.unwrap();
                    // Invariant 5.5 would fail for ESDS-I; gaps are legal here.
                    assert!(s.check_invariants().is_empty());
                }
            }
        }
    }

    #[test]
    fn stabilize_rejects_incomparable() {
        let mut s = spec(SpecVariant::EsdsII);
        s.request(OpDescriptor::new(id(0), Op::Inc));
        s.request(OpDescriptor::new(id(1), Op::Inc));
        s.enter(id(0), Digraph::new()).unwrap();
        let mut po = Digraph::new();
        po.add_node(id(0));
        po.add_node(id(1));
        s.enter(id(1), po).unwrap();
        let e = s.stabilize(id(0)).unwrap_err();
        assert!(e.clause.contains("∀y ∈ ops"));
    }

    #[test]
    fn calculate_validates_values() {
        let mut s = spec(SpecVariant::EsdsI);
        s.request(OpDescriptor::new(id(0), Op::Inc));
        s.request(OpDescriptor::new(id(1), Op::Read));
        s.enter(id(0), Digraph::new()).unwrap();
        let mut po = Digraph::new();
        po.add_node(id(0));
        po.add_node(id(1));
        s.enter(id(1), po).unwrap();
        // Unordered read may see 0 or 1, never 7.
        s.calculate(id(1), &0, None).unwrap();
        s.calculate(id(1), &1, None).unwrap();
        let e = s.calculate(id(1), &7, None).unwrap_err();
        assert!(e.clause.contains("valset"));
        // Repeated calculate actions accumulate candidates; response picks
        // one and clears.
        let v = s.response(id(1)).unwrap();
        assert!(v == 0 || v == 1);
        assert!(s.rept().is_empty());
    }

    #[test]
    fn calculate_with_witness() {
        let mut s = spec(SpecVariant::EsdsI);
        s.request(OpDescriptor::new(id(0), Op::Inc));
        s.request(OpDescriptor::new(id(1), Op::Read));
        s.enter(id(0), Digraph::new()).unwrap();
        let mut po = Digraph::new();
        po.add_node(id(0));
        po.add_node(id(1));
        s.enter(id(1), po).unwrap();
        // Witness "read first" explains 0.
        s.calculate(id(1), &0, Some(&[id(1)])).unwrap();
        // Witness "inc, read" explains 1.
        s.calculate(id(1), &1, Some(&[id(0), id(1)])).unwrap();
        // Witness inconsistent with claimed value is rejected.
        let e = s.calculate(id(1), &0, Some(&[id(0), id(1)])).unwrap_err();
        assert!(e.detail.contains("witness"));
    }

    #[test]
    fn strict_calculate_requires_stability() {
        let mut s = spec(SpecVariant::EsdsI);
        s.request(OpDescriptor::new(id(0), Op::Inc).with_strict(true));
        s.enter(id(0), Digraph::new()).unwrap();
        let e = s.calculate(id(0), &1, None).unwrap_err();
        assert_eq!(e.clause, "x.strict ⇒ x ∈ stabilized");
        s.stabilize(id(0)).unwrap();
        s.calculate(id(0), &1, None).unwrap();
    }

    #[test]
    fn unique_stable_values_invariant_5_6() {
        let mut s = spec(SpecVariant::EsdsI);
        s.request(OpDescriptor::new(id(0), Op::Inc));
        s.request(OpDescriptor::new(id(1), Op::Read));
        s.enter(id(0), Digraph::new()).unwrap();
        s.enter(id(1), Digraph::from_pairs([(id(0), id(1))]))
            .unwrap();
        s.stabilize(id(0)).unwrap();
        s.stabilize(id(1)).unwrap();
        assert!(s.check_unique_stable_values(1000).is_empty());
    }
}

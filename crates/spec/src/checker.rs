//! Black-box trace checkers for eventual serializability.
//!
//! Collect the externally-visible trace — requests and responses — plus
//! lightweight witnesses, and validate the paper's behavioural guarantees:
//!
//! * **Theorem 5.7**: every response is *explained* by some total order of
//!   the requested operations consistent with the client-specified
//!   constraints. Deciding this black-box is intractable, so the checker
//!   consumes the witness the algorithm can produce for free (the replica's
//!   local label order at response time) and verifies the explanation in
//!   polynomial time — mirroring how the theorem's proof constructs `to(x)`.
//! * **Theorem 5.8 / Corollary 5.9**: a single *eventual total order*
//!   explains every **strict** response (and, when all operations are
//!   strict, every response) — the caller supplies it (the system-wide
//!   minimum-label order) and the checker replays it.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use esds_core::{
    total_order_consistent, values_along, OpDescriptor, OpId, SerialDataType, WellFormednessError,
};

use crate::users::Users;

/// One observed response.
#[derive(Clone, Debug)]
pub struct RecordedResponse<V> {
    /// The operation answered.
    pub id: OpId,
    /// The returned value.
    pub value: V,
    /// The explaining witness, if the service recorded one: a total order
    /// over a subset of the requested operations, ending at (or containing)
    /// `id`, in application order.
    pub witness: Option<Vec<OpId>>,
}

/// A failed trace check.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TraceViolation {
    /// Which guarantee broke (e.g. `"Theorem 5.8"`).
    pub guarantee: &'static str,
    /// What happened.
    pub detail: String,
}

impl fmt::Display for TraceViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.guarantee, self.detail)
    }
}

impl std::error::Error for TraceViolation {}

fn fail(guarantee: &'static str, detail: impl Into<String>) -> TraceViolation {
    TraceViolation {
        guarantee,
        detail: detail.into(),
    }
}

/// Collects a request/response trace and checks it against the ESDS
/// behavioural theorems.
#[derive(Clone, Debug)]
pub struct TraceChecker<T: SerialDataType> {
    dt: T,
    users: Users<T::Operator>,
    responses: Vec<RecordedResponse<T::Value>>,
}

impl<T: SerialDataType> TraceChecker<T> {
    /// Creates an empty trace.
    pub fn new(dt: T) -> Self {
        TraceChecker {
            dt,
            users: Users::new(),
            responses: Vec::new(),
        }
    }

    /// Records a request, enforcing client well-formedness (paper §4).
    ///
    /// # Errors
    ///
    /// Propagates [`WellFormednessError`] from the `Users` automaton.
    pub fn on_request(
        &mut self,
        desc: OpDescriptor<T::Operator>,
    ) -> Result<(), WellFormednessError> {
        self.users.request(desc)
    }

    /// Records a response (with optional witness).
    pub fn on_response(&mut self, id: OpId, value: T::Value, witness: Option<Vec<OpId>>) {
        self.responses.push(RecordedResponse { id, value, witness });
    }

    /// All requests recorded.
    pub fn requested(&self) -> &BTreeMap<OpId, OpDescriptor<T::Operator>> {
        self.users.requested()
    }

    /// All responses recorded.
    pub fn responses(&self) -> &[RecordedResponse<T::Value>] {
        &self.responses
    }

    /// Checks **Theorem 5.8**: the supplied eventual total order `eto`
    /// explains every strict response. Also validates that `eto` is a
    /// permutation of the requested operations consistent with the
    /// client-specified constraints, and — per **Corollary 5.9** — checks
    /// *all* responses when `all_ops` is true (all-strict traces).
    pub fn check_eventual_order(&self, eto: &[OpId], all_ops: bool) -> Vec<TraceViolation> {
        let mut out = Vec::new();
        let requested = self.users.requested();

        // eto is a permutation of requested ids.
        let eto_set: BTreeSet<OpId> = eto.iter().copied().collect();
        if eto_set.len() != eto.len() {
            out.push(fail("Theorem 5.8", "eventual order repeats an operation"));
        }
        let req_set: BTreeSet<OpId> = requested.keys().copied().collect();
        if eto_set != req_set {
            out.push(fail(
                "Theorem 5.8",
                format!(
                    "eventual order covers {} ops, {} were requested",
                    eto_set.len(),
                    req_set.len()
                ),
            ));
            return out;
        }

        // Consistent with CSC(requested).
        let csc = self.users.csc();
        if !total_order_consistent(eto, &csc) {
            out.push(fail(
                "Theorem 5.8",
                "eventual order violates client-specified constraints",
            ));
        }

        // Replay once; check strict (or all) responses.
        let (_, vals) = values_along(
            &self.dt,
            &self.dt.initial_state(),
            eto.iter().map(|id| &requested[id]),
        );
        for r in &self.responses {
            let strict = requested.get(&r.id).map(|d| d.strict).unwrap_or(false);
            if !(strict || all_ops) {
                continue;
            }
            match vals.get(&r.id) {
                Some(v) if *v == r.value => {}
                Some(v) => out.push(fail(
                    if all_ops && !strict {
                        "Corollary 5.9"
                    } else {
                        "Theorem 5.8"
                    },
                    format!(
                        "response for {} was {:?}, eventual order yields {:?}",
                        r.id, r.value, v
                    ),
                )),
                None => out.push(fail("Theorem 5.8", format!("{} missing from replay", r.id))),
            }
        }
        out
    }

    /// Checks **Theorem 5.7** for every witnessed response: the witness,
    /// extended with all remaining requested operations in a CSC-consistent
    /// order, explains the returned value. Responses without witnesses are
    /// skipped (counted in the second return value).
    pub fn check_witnessed_responses(&self) -> (Vec<TraceViolation>, usize) {
        let mut out = Vec::new();
        let mut skipped = 0usize;
        let requested = self.users.requested();
        let csc = self.users.csc();
        for r in &self.responses {
            let Some(w) = &r.witness else {
                skipped += 1;
                continue;
            };
            // Witness must be CSC-consistent and name requested ops.
            if let Some(bad) = w.iter().find(|id| !requested.contains_key(id)) {
                out.push(fail(
                    "Theorem 5.7",
                    format!("witness of {} names unknown {bad}", r.id),
                ));
                continue;
            }
            let seen: BTreeSet<OpId> = w.iter().copied().collect();
            if seen.len() != w.len() {
                out.push(fail(
                    "Theorem 5.7",
                    format!("witness of {} repeats ids", r.id),
                ));
                continue;
            }
            // Extend to a total order on requested: remaining ops in a
            // CSC-consistent topological order (proof of Theorem 5.7: the
            // replica's order is a prefix of to(x)).
            let rest: BTreeSet<OpId> = requested
                .keys()
                .filter(|id| !seen.contains(id))
                .copied()
                .collect();
            let mut total: Vec<OpId> = w.clone();
            total.extend(
                csc.induced_on(&rest)
                    .topo_sort()
                    .expect("CSC acyclic for well-formed clients"),
            );
            if !total_order_consistent(&total, &csc) {
                out.push(fail(
                    "Theorem 5.7",
                    format!("no CSC-consistent extension of the witness of {}", r.id),
                ));
                continue;
            }
            let (_, vals) = values_along(
                &self.dt,
                &self.dt.initial_state(),
                total.iter().map(|id| &requested[id]),
            );
            match vals.get(&r.id) {
                Some(v) if *v == r.value => {}
                other => out.push(fail(
                    "Theorem 5.7",
                    format!(
                        "witness of {} yields {:?}, response was {:?}",
                        r.id, other, r.value
                    ),
                )),
            }
        }
        (out, skipped)
    }

    /// Builds a CSC-consistent default eventual order for quiescent traces
    /// lacking one (requested ids, topologically sorted by CSC). Real
    /// checks should prefer the algorithm's minimum-label order.
    pub fn default_eto(&self) -> Vec<OpId> {
        self.users
            .csc()
            .topo_sort()
            .expect("CSC acyclic for well-formed clients")
    }
}

/// Checks a *convergence* property over replica final states: all orders
/// equal and all states equal. Returns a description of the first mismatch.
pub fn check_converged<S: PartialEq + fmt::Debug>(
    orders: &[Vec<OpId>],
    states: &[S],
) -> Result<(), String> {
    for w in orders.windows(2) {
        if w[0] != w[1] {
            return Err(format!("replica orders diverge: {:?} vs {:?}", w[0], w[1]));
        }
    }
    for w in states.windows(2) {
        if w[0] != w[1] {
            return Err(format!("replica states diverge: {:?} vs {:?}", w[0], w[1]));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use esds_core::ClientId;

    #[derive(Clone, Copy, Debug)]
    struct Ctr;
    #[derive(Clone, PartialEq, Eq, Debug)]
    enum Op {
        Inc,
        Read,
    }
    impl SerialDataType for Ctr {
        type State = i64;
        type Operator = Op;
        type Value = i64;
        fn initial_state(&self) -> i64 {
            0
        }
        fn apply(&self, s: &i64, op: &Op) -> (i64, i64) {
            match op {
                Op::Inc => (s + 1, s + 1),
                Op::Read => (*s, *s),
            }
        }
    }

    fn id(s: u64) -> OpId {
        OpId::new(ClientId(0), s)
    }

    fn checker_with_two_ops() -> TraceChecker<Ctr> {
        let mut c = TraceChecker::new(Ctr);
        c.on_request(OpDescriptor::new(id(0), Op::Inc).with_strict(true))
            .unwrap();
        c.on_request(OpDescriptor::new(id(1), Op::Read)).unwrap();
        c
    }

    #[test]
    fn eventual_order_explains_strict() {
        let mut c = checker_with_two_ops();
        c.on_response(id(0), 1, None);
        c.on_response(id(1), 0, None); // read before inc — fine, nonstrict
        let v = c.check_eventual_order(&[id(0), id(1)], false);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn eventual_order_catches_wrong_strict_value() {
        let mut c = checker_with_two_ops();
        c.on_response(id(0), 5, None);
        let v = c.check_eventual_order(&[id(0), id(1)], false);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].guarantee, "Theorem 5.8");
    }

    #[test]
    fn all_ops_mode_checks_nonstrict_too() {
        let mut c = checker_with_two_ops();
        c.on_response(id(1), 0, None);
        // Under eto = [inc, read], the read must see 1 in all-strict mode.
        let v = c.check_eventual_order(&[id(0), id(1)], true);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn eto_must_respect_csc() {
        let mut c = TraceChecker::new(Ctr);
        c.on_request(OpDescriptor::new(id(0), Op::Inc)).unwrap();
        c.on_request(OpDescriptor::new(id(1), Op::Read).with_prev([id(0)]))
            .unwrap();
        let v = c.check_eventual_order(&[id(1), id(0)], false);
        assert!(v.iter().any(|x| x.detail.contains("constraints")));
    }

    #[test]
    fn eto_must_cover_all_requests() {
        let c = checker_with_two_ops();
        let v = c.check_eventual_order(&[id(0)], false);
        assert!(!v.is_empty());
    }

    #[test]
    fn witnessed_responses_validated() {
        let mut c = checker_with_two_ops();
        // Read answered 0 with witness [read] (applied first).
        c.on_response(id(1), 0, Some(vec![id(1)]));
        // Read answered 1 with witness [inc, read].
        c.on_response(id(1), 1, Some(vec![id(0), id(1)]));
        // Unwitnessed response is skipped.
        c.on_response(id(0), 1, None);
        let (v, skipped) = c.check_witnessed_responses();
        assert!(v.is_empty(), "{v:?}");
        assert_eq!(skipped, 1);
        // A lying witness is caught.
        c.on_response(id(1), 7, Some(vec![id(0), id(1)]));
        let (v, _) = c.check_witnessed_responses();
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn convergence_helper() {
        assert!(check_converged::<i64>(&[vec![id(0)], vec![id(0)]], &[3, 3]).is_ok());
        assert!(check_converged::<i64>(&[vec![id(0)], vec![id(1)]], &[3, 3]).is_err());
        assert!(check_converged::<i64>(&[], &[3, 4]).is_err());
    }
}

//! The `Users` automaton (paper Fig. 1, §4): the well-formedness
//! assumptions on clients.
//!
//! Clients may issue any operation descriptor, but well-formed clients
//! guarantee (a) operation identifiers are never reused (Invariant 4.1) and
//! (b) `prev` sets name only previously-requested operations, which makes
//! `TC(CSC(requested))` a strict partial order (Invariant 4.2).

use std::collections::BTreeMap;

use esds_core::{csc, Digraph, OpDescriptor, OpId, WellFormednessError};

/// Tracks all requests and enforces the well-formedness assumptions.
///
/// # Examples
///
/// ```
/// use esds_core::{ClientId, OpDescriptor, OpId};
/// use esds_spec::Users;
///
/// let mut users: Users<&str> = Users::new();
/// let a = OpDescriptor::new(OpId::new(ClientId(0), 0), "w");
/// users.request(a.clone()).unwrap();
/// // Reusing the identifier violates Invariant 4.1:
/// assert!(users.request(a).is_err());
/// ```
#[derive(Clone, Debug, Default)]
pub struct Users<O> {
    requested: BTreeMap<OpId, OpDescriptor<O>>,
}

impl<O> Users<O> {
    /// Creates an empty request history.
    pub fn new() -> Self {
        Users {
            requested: BTreeMap::new(),
        }
    }

    /// The `request(x)` output action: records the descriptor after
    /// checking well-formedness.
    ///
    /// # Errors
    ///
    /// [`WellFormednessError::DuplicateId`] if the identifier was used
    /// before; [`WellFormednessError::UnknownPrev`] if `prev` names an
    /// identifier never requested.
    pub fn request(&mut self, desc: OpDescriptor<O>) -> Result<(), WellFormednessError> {
        if self.requested.contains_key(&desc.id) {
            return Err(WellFormednessError::DuplicateId(desc.id));
        }
        for p in &desc.prev {
            if !self.requested.contains_key(p) {
                return Err(WellFormednessError::UnknownPrev {
                    op: desc.id,
                    missing: *p,
                });
            }
        }
        self.requested.insert(desc.id, desc);
        Ok(())
    }

    /// All requests so far.
    pub fn requested(&self) -> &BTreeMap<OpId, OpDescriptor<O>> {
        &self.requested
    }

    /// Whether an id has been requested.
    pub fn contains(&self, id: OpId) -> bool {
        self.requested.contains_key(&id)
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requested.len()
    }

    /// Whether no request was made.
    pub fn is_empty(&self) -> bool {
        self.requested.is_empty()
    }

    /// The client-specified constraints `CSC(requested)` as a digraph —
    /// a strict partial order by Invariant 4.2.
    pub fn csc(&self) -> Digraph<OpId> {
        let mut g = Digraph::from_pairs(csc(self.requested.values()));
        for id in self.requested.keys() {
            g.add_node(*id);
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esds_core::ClientId;

    fn id(c: u32, s: u64) -> OpId {
        OpId::new(ClientId(c), s)
    }

    #[test]
    fn accepts_well_formed_sequences() {
        let mut u: Users<()> = Users::new();
        u.request(OpDescriptor::new(id(0, 0), ())).unwrap();
        u.request(OpDescriptor::new(id(0, 1), ()).with_prev([id(0, 0)]))
            .unwrap();
        u.request(OpDescriptor::new(id(1, 0), ()).with_prev([id(0, 0), id(0, 1)]))
            .unwrap();
        assert_eq!(u.len(), 3);
        // Invariant 4.2: CSC is a strict partial order.
        assert!(u.csc().is_strict_partial_order());
    }

    #[test]
    fn rejects_duplicate_id() {
        let mut u: Users<()> = Users::new();
        u.request(OpDescriptor::new(id(0, 0), ())).unwrap();
        let e = u.request(OpDescriptor::new(id(0, 0), ())).unwrap_err();
        assert_eq!(e, WellFormednessError::DuplicateId(id(0, 0)));
    }

    #[test]
    fn rejects_unknown_prev() {
        let mut u: Users<()> = Users::new();
        let e = u
            .request(OpDescriptor::new(id(0, 0), ()).with_prev([id(9, 9)]))
            .unwrap_err();
        assert!(matches!(e, WellFormednessError::UnknownPrev { .. }));
        // The failed request is not recorded.
        assert!(u.is_empty());
    }

    #[test]
    fn csc_includes_isolated_requests() {
        let mut u: Users<()> = Users::new();
        u.request(OpDescriptor::new(id(0, 0), ())).unwrap();
        assert!(u.csc().nodes().contains(&id(0, 0)));
        assert_eq!(u.csc().edge_count(), 0);
    }
}

//! Streaming (incremental) audit of eventual serializability with
//! **bounded memory**.
//!
//! The batch [`TraceChecker`](crate::TraceChecker) holds the whole trace
//! and checks it post-hoc; fine for tests, unusable for a service meant
//! to run forever. This module turns the same behavioural theorems into
//! an *online decision procedure*: the [`StreamingChecker`] consumes the
//! request/response/stability stream op by op and keeps state only for
//! operations **ahead of the stable watermark**.
//!
//! # Paper vocabulary
//!
//! A *valid serialization* of a set of operation descriptors is a total
//! order consistent with the client-specified constraints `CSC(X)`
//! (paper §3); a service is *eventually serializable* when every strict
//! response is explained by one system-wide total order — the eventual
//! total order, paper Theorem 5.8 — and every response at all is
//! explained by *some* valid serialization (Theorem 5.7). The streaming
//! checker verifies exactly these two statements, incrementally:
//!
//! * **Theorem 5.8 / Corollary 5.9** — [`on_stabilize`] receives the
//!   eventual total order one operation at a time (the system's stable
//!   watermark advancing). Each stabilized operation is applied to a
//!   running state, yielding its *eventual value*; strict responses (all
//!   responses, in [`AuditConfig::check_all`] mode) must match it.
//! * **Theorem 5.7** — [`on_response`] verifies each witnessed response
//!   against the witness (the replica's local label order at response
//!   time), extended CSC-consistently over the *resident window* only.
//!   The witness's stable prefix is not replayed: it is checked against
//!   a running chain digest of the audited eventual order, exploiting
//!   the algorithm's **solid-prefix invariant** (an operation stable at
//!   a replica sits below every tentative operation in its local label
//!   order, so the stable prefix of any honest witness *is* a prefix of
//!   the eventual order).
//!
//! # Watermark retirement
//!
//! An operation is **retired** once it (a) stabilized — took its final
//! place in the eventual order — and (b) was answered. Retirement is
//! strictly in eventual-order position, so the retired set is always the
//! eventual order's prefix `[0, watermark)`. Retiring folds the
//! operation into the running [`AuditCertificate`] (count + chain
//! digest) and drops its descriptor, its constraint-graph node and its
//! bookkeeping: resident memory is `O(unstable window)`, not
//! `O(history)`.
//!
//! A small **grace ring** of the last [`AuditConfig::grace`] retired
//! checkpoints (id, eventual value, state, digest) absorbs the sidecar
//! race where the watermark passes an operation between a replica
//! computing its response and the client feeding it: responses and
//! witnesses reaching back at most `grace` positions behind the
//! watermark are still fully verified; older ones are counted as
//! [`AuditStatus::stale_skipped`] rather than failing the audit. The
//! same classification covers witnesses computed with *older* stability
//! knowledge than the audit's — a replica freshly recovered from a
//! crash may briefly order globally-stable operations after tentative
//! ones while it relearns labels, which bounded memory cannot
//! distinguish from a misordered prefix. Skipped witnesses are visible
//! in the status; the batch [`TraceChecker`](crate::TraceChecker) run
//! in CI remains the complete oracle.
//!
//! # Stream contract
//!
//! Feed [`on_request`] before any event naming the operation; feed
//! [`on_stabilize`] in eventual-order positions (the successive elements
//! of the system's stable prefix); feed each response no later than
//! `grace` retirements after its operation stabilizes. The drivers in
//! `esds-harness`, `esds-runtime` and `esds-wire` maintain this contract
//! mechanically.
//!
//! [`on_request`]: StreamingChecker::on_request
//! [`on_response`]: StreamingChecker::on_response
//! [`on_stabilize`]: StreamingChecker::on_stabilize

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

use esds_core::{
    fnv1a_64, total_order_consistent, Digraph, IdSummary, OpDescriptor, OpId, SerialDataType,
};

use crate::checker::TraceViolation;

/// How many resident op ids a counterexample window snapshot carries.
const WINDOW_SNAPSHOT_CAP: usize = 32;

/// Folds one operation id into a running chain digest (FNV-1a over the
/// previous digest and the id). The audit certificate's digest is
/// `fold_digest(fold_digest(..., x₀), x₁) ...` over the eventual order —
/// recomputable by anyone holding the order, without the checker.
pub fn fold_digest(prev: u64, id: OpId) -> u64 {
    let mut bytes = [0u8; 20];
    bytes[..8].copy_from_slice(&prev.to_le_bytes());
    bytes[8..12].copy_from_slice(&id.client().0.to_le_bytes());
    bytes[12..20].copy_from_slice(&id.seq().to_le_bytes());
    fnv1a_64(&bytes)
}

/// The digest of a whole serialization: [`fold_digest`] folded over it
/// from 0. A batch-side helper for comparing against a streaming
/// [`AuditCertificate`].
pub fn order_digest(ids: &[OpId]) -> u64 {
    ids.iter().fold(0, |d, &id| fold_digest(d, id))
}

/// One event of the audited stream, in the order the service emits them.
#[derive(Clone, Debug, PartialEq)]
pub enum AuditEvent<O, V> {
    /// A client issued an operation descriptor.
    Request(OpDescriptor<O>),
    /// A replica answered an operation.
    Response {
        /// The operation answered.
        id: OpId,
        /// The returned value.
        value: V,
        /// The replica's local label order up to and including `id`, when
        /// witness recording is on.
        witness: Option<Vec<OpId>>,
    },
    /// The system's stable watermark advanced past `id`: the operation
    /// took its final position in the eventual total order.
    Stabilize(OpId),
}

/// Tuning knobs for a [`StreamingChecker`].
#[derive(Clone, Copy, Debug)]
pub struct AuditConfig {
    /// Checkpoints kept after retirement: responses and witnesses may
    /// trail the watermark by up to this many positions and still be
    /// fully verified. Memory cost is one data-type state per slot.
    pub grace: usize,
    /// Check **every** response against the eventual order, not just the
    /// strict ones (Corollary 5.9's all-strict reading). Off by default:
    /// nonstrict responses are only bound by their witnesses.
    pub check_all: bool,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            grace: 64,
            check_all: false,
        }
    }
}

/// A violation found by the streaming audit, carrying the minimal
/// counterexample context: the broken guarantee, the watermark at
/// failure, and a snapshot of the resident (unretired) window.
#[derive(Clone, Debug)]
pub struct AuditViolation {
    /// Which guarantee broke and how (same vocabulary as the batch
    /// checker's [`TraceViolation`]).
    pub violation: TraceViolation,
    /// Retired-operation count when the violation was detected (the
    /// watermark position).
    pub watermark: u64,
    /// Number of operations resident when the violation was detected.
    pub resident: usize,
    /// Up to `WINDOW_SNAPSHOT_CAP` (32) resident op ids — the
    /// counterexample window the violation lives in.
    pub window: Vec<OpId>,
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [watermark {}, {} resident",
            self.violation, self.watermark, self.resident
        )?;
        if !self.window.is_empty() {
            write!(f, ", window {:?}", self.window)?;
        }
        write!(f, "]")
    }
}

impl std::error::Error for AuditViolation {}

/// The running certificate a [`StreamingChecker`] folds retired
/// operations into: how many operations the audited eventual order
/// covers, and the chain digest of their sequence ([`order_digest`] of
/// the serialization). Two green checkers that end with equal
/// certificates audited the *same* serialization.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AuditCertificate {
    /// Operations covered by the audited eventual order.
    pub ops: u64,
    /// Chain digest of the eventual order ([`fold_digest`] folded over
    /// it from 0).
    pub digest: u64,
}

impl fmt::Display for AuditCertificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ops, digest {:016x}", self.ops, self.digest)
    }
}

/// A point-in-time summary of a [`StreamingChecker`] — what a sidecar
/// exposes as its audit status.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AuditStatus {
    /// Requests accepted.
    pub requests: u64,
    /// Responses observed.
    pub responses: u64,
    /// Witnessed responses fully verified (Theorem 5.7).
    pub witnesses_checked: u64,
    /// Responses carrying no witness (Theorem 5.7 not applicable).
    pub witnesses_skipped: u64,
    /// Responses or witnesses whose stable prefix could not be
    /// re-verified in bounded memory: they trailed the watermark by more
    /// than the grace window, or were computed with older stability
    /// knowledge than the audit's (crash recovery).
    pub stale_skipped: u64,
    /// Operations stabilized (length of the audited eventual order).
    pub stabilized: u64,
    /// Operations retired (watermark position; `≤ stabilized`).
    pub retired: u64,
    /// Operations currently resident (requested, not yet retired).
    pub resident: usize,
    /// High-water mark of `resident` — the memory bound actually paid.
    pub peak_resident: usize,
    /// Whether a violation has been found (the checker is latched red).
    pub failed: bool,
}

impl AuditStatus {
    /// Watermark lag: operations requested but not yet retired — the
    /// unstable frontier the checker's memory is proportional to.
    pub fn lag(&self) -> u64 {
        self.requests.saturating_sub(self.retired)
    }
}

impl fmt::Display for AuditStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} req / {} resp / {} stabilized / {} retired; {} witnesses ({} skipped, {} stale); \
             resident {} (peak {}); {}",
            self.requests,
            self.responses,
            self.stabilized,
            self.retired,
            self.witnesses_checked,
            self.witnesses_skipped,
            self.stale_skipped,
            self.resident,
            self.peak_resident,
            if self.failed { "FAILED" } else { "ok" }
        )
    }
}

/// A resident (unretired) operation.
#[derive(Clone, Debug)]
struct WindowOp<T: SerialDataType> {
    desc: OpDescriptor<T::Operator>,
    /// `Some((eventual value, chain digest through this op))` once the
    /// operation stabilized.
    eventual: Option<(T::Value, u64)>,
    answered: bool,
}

/// One retired operation kept in the grace ring.
#[derive(Clone, Debug)]
struct Checkpoint<T: SerialDataType> {
    id: OpId,
    strict: bool,
    /// The operation's eventual value (for late Theorem 5.8 checks).
    value: T::Value,
    /// State after the eventual-order prefix ending at this operation
    /// (the replay base for witnesses whose stable prefix ends here).
    state: T::State,
    /// Chain digest of the eventual-order prefix ending at this
    /// operation.
    digest: u64,
}

/// Incremental checker of eventual serializability with bounded memory.
///
/// The module-level docs in `streaming.rs` give the theory; see [`AuditEvent`] for
/// the stream. Every mutating method returns the first violation found
/// and latches it: once red, the checker stays red and further events
/// are ignored.
///
/// # Examples
///
/// ```
/// use esds_core::{ClientId, OpDescriptor, OpId, SerialDataType};
/// use esds_spec::{AuditEvent, StreamingChecker};
///
/// #[derive(Clone, Copy, Debug)]
/// struct Ctr;
/// #[derive(Clone, PartialEq, Eq, Debug)]
/// enum Op { Inc, Read }
/// impl SerialDataType for Ctr {
///     type State = i64;
///     type Operator = Op;
///     type Value = i64;
///     fn initial_state(&self) -> i64 { 0 }
///     fn apply(&self, s: &i64, op: &Op) -> (i64, i64) {
///         match op { Op::Inc => (s + 1, s + 1), Op::Read => (*s, *s) }
///     }
/// }
///
/// let id = |s| OpId::new(ClientId(0), s);
/// let mut chk = StreamingChecker::new(Ctr);
/// chk.on_request(OpDescriptor::new(id(0), Op::Inc).with_strict(true))?;
/// chk.on_request(OpDescriptor::new(id(1), Op::Read))?;
/// // The read answered from a replica that had applied both ops:
/// chk.on_response(id(1), 1, Some(vec![id(0), id(1)]))?;
/// // The watermark advances; the strict inc answers its eventual value.
/// chk.on_stabilize(id(0))?;
/// chk.on_stabilize(id(1))?;
/// chk.on_response(id(0), 1, None)?;
/// let cert = chk.finish()?;
/// assert_eq!(cert.ops, 2);
/// # Ok::<(), esds_spec::AuditViolation>(())
/// ```
#[derive(Clone, Debug)]
pub struct StreamingChecker<T: SerialDataType> {
    dt: T,
    cfg: AuditConfig,
    /// Every id ever requested — `O(clients + reordering exceptions)`.
    seen: IdSummary,
    /// Resident operations: requested, not yet retired.
    window: BTreeMap<OpId, WindowOp<T>>,
    /// Client-specified constraints restricted to the window. Edges from
    /// retired predecessors are discharged at retirement (a retired op
    /// precedes everything resident in any audited extension).
    csc: Digraph<OpId>,
    /// Stabilized-but-unretired ops, in eventual order.
    queue: VecDeque<OpId>,
    /// State after the whole stabilized prefix (the stabilization
    /// frontier) — each newly stabilized op's eventual value comes from
    /// applying it here.
    stab_state: T::State,
    stab_digest: u64,
    stabilized_total: u64,
    /// State and digest at the horizon: the eventual-order prefix ending
    /// just before the grace ring.
    base_state: T::State,
    base_digest: u64,
    /// The last `cfg.grace` retired checkpoints.
    ring: VecDeque<Checkpoint<T>>,
    retired_total: u64,
    /// Responses awaiting their op's stabilization for the Theorem 5.8
    /// value check: `(value, strict)`.
    pending: BTreeMap<OpId, Vec<(T::Value, bool)>>,
    requests: u64,
    responses: u64,
    witnesses_checked: u64,
    witnesses_skipped: u64,
    stale_skipped: u64,
    peak_resident: usize,
    failure: Option<AuditViolation>,
}

impl<T: SerialDataType> StreamingChecker<T> {
    /// Creates a checker with the default [`AuditConfig`].
    pub fn new(dt: T) -> Self {
        Self::with_config(dt, AuditConfig::default())
    }

    /// Creates a checker with an explicit configuration.
    pub fn with_config(dt: T, cfg: AuditConfig) -> Self {
        let s0 = dt.initial_state();
        StreamingChecker {
            dt,
            cfg,
            seen: IdSummary::new(),
            window: BTreeMap::new(),
            csc: Digraph::new(),
            queue: VecDeque::new(),
            stab_state: s0.clone(),
            stab_digest: 0,
            stabilized_total: 0,
            base_state: s0,
            base_digest: 0,
            ring: VecDeque::new(),
            retired_total: 0,
            pending: BTreeMap::new(),
            requests: 0,
            responses: 0,
            witnesses_checked: 0,
            witnesses_skipped: 0,
            stale_skipped: 0,
            peak_resident: 0,
            failure: None,
        }
    }

    /// Feeds one event, dispatching on its kind.
    ///
    /// # Errors
    ///
    /// The first [`AuditViolation`] found; the checker latches it.
    pub fn on_event(&mut self, event: AuditEvent<T::Operator, T::Value>) -> AuditResult {
        match event {
            AuditEvent::Request(desc) => self.on_request(desc),
            AuditEvent::Response { id, value, witness } => self.on_response(id, value, witness),
            AuditEvent::Stabilize(id) => self.on_stabilize(id),
        }
    }

    /// Records a request, enforcing client well-formedness (paper §4):
    /// fresh id, known `prev`.
    ///
    /// # Errors
    ///
    /// Duplicate ids and unknown constraint targets are violations.
    pub fn on_request(&mut self, desc: OpDescriptor<T::Operator>) -> AuditResult {
        self.check_latch()?;
        if self.seen.contains(desc.id) {
            return self.fail(
                "well-formedness §4",
                format!("duplicate request {}", desc.id),
            );
        }
        if let Some(p) = desc.prev.iter().find(|p| !self.seen.contains(**p)) {
            return self.fail(
                "well-formedness §4",
                format!("request {} constrains unknown {p}", desc.id),
            );
        }
        self.seen.insert(desc.id);
        self.csc.add_node(desc.id);
        for &p in &desc.prev {
            // Retired predecessors are discharged: they precede every
            // resident op in any extension the audit will consider.
            if self.window.contains_key(&p) {
                self.csc.add_edge(p, desc.id);
            }
        }
        self.window.insert(
            desc.id,
            WindowOp {
                desc,
                eventual: None,
                answered: false,
            },
        );
        self.requests += 1;
        self.peak_resident = self.peak_resident.max(self.window.len());
        Ok(())
    }

    /// Records that the stable watermark advanced past `id`: the next
    /// position of the eventual total order is `id`. Applies the op at
    /// the stabilization frontier (its *eventual value*), checks its
    /// client-specified constraints, resolves responses held for it, and
    /// retires every answered op at the front of the stabilized queue.
    ///
    /// # Errors
    ///
    /// Unknown or repeated ids, constraint violations, and mismatched
    /// held strict responses are violations.
    pub fn on_stabilize(&mut self, id: OpId) -> AuditResult {
        self.check_latch()?;
        if !self.seen.contains(id) {
            return self.fail(
                "Theorem 5.8",
                format!("eventual order names unrequested {id}"),
            );
        }
        let Some(wop) = self.window.get(&id) else {
            // Retired ⇒ already stabilized.
            return self.fail(
                "Theorem 5.8",
                format!("eventual order repeats an operation ({id})"),
            );
        };
        if wop.eventual.is_some() {
            return self.fail(
                "Theorem 5.8",
                format!("eventual order repeats an operation ({id})"),
            );
        }
        // CSC: every direct predecessor must already hold its eventual
        // position (resident ⇒ stabilized; retired ⇒ trivially before).
        // Direct edges suffice — respecting them pointwise at every
        // stabilization makes the whole order respect the closure.
        if let Some(p) = wop
            .desc
            .prev
            .iter()
            .find(|p| matches!(self.window.get(p), Some(q) if q.eventual.is_none()))
        {
            let p = *p;
            return self.fail(
                "Theorem 5.8",
                format!("eventual order violates client-specified constraints ({p} after {id})"),
            );
        }
        let (next, v) = self.dt.apply(&self.stab_state, &wop.desc.op);
        self.stab_state = next;
        self.stab_digest = fold_digest(self.stab_digest, id);
        self.stabilized_total += 1;
        let digest = self.stab_digest;
        let wop = self.window.get_mut(&id).expect("checked resident above");
        wop.eventual = Some((v.clone(), digest));
        self.queue.push_back(id);
        // Resolve responses that were waiting on this eventual value.
        if let Some(held) = self.pending.remove(&id) {
            for (rv, strict) in held {
                if rv != v {
                    return self.fail(
                        if strict {
                            "Theorem 5.8"
                        } else {
                            "Corollary 5.9"
                        },
                        format!("response for {id} was {rv:?}, eventual order yields {v:?}"),
                    );
                }
            }
        }
        self.try_retire();
        Ok(())
    }

    /// Records a response: the Theorem 5.8 / Corollary 5.9 value check
    /// against the eventual order (immediately if `id` has stabilized,
    /// held as pending otherwise), then the Theorem 5.7 witness check
    /// when a witness is present.
    ///
    /// # Errors
    ///
    /// Value mismatches and inexplicable witnesses are violations.
    pub fn on_response(
        &mut self,
        id: OpId,
        value: T::Value,
        witness: Option<Vec<OpId>>,
    ) -> AuditResult {
        self.check_latch()?;
        self.responses += 1;
        if !self.seen.contains(id) {
            return self.fail("Theorem 5.7", format!("response for unrequested {id}"));
        }
        if let Some(wop) = self.window.get_mut(&id) {
            wop.answered = true;
            let strict = wop.desc.strict;
            let eventual = wop.eventual.as_ref().map(|(v, _)| v.clone());
            if strict || self.cfg.check_all {
                match eventual {
                    Some(v) if v != value => {
                        return self.fail(
                            if strict {
                                "Theorem 5.8"
                            } else {
                                "Corollary 5.9"
                            },
                            format!("response for {id} was {value:?}, eventual order yields {v:?}"),
                        );
                    }
                    Some(_) => {}
                    None => {
                        self.pending
                            .entry(id)
                            .or_default()
                            .push((value.clone(), strict));
                    }
                }
            }
        } else {
            // Already retired: check against the grace ring, if the
            // checkpoint is still resident.
            match self.ring.iter().find(|c| c.id == id) {
                Some(cp) if (cp.strict || self.cfg.check_all) && cp.value != value => {
                    let (v, strict) = (cp.value.clone(), cp.strict);
                    return self.fail(
                        if strict {
                            "Theorem 5.8"
                        } else {
                            "Corollary 5.9"
                        },
                        format!("response for {id} was {value:?}, eventual order yields {v:?}"),
                    );
                }
                Some(_) => {}
                None => self.stale_skipped += 1,
            }
        }
        match witness {
            Some(w) => self.check_witness(id, &value, &w)?,
            None => self.witnesses_skipped += 1,
        }
        self.try_retire();
        Ok(())
    }

    /// Declares the stream over: every requested operation must have
    /// stabilized (the eventual order covers the whole trace — the batch
    /// checker's permutation check). Returns the final certificate.
    ///
    /// # Errors
    ///
    /// A latched violation, or an operation the eventual order never
    /// covered.
    pub fn finish(&self) -> Result<AuditCertificate, AuditViolation> {
        if let Some(v) = &self.failure {
            return Err(v.clone());
        }
        if let Some((id, _)) = self.window.iter().find(|(_, w)| w.eventual.is_none()) {
            return Err(self.make_violation(
                "Theorem 5.8",
                format!(
                    "eventual order covers {} ops, {} were requested ({id} never stabilized)",
                    self.stabilized_total, self.requests
                ),
            ));
        }
        Ok(self.certificate())
    }

    /// The running certificate: operations stabilized so far and the
    /// chain digest of their order. Final and complete once [`finish`]
    /// returns `Ok`.
    ///
    /// [`finish`]: StreamingChecker::finish
    pub fn certificate(&self) -> AuditCertificate {
        AuditCertificate {
            ops: self.stabilized_total,
            digest: self.stab_digest,
        }
    }

    /// The current audit status (counters, watermark, memory bound).
    pub fn status(&self) -> AuditStatus {
        AuditStatus {
            requests: self.requests,
            responses: self.responses,
            witnesses_checked: self.witnesses_checked,
            witnesses_skipped: self.witnesses_skipped,
            stale_skipped: self.stale_skipped,
            stabilized: self.stabilized_total,
            retired: self.retired_total,
            resident: self.window.len(),
            peak_resident: self.peak_resident,
            failed: self.failure.is_some(),
        }
    }

    /// The latched violation, if the audit has failed.
    pub fn violation(&self) -> Option<&AuditViolation> {
        self.failure.as_ref()
    }

    /// Operations currently resident (requested, not retired).
    pub fn resident(&self) -> usize {
        self.window.len()
    }

    // ------------------------------------------------------------------
    // Internals.

    fn check_latch(&self) -> AuditResult {
        match &self.failure {
            Some(v) => Err(v.clone()),
            None => Ok(()),
        }
    }

    fn make_violation(&self, guarantee: &'static str, detail: String) -> AuditViolation {
        AuditViolation {
            violation: TraceViolation { guarantee, detail },
            watermark: self.retired_total,
            resident: self.window.len(),
            window: self
                .window
                .keys()
                .take(WINDOW_SNAPSHOT_CAP)
                .copied()
                .collect(),
        }
    }

    fn fail(&mut self, guarantee: &'static str, detail: String) -> AuditResult {
        let v = self.make_violation(guarantee, detail);
        self.failure = Some(v.clone());
        Err(v)
    }

    fn is_retired(&self, id: OpId) -> bool {
        self.seen.contains(id) && !self.window.contains_key(&id)
    }

    /// Retired prefix length covered by the horizon checkpoint.
    fn horizon(&self) -> u64 {
        self.retired_total - self.ring.len() as u64
    }

    fn digest_at(&self, k: u64) -> u64 {
        if k == self.horizon() {
            self.base_digest
        } else {
            self.ring[(k - self.horizon() - 1) as usize].digest
        }
    }

    fn state_at(&self, k: u64) -> &T::State {
        if k == self.horizon() {
            &self.base_state
        } else {
            &self.ring[(k - self.horizon() - 1) as usize].state
        }
    }

    /// The Theorem 5.7 check for one witnessed response, windowed.
    ///
    /// The witness `w` is split at `k`, the length of its leading run of
    /// retired operations. By the solid-prefix invariant that run must
    /// be exactly the eventual order's prefix `[0, k)` — verified
    /// against the chain digest checkpoint (no replay, no stored
    /// descriptors). The tentative remainder `w[k..]` is extended with
    /// the rest of the resident window in CSC-consistent order and
    /// replayed from the checkpoint state at `k` — exactly the batch
    /// checker's `to(x)` construction, restricted to the window.
    fn check_witness(&mut self, x: OpId, value: &T::Value, w: &[OpId]) -> AuditResult {
        let mut k = 0usize;
        while k < w.len() && self.is_retired(w[k]) {
            k += 1;
        }
        let mut suffix = BTreeSet::new();
        for &wid in &w[k..] {
            if !self.seen.contains(wid) {
                return self.fail("Theorem 5.7", format!("witness of {x} names unknown {wid}"));
            }
            if self.is_retired(wid) {
                // A retired operation after a tentative one: the witness
                // was computed with *older* stability knowledge than the
                // audit's (e.g. by a replica freshly recovered from a
                // crash, still rebuilding label estimates). In bounded
                // memory that is indistinguishable from a misordered
                // prefix, so it is counted and skipped, not failed; the
                // batch `TraceChecker` remains the complete oracle.
                self.stale_skipped += 1;
                return Ok(());
            }
            if !suffix.insert(wid) {
                return self.fail("Theorem 5.7", format!("witness of {x} repeats ids"));
            }
        }
        if (k as u64) < self.horizon() {
            // The witness's stable prefix predates the grace ring; the
            // memory to verify it has been retired. Contract kept ⇒ this
            // only happens for very stale duplicates.
            self.stale_skipped += 1;
            return Ok(());
        }
        let folded = w[..k].iter().fold(0, |d, &id| fold_digest(d, id));
        if folded != self.digest_at(k as u64) {
            // The witness's leading retired run is not the eventual
            // order's prefix. Honest causes exist (a recovering replica
            // reorders not-yet-relearned labels), and replaying such a
            // witness would need state retired long ago — skip, counted.
            self.stale_skipped += 1;
            return Ok(());
        }
        // CSC-consistent extension over the window (Theorem 5.7's to(x)).
        let rest: BTreeSet<OpId> = self
            .window
            .keys()
            .filter(|id| !suffix.contains(id))
            .copied()
            .collect();
        let mut total: Vec<OpId> = w[k..].to_vec();
        total.extend(
            self.csc
                .induced_on(&rest)
                .topo_sort()
                .expect("CSC acyclic for well-formed clients"),
        );
        if !total_order_consistent(&total, &self.csc) {
            return self.fail(
                "Theorem 5.7",
                format!("no CSC-consistent extension of the witness of {x}"),
            );
        }
        // Replay the extension from the checkpoint at k, capturing x's
        // value; a retired x is read off its grace checkpoint instead.
        let mut got: Option<T::Value> = if self.window.contains_key(&x) {
            None
        } else {
            match self.ring.iter().find(|c| c.id == x) {
                Some(cp) => Some(cp.value.clone()),
                None => {
                    self.stale_skipped += 1;
                    return Ok(());
                }
            }
        };
        let mut state = self.state_at(k as u64).clone();
        for wid in total {
            let op = &self.window[&wid].desc.op;
            let (next, v) = self.dt.apply(&state, op);
            state = next;
            if wid == x {
                got = Some(v);
            }
        }
        match got {
            Some(v) if v == *value => {
                self.witnesses_checked += 1;
                Ok(())
            }
            other => self.fail(
                "Theorem 5.7",
                format!("witness of {x} yields {other:?}, response was {value:?}"),
            ),
        }
    }

    /// Retires every answered operation at the front of the stabilized
    /// queue: drops its descriptor and constraint node, pushes its
    /// checkpoint onto the grace ring, and advances the watermark. The
    /// retired set is always the eventual order's prefix, which is what
    /// makes witness-prefix digest checks sound.
    fn try_retire(&mut self) {
        while let Some(&front) = self.queue.front() {
            if !self.window.get(&front).map(|w| w.answered).unwrap_or(false) {
                break;
            }
            self.queue.pop_front();
            let wop = self.window.remove(&front).expect("queued ops are resident");
            let drop: BTreeSet<OpId> = [front].into();
            self.csc.remove_nodes(&drop);
            self.pending.remove(&front);
            let prev_state = self
                .ring
                .back()
                .map(|c| c.state.clone())
                .unwrap_or_else(|| self.base_state.clone());
            let (state, _) = self.dt.apply(&prev_state, &wop.desc.op);
            let (value, digest) = wop.eventual.expect("queued ops are stabilized");
            self.ring.push_back(Checkpoint {
                id: front,
                strict: wop.desc.strict,
                value,
                state,
                digest,
            });
            self.retired_total += 1;
            while self.ring.len() > self.cfg.grace {
                let old = self.ring.pop_front().expect("len checked");
                self.base_state = old.state;
                self.base_digest = old.digest;
            }
        }
    }
}

/// The result of feeding one event: `Ok` or the first (latched)
/// violation.
pub type AuditResult = Result<(), AuditViolation>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceChecker;
    use esds_core::ClientId;

    #[derive(Clone, Copy, Debug)]
    struct Ctr;
    #[derive(Clone, PartialEq, Eq, Debug)]
    enum Op {
        Inc,
        Read,
    }
    impl SerialDataType for Ctr {
        type State = i64;
        type Operator = Op;
        type Value = i64;
        fn initial_state(&self) -> i64 {
            0
        }
        fn apply(&self, s: &i64, op: &Op) -> (i64, i64) {
            match op {
                Op::Inc => (s + 1, s + 1),
                Op::Read => (*s, *s),
            }
        }
    }

    fn id(s: u64) -> OpId {
        OpId::new(ClientId(0), s)
    }

    #[test]
    fn happy_path_certificate_matches_order_digest() {
        let mut chk = StreamingChecker::new(Ctr);
        chk.on_request(OpDescriptor::new(id(0), Op::Inc).with_strict(true))
            .unwrap();
        chk.on_request(OpDescriptor::new(id(1), Op::Read)).unwrap();
        chk.on_response(id(1), 1, Some(vec![id(0), id(1)])).unwrap();
        chk.on_stabilize(id(0)).unwrap();
        chk.on_stabilize(id(1)).unwrap();
        chk.on_response(id(0), 1, None).unwrap();
        let cert = chk.finish().unwrap();
        assert_eq!(cert.ops, 2);
        assert_eq!(cert.digest, order_digest(&[id(0), id(1)]));
        let st = chk.status();
        assert_eq!(st.witnesses_checked, 1);
        assert_eq!(st.witnesses_skipped, 1);
        assert_eq!(st.retired, 2, "both answered + stabilized ops retire");
        assert_eq!(st.resident, 0);
        assert!(!st.failed);
    }

    #[test]
    fn well_formedness_rejections() {
        let mut chk = StreamingChecker::new(Ctr);
        chk.on_request(OpDescriptor::new(id(0), Op::Inc)).unwrap();
        let dup = chk.on_request(OpDescriptor::new(id(0), Op::Read));
        assert!(dup.is_err(), "duplicate id must be rejected");
        // Latched: everything after the first violation fails.
        assert!(chk.on_request(OpDescriptor::new(id(1), Op::Read)).is_err());
        assert!(chk.finish().is_err());

        let mut chk = StreamingChecker::new(Ctr);
        let e = chk
            .on_request(OpDescriptor::new(id(0), Op::Read).with_prev([id(7)]))
            .unwrap_err();
        assert!(e.violation.detail.contains("unknown"), "{e}");
    }

    #[test]
    fn strict_value_mismatch_caught_both_orders() {
        // Response after stabilize.
        let mut chk = StreamingChecker::new(Ctr);
        chk.on_request(OpDescriptor::new(id(0), Op::Inc).with_strict(true))
            .unwrap();
        chk.on_stabilize(id(0)).unwrap();
        let e = chk.on_response(id(0), 5, None).unwrap_err();
        assert_eq!(e.violation.guarantee, "Theorem 5.8");

        // Response before stabilize (held pending, checked at stabilize).
        let mut chk = StreamingChecker::new(Ctr);
        chk.on_request(OpDescriptor::new(id(0), Op::Inc).with_strict(true))
            .unwrap();
        chk.on_response(id(0), 5, None).unwrap();
        let e = chk.on_stabilize(id(0)).unwrap_err();
        assert_eq!(e.violation.guarantee, "Theorem 5.8");
        assert_eq!(e.watermark, 0);
    }

    #[test]
    fn check_all_mode_checks_nonstrict_too() {
        let mut chk = StreamingChecker::with_config(
            Ctr,
            AuditConfig {
                check_all: true,
                ..AuditConfig::default()
            },
        );
        chk.on_request(OpDescriptor::new(id(0), Op::Inc)).unwrap();
        chk.on_request(OpDescriptor::new(id(1), Op::Read)).unwrap();
        chk.on_response(id(1), 0, None).unwrap();
        chk.on_stabilize(id(0)).unwrap();
        // Under eto = [inc, read] the read's eventual value is 1, not 0.
        let e = chk.on_stabilize(id(1)).unwrap_err();
        assert_eq!(e.violation.guarantee, "Corollary 5.9");
    }

    #[test]
    fn lying_witness_caught() {
        let mut chk = StreamingChecker::new(Ctr);
        chk.on_request(OpDescriptor::new(id(0), Op::Inc)).unwrap();
        chk.on_request(OpDescriptor::new(id(1), Op::Read)).unwrap();
        let e = chk
            .on_response(id(1), 7, Some(vec![id(0), id(1)]))
            .unwrap_err();
        assert_eq!(e.violation.guarantee, "Theorem 5.7");
        assert!(e.violation.detail.contains("yields"), "{e}");
    }

    #[test]
    fn witness_naming_unknown_id_caught() {
        let mut chk = StreamingChecker::new(Ctr);
        chk.on_request(OpDescriptor::new(id(0), Op::Read)).unwrap();
        let e = chk
            .on_response(id(0), 0, Some(vec![id(9), id(0)]))
            .unwrap_err();
        assert!(e.violation.detail.contains("unknown"), "{e}");
    }

    #[test]
    fn witness_violating_csc_caught() {
        let mut chk = StreamingChecker::new(Ctr);
        chk.on_request(OpDescriptor::new(id(0), Op::Inc)).unwrap();
        chk.on_request(OpDescriptor::new(id(1), Op::Read).with_prev([id(0)]))
            .unwrap();
        // Witness orders the read before its constraint target.
        let e = chk
            .on_response(id(1), 0, Some(vec![id(1), id(0)]))
            .unwrap_err();
        assert_eq!(e.violation.guarantee, "Theorem 5.7");
        assert!(e.violation.detail.contains("CSC-consistent"), "{e}");
    }

    #[test]
    fn eventual_order_violating_csc_caught() {
        let mut chk = StreamingChecker::new(Ctr);
        chk.on_request(OpDescriptor::new(id(0), Op::Inc)).unwrap();
        chk.on_request(OpDescriptor::new(id(1), Op::Read).with_prev([id(0)]))
            .unwrap();
        let e = chk.on_stabilize(id(1)).unwrap_err();
        assert_eq!(e.violation.guarantee, "Theorem 5.8");
        assert!(e.violation.detail.contains("constraints"), "{e}");
    }

    #[test]
    fn eventual_order_repeat_and_unknown_caught() {
        let mut chk = StreamingChecker::new(Ctr);
        chk.on_request(OpDescriptor::new(id(0), Op::Inc)).unwrap();
        chk.on_stabilize(id(0)).unwrap();
        assert!(chk.on_stabilize(id(0)).is_err(), "repeat");

        let mut chk = StreamingChecker::new(Ctr);
        assert!(chk.on_stabilize(id(3)).is_err(), "unrequested");
    }

    #[test]
    fn finish_requires_full_coverage() {
        let mut chk = StreamingChecker::new(Ctr);
        chk.on_request(OpDescriptor::new(id(0), Op::Inc)).unwrap();
        let e = chk.finish().unwrap_err();
        assert!(e.violation.detail.contains("never stabilized"), "{e}");
    }

    #[test]
    fn retirement_bounds_memory() {
        // Sequential workload: request → respond → stabilize, 10k ops.
        // Resident must track the (tiny) unstable frontier, not history.
        let mut chk = StreamingChecker::with_config(
            Ctr,
            AuditConfig {
                grace: 8,
                check_all: true,
            },
        );
        let n = 10_000u64;
        let mut expect = 0i64;
        let mut order = Vec::new();
        for s in 0..n {
            chk.on_request(OpDescriptor::new(id(s), Op::Inc)).unwrap();
            expect += 1;
            chk.on_response(id(s), expect, None).unwrap();
            chk.on_stabilize(id(s)).unwrap();
            order.push(id(s));
            assert!(chk.resident() <= 2, "resident grew at {s}");
        }
        let cert = chk.finish().unwrap();
        assert_eq!(cert.ops, n);
        assert_eq!(cert.digest, order_digest(&order));
        let st = chk.status();
        assert_eq!(st.retired, n);
        assert!(
            st.peak_resident <= 2,
            "peak resident {} should be O(1) for a sequential stream",
            st.peak_resident
        );
    }

    #[test]
    fn grace_ring_verifies_trailing_witnesses() {
        // Retire a prefix, then verify a witness whose ops are all
        // retired: the digest checkpoint must explain it with no
        // descriptors resident.
        let mut chk = StreamingChecker::with_config(
            Ctr,
            AuditConfig {
                grace: 4,
                check_all: false,
            },
        );
        for s in 0..3u64 {
            chk.on_request(OpDescriptor::new(id(s), Op::Inc)).unwrap();
            chk.on_response(id(s), s as i64 + 1, None).unwrap();
            chk.on_stabilize(id(s)).unwrap();
        }
        assert_eq!(chk.status().retired, 3);
        // A duplicate delivery of op 2's response, witness = the full
        // (now fully retired) prefix.
        chk.on_response(id(2), 3, Some(vec![id(0), id(1), id(2)]))
            .unwrap();
        assert_eq!(chk.status().witnesses_checked, 1);
        assert_eq!(chk.status().stale_skipped, 0);
        // A witness whose retired prefix is misordered relative to the
        // audited eventual order is indistinguishable (in bounded
        // memory) from one computed by a recovering replica with older
        // stability knowledge: it is counted and skipped, never failed.
        chk.on_response(id(2), 3, Some(vec![id(1), id(0), id(2)]))
            .unwrap();
        assert_eq!(chk.status().stale_skipped, 1);
        assert_eq!(chk.status().witnesses_checked, 1);
    }

    #[test]
    fn beyond_grace_is_skipped_not_failed() {
        let mut chk = StreamingChecker::with_config(
            Ctr,
            AuditConfig {
                grace: 2,
                check_all: true,
            },
        );
        for s in 0..10u64 {
            chk.on_request(OpDescriptor::new(id(s), Op::Inc)).unwrap();
            chk.on_response(id(s), s as i64 + 1, None).unwrap();
            chk.on_stabilize(id(s)).unwrap();
        }
        // Op 0 retired long ago; its checkpoint is gone.
        chk.on_response(id(0), 999, None).unwrap();
        assert_eq!(chk.status().stale_skipped, 1);
        assert!(chk.finish().is_ok(), "stale responses don't fail the audit");
    }

    #[test]
    fn unanswered_ops_pin_the_window() {
        let mut chk = StreamingChecker::new(Ctr);
        chk.on_request(OpDescriptor::new(id(0), Op::Inc)).unwrap();
        chk.on_request(OpDescriptor::new(id(1), Op::Inc)).unwrap();
        chk.on_stabilize(id(0)).unwrap();
        chk.on_stabilize(id(1)).unwrap();
        chk.on_response(id(1), 2, None).unwrap();
        // Op 1 is answered and stabilized but op 0 (earlier position)
        // is unanswered: retirement must not pass it.
        assert_eq!(chk.status().retired, 0);
        chk.on_response(id(0), 1, None).unwrap();
        assert_eq!(chk.status().retired, 2);
    }

    #[test]
    fn agrees_with_batch_checker_on_a_small_trace() {
        // Shared trace: three ops, one strict, witnessed responses.
        let descs = vec![
            OpDescriptor::new(id(0), Op::Inc),
            OpDescriptor::new(id(1), Op::Inc).with_prev([id(0)]),
            OpDescriptor::new(id(2), Op::Read).with_strict(true),
        ];
        let eto = vec![id(0), id(1), id(2)];
        let responses: Vec<(OpId, i64, Option<Vec<OpId>>)> = vec![
            (id(0), 1, Some(vec![id(0)])),
            (id(1), 2, Some(vec![id(0), id(1)])),
            (id(2), 2, Some(vec![id(0), id(1), id(2)])),
        ];

        let mut batch = TraceChecker::new(Ctr);
        for d in &descs {
            batch.on_request(d.clone()).unwrap();
        }
        for (i, v, w) in &responses {
            batch.on_response(*i, *v, w.clone());
        }
        assert!(batch.check_eventual_order(&eto, false).is_empty());
        let (viol, _) = batch.check_witnessed_responses();
        assert!(viol.is_empty());

        let mut chk = StreamingChecker::new(Ctr);
        for d in &descs {
            chk.on_request(d.clone()).unwrap();
        }
        for (i, v, w) in &responses {
            chk.on_response(*i, *v, w.clone()).unwrap();
        }
        for x in &eto {
            chk.on_stabilize(*x).unwrap();
        }
        let cert = chk.finish().unwrap();
        assert_eq!(cert.digest, order_digest(&eto));
    }

    #[test]
    fn display_formats() {
        let mut chk = StreamingChecker::new(Ctr);
        chk.on_request(OpDescriptor::new(id(0), Op::Inc).with_strict(true))
            .unwrap();
        chk.on_stabilize(id(0)).unwrap();
        let e = chk.on_response(id(0), 9, None).unwrap_err();
        let s = format!("{e}");
        assert!(s.contains("Theorem 5.8") && s.contains("watermark"), "{s}");
        let c = format!("{}", chk.certificate());
        assert!(c.contains("ops"), "{c}");
        let st = format!("{}", chk.status());
        assert!(st.contains("FAILED"), "{st}");
    }
}

//! A centralized, atomic reference service: `ESDS-I` driven by the *eager
//! serializer* policy.
//!
//! Every request is entered immediately after all previous operations,
//! stabilized, calculated, and responded — so the service is linearizable
//! (all operations behave as strict; cf. Corollary 5.9). It serves two
//! roles:
//!
//! * the **semantic oracle** in tests: an all-strict ESDS run must return
//!   exactly these values;
//! * the **baseline B1** in the experiments: the consistency/performance
//!   trade-off compares the replicated service against this centralized
//!   object.

use esds_core::{OpDescriptor, OpId, SerialDataType};

use crate::automaton::{EsdsSpec, SpecVariant};
use crate::users::Users;

/// A synchronous, linearizable data service built on the `ESDS-I`
/// automaton (see module docs).
///
/// # Examples
///
/// ```
/// use esds_core::{ClientId, OpDescriptor, OpId, SerialDataType};
/// use esds_spec::ReferenceService;
///
/// #[derive(Clone)]
/// struct Adder;
/// impl SerialDataType for Adder {
///     type State = i64;
///     type Operator = i64;
///     type Value = i64;
///     fn initial_state(&self) -> i64 { 0 }
///     fn apply(&self, s: &i64, op: &i64) -> (i64, i64) { (s + op, s + op) }
/// }
///
/// let mut svc = ReferenceService::new(Adder);
/// let a = OpDescriptor::new(OpId::new(ClientId(0), 0), 5i64);
/// let b = OpDescriptor::new(OpId::new(ClientId(0), 1), 2i64);
/// assert_eq!(svc.submit(a).unwrap(), 5);
/// assert_eq!(svc.submit(b).unwrap(), 7);
/// ```
#[derive(Clone, Debug)]
pub struct ReferenceService<T: SerialDataType> {
    dt: T,
    spec: EsdsSpec<T>,
    users: Users<T::Operator>,
    /// Arrival order = serialization order.
    order: Vec<OpId>,
    /// Running state along the serialization (incremental; equals replaying
    /// `order` from σ₀).
    state: T::State,
}

impl<T: SerialDataType + Clone> ReferenceService<T> {
    /// Creates an empty service.
    pub fn new(dt: T) -> Self {
        ReferenceService {
            spec: EsdsSpec::new(dt.clone(), SpecVariant::EsdsI),
            users: Users::new(),
            order: Vec::new(),
            state: dt.initial_state(),
            dt,
        }
    }

    /// Submits one operation and returns its value synchronously. The
    /// operation is serialized after every earlier submission.
    ///
    /// # Errors
    ///
    /// Well-formedness violations (duplicate id, unknown `prev`) and any
    /// specification precondition failure — the latter indicates a bug and
    /// is surfaced rather than masked.
    pub fn submit(
        &mut self,
        desc: OpDescriptor<T::Operator>,
    ) -> Result<T::Value, Box<dyn std::error::Error + Send + Sync>> {
        self.users.request(desc.clone())?;
        let x = desc.id;
        self.spec.request(desc.clone());

        // Eager serializer: x after every entered op (chain extension).
        let mut new_po = self.spec.po().clone();
        new_po.add_node(x);
        if let Some(last) = self.order.last() {
            new_po.add_edge(*last, x);
        }
        self.spec.enter(x, new_po)?;
        self.spec.stabilize(x)?;

        let (ns, v) = self.dt.apply(&self.state, &desc.op);
        // The arrival order is the witness explaining v.
        let mut witness = self.order.clone();
        witness.push(x);
        self.spec.calculate(x, &v, Some(&witness))?;
        let out = self.spec.response(x)?;

        self.state = ns;
        self.order.push(x);
        Ok(out)
    }

    /// The serialization so far.
    pub fn serialization(&self) -> &[OpId] {
        &self.order
    }

    /// The current object state.
    pub fn state(&self) -> &T::State {
        &self.state
    }

    /// Verifies the `ESDS-I` invariants on the underlying automaton.
    pub fn check_invariants(&self) -> Vec<String> {
        self.spec.check_invariants()
    }
}

/// Replays a set of descriptors in an explicit total order through the data
/// type, returning each operation's value. The semantic ground truth for
/// "what should an atomic object have answered".
pub fn replay_serial<'a, T: SerialDataType>(
    dt: &T,
    order: impl IntoIterator<Item = &'a OpDescriptor<T::Operator>>,
) -> Vec<(OpId, T::Value)>
where
    T::Operator: 'a,
{
    let mut s = dt.initial_state();
    let mut out = Vec::new();
    for d in order {
        let (ns, v) = dt.apply(&s, &d.op);
        out.push((d.id, v));
        s = ns;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use esds_core::ClientId;

    #[derive(Clone, Copy, Debug)]
    struct Ctr;
    impl SerialDataType for Ctr {
        type State = i64;
        type Operator = i64;
        type Value = i64;
        fn initial_state(&self) -> i64 {
            0
        }
        fn apply(&self, s: &i64, op: &i64) -> (i64, i64) {
            (s + op, s + op)
        }
    }

    fn id(s: u64) -> OpId {
        OpId::new(ClientId(0), s)
    }

    #[test]
    fn serializes_in_arrival_order() {
        let mut svc = ReferenceService::new(Ctr);
        for i in 0..10 {
            let v = svc.submit(OpDescriptor::new(id(i), 1)).unwrap();
            assert_eq!(v, i as i64 + 1);
        }
        assert_eq!(svc.serialization().len(), 10);
        assert_eq!(*svc.state(), 10);
        assert!(svc.check_invariants().is_empty());
    }

    #[test]
    fn rejects_duplicate_ids() {
        let mut svc = ReferenceService::new(Ctr);
        svc.submit(OpDescriptor::new(id(0), 1)).unwrap();
        assert!(svc.submit(OpDescriptor::new(id(0), 1)).is_err());
    }

    #[test]
    fn respects_prev_trivially() {
        // prev sets are automatically satisfied by arrival order.
        let mut svc = ReferenceService::new(Ctr);
        svc.submit(OpDescriptor::new(id(0), 1)).unwrap();
        let v = svc
            .submit(OpDescriptor::new(id(1), 1).with_prev([id(0)]))
            .unwrap();
        assert_eq!(v, 2);
    }

    #[test]
    fn replay_matches_incremental_state() {
        let descs: Vec<OpDescriptor<i64>> =
            (0..5).map(|i| OpDescriptor::new(id(i), i as i64)).collect();
        let vals = replay_serial(&Ctr, &descs);
        let mut svc = ReferenceService::new(Ctr);
        for d in &descs {
            let v = svc.submit(d.clone()).unwrap();
            let expect = vals.iter().find(|(x, _)| *x == d.id).map(|(_, v)| *v);
            assert_eq!(Some(v), expect);
        }
    }
}

//! The discrete-event scheduler: a priority queue of timestamped events and
//! a run loop delivering them to a [`World`].
//!
//! Determinism: ties in delivery time are broken by insertion sequence
//! number, so a simulation is a pure function of (world, scheduled events,
//! seeds). Property tests and the conformance checker rely on this.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

// Entries are identified by (time, sequence); the payload does not take
// part in ordering, so events need not implement Eq/Ord themselves.
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}

impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The pending-event queue handed to [`World::handle`]; worlds schedule
/// follow-up events through it and may request a stop.
///
/// # Examples
///
/// ```
/// use esds_sim::{run, EventQueue, SimDuration, SimTime, World};
///
/// struct Echo(Vec<(SimTime, u32)>);
/// impl World for Echo {
///     type Event = u32;
///     fn handle(&mut self, ev: u32, q: &mut EventQueue<u32>) {
///         self.0.push((q.now(), ev));
///         if ev < 3 {
///             q.schedule_after(SimDuration::from_millis(1), ev + 1);
///         }
///     }
/// }
///
/// let mut w = Echo(Vec::new());
/// let mut q = EventQueue::new();
/// q.schedule_at(SimTime::ZERO, 1);
/// run(&mut w, &mut q, None);
/// assert_eq!(w.0.len(), 3);
/// assert_eq!(w.0[2].0, SimTime::from_millis(2));
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    now: SimTime,
    stop: bool,
    delivered: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            stop: false,
            delivered: 0,
        }
    }

    /// Current virtual time (the timestamp of the event being handled).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past — events may not rewrite history.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.heap.push(Reverse(Entry {
            at,
            seq: self.seq,
            event,
        }));
        self.seq += 1;
    }

    /// Schedules `event` after a relative delay.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Requests that the run loop stop after the current event.
    pub fn request_stop(&mut self) {
        self.stop = true;
    }

    /// Number of events not yet delivered.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Delivery time of the next event, if any.
    pub fn next_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse(e)| (e.at, e.event))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// A simulated system: receives each event at its scheduled time and may
/// schedule more.
pub trait World {
    /// The event alphabet of the simulation.
    type Event;

    /// Handles one event at its scheduled time (`queue.now()`).
    fn handle(&mut self, event: Self::Event, queue: &mut EventQueue<Self::Event>);
}

/// Statistics from a run loop invocation.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct RunStats {
    /// Events delivered in this call.
    pub events: u64,
    /// Virtual time of the last delivered event.
    pub end_time: SimTime,
    /// Why the loop stopped.
    pub stopped: StopReason,
}

/// Why [`run`] returned.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum StopReason {
    /// The event queue drained.
    #[default]
    Quiescent,
    /// The `until` horizon was reached (events beyond it remain pending).
    Horizon,
    /// The world called [`EventQueue::request_stop`].
    Requested,
    /// The event budget of [`run_steps`] was exhausted.
    Budget,
}

/// Runs the world until the queue drains, the optional horizon passes, or a
/// stop is requested. Events scheduled exactly at the horizon are delivered.
pub fn run<W: World>(
    world: &mut W,
    queue: &mut EventQueue<W::Event>,
    until: Option<SimTime>,
) -> RunStats {
    run_inner(world, queue, until, u64::MAX)
}

/// Like [`run`] but delivering at most `max_events` events.
pub fn run_steps<W: World>(
    world: &mut W,
    queue: &mut EventQueue<W::Event>,
    max_events: u64,
) -> RunStats {
    run_inner(world, queue, None, max_events)
}

fn run_inner<W: World>(
    world: &mut W,
    queue: &mut EventQueue<W::Event>,
    until: Option<SimTime>,
    max_events: u64,
) -> RunStats {
    let mut stats = RunStats {
        end_time: queue.now,
        ..RunStats::default()
    };
    loop {
        if queue.stop {
            queue.stop = false;
            stats.stopped = StopReason::Requested;
            return stats;
        }
        if stats.events >= max_events {
            stats.stopped = StopReason::Budget;
            return stats;
        }
        match queue.next_time() {
            None => {
                stats.stopped = StopReason::Quiescent;
                return stats;
            }
            Some(t) => {
                if let Some(h) = until {
                    if t > h {
                        queue.now = h;
                        stats.stopped = StopReason::Horizon;
                        stats.end_time = h;
                        return stats;
                    }
                }
                let (at, ev) = queue.pop().expect("peeked");
                queue.now = at;
                queue.delivered += 1;
                world.handle(ev, queue);
                stats.events += 1;
                stats.end_time = at;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Recorder {
        seen: Vec<(SimTime, u32)>,
        stop_on: Option<u32>,
    }

    impl World for Recorder {
        type Event = u32;
        fn handle(&mut self, ev: u32, q: &mut EventQueue<u32>) {
            self.seen.push((q.now(), ev));
            if self.stop_on == Some(ev) {
                q.request_stop();
            }
        }
    }

    fn recorder() -> Recorder {
        Recorder {
            seen: Vec::new(),
            stop_on: None,
        }
    }

    #[test]
    fn events_delivered_in_time_order() {
        let mut w = recorder();
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_micros(30), 3);
        q.schedule_at(SimTime::from_micros(10), 1);
        q.schedule_at(SimTime::from_micros(20), 2);
        let stats = run(&mut w, &mut q, None);
        assert_eq!(stats.events, 3);
        assert_eq!(stats.stopped, StopReason::Quiescent);
        assert_eq!(
            w.seen.iter().map(|(_, e)| *e).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn ties_broken_by_insertion_order() {
        let mut w = recorder();
        let mut q = EventQueue::new();
        for e in [5, 6, 7] {
            q.schedule_at(SimTime::from_micros(1), e);
        }
        run(&mut w, &mut q, None);
        assert_eq!(
            w.seen.iter().map(|(_, e)| *e).collect::<Vec<_>>(),
            vec![5, 6, 7]
        );
    }

    #[test]
    fn horizon_stops_but_keeps_pending() {
        let mut w = recorder();
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_micros(1), 1);
        q.schedule_at(SimTime::from_micros(100), 2);
        let stats = run(&mut w, &mut q, Some(SimTime::from_micros(50)));
        assert_eq!(stats.stopped, StopReason::Horizon);
        assert_eq!(q.pending(), 1);
        assert_eq!(q.now(), SimTime::from_micros(50));
        // Resume to completion.
        let stats = run(&mut w, &mut q, None);
        assert_eq!(stats.stopped, StopReason::Quiescent);
        assert_eq!(w.seen.len(), 2);
    }

    #[test]
    fn requested_stop() {
        let mut w = recorder();
        w.stop_on = Some(1);
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_micros(1), 1);
        q.schedule_at(SimTime::from_micros(2), 2);
        let stats = run(&mut w, &mut q, None);
        assert_eq!(stats.stopped, StopReason::Requested);
        assert_eq!(q.pending(), 1);
    }

    #[test]
    fn step_budget() {
        let mut w = recorder();
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule_at(SimTime::from_micros(i), i as u32);
        }
        let stats = run_steps(&mut w, &mut q, 4);
        assert_eq!(stats.stopped, StopReason::Budget);
        assert_eq!(w.seen.len(), 4);
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_past_panics() {
        let mut w = recorder();
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_micros(10), 1);
        run(&mut w, &mut q, None);
        q.schedule_at(SimTime::from_micros(5), 2);
    }
}

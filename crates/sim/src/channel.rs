//! Point-to-point channel models (paper §6.1).
//!
//! The paper's channel automaton is a multiset of in-transit messages with
//! nondeterministic delivery: reliable but **not FIFO**. [`ChannelModel`]
//! resolves the nondeterminism with a seeded delay distribution, and extends
//! the automaton with the failure modes discussed in §9.3 — message loss and
//! duplication (shown there not to affect safety) — plus an `outage` switch
//! used by the fault-injection experiments to violate the timing assumptions
//! for a while (Theorem 9.4).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::time::SimDuration;

/// How transmission delay is sampled.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum DelayModel {
    /// Every message takes exactly this long (used by the timing-bound
    /// experiments where `df`/`dg` must be exact).
    Fixed(SimDuration),
    /// Uniformly distributed in `[lo, hi]` — since later messages can
    /// sample smaller delays, this yields genuine reordering (non-FIFO).
    Uniform {
        /// Minimum delay.
        lo: SimDuration,
        /// Maximum delay (inclusive).
        hi: SimDuration,
    },
}

impl DelayModel {
    /// The best-case delay of the model. `upper_bound − lower_bound` is
    /// the reordering window: two messages sent `gap` apart can arrive
    /// out of order iff the spread exceeds `gap`.
    pub fn lower_bound(&self) -> SimDuration {
        match self {
            DelayModel::Fixed(d) => *d,
            DelayModel::Uniform { lo, .. } => *lo,
        }
    }

    /// The worst-case delay of the model — the `d_ij` bound of Section 9.
    pub fn upper_bound(&self) -> SimDuration {
        match self {
            DelayModel::Fixed(d) => *d,
            DelayModel::Uniform { hi, .. } => *hi,
        }
    }

    fn sample(&self, rng: &mut SmallRng) -> SimDuration {
        match self {
            DelayModel::Fixed(d) => *d,
            DelayModel::Uniform { lo, hi } => {
                let lo = lo.as_micros();
                let hi = hi.as_micros();
                SimDuration::from_micros(rng.gen_range(lo..=hi.max(lo)))
            }
        }
    }
}

/// Configuration of one directed channel.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct ChannelConfig {
    /// Delay distribution.
    pub delay: DelayModel,
    /// Probability a message is silently dropped.
    pub loss_prob: f64,
    /// Probability a delivered message is delivered twice.
    pub dup_prob: f64,
}

impl ChannelConfig {
    /// A reliable channel with fixed delay — the default for experiments.
    pub fn fixed(delay: SimDuration) -> Self {
        ChannelConfig {
            delay: DelayModel::Fixed(delay),
            loss_prob: 0.0,
            dup_prob: 0.0,
        }
    }

    /// A reliable channel with uniform delay in `[lo, hi]` (non-FIFO).
    pub fn uniform(lo: SimDuration, hi: SimDuration) -> Self {
        ChannelConfig {
            delay: DelayModel::Uniform { lo, hi },
            loss_prob: 0.0,
            dup_prob: 0.0,
        }
    }

    /// Sets the loss probability.
    #[must_use]
    pub fn with_loss(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.loss_prob = p;
        self
    }

    /// Sets the duplication probability.
    #[must_use]
    pub fn with_dup(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.dup_prob = p;
        self
    }
}

/// Delivery statistics of one channel.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct ChannelStats {
    /// Messages handed to the channel.
    pub sent: u64,
    /// Copies delivered (≥ sent − dropped; > when duplicating).
    pub delivered: u64,
    /// Messages dropped by loss or outage.
    pub dropped: u64,
}

/// A directed channel: decides, per message, the delivery delays of each
/// copy (possibly none when lost, several when duplicated).
///
/// The channel does not hold the messages themselves; the simulation world
/// schedules delivery events with the returned delays. This keeps the model
/// reusable for any message type.
///
/// # Examples
///
/// ```
/// use esds_sim::{ChannelConfig, ChannelModel, SimDuration};
/// let mut ch = ChannelModel::new(ChannelConfig::fixed(SimDuration::from_millis(2)), 42);
/// assert_eq!(ch.transmit(), vec![SimDuration::from_millis(2)]);
/// ```
#[derive(Clone, Debug)]
pub struct ChannelModel {
    config: ChannelConfig,
    rng: SmallRng,
    outage: bool,
    stats: ChannelStats,
}

impl ChannelModel {
    /// Creates a channel with the given config and RNG seed.
    pub fn new(config: ChannelConfig, seed: u64) -> Self {
        ChannelModel {
            config,
            rng: SmallRng::seed_from_u64(seed),
            outage: false,
            stats: ChannelStats::default(),
        }
    }

    /// Current configuration.
    pub fn config(&self) -> ChannelConfig {
        self.config
    }

    /// Replaces the configuration (fault scripts change delay/loss live).
    pub fn set_config(&mut self, config: ChannelConfig) {
        self.config = config;
    }

    /// Starts an outage: every message is dropped until [`ChannelModel::heal`].
    pub fn fail(&mut self) {
        self.outage = true;
    }

    /// Ends an outage.
    pub fn heal(&mut self) {
        self.outage = false;
    }

    /// Whether the channel is currently failed.
    pub fn is_failed(&self) -> bool {
        self.outage
    }

    /// Delivery statistics so far.
    pub fn stats(&self) -> ChannelStats {
        self.stats
    }

    /// Transmits one message: returns the delay of each delivered copy.
    /// Empty = lost; two entries = duplicated.
    pub fn transmit(&mut self) -> Vec<SimDuration> {
        self.stats.sent += 1;
        if self.outage || (self.config.loss_prob > 0.0 && self.rng.gen_bool(self.config.loss_prob))
        {
            self.stats.dropped += 1;
            return Vec::new();
        }
        let mut out = vec![self.config.delay.sample(&mut self.rng)];
        if self.config.dup_prob > 0.0 && self.rng.gen_bool(self.config.dup_prob) {
            out.push(self.config.delay.sample(&mut self.rng));
        }
        self.stats.delivered += out.len() as u64;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_delay_is_exact() {
        let mut ch = ChannelModel::new(ChannelConfig::fixed(SimDuration::from_micros(7)), 1);
        for _ in 0..10 {
            assert_eq!(ch.transmit(), vec![SimDuration::from_micros(7)]);
        }
        assert_eq!(ch.stats().sent, 10);
        assert_eq!(ch.stats().delivered, 10);
    }

    #[test]
    fn uniform_delay_within_bounds_and_reorders() {
        let cfg =
            ChannelConfig::uniform(SimDuration::from_micros(1), SimDuration::from_micros(100));
        let mut ch = ChannelModel::new(cfg, 3);
        let mut delays = Vec::new();
        for _ in 0..200 {
            let d = ch.transmit()[0];
            assert!(d >= SimDuration::from_micros(1) && d <= SimDuration::from_micros(100));
            delays.push(d);
        }
        // Some adjacent pair must be out of order (overwhelmingly likely).
        assert!(delays.windows(2).any(|w| w[0] > w[1]), "no reordering seen");
        assert_eq!(cfg.delay.upper_bound(), SimDuration::from_micros(100));
    }

    #[test]
    fn total_loss_drops_everything() {
        let cfg = ChannelConfig::fixed(SimDuration::ZERO).with_loss(1.0);
        let mut ch = ChannelModel::new(cfg, 5);
        for _ in 0..10 {
            assert!(ch.transmit().is_empty());
        }
        assert_eq!(ch.stats().dropped, 10);
    }

    #[test]
    fn duplication_delivers_twice() {
        let cfg = ChannelConfig::fixed(SimDuration::from_micros(1)).with_dup(1.0);
        let mut ch = ChannelModel::new(cfg, 5);
        assert_eq!(ch.transmit().len(), 2);
    }

    #[test]
    fn outage_and_heal() {
        let mut ch = ChannelModel::new(ChannelConfig::fixed(SimDuration::ZERO), 5);
        ch.fail();
        assert!(ch.is_failed());
        assert!(ch.transmit().is_empty());
        ch.heal();
        assert_eq!(ch.transmit().len(), 1);
    }

    #[test]
    fn determinism_same_seed_same_delays() {
        let cfg = ChannelConfig::uniform(SimDuration::ZERO, SimDuration::from_micros(1000))
            .with_loss(0.2)
            .with_dup(0.2);
        let mut a = ChannelModel::new(cfg, 99);
        let mut b = ChannelModel::new(cfg, 99);
        for _ in 0..100 {
            assert_eq!(a.transmit(), b.transmit());
        }
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_probability_rejected() {
        let _ = ChannelConfig::fixed(SimDuration::ZERO).with_loss(1.5);
    }
}

//! Simple metrics for experiments: exact histograms over virtual durations
//! and derived seeds for deterministic per-component randomness.

use crate::time::SimDuration;

/// An exact histogram of durations: stores every sample (experiment-scale
/// data is small), so percentiles are exact rather than approximated.
///
/// # Examples
///
/// ```
/// use esds_sim::{Histogram, SimDuration};
/// let mut h = Histogram::new();
/// for ms in [1u64, 2, 3, 4] {
///     h.record(SimDuration::from_millis(ms));
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.max(), Some(SimDuration::from_millis(4)));
/// assert_eq!(h.percentile(50.0), Some(SimDuration::from_millis(2)));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    samples: Vec<u64>,
    sorted: bool,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, d: SimDuration) {
        self.samples.push(d.as_micros());
        self.sorted = false;
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> Option<SimDuration> {
        if self.samples.is_empty() {
            return None;
        }
        let sum: u128 = self.samples.iter().map(|s| *s as u128).sum();
        Some(SimDuration::from_micros(
            (sum / self.samples.len() as u128) as u64,
        ))
    }

    /// Smallest sample.
    pub fn min(&self) -> Option<SimDuration> {
        self.samples
            .iter()
            .min()
            .map(|m| SimDuration::from_micros(*m))
    }

    /// Largest sample.
    pub fn max(&self) -> Option<SimDuration> {
        self.samples
            .iter()
            .max()
            .map(|m| SimDuration::from_micros(*m))
    }

    /// Exact percentile (nearest-rank). `p` in `[0, 100]`.
    pub fn percentile(&mut self, p: f64) -> Option<SimDuration> {
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
        let rank = ((p / 100.0) * self.samples.len() as f64).ceil() as usize;
        let idx = rank.clamp(1, self.samples.len()) - 1;
        Some(SimDuration::from_micros(self.samples[idx]))
    }

    /// One-line summary for experiment tables, in the shared
    /// `esds-obs` format (identical to what the bounded service-side
    /// histograms render, so tables from either source line up).
    pub fn summary(&mut self) -> String {
        if self.samples.is_empty() {
            return "n=0".to_string();
        }
        let mean = self.mean().expect("nonempty");
        let p50 = self.percentile(50.0).expect("nonempty");
        let p99 = self.percentile(99.0).expect("nonempty");
        let max = self.max().expect("nonempty");
        esds_obs::format_latency_summary(
            self.count() as u64,
            mean.as_micros(),
            p50.as_micros(),
            p99.as_micros(),
            max.as_micros(),
        )
    }
}

/// Derives a stream-specific seed from a base seed (SplitMix64 step), so
/// each component gets independent but reproducible randomness.
///
/// # Examples
///
/// ```
/// use esds_sim::derive_seed;
/// assert_eq!(derive_seed(1, 2), derive_seed(1, 2));
/// assert_ne!(derive_seed(1, 2), derive_seed(1, 3));
/// ```
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    let mut z = base.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), None);
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.summary(), "n=0");
    }

    #[test]
    fn stats_exact() {
        let mut h = Histogram::new();
        for us in [10u64, 20, 30, 40, 50] {
            h.record(SimDuration::from_micros(us));
        }
        assert_eq!(h.mean(), Some(SimDuration::from_micros(30)));
        assert_eq!(h.min(), Some(SimDuration::from_micros(10)));
        assert_eq!(h.max(), Some(SimDuration::from_micros(50)));
        assert_eq!(h.percentile(0.0), Some(SimDuration::from_micros(10)));
        assert_eq!(h.percentile(100.0), Some(SimDuration::from_micros(50)));
        assert_eq!(h.percentile(50.0), Some(SimDuration::from_micros(30)));
    }

    #[test]
    fn percentile_after_interleaved_records() {
        let mut h = Histogram::new();
        h.record(SimDuration::from_micros(5));
        let _ = h.percentile(50.0);
        h.record(SimDuration::from_micros(1));
        // Must re-sort after the new record.
        assert_eq!(h.percentile(0.0), Some(SimDuration::from_micros(1)));
    }

    #[test]
    fn derived_seeds_distinct() {
        let seeds: std::collections::BTreeSet<u64> = (0..100).map(|i| derive_seed(7, i)).collect();
        assert_eq!(seeds.len(), 100);
    }
}

//! # esds-sim
//!
//! A small, deterministic discrete-event simulation kernel used as the
//! network substrate for the ESDS algorithm (replacing the paper's
//! workstation network / MPI testbed — see `DESIGN.md` §2):
//!
//! * [`SimTime`] / [`SimDuration`] — virtual time;
//! * [`EventQueue`], [`World`], [`run`] — the event loop;
//! * [`ChannelModel`] — the paper's reliable non-FIFO channels (§6.1) with
//!   the §9.3 failure modes (loss, duplication, outages);
//! * [`Histogram`] — exact latency statistics for the experiments.
//!
//! The kernel is generic over the event type: `esds-harness` instantiates it
//! with the ESDS message alphabet.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod channel;
mod metrics;
mod scheduler;
mod time;

pub use channel::{ChannelConfig, ChannelModel, ChannelStats, DelayModel};
pub use metrics::{derive_seed, Histogram};
// The bounded-histogram counterpart and the shared one-line summary
// format live in `esds-obs`; re-exported so experiment code and
// long-running services render percentiles identically without
// duplicating the format strings.
pub use esds_obs::{format_duration_us, format_latency_summary, BoundedHistogram};
pub use scheduler::{run, run_steps, EventQueue, RunStats, StopReason, World};
pub use time::{SimDuration, SimTime};

//! Virtual time for the discrete-event simulator.
//!
//! Time is a `u64` count of microseconds since the start of the simulation.
//! The paper's timing analysis (Section 9) is phrased in terms of message
//! delay bounds `df`, `dg` and the gossip interval `g`; experiments configure
//! these as [`SimDuration`]s and verify the derived bounds exactly, which is
//! only possible because virtual time is discrete and deterministic.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant in virtual time (microseconds since simulation start).
///
/// # Examples
///
/// ```
/// use esds_sim::{SimDuration, SimTime};
/// let t = SimTime::ZERO + SimDuration::from_millis(5);
/// assert_eq!(t.as_micros(), 5_000);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// An instant `micros` microseconds after start.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// An instant `millis` milliseconds after start.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Microseconds since start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since start, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The duration since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("duration_since: earlier is later than self"),
        )
    }

    /// Saturating difference (zero if `earlier` is later).
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// A span of virtual time (microseconds).
///
/// # Examples
///
/// ```
/// use esds_sim::SimDuration;
/// let d = SimDuration::from_millis(2) + SimDuration::from_micros(500);
/// assert_eq!(d.as_micros(), 2_500);
/// assert_eq!((d * 2).as_micros(), 5_000);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// A duration of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// A duration of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// A duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Whether this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1_000.0)
        } else {
            write!(f, "{}µs", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(1);
        let d = SimDuration::from_micros(250);
        assert_eq!((t + d).as_micros(), 1_250);
        assert_eq!((t + d) - t, d);
        assert_eq!((d * 4).as_micros(), 1_000);
        assert_eq!((d / 5).as_micros(), 50);
    }

    #[test]
    #[should_panic(expected = "duration_since")]
    fn duration_since_panics_backwards() {
        let _ = SimTime::ZERO.duration_since(SimTime::from_micros(1));
    }

    #[test]
    fn saturating_difference() {
        assert_eq!(
            SimTime::ZERO.saturating_duration_since(SimTime::from_micros(5)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn display_units() {
        assert_eq!(SimDuration::from_micros(7).to_string(), "7µs");
        assert_eq!(SimDuration::from_micros(1500).to_string(), "1.500ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500000s");
    }
}

//! F3 — aggregate throughput vs shard count: the sharded service layer
//! scaling the kv workload across S ∈ {1, 2, 4, 8} independent replica
//! groups (ROADMAP scale-out; the §10 commutativity insight at the
//! partition level).
fn main() {
    esds_bench::experiments::fig_shard_scalability(16, 150);
}

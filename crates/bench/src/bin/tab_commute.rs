//! A2 — §10.3 commutativity-exploitation ablation.
fn main() {
    esds_bench::experiments::tab_commute(25);
}

//! F6 — what durability costs on the hot path: closed-loop throughput
//! of the 3-replica threaded service with persistence off, WAL-only,
//! and WAL + stable-prefix snapshots. Sync-before-release is the price
//! of the recovery guarantee (answered operations survive `kill -9` —
//! see `tests/durability.rs`); this figure quantifies what that
//! guarantee charges per operation on the host's fsync latency (see
//! [`esds_bench::experiments::fig_wal_cost`]).
fn main() {
    esds_bench::experiments::fig_wal_cost(4, 80);
}

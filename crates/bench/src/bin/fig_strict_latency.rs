//! F2 — regenerates the §11.1 strict-ratio figure: latency vs % strict.
fn main() {
    esds_bench::experiments::fig_strict_latency(5, 40);
}

//! F4 — live rebalancing: ops/s and per-op latency through an add-shard
//! event (before / during / after the stable-prefix handoff), on a
//! saturated 2-group kv deployment growing to 3 groups (ROADMAP
//! rebalancing item; the paper's stable prefix as the unit of transfer).
fn main() {
    esds_bench::experiments::fig_rebalance(9, 600);
}

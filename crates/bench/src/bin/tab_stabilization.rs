//! T2 — verifies the Lemma 9.2 done-at-every-replica bound.
fn main() {
    for seed in [1, 2, 3] {
        esds_bench::experiments::tab_stabilization(seed);
    }
}

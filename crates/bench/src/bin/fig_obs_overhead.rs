//! F7 — what observability costs on the hot path: closed-loop
//! throughput of the 3-replica threaded service with metrics off
//! (disabled registry, no-op handles), counters only (live registry),
//! and counters plus 1-in-16 sampled op-lifecycle tracing into a null
//! sink. The disabled path is the zero-cost claim's receipt; the other
//! two bound what a fully instrumented fleet pays per operation (see
//! [`esds_bench::experiments::fig_obs_overhead`]).
fn main() {
    esds_bench::experiments::fig_obs_overhead(4, 80);
}

//! A4 — §10.2 identifier summarization ablation.
fn main() {
    esds_bench::experiments::tab_id_summary(200);
}

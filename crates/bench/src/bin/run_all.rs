//! Regenerates every table and figure of the paper's evaluation
//! (see `DESIGN.md` §5 and `EXPERIMENTS.md`).
//!
//! Two environment knobs support the CI bench-smoke lane (which runs the
//! whole suite on every PR and archives the numbers as a build
//! artifact — the start of a persistent performance trajectory):
//!
//! * `ESDS_MINIATURE=1` — run every experiment at a miniature size (same
//!   shapes, minutes → seconds);
//! * `ESDS_JSON_OUT=path` — additionally write the raw series as JSON.
use std::io::Write;

use esds_bench::experiments as ex;

/// A JSON scalar: everything the experiment series contain.
enum J {
    N(f64),
    S(String),
}

impl J {
    fn render(&self, out: &mut String) {
        match self {
            // JSON has no NaN/Inf; clamp to null (no experiment emits
            // them in a healthy run).
            J::N(v) if v.is_finite() => out.push_str(&format!("{v}")),
            J::N(_) => out.push_str("null"),
            J::S(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
        }
    }
}

fn n(v: impl Into<f64>) -> J {
    J::N(v.into())
}

fn s(v: impl ToString) -> J {
    J::S(v.to_string())
}

/// `(experiment name, column names, rows)` collected for the artifact.
type Series = (&'static str, Vec<&'static str>, Vec<Vec<J>>);

fn render_json(miniature: bool, series: &[Series]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"miniature\": {miniature},\n"));
    out.push_str("  \"experiments\": {\n");
    for (i, (name, cols, rows)) in series.iter().enumerate() {
        out.push_str(&format!("    \"{name}\": {{\n      \"columns\": ["));
        for (j, c) in cols.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            s(c).render(&mut out);
        }
        out.push_str("],\n      \"rows\": [");
        for (j, row) in rows.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push('[');
            for (k, cell) in row.iter().enumerate() {
                if k > 0 {
                    out.push_str(", ");
                }
                cell.render(&mut out);
            }
            out.push(']');
        }
        out.push_str("]\n    }");
        out.push_str(if i + 1 < series.len() { ",\n" } else { "\n" });
    }
    out.push_str("  }\n}\n");
    out
}

fn main() {
    let miniature = std::env::var("ESDS_MINIATURE").is_ok_and(|v| !v.is_empty() && v != "0");
    println!("# ESDS experiment suite (paper: Fekete et al., PODC'96/TCS'99)");
    if miniature {
        println!("(miniature mode: reduced sizes, same shapes)");
    }
    // (full, miniature) sizes per experiment.
    let pick = |full: usize, mini: usize| if miniature { mini } else { full };

    let mut series: Vec<Series> = Vec::new();

    let f1 = ex::fig_scalability(pick(10, 4), pick(150, 30));
    series.push((
        "fig_scalability",
        vec!["replicas", "esds_ops_per_sec", "centralized_ops_per_sec"],
        f1.into_iter()
            .map(|(r, a, b)| vec![n(r as u32), n(a), n(b)])
            .collect(),
    ));
    let f2 = ex::fig_strict_latency(pick(5, 3), pick(30, 8));
    series.push((
        "fig_strict_latency",
        vec!["strict_percent", "mean_latency_secs"],
        f2.into_iter().map(|(p, l)| vec![n(p), n(l)]).collect(),
    ));
    let f3 = ex::fig_shard_scalability(pick(16, 6), pick(150, 40));
    series.push((
        "fig_shard_scalability",
        vec!["shards", "ops_per_sec"],
        f3.into_iter()
            .map(|(s_, tp)| vec![n(s_ as u32), n(tp)])
            .collect(),
    ));
    let f4 = ex::fig_rebalance(pick(9, 9), pick(600, 200));
    series.push((
        "fig_rebalance",
        vec!["phase", "window_secs", "ops_per_sec", "mean_latency_ms"],
        f4.into_iter()
            .map(|p| {
                vec![
                    s(p.phase),
                    n(p.window_secs),
                    n(p.ops_per_sec),
                    n(p.mean_latency_ms),
                ]
            })
            .collect(),
    ));
    let f5 = ex::fig_wire_shards(pick(4, 2), pick(80, 12));
    series.push((
        "fig_wire_shards",
        vec!["shards", "ops_per_sec"],
        f5.into_iter()
            .map(|(s_, tp)| vec![n(s_ as u32), n(tp)])
            .collect(),
    ));
    let f6 = ex::fig_wal_cost(pick(4, 2), pick(80, 12));
    series.push((
        "fig_wal_cost",
        vec!["persistence", "ops_per_sec"],
        f6.into_iter()
            .map(|(mode, tp)| vec![s(mode), n(tp)])
            .collect(),
    ));
    let f7 = ex::fig_obs_overhead(pick(4, 2), pick(80, 12));
    series.push((
        "fig_obs_overhead",
        vec!["metrics", "ops_per_sec"],
        f7.into_iter()
            .map(|(mode, tp)| vec![s(mode), n(tp)])
            .collect(),
    ));
    let (t1, t1_ladder) = ex::tab_response_bounds(1);
    series.push((
        "tab_response_bounds",
        vec!["op_class", "measured_ms", "bound_ms"],
        t1.into_iter()
            .map(|(c, m, b)| {
                vec![
                    s(format!("{c:?}")),
                    n(m.as_secs_f64() * 1e3),
                    n(b.as_secs_f64() * 1e3),
                ]
            })
            .collect(),
    ));
    series.push((
        "tab_response_bounds_ladder",
        vec!["mode", "mean_ms", "max_ms"],
        t1_ladder
            .into_iter()
            .map(|r| {
                vec![
                    s(r.mode),
                    n(r.mean.as_secs_f64() * 1e3),
                    n(r.max.as_secs_f64() * 1e3),
                ]
            })
            .collect(),
    ));
    let t2 = ex::tab_stabilization(1);
    series.push((
        "tab_stabilization",
        vec!["measured_ms", "bound_ms"],
        vec![vec![
            n(t2.0.as_secs_f64() * 1e3),
            n(t2.1.as_secs_f64() * 1e3),
        ]],
    ));
    let t3 = ex::tab_fault_recovery(5);
    series.push((
        "tab_fault_recovery",
        vec!["op_class", "measured_ms", "bound_ms"],
        t3.into_iter()
            .map(|(c, m, b)| {
                vec![
                    s(format!("{c:?}")),
                    n(m.as_secs_f64() * 1e3),
                    n(b.as_secs_f64() * 1e3),
                ]
            })
            .collect(),
    ));
    let a1 = ex::tab_memoization(pick(60, 20));
    series.push((
        "tab_memoization",
        vec!["memoized_ms", "basic_ms"],
        vec![vec![n(a1.0), n(a1.1)]],
    ));
    let a2 = ex::tab_commute(pick(25, 10));
    series.push((
        "tab_commute",
        vec!["commute_ms", "baseline_ms"],
        vec![vec![n(a2.0), n(a2.1)]],
    ));
    let a3 = ex::tab_gossip_strategies(pick(40, 12));
    series.push((
        "tab_gossip_strategies",
        vec![
            "strategy",
            "g_ms",
            "msgs_per_op",
            "bytes_per_op",
            "ops_per_sec",
        ],
        a3.into_iter()
            .map(|p| {
                vec![
                    s(p.strategy),
                    n(p.g_ms as u32),
                    n(p.msgs_per_op),
                    n(p.bytes_per_op),
                    n(p.ops_per_sec),
                ]
            })
            .collect(),
    ));
    let a4 = ex::tab_id_summary(pick(200, 50));
    series.push((
        "tab_id_summary",
        vec!["plain_bytes", "summary_bytes"],
        vec![vec![n(a4.0 as f64), n(a4.1 as f64)]],
    ));
    let a5 = ex::tab_gossip_interval(pick(30, 10));
    series.push((
        "tab_gossip_interval",
        vec!["g_ms", "nonstrict_latency_secs", "strict_latency_secs"],
        a5.into_iter()
            .map(|(g, a, b)| vec![n(g as u32), n(a), n(b)])
            .collect(),
    ));
    let a6 = ex::tab_memory(pick(1000, 200));
    series.push((
        "tab_memory",
        vec!["total_ops", "uncompacted_entries", "compacted_entries"],
        a6.into_iter()
            .map(|(t, u, c)| vec![n(t as u32), n(u as u32), n(c as u32)])
            .collect(),
    ));
    let b1 = ex::tab_baseline_compare(pick(40, 12));
    series.push((
        "tab_baseline_compare",
        vec!["service", "mean_latency_secs"],
        b1.into_iter().map(|(nm, l)| vec![s(nm), n(l)]).collect(),
    ));

    if let Ok(path) = std::env::var("ESDS_JSON_OUT") {
        let json = render_json(miniature, &series);
        let mut f = std::fs::File::create(&path).expect("create ESDS_JSON_OUT");
        f.write_all(json.as_bytes()).expect("write ESDS_JSON_OUT");
        println!("\nwrote {} experiment series to {path}", series.len());
    }
}

//! Regenerates every table and figure of the paper's evaluation
//! (see `DESIGN.md` §5 and `EXPERIMENTS.md`).
use esds_bench::experiments as ex;

fn main() {
    println!("# ESDS experiment suite (paper: Fekete et al., PODC'96/TCS'99)");
    ex::fig_scalability(10, 150);
    ex::fig_strict_latency(5, 30);
    ex::fig_shard_scalability(16, 150);
    ex::fig_rebalance(9, 600);
    ex::tab_response_bounds(1);
    ex::tab_stabilization(1);
    ex::tab_fault_recovery(5);
    ex::tab_memoization(60);
    ex::tab_commute(25);
    ex::tab_gossip_strategies(40);
    ex::tab_id_summary(200);
    ex::tab_gossip_interval(30);
    ex::tab_memory(1000);
    ex::tab_baseline_compare(40);
}

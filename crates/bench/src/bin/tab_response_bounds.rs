//! T1 — verifies the Theorem 9.3 response-time bounds.
fn main() {
    for seed in [1, 2, 3] {
        esds_bench::experiments::tab_response_bounds(seed);
    }
}

//! T3 — verifies Theorem 9.4: timing bounds hold after a failure period.
fn main() {
    esds_bench::experiments::tab_fault_recovery(5);
}

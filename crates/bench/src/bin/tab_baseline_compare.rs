//! B1 — consistency/performance trade-off vs baselines.
fn main() {
    esds_bench::experiments::tab_baseline_compare(40);
}

//! F5 — the sharded TCP deployment's aggregate throughput vs shard
//! count: S ∈ {1, 2, 4} independent clusters over loopback sockets under
//! a fixed 8-replica budget (scale-out of the real `esds-wire`
//! deployment, not the simulator). Sizes keep the monolithic S = 1
//! cluster just below its gossip-collapse point (see
//! [`esds_bench::experiments::fig_wire_shards`]).
fn main() {
    esds_bench::experiments::fig_wire_shards(4, 80);
}

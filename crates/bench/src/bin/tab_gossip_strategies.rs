//! A3 — §10.4 gossip-strategy ablation.
fn main() {
    esds_bench::experiments::tab_gossip_strategies(40);
}

//! A1 — §10.1 memoization ablation.
fn main() {
    esds_bench::experiments::tab_memoization(60);
}

//! A5 — gossip-interval sensitivity ablation.
fn main() {
    esds_bench::experiments::tab_gossip_interval(30);
}

//! F1 — regenerates the §11.1 scalability figure: throughput vs replicas.
fn main() {
    esds_bench::experiments::fig_scalability(10, 200);
}

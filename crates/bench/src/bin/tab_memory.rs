//! A6 — §10.2 local compaction ablation.
fn main() {
    esds_bench::experiments::tab_memory(1000);
}

//! # esds-bench
//!
//! Experiment support for regenerating every table and figure of the ESDS
//! paper (see `DESIGN.md` §5 for the experiment index and `EXPERIMENTS.md`
//! for recorded results). Each experiment is a binary in `src/bin/`:
//!
//! | binary | reproduces |
//! |---|---|
//! | `fig_scalability`     | §11.1 throughput-vs-replicas figure (F1) |
//! | `fig_strict_latency`  | §11.1 latency-vs-strict% figure (F2) |
//! | `fig_shard_scalability` | throughput vs shard count, sharded kv (F3) |
//! | `fig_rebalance`       | throughput/latency through an add-shard handoff (F4) |
//! | `tab_response_bounds` | Theorem 9.3 response-time bounds (T1) |
//! | `tab_stabilization`   | Lemma 9.2 done-everywhere bound (T2) |
//! | `tab_fault_recovery`  | Theorem 9.4 recovery bounds (T3) |
//! | `tab_memoization`     | §10.1 memoization ablation (A1) |
//! | `tab_commute`         | §10.3 commutativity ablation (A2) |
//! | `tab_gossip_strategies` | §10.4 communication ablation (A3) |
//! | `tab_id_summary`      | §10.2 identifier summarization (A4) |
//! | `tab_gossip_interval` | Theorem 9.3 g-sensitivity (A5) |
//! | `tab_memory`          | §10.2 local compaction (A6) |
//! | `tab_baseline_compare`  | consistency/performance trade-off (B1) |
//! | `fig_obs_overhead`    | metrics/tracing overhead on the hot path (F7) |
//! | `run_all`             | all of the above |
//!
//! Criterion micro-benchmarks live in `benches/`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use esds_harness::{OpClass, SimSystem, SystemConfig};
use esds_sim::{SimDuration, SimTime};

pub mod experiments;

/// Formats a markdown table row.
pub fn row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}

/// Prints a markdown table.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n### {title}\n");
    println!(
        "{}",
        row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    println!(
        "{}",
        row(&header.iter().map(|_| "---".to_string()).collect::<Vec<_>>())
    );
    for r in rows {
        println!("{}", row(r));
    }
}

/// Mean latency (seconds) over all answered ops of a class, if any.
pub fn mean_latency_secs<T>(sys: &SimSystem<T>, class: Option<OpClass>) -> Option<f64>
where
    T: esds_core::SerialDataType + Clone,
{
    let mut sum = 0u128;
    let mut n = 0u128;
    for t in sys.op_times().values() {
        if class.is_some_and(|c| c != t.class) {
            continue;
        }
        if let Some(r) = t.responded {
            sum += r.duration_since(t.submitted).as_micros() as u128;
            n += 1;
        }
    }
    (n > 0).then(|| (sum / n) as f64 / 1e6)
}

/// Max latency over answered ops of a class.
pub fn max_latency<T>(sys: &SimSystem<T>, class: OpClass) -> Option<SimDuration>
where
    T: esds_core::SerialDataType + Clone,
{
    sys.op_times()
        .values()
        .filter(|t| t.class == class)
        .filter_map(|t| t.responded.map(|r| r.duration_since(t.submitted)))
        .max()
}

/// Throughput in completed operations per virtual second over `[0, end]`.
pub fn throughput<T>(sys: &SimSystem<T>, end: SimTime) -> f64
where
    T: esds_core::SerialDataType + Clone,
{
    if end == SimTime::ZERO {
        return 0.0;
    }
    sys.completed_count() as f64 / end.as_secs_f64()
}

/// A standard experiment config: fixed `df = dg = 5ms`, `g = 20ms`.
pub fn standard_config(n: usize, seed: u64) -> SystemConfig {
    SystemConfig::new(n).with_seed(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_formatting() {
        assert_eq!(row(&["a".into(), "b".into()]), "| a | b |");
    }
}

//! The experiment implementations, shared by the per-experiment binaries
//! and `run_all`. Every function prints a paper-style table and returns
//! the raw series for tests.

use esds_alg::{GossipStrategy, RelayPolicy, ReplicaConfig, SafeSubmitter};
use esds_core::{ClientId, SerialDataType};
use esds_datatypes::{Counter, GSet, KvStore};
use esds_harness::{
    apply_open_loop, CounterSource, FaultEvent, GSetSource, KvSource, OpClass, OpenLoopWorkload,
    OperatorSource, ProcessingModel, ShardedSimSystem, ShardedSystemConfig, SimSystem,
};
use esds_sim::{ChannelConfig, SimDuration, SimTime};
use esds_spec::check_converged;

use crate::{max_latency, mean_latency_secs, print_table, standard_config, throughput};

/// F1 — §11.1 scalability: replicas 1..=max_n, constant per-replica load,
/// 100% nonstrict. Returns `(n, throughput ops/s)` pairs for the
/// replicated service and for the centralized baseline under the same
/// total load.
pub fn fig_scalability(max_n: usize, ops_per_client: usize) -> Vec<(usize, f64, f64)> {
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for n in 1..=max_n {
        // Replicated: n clients (one per replica), fixed period each.
        let tp_esds = scalability_run(n, n, ops_per_client);
        // Centralized baseline: same total load onto one replica.
        let tp_central = scalability_run(1, n, ops_per_client);
        let efficiency = tp_esds / (tp_esds / n as f64 * n as f64).max(f64::EPSILON);
        let _ = efficiency;
        rows.push(vec![
            n.to_string(),
            format!("{:.0}", n as f64 * 500.0),
            format!("{tp_esds:.0}"),
            format!("{tp_central:.0}"),
            format!("{:.2}", tp_esds / tp_central.max(f64::EPSILON)),
        ]);
        out.push((n, tp_esds, tp_central));
    }
    print_table(
        "F1 — throughput vs number of replicas (paper §11.1: \"increased almost linearly\")",
        &[
            "replicas",
            "offered ops/s",
            "ESDS ops/s",
            "centralized ops/s",
            "speedup",
        ],
        &rows,
    );
    out
}

fn scalability_run(n: usize, clients: usize, ops_per_client: usize) -> f64 {
    // Per-replica capacity 1000 ops/s (1 ms request cost); each client
    // offers 500 ops/s.
    let cfg = standard_config(n, 1000 + n as u64)
        .with_processing(ProcessingModel {
            request_cost: SimDuration::from_millis(1),
            gossip_cost: SimDuration::from_micros(200),
        })
        .with_gossip_interval(SimDuration::from_millis(50));
    let mut sys = SimSystem::new(Counter, cfg);
    let w = OpenLoopWorkload::new(clients, ops_per_client, SimDuration::from_millis(2));
    let mut src = CounterSource::new(0.5, 42);
    apply_open_loop(&mut sys, &w, &mut src);
    // Run until all answered (not full stabilization — throughput is about
    // responses), with a generous horizon.
    let mut end = SimTime::ZERO;
    for _ in 0..100_000 {
        sys.run_for(SimDuration::from_millis(100));
        if sys.completed_count() == clients * ops_per_client {
            end = sys.now();
            break;
        }
    }
    assert!(end > SimTime::ZERO, "scalability run did not finish");
    // Throughput over the busy interval (first submit at ~0).
    throughput(&sys, latest_response(&sys))
}

fn latest_response<T: SerialDataType + Clone>(sys: &SimSystem<T>) -> SimTime {
    sys.op_times()
        .values()
        .filter_map(|t| t.responded)
        .max()
        .unwrap_or(SimTime::ZERO)
}

/// F3 — shard scalability: aggregate kv throughput vs shard count `S ∈
/// {1, 2, 4, 8}` under a fixed offered load well above one replica
/// group's capacity. Each shard is a 3-replica group with a 1 ms
/// request-service time (capacity ≈ 1000 ops/s per replica); `clients`
/// clients each offer ~1000 ops/s over 256 keys, hash-partitioned by the
/// `ShardRouter`. Returns `(n_shards, aggregate ops/s)` pairs.
pub fn fig_shard_scalability(clients: usize, ops_per_client: usize) -> Vec<(usize, f64)> {
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for s in [1usize, 2, 4, 8] {
        let tp = shard_run(s, clients, ops_per_client);
        out.push((s, tp));
    }
    let base = out[0].1;
    let offered_per_client = 1_000.0 / SHARD_SUBMIT_PERIOD_MS as f64;
    for (s, tp) in &out {
        rows.push(vec![
            s.to_string(),
            (s * 3).to_string(),
            format!("{:.0}", clients as f64 * offered_per_client),
            format!("{tp:.0}"),
            format!("{:.2}×", tp / base.max(f64::EPSILON)),
        ]);
    }
    print_table(
        "F3 — aggregate throughput vs shard count (kv workload, saturated single group)",
        &[
            "shards",
            "replicas total",
            "offered ops/s",
            "aggregate ops/s",
            "speedup vs S=1",
        ],
        &rows,
    );
    out
}

/// Per-client submit period of the F3 workload (one op per period ⇒
/// `1000 / period_ms` offered ops/s per client — the table's offered-load
/// column derives from this same constant).
const SHARD_SUBMIT_PERIOD_MS: u64 = 1;

/// Per-client submit period of the F4 rebalancing workload (500 offered
/// ops/s per client — kept under the 2-group capacity; see
/// [`fig_rebalance`]).
const REBALANCE_PERIOD_MS: u64 = 2;

/// One phase of the F4 rebalancing experiment.
#[derive(Clone, Copy, Debug)]
pub struct RebalancePhase {
    /// Phase name (`before` / `during` / `after`).
    pub phase: &'static str,
    /// Virtual length of the phase window in seconds.
    pub window_secs: f64,
    /// Completed client operations per virtual second inside the window
    /// (stable-prefix replay traffic excluded).
    pub ops_per_sec: f64,
    /// Mean response latency of operations submitted inside the window.
    pub mean_latency_ms: f64,
}

/// F4 — live rebalancing: kv throughput and latency **through an
/// add-shard event**. An `S = 2` deployment runs an open loop near
/// capacity; a quarter of the way in, `begin_add_shard` starts the slot handoff
/// (freeze → stable-prefix replay → table flip → drain). The three
/// windows are `[0, begin)`, `[begin, flip)` (migrating slots frozen,
/// their submissions queued), and `[flip, end]` (three groups serving).
/// The acceptance bar: post-migration throughput ≥ the pre-migration
/// 2-shard baseline. Returns the three phases in order.
pub fn fig_rebalance(clients: usize, ops_per_client: usize) -> Vec<RebalancePhase> {
    // Default 20 ms gossip interval: the handoff's stability gate needs
    // a few gossip rounds, and the experiment wants the flip to land
    // while load is still being offered. The offered load sits *below*
    // the 2-group capacity: past saturation, gossip queues behind the
    // unbounded request backlog and the migrating slots can never
    // stabilize — a deployment cannot hand off what it cannot stabilize.
    let shard_cfg = standard_config(3, 9898).with_processing(ProcessingModel {
        request_cost: SimDuration::from_millis(1),
        gossip_cost: SimDuration::from_micros(100),
    });
    let mut sys = ShardedSimSystem::new(KvStore, ShardedSystemConfig::new(2, shard_cfg));
    let cs: Vec<ClientId> = (0..clients).map(|i| sys.add_client(i as u32)).collect();
    let mut src = KvSource::new(0.5, 256, 77);
    // (id, intent time): latency is measured from the client's submit
    // call, so time spent queued behind a frozen slot counts against the
    // "during" phase — the honest cost of the handoff.
    let mut ids: Vec<(esds_core::ShardedOpId, SimTime)> =
        Vec::with_capacity(clients * ops_per_client);
    // Trigger a quarter of the way in: the handoff (freeze → stability →
    // replay → flip) spans several gossip rounds, and the "after" phase
    // needs offered load left to measure against three groups.
    let trigger_at = ops_per_client / 4;
    let mut t_begin = None;
    let mut t_flip = None;
    for seq in 0..ops_per_client {
        if seq == trigger_at {
            sys.begin_add_shard();
            t_begin = Some(sys.now());
        }
        for c in &cs {
            let op = src.next_op(*c, seq as u64);
            let now = sys.now();
            ids.push((sys.submit(*c, op, &[], false), now));
        }
        sys.run_for(SimDuration::from_millis(REBALANCE_PERIOD_MS));
        if t_begin.is_some() && t_flip.is_none() && !sys.migration_active() {
            t_flip = Some(sys.now());
        }
    }
    // End of offered load: the "after" phase is measured up to here, so
    // every window compares like with like (offered-load steady state,
    // not the final drain tail).
    let t_end_offered = sys.now();
    // Drain: run until every client submission is answered (the handoff
    // must also complete on the way).
    let total = clients * ops_per_client;
    for _ in 0..100_000 {
        if sys.completed_client_ops() >= total {
            break;
        }
        sys.run_for(SimDuration::from_millis(100));
        if t_begin.is_some() && t_flip.is_none() && !sys.migration_active() {
            t_flip = Some(sys.now());
        }
    }
    assert!(
        sys.completed_client_ops() >= total,
        "rebalance run did not finish: {}/{total}",
        sys.completed_client_ops()
    );
    let t_begin = t_begin.expect("migration triggered");
    let t_flip = t_flip.expect("migration completed");
    assert_eq!(sys.table_version(), 1);
    assert!(
        t_flip < t_end_offered,
        "handoff must complete while load is still offered; raise ops_per_client"
    );

    // Bucket every client op by the phase window its *submission* fell
    // into; measure each window's throughput by responses landing in it.
    let windows = [
        ("before", SimTime::ZERO, t_begin),
        ("during", t_begin, t_flip),
        ("after", t_flip, t_end_offered),
    ];
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for (name, lo, hi) in windows {
        let mut completed_in_window = 0usize;
        let mut latency_sum_us = 0u64;
        let mut latency_n = 0u64;
        for (id, intent) in &ids {
            let Some((_, responded)) = sys.op_timing(*id) else {
                continue;
            };
            if let Some(r) = responded {
                if r > lo && r <= hi {
                    completed_in_window += 1;
                }
                if *intent >= lo && *intent < hi {
                    latency_sum_us += r.duration_since(*intent).as_micros();
                    latency_n += 1;
                }
            }
        }
        let window_secs = hi.duration_since(lo).as_secs_f64();
        let phase = RebalancePhase {
            phase: name,
            window_secs,
            ops_per_sec: if window_secs > 0.0 {
                completed_in_window as f64 / window_secs
            } else {
                0.0
            },
            mean_latency_ms: if latency_n > 0 {
                latency_sum_us as f64 / latency_n as f64 / 1e3
            } else {
                0.0
            },
        };
        rows.push(vec![
            name.to_string(),
            format!("{:.2} s", phase.window_secs),
            format!("{:.0}", phase.ops_per_sec),
            format!("{:.1} ms", phase.mean_latency_ms),
        ]);
        out.push(phase);
    }
    print_table(
        "F4 — live rebalancing: add-shard handoff under load (2 → 3 groups, kv, slots frozen only during the handoff)",
        &["phase", "window", "client ops/s", "mean latency"],
        &rows,
    );
    out
}

fn shard_run(n_shards: usize, clients: usize, ops_per_client: usize) -> f64 {
    let shard_cfg = standard_config(3, 4242 + n_shards as u64)
        .with_processing(ProcessingModel {
            request_cost: SimDuration::from_millis(1),
            gossip_cost: SimDuration::from_micros(100),
        })
        .with_gossip_interval(SimDuration::from_millis(50));
    let mut sys = ShardedSimSystem::new(KvStore, ShardedSystemConfig::new(n_shards, shard_cfg));
    let cs: Vec<ClientId> = (0..clients).map(|i| sys.add_client(i as u32)).collect();
    let mut src = KvSource::new(0.5, 256, 7);
    // Open loop: every client submits once per period, an offered load
    // far above a single 3-replica group's capacity.
    let total = clients * ops_per_client;
    for seq in 0..ops_per_client {
        for c in &cs {
            let op = src.next_op(*c, seq as u64);
            sys.submit(*c, op, &[], false);
        }
        sys.run_for(SimDuration::from_millis(SHARD_SUBMIT_PERIOD_MS));
    }
    // Drain: run until every submission is answered.
    for _ in 0..100_000 {
        if sys.completed_count() >= total {
            break;
        }
        sys.run_for(SimDuration::from_millis(100));
    }
    assert!(
        sys.completed_count() >= total,
        "shard run did not finish: {}/{total}",
        sys.completed_count()
    );
    let end = sys.latest_response();
    assert!(end > SimTime::ZERO);
    total as f64 / end.as_secs_f64()
}

/// F5 — sharded **wire** scalability: aggregate kv throughput over real
/// loopback TCP for `S ∈ {1, 2, 4}` shard clusters under a **fixed
/// replica budget** of `WIRE_SHARD_REPLICA_BUDGET` = 8 replicas total
/// (8 → one monolithic 8-replica cluster, 2×4, 4×2). Unlike the
/// virtual-time F3 (whose per-replica service cost is modeled), this
/// measures the real deployment's dominant scaling effect: full-snapshot
/// gossip costs each group `n·(n−1)` messages of O(history) per tick, so
/// partitioning the same replica budget into independent gossip domains
/// cuts aggregate gossip work quadratically while serving the same
/// keyspace. `clients` concurrent client threads drive a closed-loop put
/// workload; throughput is wall-clock completed ops/s. Returns
/// `(n_shards, aggregate ops/s)` pairs.
///
/// Size the workload with care: a monolithic 8-replica group under full
/// gossip *collapses* (gossip work per tick outgrows the tick, queues
/// diverge, requests starve) once its history passes a few hundred
/// operations on a small host — which is the phenomenon this figure
/// quantifies from the safe side. The default sizes keep S = 1 below its
/// collapse point; the sharded configurations sit far from theirs.
///
/// # Panics
///
/// Panics if a client thread's operation goes unanswered for 60 s (the
/// deployment has then collapsed — see above — rather than slowed).
pub fn fig_wire_shards(clients: usize, ops_per_client: usize) -> Vec<(usize, f64)> {
    let mut out = Vec::new();
    for s in [1usize, 2, 4] {
        let tp = wire_shard_run(s, WIRE_SHARD_REPLICA_BUDGET / s, clients, ops_per_client);
        out.push((s, tp));
    }
    // At full size the headline ordering is an acceptance criterion, not
    // just a report: the monolith must lose to the 2-shard split. (Tiny
    // miniature runs skip this — wall-clock ratios at negligible history
    // are noise.)
    if clients * ops_per_client >= 320 {
        assert!(
            out[1].1 > out[0].1,
            "S=2 must out-throughput the 1-cluster monolith at full size: {out:?}"
        );
    }
    let base = out[0].1;
    let rows = out
        .iter()
        .map(|(s, tp)| {
            vec![
                s.to_string(),
                (WIRE_SHARD_REPLICA_BUDGET / s).to_string(),
                format!("{tp:.0}"),
                format!("{:.2}×", tp / base.max(f64::EPSILON)),
            ]
        })
        .collect::<Vec<_>>();
    print_table(
        "F5 — sharded TCP deployment: aggregate throughput vs shard count (kv, loopback sockets, fixed 8-replica budget)",
        &["shards", "replicas/shard", "aggregate ops/s", "speedup vs S=1"],
        &rows,
    );
    out
}

/// Total replicas the F5 experiment spreads across its shard clusters.
const WIRE_SHARD_REPLICA_BUDGET: usize = 8;

fn wire_shard_run(
    n_shards: usize,
    replicas_per_shard: usize,
    clients: usize,
    ops_per_client: usize,
) -> f64 {
    use std::time::{Duration, Instant};
    let mut cfg = esds_wire::ShardedWireConfig::new(replicas_per_shard);
    cfg.cluster.gossip_interval = Duration::from_millis(40);
    let mut svc = esds_wire::ShardedWireService::launch(KvStore, n_shards as u32, cfg);
    let handles: Vec<_> = (0..clients).map(|_| svc.client()).collect();
    let start = Instant::now();
    let threads: Vec<_> = handles
        .into_iter()
        .enumerate()
        .map(|(ci, mut c)| {
            std::thread::spawn(move || {
                for i in 0..ops_per_client {
                    let key = format!("k{}", (ci * ops_per_client + i) % 64);
                    let id = c.submit(esds_datatypes::KvOp::put(key, "x"), &[], false);
                    c.await_response(id, Duration::from_secs(60))
                        .expect("wire-shard op unanswered");
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread panicked");
    }
    let secs = start.elapsed().as_secs_f64();
    svc.shutdown();
    (clients * ops_per_client) as f64 / secs.max(f64::EPSILON)
}

/// F6 — what durability costs on the hot path: closed-loop throughput of
/// the 3-replica threaded service with persistence **off** (volatile
/// replicas), **wal** (every input synced to its replica's write-ahead
/// log before any effect is released, no compaction), and
/// **wal+snapshot** (same log plus a stable-prefix checkpoint every 64
/// records, so the figure includes compaction's amortized cost). Returns
/// `(mode, ops/s)` triples; the table also shows throughput relative to
/// the volatile baseline.
///
/// Sync-before-release is the price of the recovery guarantee (an
/// answered operation can never be lost — see `tests/durability.rs`),
/// and this figure is the receipt: it quantifies exactly what the
/// guarantee charges per operation on this host's fsync latency.
///
/// # Panics
///
/// Panics if a client's operation goes unanswered for 60 s or a store
/// cannot be opened under the system temp directory.
pub fn fig_wal_cost(clients: usize, ops_per_client: usize) -> Vec<(&'static str, f64)> {
    // `None` = volatile; `Some(snapshot_every)` = durable with the given
    // compaction policy (`None` inside = WAL only, never compacted).
    let modes: [(&'static str, Option<Option<u64>>); 3] = [
        ("off", None),
        ("wal", Some(None)),
        ("wal+snapshot", Some(Some(64))),
    ];
    let mut out = Vec::new();
    for (tag, durable) in modes {
        let tp = wal_cost_run(tag, durable, clients, ops_per_client);
        out.push((tag, tp));
    }
    let base = out[0].1;
    let rows = out
        .iter()
        .map(|(tag, tp)| {
            vec![
                (*tag).to_string(),
                format!("{tp:.0}"),
                format!("{:.2}×", tp / base.max(f64::EPSILON)),
            ]
        })
        .collect::<Vec<_>>();
    print_table(
        "F6 — durable replicas: WAL cost on the hot path (kv, 3 threaded replicas, sync-before-release)",
        &["persistence", "ops/s", "vs volatile"],
        &rows,
    );
    out
}

fn wal_cost_run(
    tag: &str,
    durable: Option<Option<u64>>,
    clients: usize,
    ops_per_client: usize,
) -> f64 {
    use std::time::{Duration, Instant};
    const N: usize = 3;
    let mut cfg = esds_runtime::RuntimeConfig::new(N);
    cfg.gossip_interval = Duration::from_millis(10);
    let root = std::env::temp_dir().join(format!(
        "esds-bench-wal-{}-{}",
        std::process::id(),
        tag.replace('+', "-")
    ));
    let mut svc = match durable {
        None => esds_runtime::RuntimeService::start(KvStore, cfg),
        Some(snapshot_every) => {
            cfg.replica = ReplicaConfig::default().with_durable();
            let _ = std::fs::remove_dir_all(&root);
            let replicas = (0..N)
                .map(|r| {
                    let storage = esds_store::FileStorage::open(root.join(format!("r{r}")))
                        .expect("bench store dir");
                    let (store, replica, report) = esds_store::DurableStore::open(
                        KvStore,
                        storage,
                        esds_core::ReplicaId(r as u32),
                        N,
                        ReplicaConfig::default(),
                        esds_store::DurableConfig { snapshot_every },
                    )
                    .expect("open fresh durable store");
                    assert!(!report.recovered, "bench store must start empty");
                    (
                        replica,
                        Box::new(store) as Box<dyn esds_alg::Persistence<KvStore>>,
                    )
                })
                .collect();
            esds_runtime::RuntimeService::start_durable(cfg, replicas)
        }
    };
    let handles: Vec<_> = (0..clients).map(|_| svc.client()).collect();
    let start = Instant::now();
    let threads: Vec<_> = handles
        .into_iter()
        .enumerate()
        .map(|(ci, mut c)| {
            std::thread::spawn(move || {
                for i in 0..ops_per_client {
                    let key = format!("k{}", (ci * ops_per_client + i) % 64);
                    let id = c.submit(esds_datatypes::KvOp::put(key, "x"), &[], false);
                    c.await_response(id, Duration::from_secs(60))
                        .expect("wal-cost op unanswered");
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread panicked");
    }
    let secs = start.elapsed().as_secs_f64();
    svc.shutdown();
    if durable.is_some() {
        let _ = std::fs::remove_dir_all(&root);
    }
    (clients * ops_per_client) as f64 / secs.max(f64::EPSILON)
}

/// F7 — what observability costs on the hot path: closed-loop throughput
/// of the 3-replica threaded service with metrics **off** (disabled
/// registry — every handle is a no-op `Option::None`), **counters**
/// (live registry: per-replica request/gossip counters, per-client
/// submitted/answered counters plus the bounded `await_us` histogram),
/// and **counters+tracing** (same, plus an op-lifecycle tracer sampling
/// 1-in-16 operations into a null sink). Returns `(mode, ops/s)`
/// triples; the table also shows throughput relative to the disabled
/// baseline.
///
/// The disabled path is the design's zero-cost claim and this figure is
/// the receipt: handles are `None` so the instrumented sites reduce to a
/// branch on an already-loaded discriminant. The counters mode bounds
/// the full-fleet price (relaxed atomic increments); the tracing mode
/// adds the FNV sampling hash per lifecycle stage.
///
/// # Panics
///
/// Panics if a client's operation goes unanswered for 60 s.
pub fn fig_obs_overhead(clients: usize, ops_per_client: usize) -> Vec<(&'static str, f64)> {
    let modes: [&'static str; 3] = ["off", "counters", "counters+tracing"];
    let mut out = Vec::new();
    for tag in modes {
        let tp = obs_overhead_run(tag, clients, ops_per_client);
        out.push((tag, tp));
    }
    let base = out[0].1;
    let rows = out
        .iter()
        .map(|(tag, tp)| {
            vec![
                (*tag).to_string(),
                format!("{tp:.0}"),
                format!("{:.2}×", tp / base.max(f64::EPSILON)),
            ]
        })
        .collect::<Vec<_>>();
    print_table(
        "F7 — observability overhead on the hot path (kv, 3 threaded replicas, closed loop)",
        &["metrics", "ops/s", "vs disabled"],
        &rows,
    );
    out
}

fn obs_overhead_run(tag: &str, clients: usize, ops_per_client: usize) -> f64 {
    use std::time::{Duration, Instant};
    let mut cfg = esds_runtime::RuntimeConfig::new(3);
    cfg.gossip_interval = Duration::from_millis(10);
    cfg = match tag {
        "off" => cfg,
        "counters" => cfg.with_obs(esds_obs::MetricsRegistry::new()),
        "counters+tracing" => cfg
            .with_obs(esds_obs::MetricsRegistry::new())
            .with_tracer(esds_obs::OpTracer::to_writer(Box::new(std::io::sink()), 16)),
        _ => unreachable!("unknown obs mode {tag}"),
    };
    let mut svc = esds_runtime::RuntimeService::start(KvStore, cfg);
    let handles: Vec<_> = (0..clients).map(|_| svc.client()).collect();
    let start = Instant::now();
    let threads: Vec<_> = handles
        .into_iter()
        .enumerate()
        .map(|(ci, mut c)| {
            std::thread::spawn(move || {
                for i in 0..ops_per_client {
                    let key = format!("k{}", (ci * ops_per_client + i) % 64);
                    let id = c.submit(esds_datatypes::KvOp::put(key, "x"), &[], false);
                    c.await_response(id, Duration::from_secs(60))
                        .expect("obs-overhead op unanswered");
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread panicked");
    }
    let secs = start.elapsed().as_secs_f64();
    svc.shutdown();
    (clients * ops_per_client) as f64 / secs.max(f64::EPSILON)
}

/// F2 — §11.1 strict-ratio: latency vs % strict at fixed load. Returns
/// `(strict_percent, mean_latency_secs)`.
pub fn fig_strict_latency(n: usize, ops_per_client: usize) -> Vec<(u32, f64)> {
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for pct in (0..=100).step_by(10) {
        let cfg = standard_config(n, 7_000 + pct as u64);
        let mut sys = SimSystem::new(Counter, cfg);
        let w = OpenLoopWorkload::new(n, ops_per_client, SimDuration::from_millis(100))
            .with_strict_fraction(pct as f64 / 100.0);
        let mut src = CounterSource::new(0.5, 13);
        apply_open_loop(&mut sys, &w, &mut src);
        sys.run_until_quiescent();
        let mean = mean_latency_secs(&sys, None).expect("answered ops");
        rows.push(vec![format!("{pct}%"), format!("{:.1} ms", mean * 1e3)]);
        out.push((pct, mean));
    }
    print_table(
        "F2 — mean latency vs strict fraction (paper §11.1: \"latency increased linearly\")",
        &["strict requests", "mean latency"],
        &rows,
    );
    out
}

/// One rung of the whole-object read ladder measured by
/// [`tab_response_bounds`]: the read mode and its mean/worst latency.
#[derive(Clone, Debug)]
pub struct LadderRung {
    /// `"eventual gather"`, `"strict home read"`, or
    /// `"barrier-strict gather"`.
    pub mode: &'static str,
    /// Mean response latency of the mode.
    pub mean: SimDuration,
    /// Worst response latency of the mode.
    pub max: SimDuration,
}

/// T1 — Theorem 9.3: measured worst-case response time per class vs the
/// analytic bound δ(x), plus the whole-object read ladder on a sharded
/// deployment (eventual gather < strict home read < barrier-strict
/// gather). Returns the `(class, measured, bound)` triples and the
/// ladder rungs.
pub fn tab_response_bounds(
    seed: u64,
) -> (Vec<(OpClass, SimDuration, SimDuration)>, Vec<LadderRung>) {
    // Round-robin relay so `prev` dependencies genuinely cross replicas;
    // with client-attached front ends the paper's locality remark applies
    // and nonstrict latency collapses to 2·df regardless of prev.
    let cfg = standard_config(3, seed).with_relay(RelayPolicy::RoundRobin);
    let (df, dg, g) = (cfg.df(), cfg.dg(), cfg.gossip_interval);
    let mut sys = SimSystem::new(Counter, cfg);
    // Adversarial workload for the bounds: each round submits an anchor,
    // then 1 ms later a dependent op (which lands on a replica that cannot
    // have the anchor yet and must wait for gossip) and a strict op.
    use esds_datatypes::CounterOp;
    let c = sys.add_client(0);
    for k in 0..40u64 {
        let at = SimTime::from_millis(40 * k);
        let anchor = sys.submit_at(at, c, CounterOp::Increment(1), &[], false);
        sys.submit_at(
            at + SimDuration::from_millis(1),
            c,
            CounterOp::Read,
            &[anchor],
            false,
        );
        if k % 2 == 0 {
            sys.submit_at(
                at + SimDuration::from_millis(2),
                c,
                CounterOp::Read,
                &[],
                true,
            );
        }
    }
    sys.run_until_quiescent();

    let mut rows = Vec::new();
    let mut out = Vec::new();
    for (class, name) in [
        (OpClass::NonstrictEmptyPrev, "nonstrict, prev = ∅ (δ = 2df)"),
        (
            OpClass::NonstrictWithPrev,
            "nonstrict, prev ≠ ∅ (δ = 2df+g+dg)",
        ),
        (OpClass::Strict, "strict (δ = 2df+3(g+dg))"),
    ] {
        let bound = class.delta_bound(df, dg, g);
        let measured = max_latency(&sys, class).unwrap_or(SimDuration::ZERO);
        rows.push(vec![
            name.to_string(),
            format!("{measured}"),
            format!("{bound}"),
            if measured <= bound {
                "✓".into()
            } else {
                "VIOLATED".into()
            },
        ]);
        out.push((class, measured, bound));
    }
    print_table(
        "T1 — Theorem 9.3 response-time bounds (df=5ms, dg=5ms, g=20ms)",
        &["class", "measured max", "bound δ(x)", "within bound"],
        &rows,
    );

    // T1b — the whole-object read ladder on a two-shard deployment with
    // the same timing parameters. Each round writes one key per shard,
    // then issues the three read modes at the same instant:
    //   * an *eventual* gather (`Keys`, nonstrict) — fan out one
    //     sub-operation per shard, merge the answers, no stability wait;
    //   * a *strict home* read (strict `Get` on one key) — the classic
    //     Theorem 9.3 strict path confined to a single shard, which is
    //     all the pre-fix router could offer a whole-object query (and
    //     it answered from that one slice);
    //   * a *barrier-strict* gather (`Keys`, strict) — snapshot each
    //     shard's answered frontier, wait until it is stable
    //     everywhere, then run strict sub-operations on every shard.
    // Truth across shards is paid for in stability waits, never given
    // up: the means must form the ladder.
    use esds_datatypes::KvOp;
    let mut ssys = ShardedSimSystem::new(
        KvStore,
        ShardedSystemConfig::new(2, standard_config(3, seed ^ 0x9e37)),
    );
    let router = ssys.router();
    let key_on = |shard: u32| {
        (0..10_000)
            .map(|i| format!("k{i}"))
            .find(|k| router.shard_of_key(k) == shard)
            .expect("both shards own keys")
    };
    let (k0, k1) = (key_on(0), key_on(1));
    let c = ssys.add_client(0);
    let mut rounds = Vec::new();
    for k in 0..24u64 {
        let at = SimTime::from_millis(80 * k);
        ssys.submit_at(at, c, KvOp::put(&k0, format!("a{k}")), &[], false);
        ssys.submit_at(at, c, KvOp::put(&k1, format!("b{k}")), &[], false);
        // Issue the reads just after the writes have *answered* (2·df)
        // but before they are *stable everywhere* (df + g + dg): the
        // barrier-strict gather's frontier then contains this round's
        // writes and the stability wait is genuinely nonzero.
        let t = at + SimDuration::from_millis(12);
        let eventual = ssys.submit_at(t, c, KvOp::Keys, &[], false);
        let home = ssys.submit_at(t, c, KvOp::get(&k0), &[], true);
        let barrier = ssys.submit_at(t, c, KvOp::Keys, &[], true);
        rounds.push([eventual, home, barrier]);
    }
    ssys.run_until_quiescent();
    let mut ladder = Vec::new();
    let mut ladder_rows = Vec::new();
    for (slot, mode) in [
        (0usize, "eventual gather"),
        (1, "strict home read"),
        (2, "barrier-strict gather"),
    ] {
        let lats: Vec<SimDuration> = rounds
            .iter()
            .map(|r| {
                let (sub, done) = ssys.op_timing(r[slot]).expect("issued above");
                done.expect("quiescent system answered everything") - sub
            })
            .collect();
        let mean = lats.iter().fold(SimDuration::ZERO, |acc, l| acc + *l) / lats.len() as u64;
        let max = lats.iter().copied().max().expect("nonempty rounds");
        ladder_rows.push(vec![mode.to_string(), format!("{mean}"), format!("{max}")]);
        ladder.push(LadderRung { mode, mean, max });
    }
    print_table(
        "T1b — whole-object read ladder, 2 shards (eventual < strict home < barrier-strict)",
        &["mode", "mean", "max"],
        &ladder_rows,
    );
    (out, ladder)
}

/// T2 — Lemma 9.2: time until each operation is done at *every* replica,
/// vs the bound `df + g + dg`. Returns `(measured_max, bound)`.
pub fn tab_stabilization(seed: u64) -> (SimDuration, SimDuration) {
    let cfg = standard_config(4, seed);
    let bound = cfg.df() + cfg.gossip_interval + cfg.dg();
    let mut sys = SimSystem::new(Counter, cfg);
    let w = OpenLoopWorkload::new(4, 30, SimDuration::from_millis(25)).with_prev_fraction(0.3);
    let mut src = CounterSource::new(0.3, 9);
    apply_open_loop(&mut sys, &w, &mut src);
    sys.run_until_quiescent();

    let measured = sys
        .op_times()
        .values()
        .filter_map(|t| t.done_everywhere.map(|d| d.duration_since(t.submitted)))
        .max()
        .expect("ops stabilized");
    print_table(
        "T2 — Lemma 9.2 done-at-every-replica bound",
        &["measured max", "bound df+g+dg", "within bound"],
        &[vec![
            format!("{measured}"),
            format!("{bound}"),
            if measured <= bound {
                "✓".into()
            } else {
                "VIOLATED".into()
            },
        ]],
    );
    (measured, bound)
}

/// T3 — Theorem 9.4: the timing assumptions are violated during an outage
/// window and restored at `T`; response times measured from `max(submit,
/// T)` must satisfy the same bounds. Returns `(class, measured, bound)`.
pub fn tab_fault_recovery(seed: u64) -> Vec<(OpClass, SimDuration, SimDuration)> {
    let cfg = standard_config(3, seed).with_retry(SimDuration::from_millis(40));
    let (df, dg, g) = (cfg.df(), cfg.dg(), cfg.gossip_interval);
    let slow = ChannelConfig::fixed(SimDuration::from_millis(500));
    let normal_fr = cfg.fr_channel;
    let normal_rr = cfg.rr_channel;
    let mut sys = SimSystem::new(Counter, cfg);

    // Violate timing in [0, 600ms): all channels 100× slower.
    sys.schedule_fault(
        SimTime::ZERO,
        FaultEvent::SetChannels { fr: slow, rr: slow },
    );
    let restore_at = SimTime::from_millis(600);
    sys.schedule_fault(
        restore_at,
        FaultEvent::SetChannels {
            fr: normal_fr,
            rr: normal_rr,
        },
    );

    let w = OpenLoopWorkload::new(3, 20, SimDuration::from_millis(40))
        .with_strict_fraction(0.3)
        .with_prev_fraction(0.3);
    let mut src = CounterSource::new(0.5, 3);
    apply_open_loop(&mut sys, &w, &mut src);
    sys.run_until_quiescent();

    // Measured from the later of submission and restoration, plus one
    // retry period (requests sent during the outage crawl through the slow
    // channel; the paper's model re-sends them instantly at T, ours at the
    // next retry tick).
    let retry = SimDuration::from_millis(40);
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for (class, name) in [
        (OpClass::NonstrictEmptyPrev, "nonstrict, prev = ∅"),
        (OpClass::NonstrictWithPrev, "nonstrict, prev ≠ ∅"),
        (OpClass::Strict, "strict"),
    ] {
        let bound = class.delta_bound(df, dg, g) + retry;
        let measured = sys
            .op_times()
            .values()
            .filter(|t| t.class == class)
            .filter_map(|t| {
                let r = t.responded?;
                let base = t.submitted.max(restore_at);
                Some(r.saturating_duration_since(base))
            })
            .max()
            .unwrap_or(SimDuration::ZERO);
        rows.push(vec![
            name.to_string(),
            format!("{measured}"),
            format!("{bound}"),
            if measured <= bound {
                "✓".into()
            } else {
                "VIOLATED".into()
            },
        ]);
        out.push((class, measured, bound));
    }
    print_table(
        "T3 — Theorem 9.4: bounds hold from the end of the failure period (+1 retry period)",
        &[
            "class",
            "measured max from recovery",
            "bound δ(x)+retry",
            "within bound",
        ],
        &rows,
    );
    out
}

/// A1 — §10.1 memoization ablation: data-type applies spent per response,
/// naive vs memoized. Returns `(naive_applies_per_resp, memo_applies_per_resp)`.
pub fn tab_memoization(ops: usize) -> (f64, f64) {
    let run = |replica: ReplicaConfig| -> f64 {
        let cfg = standard_config(3, 77).with_replica(replica);
        let mut sys = SimSystem::new(Counter, cfg);
        let w = OpenLoopWorkload::new(3, ops, SimDuration::from_millis(10));
        let mut src = CounterSource::new(0.5, 21);
        apply_open_loop(&mut sys, &w, &mut src);
        sys.run_until_quiescent();
        let stats = sys.replica_stats();
        let applies: u64 = stats.iter().map(|s| s.response_applies).sum();
        let resp: u64 = stats.iter().map(|s| s.responses).sum();
        applies as f64 / resp.max(1) as f64
    };
    let naive = run(ReplicaConfig::basic());
    let memo = run(ReplicaConfig::default());
    print_table(
        "A1 — §10.1 memoization: apply() calls per response",
        &["variant", "applies/response"],
        &[
            vec!["naive recompute (ESDS-Alg)".into(), format!("{naive:.1}")],
            vec!["memoized (ESDS-Alg′)".into(), format!("{memo:.1}")],
        ],
    );
    (naive, memo)
}

/// A2 — §10.3 commutativity ablation on a fully-commutative workload
/// (grow-only set) under SafeUsers: the Commute variant answers from its
/// current state. Returns `(recompute_applies_per_resp,
/// eager_applies_per_resp)` and asserts identical responses.
pub fn tab_commute(ops: usize) -> (f64, f64) {
    let run = |replica: ReplicaConfig| -> (
        Vec<(esds_core::OpId, <GSet as SerialDataType>::Value)>,
        f64,
        f64,
    ) {
        let cfg = standard_config(3, 55).with_replica(replica);
        let mut sys = SimSystem::new(GSet, cfg);
        // SafeUsers: order non-commuting pairs explicitly via SafeSubmitter.
        let mut safe = SafeSubmitter::new(GSet);
        let mut src = GSetSource::new(0.4, 16, 99);
        let clients: Vec<_> = (0..3).map(|i| sys.add_client(i)).collect();
        use esds_harness::OperatorSource;
        for seq in 0..ops as u64 {
            for c in &clients {
                let op = src.next_op(*c, seq);
                let prev = safe.prev_for(&op);
                let strict = seq % 7 == 0;
                let id = sys.submit(
                    *c,
                    op.clone(),
                    &prev.iter().copied().collect::<Vec<_>>(),
                    strict,
                );
                safe.record_with_prev(id, op, prev);
                sys.run_for(SimDuration::from_millis(3));
            }
        }
        sys.run_until_quiescent();
        let stats = sys.replica_stats();
        let resp: u64 = stats.iter().map(|s| s.responses).sum::<u64>().max(1);
        let recompute = stats.iter().map(|s| s.response_applies).sum::<u64>() as f64 / resp as f64;
        let eager = stats.iter().map(|s| s.eager_applies).sum::<u64>() as f64 / resp as f64;
        let mut responses: Vec<_> = sys
            .responses_log()
            .iter()
            .map(|(id, v, _)| (*id, v.clone()))
            .collect();
        responses.sort_by_key(|(id, _)| *id);
        responses.dedup();
        (responses, recompute, eager)
    };
    let (resp_a, recompute, _) = run(ReplicaConfig::default());
    let (resp_b, _, eager) = run(ReplicaConfig::commute());
    assert_eq!(
        resp_a, resp_b,
        "Commute must answer identically under SafeUsers"
    );
    print_table(
        "A2 — §10.3 Commute variant on a commutative workload (identical responses verified)",
        &[
            "variant",
            "response-path applies/response",
            "do-time applies/response",
        ],
        &[
            vec![
                "recompute (ESDS-Alg′)".into(),
                format!("{recompute:.2}"),
                "0.00".into(),
            ],
            vec![
                "Commute (Fig. 11)".into(),
                "0.00".into(),
                format!("{eager:.2}"),
            ],
        ],
    );
    (recompute, eager)
}

/// One measured cell of the A3 gossip-strategy sweep.
#[derive(Clone, Copy, Debug)]
pub struct GossipStrategyPoint {
    /// Human-readable strategy name.
    pub strategy: &'static str,
    /// Gossip interval `g` in milliseconds.
    pub g_ms: u64,
    /// Gossip messages sent per completed operation.
    pub msgs_per_op: f64,
    /// Approximate gossip bytes sent per completed operation.
    pub bytes_per_op: f64,
    /// Completed operations per virtual second.
    pub ops_per_sec: f64,
}

/// Runs one strategy/interval cell of the A3 sweep (the same 4-replica
/// open-loop workload for every cell), verifying convergence.
fn gossip_strategy_run(
    replica: ReplicaConfig,
    broadcast: bool,
    g_ms: u64,
    ops: usize,
) -> (f64, f64, f64) {
    let mut cfg = standard_config(4, 31)
        .with_replica(replica)
        .with_gossip_interval(SimDuration::from_millis(g_ms));
    cfg.broadcast_gossip = broadcast;
    let mut sys = SimSystem::new(Counter, cfg);
    let w = OpenLoopWorkload::new(4, ops, SimDuration::from_millis(10)).with_strict_fraction(0.2);
    let mut src = CounterSource::new(0.5, 8);
    apply_open_loop(&mut sys, &w, &mut src);
    sys.run_until_quiescent();
    check_converged(&sys.local_orders(), &sys.replica_states())
        .expect("all strategies must converge");
    let (msgs, bytes) = sys.gossip_traffic();
    let total = (4 * ops) as f64;
    let end = latest_response(&sys);
    let ops_per_sec = if end > SimTime::ZERO {
        sys.completed_count() as f64 / end.as_secs_f64()
    } else {
        0.0
    };
    (msgs as f64 / total, bytes as f64 / total, ops_per_sec)
}

/// A3 — §10.4 gossip strategies: messages, bytes, and throughput per
/// operation, swept across gossip intervals. The headline comparison is
/// Full vs Incremental vs Batched (4 ticks per exchange): Full re-ships
/// the whole `(R, D, L, S)` history every tick, Incremental ships deltas
/// every tick, Batched ships deltas plus summary watermarks every 4th
/// tick — O(delta) bytes *and* 1/4 the messages at steady state. The GC
/// and broadcast variants are included at each interval for continuity
/// with the paper's ablation. Returns one [`GossipStrategyPoint`] per
/// (strategy, interval) cell.
pub fn tab_gossip_strategies(ops: usize) -> Vec<GossipStrategyPoint> {
    let strategies: [(&'static str, ReplicaConfig, bool); 5] = [
        ("full snapshot (paper §6)", ReplicaConfig::default(), false),
        (
            "incremental (§10.4, FIFO channels)",
            ReplicaConfig::default().with_gossip(GossipStrategy::Incremental),
            false,
        ),
        (
            "batched ×4 (§10.2+§10.4, FIFO channels)",
            ReplicaConfig::default().with_batched(4),
            false,
        ),
        (
            "full + GC (§10.2)",
            ReplicaConfig::default().with_gc(),
            false,
        ),
        ("broadcast (§10.4)", ReplicaConfig::default(), true),
    ];
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for g_ms in [10u64, 20, 40] {
        for (name, replica, broadcast) in strategies {
            let (msgs_per_op, bytes_per_op, ops_per_sec) =
                gossip_strategy_run(replica, broadcast, g_ms, ops);
            rows.push(vec![
                name.to_string(),
                format!("{g_ms} ms"),
                format!("{msgs_per_op:.1}"),
                format!("{bytes_per_op:.0}"),
                format!("{ops_per_sec:.0}"),
            ]);
            out.push(GossipStrategyPoint {
                strategy: name,
                g_ms,
                msgs_per_op,
                bytes_per_op,
                ops_per_sec,
            });
        }
    }
    print_table(
        "A3 — §10.4 gossip strategies × gossip interval (4 replicas; convergence verified for each cell)",
        &[
            "strategy",
            "g",
            "gossip msgs / op",
            "gossip bytes / op",
            "ops / s",
        ],
        &rows,
    );
    out
}

/// A5 — gossip-interval sensitivity: Theorem 9.3 predicts strict latency
/// grows affinely in `g` (δ = 2df + 3(g + dg)) while nonstrict empty-prev
/// latency stays at 2df. Returns `(g_ms, nonstrict_mean_s, strict_mean_s)`.
pub fn tab_gossip_interval(ops_per_client: usize) -> Vec<(u64, f64, f64)> {
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for g_ms in [5u64, 10, 20, 40, 80] {
        let cfg =
            standard_config(3, 900 + g_ms).with_gossip_interval(SimDuration::from_millis(g_ms));
        let mut sys = SimSystem::new(Counter, cfg);
        let w = OpenLoopWorkload::new(3, ops_per_client, SimDuration::from_millis(4 * g_ms))
            .with_strict_fraction(0.5);
        let mut src = CounterSource::new(0.5, 23);
        apply_open_loop(&mut sys, &w, &mut src);
        sys.run_until_quiescent();
        let nonstrict = mean_latency_secs(&sys, Some(OpClass::NonstrictEmptyPrev))
            .expect("nonstrict ops answered");
        let strict = mean_latency_secs(&sys, Some(OpClass::Strict)).expect("strict ops answered");
        rows.push(vec![
            format!("{g_ms} ms"),
            format!("{:.1} ms", nonstrict * 1e3),
            format!("{:.1} ms", strict * 1e3),
        ]);
        out.push((g_ms, nonstrict, strict));
    }
    print_table(
        "A5 — gossip-interval sensitivity (δ(strict) = 2df + 3(g + dg): affine in g; nonstrict flat)",
        &["gossip interval g", "nonstrict mean", "strict mean"],
        &rows,
    );
    out
}

/// A4 — §10.2 identifier summarization: gossip sizes with `D` and `S` as
/// flat id lists (the abstract algorithm) vs as `IdSummary` watermark
/// vectors (the multipart-timestamp-style optimization), measured on live
/// gossip streams with both the sizing model and the real wire encoding.
/// Returns `(plain_wire_bytes, summarized_wire_bytes)` totals.
pub fn tab_id_summary(ops_per_client: usize) -> (u64, u64) {
    use bytes::BytesMut;
    use esds_alg::Replica;
    use esds_core::{ClientId, OpDescriptor, OpId, ReplicaId};
    use esds_datatypes::{CounterOp, CounterValue};
    use esds_wire::{encode_message, SummarizedGossip, WireMessage};

    // GC'd gossip (§10.2): descriptors and labels of stable operations are
    // pruned, but stability votes (`S`) must keep flowing — id sets then
    // dominate message bytes, which is exactly the case summarization
    // targets.
    const N: usize = 3;
    let mut reps: Vec<Replica<Counter>> = (0..N)
        .map(|i| {
            Replica::new(
                Counter,
                ReplicaId(i as u32),
                N,
                ReplicaConfig::default().with_gc(),
            )
        })
        .collect();

    let mut plain_model = 0u64;
    let mut summary_model = 0u64;
    let mut plain_wire = 0u64;
    let mut summary_wire = 0u64;
    let mut msgs = 0u64;

    let mut gossip_round = |reps: &mut Vec<Replica<Counter>>| {
        for from in 0..N {
            for to in 0..N {
                if from == to {
                    continue;
                }
                let g = reps[from].make_gossip(ReplicaId(to as u32));
                msgs += 1;
                plain_model += g.approx_bytes() as u64;
                let s = SummarizedGossip::from_gossip(&g);
                summary_model += s.approx_bytes() as u64;
                let mut buf = BytesMut::new();
                encode_message::<CounterOp, CounterValue>(
                    &WireMessage::Gossip(g.clone()),
                    &mut buf,
                );
                plain_wire += buf.len() as u64;
                buf.clear();
                encode_message::<CounterOp, CounterValue>(&WireMessage::GossipSummary(s), &mut buf);
                summary_wire += buf.len() as u64;
                reps[to].on_gossip(g);
            }
        }
    };

    // Three clients, dense per-client sequence numbers (the common case
    // the watermark representation is built for); gossip every 5 ops.
    for seq in 0..ops_per_client as u64 {
        for c in 0..3u32 {
            let id = OpId::new(ClientId(c), seq);
            let desc = OpDescriptor::new(id, CounterOp::Increment(1));
            reps[c as usize % N].on_request(desc);
        }
        if seq % 5 == 4 {
            gossip_round(&mut reps);
        }
    }
    // Rounds to reach stability everywhere.
    for _ in 0..3 {
        gossip_round(&mut reps);
    }

    print_table(
        "A4 — §10.2 id summarization: gossip bytes, flat id lists vs watermark summaries",
        &[
            "encoding",
            "total gossip bytes (model)",
            "total gossip bytes (wire)",
            "bytes/message (wire)",
        ],
        &[
            vec![
                "flat id lists (abstract algorithm)".into(),
                format!("{plain_model}"),
                format!("{plain_wire}"),
                format!("{:.0}", plain_wire as f64 / msgs as f64),
            ],
            vec![
                "IdSummary watermarks (§10.2)".into(),
                format!("{summary_model}"),
                format!("{summary_wire}"),
                format!("{:.0}", summary_wire as f64 / msgs as f64),
            ],
            vec![
                "reduction".into(),
                format!("{:.1}×", plain_model as f64 / summary_model.max(1) as f64),
                format!("{:.1}×", plain_wire as f64 / summary_wire.max(1) as f64),
                String::new(),
            ],
        ],
    );
    (plain_wire, summary_wire)
}

/// A6 — §10.2 local compaction: descriptors retained per replica over a
/// long run, with and without periodic [`esds_alg::Replica::compact`]
/// calls. Returns `(ops_issued, retained_no_compaction,
/// retained_with_compaction)` checkpoints.
pub fn tab_memory(total_ops: usize) -> Vec<(usize, usize, usize)> {
    use esds_alg::Replica;
    use esds_core::{ClientId, OpDescriptor, OpId, ReplicaId};
    use esds_datatypes::CounterOp;

    const N: usize = 3;
    let run = |compact: bool| -> Vec<(usize, usize)> {
        let mut reps: Vec<Replica<Counter>> = (0..N)
            .map(|i| Replica::new(Counter, ReplicaId(i as u32), N, ReplicaConfig::default()))
            .collect();
        let mut checkpoints = Vec::new();
        for seq in 0..total_ops as u64 {
            let id = OpId::new(ClientId(0), seq);
            let desc = OpDescriptor::new(id, CounterOp::Increment(1));
            reps[(seq % N as u64) as usize].on_request(desc);
            if seq % 5 == 4 {
                // A gossip round, then (optionally) compaction everywhere.
                for from in 0..N {
                    for to in 0..N {
                        if from != to {
                            let g = reps[from].make_gossip(ReplicaId(to as u32));
                            reps[to].on_gossip(g);
                        }
                    }
                }
                if compact {
                    for r in &mut reps {
                        r.compact();
                    }
                }
            }
            if (seq + 1) % (total_ops as u64 / 5).max(1) == 0 {
                let max = reps
                    .iter()
                    .map(|r| r.retained_descriptors())
                    .max()
                    .unwrap_or(0);
                checkpoints.push((seq as usize + 1, max));
            }
        }
        checkpoints
    };
    let plain = run(false);
    let compacted = run(true);
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for ((ops, no_gc), (_, gc)) in plain.iter().zip(&compacted) {
        rows.push(vec![ops.to_string(), no_gc.to_string(), gc.to_string()]);
        out.push((*ops, *no_gc, *gc));
    }
    print_table(
        "A6 — §10.2 local compaction: max descriptors retained at any replica",
        &["ops issued", "no compaction", "with compaction"],
        &rows,
    );
    out
}

/// B1 — the consistency/performance trade-off: all-nonstrict ESDS vs
/// all-strict ESDS (= atomic object, Corollary 5.9) vs a centralized
/// single replica. Returns `(name, mean_latency_secs)`.
pub fn tab_baseline_compare(ops: usize) -> Vec<(&'static str, f64)> {
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for (name, n, strict) in [
        ("ESDS, 5 replicas, nonstrict", 5usize, 0.0f64),
        ("ESDS, 5 replicas, all-strict (atomic)", 5, 1.0),
        ("centralized, 1 replica", 1, 0.0),
    ] {
        let cfg = standard_config(n, 61);
        let mut sys = SimSystem::new(Counter, cfg);
        let w = OpenLoopWorkload::new(5, ops, SimDuration::from_millis(50))
            .with_strict_fraction(strict);
        let mut src = CounterSource::new(0.5, 17);
        apply_open_loop(&mut sys, &w, &mut src);
        sys.run_until_quiescent();
        let mean = mean_latency_secs(&sys, None).expect("answered");
        rows.push(vec![name.to_string(), format!("{:.1} ms", mean * 1e3)]);
        out.push((name, mean));
    }
    print_table(
        "B1 — consistency vs performance (same load, same channels)",
        &["service", "mean latency"],
        &rows,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline shapes, verified in miniature (full sizes run in the
    /// experiment binaries).
    #[test]
    fn shapes_hold_in_miniature() {
        let (bounds, ladder) = tab_response_bounds(3);
        for (_, measured, bound) in bounds {
            assert!(measured <= bound);
        }
        // The whole-object read ladder: the eventual gather answers
        // before the strict modes, and the barrier-strict gather pays
        // at least the strict home read's price.
        assert_eq!(ladder.len(), 3);
        assert!(
            ladder[0].mean < ladder[1].mean && ladder[1].mean <= ladder[2].mean,
            "ladder out of order: {ladder:?}"
        );
        let (measured, bound) = tab_stabilization(4);
        assert!(measured <= bound);
    }

    #[test]
    fn strict_latency_increases() {
        let series = fig_strict_latency(3, 6);
        let first = series.first().expect("series").1;
        let last = series.last().expect("series").1;
        assert!(last > first * 2.0, "strict latency must rise: {series:?}");
    }

    #[test]
    fn wire_sharding_completes_in_miniature() {
        // Miniature of F5 over real loopback sockets: all three shard
        // counts complete and report nonzero wall-clock throughput. The
        // S=2 > S=1 *ordering* is asserted only at the full size (the
        // binary / run_all full mode) — wall-clock ratios at this tiny
        // history would flake under parallel test load.
        let series = fig_wire_shards(2, 12);
        assert_eq!(series.len(), 3);
        assert!(series.iter().all(|(_, tp)| *tp > 0.0), "{series:?}");
    }

    #[test]
    fn sharding_scales_throughput() {
        // Miniature of F3: a saturated single group vs four groups. The
        // full-size binary sweeps S ∈ {1, 2, 4, 8}.
        let tp1 = shard_run(1, 6, 40);
        let tp4 = shard_run(4, 6, 40);
        assert!(
            tp4 > tp1 * 1.5,
            "4 shards must beat 1 by ≥1.5×: {tp4:.0} vs {tp1:.0}"
        );
    }

    #[test]
    fn rebalance_recovers_throughput() {
        // The ISSUE-4 acceptance criterion in miniature: a workload
        // running while a shard is added completes, and post-migration
        // throughput is at least the pre-migration 2-shard baseline (the
        // full-size binary shows the 3-group speedup directly).
        let phases = fig_rebalance(9, 200);
        assert_eq!(phases.len(), 3);
        let before = phases[0].ops_per_sec;
        let after = phases[2].ops_per_sec;
        assert!(before > 0.0 && after > 0.0);
        assert!(
            after >= before,
            "post-migration throughput {after:.0} must be ≥ pre-migration {before:.0}"
        );
    }

    #[test]
    fn batched_gossip_beats_full_on_bytes_and_messages() {
        // The PR 3 acceptance criterion in miniature: at steady state the
        // batched strategy transfers strictly fewer bytes per operation
        // than full snapshots (O(delta + #clients) vs O(history)) and,
        // with 4 ticks per exchange, strictly fewer messages.
        let (full_msgs, full_bytes, _) =
            gossip_strategy_run(ReplicaConfig::default(), false, 20, 25);
        let (batched_msgs, batched_bytes, _) =
            gossip_strategy_run(ReplicaConfig::default().with_batched(4), false, 20, 25);
        assert!(
            batched_bytes < full_bytes,
            "batched bytes/op {batched_bytes:.0} must be < full {full_bytes:.0}"
        );
        assert!(
            batched_msgs < full_msgs,
            "batched msgs/op {batched_msgs:.1} must be < full {full_msgs:.1}"
        );
    }

    #[test]
    fn memoization_reduces_applies() {
        let (naive, memo) = tab_memoization(15);
        assert!(memo < naive, "memoized {memo} !< naive {naive}");
    }

    #[test]
    fn strict_latency_tracks_gossip_interval() {
        let series = tab_gossip_interval(4);
        let (g0, ns0, s0) = series[0];
        let (g1, ns1, s1) = *series.last().expect("series");
        // Strict latency grows with g; nonstrict stays flat.
        assert!(s1 > s0 * 2.0, "strict must grow with g: {series:?}");
        assert!(
            (ns1 - ns0).abs() < 1e-3,
            "nonstrict must stay flat: {series:?}"
        );
        assert!(g1 > g0);
    }

    #[test]
    fn compaction_bounds_memory() {
        let series = tab_memory(100);
        let (_, no_gc, gc) = *series.last().expect("checkpoints");
        assert!(no_gc >= 100, "uncompacted replicas retain every descriptor");
        assert!(
            gc * 4 < no_gc,
            "compaction must bound retention: {gc} vs {no_gc}"
        );
    }

    #[test]
    fn id_summaries_shrink_gossip() {
        // The reduction grows with history length (watermarks are O(#clients),
        // id lists O(#ops)); even this miniature must show a clear win, and
        // the full-size binary (200 ops/client) shows ~4×.
        let (plain, summarized) = tab_id_summary(40);
        assert!(
            summarized * 3 < plain * 2,
            "summaries must cut gossip bytes by ≥1.5×: {summarized} vs {plain}"
        );
    }
}

//! Micro-benchmarks for the rebalancing substrate: routing-table lookups
//! (the per-operation cost every sharded submission now pays for the
//! slot indirection) and migration-plan computation/application (the
//! control-plane cost of an add-shard or drain event).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use esds_core::{MigrationPlan, RoutingTable, ShardRouter};

fn bench_routing_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing_table_lookup");
    for s in [2u32, 8, 32] {
        let router = ShardRouter::new(s);
        let keys: Vec<String> = (0..256).map(|i| format!("user:{i}")).collect();
        group.bench_function(format!("shard_of_key_{s}_shards"), |b| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % keys.len();
                router.shard_of_key(&keys[i])
            });
        });
    }
    group.finish();
}

fn bench_migration_plans(c: &mut Criterion) {
    let mut group = c.benchmark_group("migration_plan");
    for s in [2u32, 8, 32] {
        group.bench_function(format!("add_shard_from_{s}"), |b| {
            let table = RoutingTable::uniform(s);
            b.iter(|| MigrationPlan::add_shard(&table));
        });
        group.bench_function(format!("apply_add_from_{s}"), |b| {
            let table = RoutingTable::uniform(s);
            let plan = MigrationPlan::add_shard(&table);
            b.iter_batched(
                || table.clone(),
                |mut t| {
                    t.apply(&plan);
                    t
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.bench_function("drain_shard_from_8", |b| {
        let table = RoutingTable::uniform(8);
        b.iter(|| MigrationPlan::drain_shard(&table, 3));
    });
    group.finish();
}

criterion_group!(benches, bench_routing_lookup, bench_migration_plans);
criterion_main!(benches);

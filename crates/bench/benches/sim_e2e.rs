//! End-to-end simulation throughput: full workloads through the simulated
//! deployment (F1/F2 in miniature). Measures the harness itself, so the
//! experiment binaries' runtimes stay predictable.

use criterion::{criterion_group, criterion_main, Criterion};
use esds_datatypes::Counter;
use esds_harness::{apply_open_loop, CounterSource, OpenLoopWorkload, SimSystem, SystemConfig};
use esds_sim::SimDuration;

fn run_once(n_replicas: usize, strict: f64, ops: usize) -> usize {
    let cfg = SystemConfig::new(n_replicas).with_seed(3);
    let mut sys = SimSystem::new(Counter, cfg);
    let w = OpenLoopWorkload::new(n_replicas, ops, SimDuration::from_millis(10))
        .with_strict_fraction(strict);
    let mut src = CounterSource::new(0.5, 11);
    apply_open_loop(&mut sys, &w, &mut src);
    sys.run_until_quiescent();
    sys.completed_count()
}

fn bench_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_e2e");
    group.sample_size(10);
    for (name, n, strict) in [
        ("3r_nonstrict", 3usize, 0.0f64),
        ("3r_half_strict", 3, 0.5),
        ("6r_nonstrict", 6, 0.0),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let done = run_once(n, strict, 20);
                assert_eq!(done, n * 20);
                done
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);

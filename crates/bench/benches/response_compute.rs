//! The A1/A2 ablations as micro-benchmarks: cost of computing one response
//! as a function of history length, for the naive recompute (`ESDS-Alg`),
//! the memoized solid prefix (`ESDS-Alg′`, §10.1), and the eager-commute
//! variant (Fig. 11, §10.3).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use esds_alg::{Replica, ReplicaConfig};
use esds_core::{ClientId, OpDescriptor, OpId, ReplicaId, SerialDataType};

#[derive(Clone, Copy, Debug)]
struct Ctr;
#[derive(Clone, PartialEq, Eq, Debug)]
enum Op {
    Inc,
    Read,
}
impl SerialDataType for Ctr {
    type State = i64;
    type Operator = Op;
    type Value = i64;
    fn initial_state(&self) -> i64 {
        0
    }
    fn apply(&self, s: &i64, op: &Op) -> (i64, i64) {
        match op {
            Op::Inc => (s + 1, s + 1),
            Op::Read => (*s, *s),
        }
    }
}

/// Builds a 2-replica pair with `history` increments done and fully
/// gossiped (so memoized prefixes cover everything); returns the first
/// replica, primed so the next read is answered from a `history`-deep log.
fn primed(history: u64, config: ReplicaConfig) -> Replica<Ctr> {
    let mut a = Replica::new(Ctr, ReplicaId(0), 2, config);
    let mut b = Replica::new(Ctr, ReplicaId(1), 2, config);
    for i in 0..history {
        let _ = a.on_request(OpDescriptor::new(OpId::new(ClientId(0), i), Op::Inc));
    }
    // Three gossip rounds stabilize everything at both replicas.
    for _ in 0..3 {
        let g = a.make_gossip(ReplicaId(1));
        let _ = b.on_gossip(g);
        let g = b.make_gossip(ReplicaId(0));
        let _ = a.on_gossip(g);
    }
    a
}

fn bench_response(c: &mut Criterion) {
    for (name, config) in [
        ("naive", ReplicaConfig::basic()),
        ("memoized", ReplicaConfig::default()),
        ("commute", ReplicaConfig::commute()),
    ] {
        let mut group = c.benchmark_group(format!("respond_read_{name}"));
        for history in [100u64, 1_000, 4_000] {
            let replica = primed(history, config);
            group.bench_function(format!("history_{history}"), |b| {
                let mut seq = 1_000_000u64;
                b.iter_batched(
                    || {
                        seq += 1;
                        (
                            replica.clone(),
                            OpDescriptor::new(OpId::new(ClientId(1), seq), Op::Read),
                        )
                    },
                    |(mut r, d)| r.on_request(d),
                    BatchSize::SmallInput,
                );
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_response);
criterion_main!(benches);

//! Micro-benchmarks for the label machinery (paper §6.3): fresh-label
//! generation and minimum-merge — the per-operation bookkeeping cost of
//! the algorithm's ordering substrate.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use esds_core::{ClientId, Label, LabelGenerator, LabelMap, OpId, ReplicaId};

fn id(s: u64) -> OpId {
    OpId::new(ClientId(0), s)
}

fn bench_fresh_labels(c: &mut Criterion) {
    c.bench_function("label_generator_fresh_above", |b| {
        let mut gen = LabelGenerator::new(ReplicaId(0));
        let mut floor = None;
        b.iter(|| {
            let l = gen.fresh_above(floor);
            floor = Some(l);
            l
        });
    });
}

fn bench_merge_min(c: &mut Criterion) {
    let mut group = c.benchmark_group("label_map_merge_min");
    for n in [100u64, 1_000, 10_000] {
        group.bench_function(format!("fresh_inserts_{n}"), |b| {
            b.iter_batched(
                LabelMap::new,
                |mut m| {
                    for i in 0..n {
                        m.merge_min(id(i), Label::new(i, ReplicaId(0)));
                    }
                    m
                },
                BatchSize::SmallInput,
            );
        });
    }
    // Lowering an existing label (the gossip merge hot path).
    group.bench_function("lowering_merge", |b| {
        let mut m = LabelMap::new();
        for i in 0..10_000u64 {
            m.merge_min(id(i), Label::new(i * 2 + 1, ReplicaId(1)));
        }
        let mut i = 0u64;
        b.iter(|| {
            let k = i % 10_000;
            // Alternates between a lowering merge and a no-op merge.
            m.merge_min(id(k), Label::new(k * 2, ReplicaId(0)));
            i += 1;
        });
    });
    group.finish();
}

fn bench_label_order_iteration(c: &mut Criterion) {
    let mut m = LabelMap::new();
    for i in 0..10_000u64 {
        m.merge_min(id(i), Label::new(i, ReplicaId(0)));
    }
    c.bench_function("label_map_order_walk_10k", |b| {
        b.iter(|| {
            let mut cursor = None;
            let mut count = 0u64;
            while let Some((l, _)) = m.next_after(cursor) {
                cursor = Some(l);
                count += 1;
            }
            count
        });
    });
}

criterion_group!(
    benches,
    bench_fresh_labels,
    bench_merge_min,
    bench_label_order_iteration
);
criterion_main!(benches);

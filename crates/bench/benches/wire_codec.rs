//! Criterion micro-benchmarks for the wire codec (esds-wire): encoding
//! and decoding gossip messages at several sizes, plain vs §10.2
//! summarized, plus frame checksumming. These are the per-message costs a
//! TCP deployment pays on every gossip tick.

use bytes::BytesMut;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use esds_alg::GossipMsg;
use esds_core::{ClientId, Label, OpDescriptor, OpId, ReplicaId};
use esds_datatypes::{CounterOp, CounterValue};
use esds_wire::{decode_message, encode_message, read_frame, SummarizedGossip, WireMessage};

type Msg = WireMessage<CounterOp, CounterValue>;

/// A steady-state gossip message over `n` operations from 4 clients:
/// everything done and labeled, four fifths already stable.
fn gossip_of(n: usize) -> GossipMsg<CounterOp> {
    let ids: Vec<OpId> = (0..n)
        .map(|k| OpId::new(ClientId((k % 4) as u32), (k / 4) as u64))
        .collect();
    GossipMsg {
        from: ReplicaId(0),
        rcvd: ids
            .iter()
            .map(|id| OpDescriptor::new(*id, CounterOp::Increment(1)))
            .collect(),
        done: ids.clone(),
        labels: ids
            .iter()
            .enumerate()
            .map(|(k, id)| (*id, Label::new(k as u64, ReplicaId(0))))
            .collect(),
        stable: ids.iter().take(n * 4 / 5).copied().collect(),
    }
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_encode");
    for n in [16usize, 128, 1024] {
        let plain = Msg::Gossip(gossip_of(n));
        let summarized = Msg::GossipSummary(SummarizedGossip::from_gossip(&gossip_of(n)));
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("gossip_plain", n), &plain, |b, msg| {
            let mut buf = BytesMut::with_capacity(64 * 1024);
            b.iter(|| {
                buf.clear();
                encode_message(msg, &mut buf);
                buf.len()
            });
        });
        group.bench_with_input(
            BenchmarkId::new("gossip_summarized", n),
            &summarized,
            |b, msg| {
                let mut buf = BytesMut::with_capacity(64 * 1024);
                b.iter(|| {
                    buf.clear();
                    encode_message(msg, &mut buf);
                    buf.len()
                });
            },
        );
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_decode");
    for n in [16usize, 128, 1024] {
        let mut buf = BytesMut::new();
        encode_message(&Msg::Gossip(gossip_of(n)), &mut buf);
        let bytes = buf.freeze().to_vec();
        group.throughput(Throughput::Bytes(bytes.len() as u64));
        group.bench_with_input(BenchmarkId::new("gossip_plain", n), &bytes, |b, bytes| {
            b.iter(|| {
                let mut r = &bytes[..];
                let frame = read_frame(&mut r).expect("io").expect("frame");
                let msg: Msg = decode_message(&frame).expect("decode");
                msg
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_encode, bench_decode);
criterion_main!(benches);

//! Cost of the specification-level `valset` enumeration (paper §2.3): the
//! reason the checkers use witness orders instead of exhaustive
//! enumeration. Grows factorially with the antichain width.

use std::collections::BTreeMap;

use criterion::{criterion_group, criterion_main, Criterion};
use esds_core::{valset, ClientId, Digraph, OpDescriptor, OpId, SerialDataType};

#[derive(Clone, Copy, Debug)]
struct Ctr;
#[derive(Clone, PartialEq, Eq, Debug)]
enum Op {
    Inc,
    Read,
}
impl SerialDataType for Ctr {
    type State = i64;
    type Operator = Op;
    type Value = i64;
    fn initial_state(&self) -> i64 {
        0
    }
    fn apply(&self, s: &i64, op: &Op) -> (i64, i64) {
        match op {
            Op::Inc => (s + 1, s + 1),
            Op::Read => (*s, *s),
        }
    }
}

fn id(s: u64) -> OpId {
    OpId::new(ClientId(0), s)
}

fn bench_valset(c: &mut Criterion) {
    let mut group = c.benchmark_group("valset_antichain");
    group.sample_size(10);
    for n in [4u64, 6, 7] {
        // n unordered increments plus one read: n!·(n+1) extensions.
        let mut ops: BTreeMap<OpId, OpDescriptor<Op>> = (0..n)
            .map(|i| (id(i), OpDescriptor::new(id(i), Op::Inc)))
            .collect();
        ops.insert(id(n), OpDescriptor::new(id(n), Op::Read));
        let po = Digraph::new();
        group.bench_function(format!("width_{n}"), |b| {
            b.iter(|| valset(&Ctr, &0, &ops, &po, id(n), usize::MAX));
        });
    }
    // Chain: linear despite size — constraints collapse the enumeration.
    group.bench_function("chain_64", |b| {
        let n = 64u64;
        let ops: BTreeMap<OpId, OpDescriptor<Op>> = (0..n)
            .map(|i| (id(i), OpDescriptor::new(id(i), Op::Inc)))
            .collect();
        let po = Digraph::chain((0..n).map(id));
        b.iter(|| valset(&Ctr, &0, &ops, &po, id(n - 1), usize::MAX));
    });
    group.finish();
}

criterion_group!(benches, bench_valset);
criterion_main!(benches);

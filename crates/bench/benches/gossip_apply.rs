//! Gossip-processing cost: how long a replica takes to merge an incoming
//! `(R, D, L, S)` snapshot, as a function of how many operations it
//! carries (the §10.4 motivation for incremental gossip).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use esds_alg::{Replica, ReplicaConfig};
use esds_core::{ClientId, OpDescriptor, OpId, ReplicaId, SerialDataType};

#[derive(Clone, Copy, Debug)]
struct Ctr;
#[derive(Clone, PartialEq, Eq, Debug)]
enum Op {
    Inc,
}
impl SerialDataType for Ctr {
    type State = i64;
    type Operator = Op;
    type Value = i64;
    fn initial_state(&self) -> i64 {
        0
    }
    fn apply(&self, s: &i64, _op: &Op) -> (i64, i64) {
        (s + 1, s + 1)
    }
}

/// Builds a sender replica with `n` done ops and returns (receiver, msg).
fn prepared(n: u64) -> (Replica<Ctr>, esds_alg::GossipMsg<Op>) {
    let mut sender = Replica::new(Ctr, ReplicaId(0), 2, ReplicaConfig::basic());
    for i in 0..n {
        let _ = sender.on_request(OpDescriptor::new(OpId::new(ClientId(0), i), Op::Inc));
    }
    let msg = sender.make_gossip(ReplicaId(1));
    let receiver = Replica::new(Ctr, ReplicaId(1), 2, ReplicaConfig::basic());
    (receiver, msg)
}

fn bench_gossip_apply(c: &mut Criterion) {
    let mut group = c.benchmark_group("gossip_apply_cold");
    for n in [10u64, 100, 1_000] {
        let (receiver, msg) = prepared(n);
        group.bench_function(format!("ops_{n}"), |b| {
            b.iter_batched(
                || (receiver.clone(), msg.clone()),
                |(mut r, m)| r.on_gossip(m),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();

    // Re-applying the same snapshot (the steady-state full-gossip case):
    // everything is already merged, so this measures the dedup overhead
    // the incremental strategy avoids.
    let mut group = c.benchmark_group("gossip_apply_warm");
    for n in [100u64, 1_000] {
        let (mut receiver, msg) = prepared(n);
        let _ = receiver.on_gossip(msg.clone());
        group.bench_function(format!("ops_{n}"), |b| {
            b.iter_batched(
                || (receiver.clone(), msg.clone()),
                |(mut r, m)| r.on_gossip(m),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gossip_apply);
criterion_main!(benches);

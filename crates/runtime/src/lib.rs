//! # esds-runtime
//!
//! A real multithreaded deployment of the ESDS algorithm: one OS thread
//! per replica (driving the same sans-IO [`esds_alg::Replica`] state
//! machine as the simulator) plus a network thread that injects
//! propagation delay. See `DESIGN.md` §2 for how this substitutes for the
//! paper's MPI/workstation testbed.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod audit;
mod service;
mod sharded;

pub use audit::{AuditSidecar, AuditTap};
pub use service::{
    DurableReplica, InspectHandle, OpFilter, ReplicaSnapshot, RuntimeClient, RuntimeConfig,
    RuntimeService,
};
pub use sharded::{ShardedClient, ShardedService};

//! A real multithreaded deployment of the ESDS algorithm.
//!
//! Each replica runs on its own OS thread, driving the *same*
//! [`esds_alg::Replica`] state machine as the simulator; a network thread
//! routes all messages and injects a configurable propagation delay,
//! standing in for the paper's workstation network (Cheiner ran on
//! MPI-connected Unix workstations; see `DESIGN.md` §2). Clients interact
//! through [`RuntimeClient`] handles that own a front end.

use std::collections::BinaryHeap;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use esds_alg::{
    FrontEnd, GossipEnvelope, Persistence, RelayPolicy, Replica, ReplicaConfig, RequestMsg,
    ResponseMsg,
};
use esds_core::{ClientId, OpId, ReplicaId, SerialDataType};
use parking_lot::Mutex;

/// Configuration of the threaded deployment.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Number of replica threads.
    pub n_replicas: usize,
    /// Wall-clock gossip interval.
    pub gossip_interval: Duration,
    /// Injected one-way network delay for every message.
    pub net_delay: Duration,
    /// Replica configuration.
    pub replica: ReplicaConfig,
    /// Metrics registry replica threads and clients report into
    /// (`replica{r}/…`, `client{c}/…`). Defaults to disabled: every
    /// handle is a no-op and instrumentation costs one branch.
    pub obs: esds_obs::MetricsRegistry,
    /// Sampled op-lifecycle tracer. Defaults to disabled.
    pub tracer: esds_obs::OpTracer,
}

impl RuntimeConfig {
    /// Defaults: 1 ms delay, 5 ms gossip period, metrics and tracing
    /// disabled.
    pub fn new(n_replicas: usize) -> Self {
        RuntimeConfig {
            n_replicas,
            gossip_interval: Duration::from_millis(5),
            net_delay: Duration::from_millis(1),
            replica: ReplicaConfig::default(),
            obs: esds_obs::MetricsRegistry::disabled(),
            tracer: esds_obs::OpTracer::disabled(),
        }
    }

    /// Installs a live metrics registry for the service's replica
    /// threads and every client created from it.
    #[must_use]
    pub fn with_obs(mut self, obs: esds_obs::MetricsRegistry) -> Self {
        self.obs = obs;
        self
    }

    /// Installs a sampled op-lifecycle tracer.
    #[must_use]
    pub fn with_tracer(mut self, tracer: esds_obs::OpTracer) -> Self {
        self.tracer = tracer;
        self
    }
}

enum Payload<T: SerialDataType> {
    Request(RequestMsg<T::Operator>),
    // Boxed: envelopes carry summaries and would dominate the enum size.
    Gossip(Box<GossipEnvelope<T::Operator>>),
    Response(ResponseMsg<T::Value>),
}

enum Endpoint {
    Replica(ReplicaId),
    Client(ClientId),
}

struct NetMsg<T: SerialDataType> {
    to: Endpoint,
    payload: Payload<T>,
}

/// Inputs to the network thread. Clients and replicas only ever send
/// `Msg`; `Shutdown` is sent once by [`RuntimeService::shutdown`] so the
/// thread terminates even while client handles (each holding a sender
/// clone) are still alive.
enum NetInput<T: SerialDataType> {
    Msg(NetMsg<T>),
    Shutdown,
}

/// A predicate over operators, shipped to a replica thread by
/// [`RuntimeService::count_unstable`].
pub type OpFilter<T> = Box<dyn Fn(&<T as SerialDataType>::Operator) -> bool + Send>;

enum ReplicaInput<T: SerialDataType> {
    Request(RequestMsg<T::Operator>),
    Gossip(Box<GossipEnvelope<T::Operator>>),
    Inspect(Sender<ReplicaSnapshot<T>>),
    CountUnstable(OpFilter<T>, Sender<usize>),
    Shutdown,
}

/// A point-in-time view of one replica's history, answered over the
/// replica's own input channel (so it is consistent: no message is half-
/// applied). The sharded layer's slot migration uses it to find a slot's
/// **stable prefix** — the operations whose order is final at every
/// replica — which is the unit of state transfer during a handoff.
pub struct ReplicaSnapshot<T: SerialDataType> {
    /// The replica's local label order.
    pub order: Vec<esds_core::OpId>,
    /// Operations the replica knows are stable at *every* replica; their
    /// labels — and positions in `order` — can never change again.
    pub stable_everywhere: std::collections::BTreeSet<esds_core::OpId>,
    /// The operator of every operation the replica has received.
    pub ops: std::collections::BTreeMap<esds_core::OpId, T::Operator>,
}

struct Timed<T: SerialDataType> {
    due: Instant,
    seq: u64,
    msg: NetMsg<T>,
}

impl<T: SerialDataType> PartialEq for Timed<T> {
    fn eq(&self, other: &Self) -> bool {
        (self.due, self.seq) == (other.due, other.seq)
    }
}
impl<T: SerialDataType> Eq for Timed<T> {}
impl<T: SerialDataType> Ord for Timed<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest due first.
        (other.due, other.seq).cmp(&(self.due, self.seq))
    }
}
impl<T: SerialDataType> PartialOrd for Timed<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The shared registry of per-client response channels.
type ClientRegistry<V> = std::sync::Arc<Mutex<Vec<Sender<ResponseMsg<V>>>>>;

/// A recovered replica paired with its durable backend, as handed to
/// [`RuntimeService::start_durable`] (and, per shard, to
/// `ShardedService::start_durable`).
pub type DurableReplica<T> = (Replica<T>, Box<dyn Persistence<T>>);

/// A replica slot as the service threads run it: durable slots carry
/// their backend, volatile slots `None`.
type ReplicaSlot<T> = (Replica<T>, Option<Box<dyn Persistence<T>>>);

/// A cheap cloneable handle for fetching [`ReplicaSnapshot`]s without
/// borrowing the [`RuntimeService`] — what a background audit sidecar
/// polls from its own thread.
pub struct InspectHandle<T: SerialDataType> {
    inputs: Vec<Sender<ReplicaInput<T>>>,
}

impl<T: SerialDataType> Clone for InspectHandle<T> {
    fn clone(&self) -> Self {
        InspectHandle {
            inputs: self.inputs.clone(),
        }
    }
}

impl<T: SerialDataType> InspectHandle<T> {
    /// Number of replicas behind this handle.
    pub fn n_replicas(&self) -> usize {
        self.inputs.len()
    }

    /// A consistent snapshot of one replica, or `None` once the service
    /// has shut down (the handle outliving the service is not an error
    /// for a sidecar — it just stops observing).
    pub fn snapshot(&self, replica: usize) -> Option<ReplicaSnapshot<T>> {
        let (tx, rx) = bounded(1);
        self.inputs[replica].send(ReplicaInput::Inspect(tx)).ok()?;
        rx.recv().ok()
    }
}

/// A handle for one client of the running service.
pub struct RuntimeClient<T: SerialDataType> {
    fe: FrontEnd<T::Operator, T::Value>,
    rx: Receiver<ResponseMsg<T::Value>>,
    net_tx: Sender<NetInput<T>>,
    audit: Option<crate::AuditTap<T>>,
    m_submitted: esds_obs::Counter,
    m_answered: esds_obs::Counter,
    m_resends: esds_obs::Counter,
    /// Bounded (log-bucketed) histogram of await-to-answer times — the
    /// fixed-footprint service-side replacement for the simulator's
    /// exact, unbounded `esds_sim::Histogram`.
    m_await_us: esds_obs::Histo,
    tracer: esds_obs::OpTracer,
}

impl<T: SerialDataType> RuntimeClient<T>
where
    T::Operator: Clone,
    T::Value: Clone,
{
    /// Submits an operation; returns its id immediately.
    pub fn submit(&mut self, op: T::Operator, prev: &[OpId], strict: bool) -> OpId {
        let (id, sends) = self.fe.submit(op, prev.iter().copied(), strict);
        self.m_submitted.inc();
        if self.tracer.is_enabled() {
            self.tracer
                .emit(0, &id.to_string(), esds_obs::Stage::Submit);
        }
        if let (Some(tap), Some((_, first))) = (&self.audit, sends.first()) {
            tap.tap_request(first.desc.clone());
        }
        for (r, msg) in sends {
            let _ = self.net_tx.send(NetInput::Msg(NetMsg {
                to: Endpoint::Replica(r),
                payload: Payload::Request(msg),
            }));
        }
        id
    }

    /// Waits until `id` is answered or `timeout` elapses; drains any other
    /// responses that arrive meanwhile. Re-sends pending requests every
    /// 50 ms while waiting (the front-end retry of paper footnote 3).
    pub fn await_response(&mut self, id: OpId, timeout: Duration) -> Option<T::Value> {
        let start = Instant::now();
        let deadline = start + timeout;
        let mut next_retry = start + Duration::from_millis(50);
        loop {
            if let Some(v) = self.fe.value_of(id) {
                if self.m_await_us.is_enabled() {
                    self.m_await_us.record(start.elapsed().as_micros() as u64);
                }
                return Some(v.clone());
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            if now >= next_retry {
                for (r, msg) in self.fe.resend_pending() {
                    self.m_resends.inc();
                    let _ = self.net_tx.send(NetInput::Msg(NetMsg {
                        to: Endpoint::Replica(r),
                        payload: Payload::Request(msg),
                    }));
                }
                next_retry = now + Duration::from_millis(50);
            }
            let wait = deadline.min(next_retry).saturating_duration_since(now);
            match self.rx.recv_timeout(wait.max(Duration::from_micros(100))) {
                Ok(msg) => self.take_response(msg),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return None,
            }
        }
    }

    /// The value previously returned for `id`, if completed.
    pub fn value_of(&self, id: OpId) -> Option<&T::Value> {
        self.fe.value_of(id)
    }

    /// Drains any responses already delivered to this client's channel
    /// into the front end, without blocking. Makes [`RuntimeClient::value_of`]
    /// reflect everything the network has handed over so far.
    pub fn poll_responses(&mut self) {
        while let Ok(msg) = self.rx.try_recv() {
            self.take_response(msg);
        }
    }

    /// Folds one wire response into the front end and, on first
    /// delivery (duplicates are dropped by the front end), into the
    /// audit tap — witness included, so the sidecar's checker can run
    /// the Theorem 5.7 check.
    fn take_response(&mut self, msg: ResponseMsg<T::Value>) {
        let witness = msg.witness.clone();
        if let Some(d) = self.fe.on_response(msg) {
            self.m_answered.inc();
            if self.tracer.is_enabled() {
                self.tracer
                    .emit(0, &d.id.to_string(), esds_obs::Stage::Answer);
            }
            if let Some(tap) = &self.audit {
                tap.tap_response(d.id, d.value, witness);
            }
        }
    }

    /// The client identity.
    pub fn client(&self) -> ClientId {
        self.fe.client()
    }
}

/// The running threaded service: replica threads + network thread.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use esds_datatypes::{Counter, CounterOp, CounterValue};
/// use esds_runtime::{RuntimeConfig, RuntimeService};
///
/// let mut svc = RuntimeService::start(Counter, RuntimeConfig::new(2));
/// let mut client = svc.client();
/// let inc = client.submit(CounterOp::Increment(3), &[], false);
/// let v = client.await_response(inc, Duration::from_secs(5));
/// assert_eq!(v, Some(CounterValue::Ack));
/// svc.shutdown();
/// ```
pub struct RuntimeService<T: SerialDataType> {
    net_tx: Sender<NetInput<T>>,
    client_reg: ClientRegistry<T::Value>,
    n_replicas: usize,
    next_client: u32,
    replica_threads: Vec<JoinHandle<Replica<T>>>,
    replica_inputs: Vec<Sender<ReplicaInput<T>>>,
    net_thread: Option<JoinHandle<()>>,
    obs: esds_obs::MetricsRegistry,
    tracer: esds_obs::OpTracer,
}

impl<T> RuntimeService<T>
where
    T: SerialDataType + Clone + Send + 'static,
    T::Operator: Send + Clone,
    T::Value: Send + Clone,
    T::State: Send,
{
    /// Starts the replica and network threads.
    ///
    /// # Panics
    ///
    /// Panics if `n_replicas` is zero.
    pub fn start(dt: T, config: RuntimeConfig) -> Self {
        assert!(config.n_replicas > 0, "need at least one replica");
        let n = config.n_replicas;
        let replicas = (0..n)
            .map(|i| {
                let rep = Replica::new(dt.clone(), ReplicaId(i as u32), n, config.replica);
                (rep, None)
            })
            .collect();
        Self::start_replicas(config, replicas)
    }

    /// Starts the service over **pre-built** replicas, each paired with
    /// its durable backend — what a restart-from-disk looks like: the
    /// caller opens each replica's store (recovering whatever survives)
    /// and hands the recovered replicas here. Every mutating input is
    /// persisted (synced) *before* its effects are released, so a crash
    /// can only lose operations nobody was answered for; a persist
    /// failure stops that replica's thread, dropping the effects, as if
    /// its machine had lost power.
    ///
    /// # Panics
    ///
    /// Panics if `replicas.len() != config.n_replicas`.
    pub fn start_durable(config: RuntimeConfig, replicas: Vec<DurableReplica<T>>) -> Self {
        assert_eq!(
            replicas.len(),
            config.n_replicas,
            "one recovered replica per configured slot"
        );
        // A recycled client identity would alias pre-crash operations id
        // for id — front ends number their submissions `(client, seq)`
        // from zero, and the recovered replicas already hold the old
        // client's operations — so new front ends are numbered above
        // every client identity brought back from disk.
        let floor = replicas
            .iter()
            .flat_map(|(r, _)| r.rcvd().keys().map(|id| id.client().0 + 1))
            .max()
            .unwrap_or(0);
        let mut svc = Self::start_replicas(
            config,
            replicas.into_iter().map(|(r, s)| (r, Some(s))).collect(),
        );
        svc.next_client = floor;
        {
            // The response registry is indexed by raw client id; hold the
            // skipped identities with dead senders so deliveries to live
            // clients land at the right slot.
            let mut reg = svc.client_reg.lock();
            for _ in 0..floor {
                let (tx, _rx) = bounded(1);
                reg.push(tx);
            }
        }
        svc
    }

    fn start_replicas(config: RuntimeConfig, replicas: Vec<ReplicaSlot<T>>) -> Self {
        assert!(config.n_replicas > 0, "need at least one replica");
        let n = config.n_replicas;
        let (net_tx, net_rx) = unbounded::<NetInput<T>>();
        let client_reg: ClientRegistry<T::Value> = std::sync::Arc::new(Mutex::new(Vec::new()));

        // Replica threads.
        let mut replica_inputs = Vec::with_capacity(n);
        let mut replica_threads = Vec::with_capacity(n);
        for (i, (mut rep, mut store)) in replicas.into_iter().enumerate() {
            let (tx, rx) = unbounded::<ReplicaInput<T>>();
            replica_inputs.push(tx);
            let net = net_tx.clone();
            let interval = config.gossip_interval;
            // No-op handles when the registry is disabled.
            let scope = config.obs.scoped(format!("replica{i}"));
            let m_requests = scope.counter("requests");
            let m_gossip_out = scope.counter("gossip_out");
            let tracer = config.tracer.clone();
            let handle = std::thread::Builder::new()
                .name(format!("esds-replica-{i}"))
                .spawn(move || {
                    let mut next_gossip = Instant::now() + interval;
                    'run: loop {
                        let now = Instant::now();
                        if now >= next_gossip {
                            for p in 0..rep.n() as u32 {
                                let p = ReplicaId(p);
                                if p == rep.id() {
                                    continue;
                                }
                                // poll_gossip paces batched strategies:
                                // accumulating ticks produce no message.
                                let Some(g) = rep.poll_gossip(p) else {
                                    continue;
                                };
                                // Sync-before-release: everything this
                                // envelope says was logged by the handler
                                // that learned it, but a failing disk must
                                // silence the replica, not let it keep
                                // gossiping facts it can no longer keep.
                                if let Some(st) = store.as_mut() {
                                    if st.persist(&mut rep).is_err() {
                                        break 'run;
                                    }
                                }
                                m_gossip_out.inc();
                                let _ = net.send(NetInput::Msg(NetMsg {
                                    to: Endpoint::Replica(p),
                                    payload: Payload::Gossip(Box::new(g)),
                                }));
                            }
                            next_gossip = now + interval;
                        }
                        let wait = next_gossip.saturating_duration_since(Instant::now());
                        let input = match rx.recv_timeout(wait.max(Duration::from_micros(200))) {
                            Ok(i) => i,
                            Err(RecvTimeoutError::Timeout) => continue,
                            Err(RecvTimeoutError::Disconnected) => break,
                        };
                        let effects = match input {
                            ReplicaInput::Request(m) => {
                                m_requests.inc();
                                if tracer.is_enabled() {
                                    tracer.emit(
                                        0,
                                        &m.desc.id.to_string(),
                                        esds_obs::Stage::ReplicaAccept,
                                    );
                                }
                                rep.on_request(m.desc)
                            }
                            ReplicaInput::Gossip(g) => rep.on_gossip_envelope(*g),
                            ReplicaInput::Inspect(tx) => {
                                let _ = tx.send(ReplicaSnapshot {
                                    order: rep.local_order(),
                                    stable_everywhere: rep.stable_everywhere().clone(),
                                    ops: rep
                                        .rcvd()
                                        .iter()
                                        .map(|(id, d)| (*id, d.op.clone()))
                                        .collect(),
                                });
                                Vec::new()
                            }
                            ReplicaInput::CountUnstable(filter, tx) => {
                                let n = rep
                                    .rcvd()
                                    .iter()
                                    .filter(|(id, d)| {
                                        filter(&d.op) && !rep.stable_everywhere().contains(id)
                                    })
                                    .count();
                                let _ = tx.send(n);
                                Vec::new()
                            }
                            ReplicaInput::Shutdown => break,
                        };
                        // Persist (append + sync) everything the handler
                        // changed *before* releasing its responses: a
                        // crash after this line re-delivers the answered
                        // value from disk; a crash before it only loses
                        // operations nobody was told about. On a storage
                        // error the replica is dead — effects dropped.
                        if let Some(st) = store.as_mut() {
                            if st.persist(&mut rep).is_err() {
                                break 'run;
                            }
                        }
                        for e in effects {
                            let _ = net.send(NetInput::Msg(NetMsg {
                                to: Endpoint::Client(e.client),
                                payload: Payload::Response(e.msg),
                            }));
                        }
                    }
                    rep
                })
                .expect("spawn replica thread");
            replica_threads.push(handle);
        }

        // Network thread: applies the injected delay, then routes.
        let delay = config.net_delay;
        let reg = client_reg.clone();
        let replica_inputs_clone = replica_inputs.clone();
        let net_thread = std::thread::Builder::new()
            .name("esds-net".to_string())
            .spawn(move || {
                let mut heap: BinaryHeap<Timed<T>> = BinaryHeap::new();
                let mut seq = 0u64;
                loop {
                    // Deliver everything due.
                    let now = Instant::now();
                    while heap.peek().is_some_and(|t| t.due <= now) {
                        let t = heap.pop().expect("peeked");
                        match t.msg.to {
                            Endpoint::Replica(r) => {
                                let input = match t.msg.payload {
                                    Payload::Request(m) => ReplicaInput::Request(m),
                                    Payload::Gossip(g) => ReplicaInput::Gossip(g),
                                    Payload::Response(_) => continue,
                                };
                                let _ = replica_inputs_clone[r.0 as usize].send(input);
                            }
                            Endpoint::Client(c) => {
                                if let Payload::Response(m) = t.msg.payload {
                                    let senders = reg.lock();
                                    if let Some(tx) = senders.get(c.0 as usize) {
                                        // try_send: a client that stopped
                                        // draining must not stall routing
                                        // for everyone else.
                                        let _ = tx.try_send(m);
                                    }
                                }
                            }
                        }
                    }
                    let wait = heap
                        .peek()
                        .map(|t| t.due.saturating_duration_since(Instant::now()))
                        .unwrap_or(Duration::from_millis(50));
                    match net_rx.recv_timeout(wait.max(Duration::from_micros(100))) {
                        Ok(NetInput::Msg(msg)) => {
                            heap.push(Timed {
                                due: Instant::now() + delay,
                                seq,
                                msg,
                            });
                            seq += 1;
                        }
                        Ok(NetInput::Shutdown) | Err(RecvTimeoutError::Disconnected) => break,
                        Err(RecvTimeoutError::Timeout) => {}
                    }
                }
            })
            .expect("spawn network thread");

        RuntimeService {
            net_tx,
            client_reg,
            n_replicas: n,
            next_client: 0,
            replica_threads,
            replica_inputs,
            net_thread: Some(net_thread),
            obs: config.obs,
            tracer: config.tracer,
        }
    }

    /// The service's metrics registry (disabled unless installed via
    /// [`RuntimeConfig::with_obs`]).
    pub fn metrics(&self) -> &esds_obs::MetricsRegistry {
        &self.obs
    }

    /// Number of replica threads in this group.
    pub fn n_replicas(&self) -> usize {
        self.n_replicas
    }

    /// A consistent snapshot of one replica's history (order, stability
    /// knowledge, operators), fetched through the replica's input channel.
    ///
    /// # Panics
    ///
    /// Panics if `replica` is out of range or the service is shut down.
    pub fn snapshot(&self, replica: usize) -> ReplicaSnapshot<T> {
        let (tx, rx) = bounded(1);
        self.replica_inputs[replica]
            .send(ReplicaInput::Inspect(tx))
            .expect("replica thread alive");
        rx.recv().expect("replica thread alive")
    }

    /// How many operations matching `filter` the replica has received
    /// but does not yet know to be stable at every replica. A cheap,
    /// allocation-light probe for migration stability gates — unlike
    /// [`RuntimeService::snapshot`], nothing is cloned across the
    /// channel, so polling it does not stall the replica thread on
    /// copying its whole history.
    ///
    /// # Panics
    ///
    /// Panics if `replica` is out of range or the service is shut down.
    pub fn count_unstable(&self, replica: usize, filter: OpFilter<T>) -> usize {
        let (tx, rx) = bounded(1);
        self.replica_inputs[replica]
            .send(ReplicaInput::CountUnstable(filter, tx))
            .expect("replica thread alive");
        rx.recv().expect("replica thread alive")
    }

    /// Creates a new client attached (fixed policy) to replica
    /// `client mod n`, like the simulator's default.
    pub fn client(&mut self) -> RuntimeClient<T> {
        self.make_client(None)
    }

    /// Creates a client whose externally-visible trace (requests and
    /// first-delivery responses, witnesses included) is folded into the
    /// given audit tap — the client-side half of the streaming-audit
    /// sidecar (see [`crate::AuditSidecar`]).
    pub fn client_with_audit(&mut self, tap: crate::AuditTap<T>) -> RuntimeClient<T> {
        self.make_client(Some(tap))
    }

    fn make_client(&mut self, audit: Option<crate::AuditTap<T>>) -> RuntimeClient<T> {
        let c = ClientId(self.next_client);
        self.next_client += 1;
        let (tx, rx) = bounded(1024);
        self.client_reg.lock().push(tx);
        let scope = self.obs.scoped(format!("client{}", c.0));
        RuntimeClient {
            fe: FrontEnd::new(
                c,
                self.n_replicas,
                RelayPolicy::Fixed(ReplicaId(c.0 % self.n_replicas as u32)),
            ),
            rx,
            net_tx: self.net_tx.clone(),
            audit,
            m_submitted: scope.counter("ops_submitted"),
            m_answered: scope.counter("ops_answered"),
            m_resends: scope.counter("resends"),
            m_await_us: scope.histogram("await_us"),
            tracer: self.tracer.clone(),
        }
    }

    /// A cloneable snapshot handle that does not borrow the service —
    /// hand it to an [`crate::AuditSidecar`] (or any monitoring thread).
    pub fn inspect_handle(&self) -> InspectHandle<T> {
        InspectHandle {
            inputs: self.replica_inputs.clone(),
        }
    }

    /// Stops all threads and returns the final replica states (for
    /// convergence assertions).
    ///
    /// Safe to call while [`RuntimeClient`] handles are still alive: the
    /// network thread is stopped by an explicit control message, not by
    /// waiting for every sender clone to disconnect.
    pub fn shutdown(mut self) -> Vec<Replica<T>> {
        for tx in &self.replica_inputs {
            let _ = tx.send(ReplicaInput::Shutdown);
        }
        let reps: Vec<Replica<T>> = self
            .replica_threads
            .drain(..)
            .map(|h| h.join().expect("replica thread panicked"))
            .collect();
        let _ = self.net_tx.send(NetInput::Shutdown);
        self.replica_inputs.clear();
        if let Some(h) = self.net_thread.take() {
            let _ = h.join();
        }
        reps
    }

    /// Stops the service abruptly, discarding the replica states — the
    /// threaded stand-in for `kill -9` of the whole group. No final
    /// checkpoint or flush runs: a durable replica's on-disk image is
    /// left exactly as its last per-input sync wrote it, so a subsequent
    /// [`RuntimeService::start_durable`] over the same directories
    /// exercises the real recovery path. (Inputs already queued when the
    /// kill lands may still be processed — and persisted — before the
    /// thread notices; the durability contract is indifferent to where
    /// exactly the cut falls.)
    pub fn kill(mut self) {
        // Stop routing first, so no replica input arrives after the ones
        // already queued when the kill landed.
        let _ = self.net_tx.send(NetInput::Shutdown);
        if let Some(h) = self.net_thread.take() {
            let _ = h.join();
        }
        // Stop replicas by explicit message, not by dropping senders:
        // [`InspectHandle`]s (audit sidecars, gather barriers) hold
        // clones of these senders and may legitimately outlive the
        // service, so disconnection alone never comes. `Shutdown` breaks
        // the replica loop before any persist — the cut stays abrupt.
        for tx in &self.replica_inputs {
            let _ = tx.send(ReplicaInput::Shutdown);
        }
        self.replica_inputs.clear();
        for h in self.replica_threads.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esds_datatypes::{Counter, CounterOp, CounterValue};

    #[test]
    fn runtime_roundtrip_and_convergence() {
        let mut svc = RuntimeService::start(Counter, RuntimeConfig::new(3));
        let mut c0 = svc.client();
        let mut c1 = svc.client();

        let mut ids = Vec::new();
        for _ in 0..5 {
            ids.push((0, c0.submit(CounterOp::Increment(1), &[], false)));
            ids.push((1, c1.submit(CounterOp::Increment(1), &[], false)));
        }
        for (who, id) in &ids {
            let v = match who {
                0 => c0.await_response(*id, Duration::from_secs(10)),
                _ => c1.await_response(*id, Duration::from_secs(10)),
            };
            assert_eq!(v, Some(CounterValue::Ack), "op {id} timed out");
        }
        // A strict read constrained after every increment observes all ten.
        // (Strictness alone fixes the value in the eventual total order;
        // the prev set pins the increments before the read in that order.)
        let prev: Vec<OpId> = ids.iter().map(|(_, id)| *id).collect();
        let read = c0.submit(CounterOp::Read, &prev, true);
        let v = c0.await_response(read, Duration::from_secs(30));
        assert_eq!(v, Some(CounterValue::Count(10)));

        // After shutdown, give gossip a beat and check convergence.
        let reps = svc.shutdown();
        let states: Vec<i64> = reps.iter().map(|r| r.current_state()).collect();
        assert!(states.iter().all(|s| *s == 10), "diverged: {states:?}");
    }

    #[test]
    fn batched_gossip_runtime_roundtrip() {
        // The threaded deployment under GossipStrategy::Batched: strict
        // ops (which need stability votes flowing through the batched
        // D/S summaries) must still complete.
        let mut cfg = RuntimeConfig::new(3);
        cfg.replica = ReplicaConfig::default().with_batched(2);
        let mut svc = RuntimeService::start(Counter, cfg);
        let mut c = svc.client();
        let mut ids = Vec::new();
        for _ in 0..5 {
            ids.push(c.submit(CounterOp::Increment(1), &[], false));
        }
        for id in &ids {
            assert_eq!(
                c.await_response(*id, Duration::from_secs(10)),
                Some(CounterValue::Ack)
            );
        }
        let read = c.submit(CounterOp::Read, &ids, true);
        assert_eq!(
            c.await_response(read, Duration::from_secs(30)),
            Some(CounterValue::Count(5))
        );
        let reps = svc.shutdown();
        let states: Vec<i64> = reps.iter().map(|r| r.current_state()).collect();
        assert!(states.iter().all(|s| *s == 5), "diverged: {states:?}");
    }

    #[test]
    fn strict_op_sees_prior_increment_via_prev() {
        let mut svc = RuntimeService::start(Counter, RuntimeConfig::new(2));
        let mut c = svc.client();
        let inc = c.submit(CounterOp::Increment(7), &[], false);
        let read = c.submit(CounterOp::Read, &[inc], false);
        let v = c.await_response(read, Duration::from_secs(10));
        assert_eq!(v, Some(CounterValue::Count(7)));
        svc.shutdown();
    }
}

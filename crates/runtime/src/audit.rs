//! The runtime **audit sidecar**: continuous, live verification of a
//! running [`RuntimeService`](crate::RuntimeService) against the
//! paper's behavioural theorems, as a product feature.
//!
//! Two halves share one [`StreamingChecker`] behind an [`AuditTap`]:
//!
//! * clients created with
//!   [`RuntimeService::client_with_audit`](crate::RuntimeService::client_with_audit)
//!   fold their externally-visible trace (requests, first-delivery
//!   responses with witnesses) into the tap inline;
//! * an [`AuditSidecar`] thread polls replica snapshots through an
//!   [`InspectHandle`](crate::InspectHandle), computes the final
//!   watermark (the label order truncated at the stable-everywhere
//!   fence), and feeds it into the tap as `Stabilize` events — retiring
//!   verified operations so the checker's memory tracks the unstable
//!   frontier, not history.
//!
//! The tap never panics the service: violations latch the checker red
//! and surface through [`AuditTap::status`] / [`AuditTap::violation`].

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use esds_core::{OpDescriptor, OpId, SerialDataType};
use esds_spec::{AuditCertificate, AuditConfig, AuditStatus, AuditViolation, StreamingChecker};
use parking_lot::Mutex;

use crate::service::InspectHandle;

/// A cloneable, thread-safe handle to one shared [`StreamingChecker`].
/// Clients and the sidecar feed it concurrently; the checker's
/// event-at-a-time API makes each feed atomic under the lock.
pub struct AuditTap<T: SerialDataType> {
    checker: Arc<Mutex<StreamingChecker<T>>>,
}

impl<T: SerialDataType> Clone for AuditTap<T> {
    fn clone(&self) -> Self {
        AuditTap {
            checker: self.checker.clone(),
        }
    }
}

impl<T: SerialDataType> AuditTap<T> {
    /// A tap around a fresh checker with default configuration.
    pub fn new(dt: T) -> Self {
        Self::with_config(dt, AuditConfig::default())
    }

    /// A tap around a fresh checker with an explicit configuration
    /// (grace window, `check_all`).
    pub fn with_config(dt: T, cfg: AuditConfig) -> Self {
        AuditTap {
            checker: Arc::new(Mutex::new(StreamingChecker::with_config(dt, cfg))),
        }
    }

    /// Folds a request into the audit. Violations latch; the return is
    /// deliberately `()` so client hot paths never branch on it.
    pub fn tap_request(&self, desc: OpDescriptor<T::Operator>) {
        let _ = self.checker.lock().on_request(desc);
    }

    /// Folds a response (with witness, when recorded) into the audit.
    pub fn tap_response(&self, id: OpId, value: T::Value, witness: Option<Vec<OpId>>) {
        let _ = self.checker.lock().on_response(id, value, witness);
    }

    /// Folds one eventual-order position into the audit (the sidecar's
    /// feed; tests may also drive it directly).
    pub fn tap_stabilize(&self, id: OpId) {
        let _ = self.checker.lock().on_stabilize(id);
    }

    /// The live audit status: ops verified, watermark lag, peak
    /// resident window, failure latch.
    pub fn status(&self) -> AuditStatus {
        self.checker.lock().status()
    }

    /// The latched violation, if the audit has failed.
    pub fn violation(&self) -> Option<AuditViolation> {
        self.checker.lock().violation().cloned()
    }

    /// Ends the stream: checks that the eventual order covered every
    /// request and returns the final certificate.
    ///
    /// # Errors
    ///
    /// A latched violation or incomplete coverage.
    pub fn finish(&self) -> Result<AuditCertificate, AuditViolation> {
        self.checker.lock().finish()
    }
}

/// The background half of the audit: a thread that polls a replica
/// snapshot, truncates its label order at the stable-everywhere fence,
/// and feeds newly-final eventual-order positions to the shared tap.
///
/// Stop it with [`AuditSidecar::stop`] *before* shutting the service
/// down; dropping it also stops the thread.
pub struct AuditSidecar<T: SerialDataType> {
    tap: AuditTap<T>,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl<T> AuditSidecar<T>
where
    T: SerialDataType + Send + 'static,
    T::Operator: Send,
    T::Value: Send,
    T::State: Send,
{
    /// Attaches a sidecar to the service behind `handle`, polling every
    /// `interval`. The tap is shared with (clones handed to) the
    /// service's audited clients.
    pub fn attach(handle: InspectHandle<T>, tap: AuditTap<T>, interval: Duration) -> Self {
        Self::attach_with_obs(
            handle,
            tap,
            interval,
            esds_obs::MetricsRegistry::disabled().scoped("audit"),
        )
    }

    /// Like [`AuditSidecar::attach`], additionally publishing the
    /// checker's [`AuditStatus`] as gauges under `scope` on every poll:
    /// `watermark_lag` (requests not yet retired — the unstable window
    /// the checker's memory is proportional to), `resident`,
    /// `peak_resident`, and `stabilized`.
    pub fn attach_with_obs(
        handle: InspectHandle<T>,
        tap: AuditTap<T>,
        interval: Duration,
        scope: esds_obs::Scope,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let tap2 = tap.clone();
        let g_lag = scope.gauge("watermark_lag");
        let g_resident = scope.gauge("resident");
        let g_peak = scope.gauge("peak_resident");
        let g_stabilized = scope.gauge("stabilized");
        let obs_enabled = scope.is_enabled();
        let thread = std::thread::Builder::new()
            .name("esds-audit".into())
            .spawn(move || {
                let mut fed = (0usize, 0u64);
                let publish = |tap: &AuditTap<T>| {
                    if obs_enabled {
                        let st = tap.status();
                        g_lag.set(st.lag());
                        g_resident.set(st.resident as u64);
                        g_peak.set(st.peak_resident as u64);
                        g_stabilized.set(st.stabilized);
                    }
                };
                while !stop2.load(Ordering::Relaxed) {
                    if Self::sync(&handle, &tap2, &mut fed).is_none() {
                        return; // service shut down
                    }
                    publish(&tap2);
                    std::thread::sleep(interval);
                }
                // One final sync so a stop() after client quiescence
                // observes the complete watermark.
                let _ = Self::sync(&handle, &tap2, &mut fed);
                publish(&tap2);
            })
            .expect("spawn audit sidecar");
        AuditSidecar {
            tap,
            stop,
            thread: Some(thread),
        }
    }

    /// One watermark poll: the first replica's label order truncated
    /// just past the last operation it knows is stable everywhere.
    /// That prefix of the eventual total order is final — once an op is
    /// stable everywhere, every clock has passed its label — and
    /// gap-free: tentative operations interleaved before the fence ride
    /// along, their positions already immovable. `None` once the
    /// service is gone. `fed` is the (count, chain digest) of the
    /// watermark entries already delivered to the tap.
    fn sync(handle: &InspectHandle<T>, tap: &AuditTap<T>, fed: &mut (usize, u64)) -> Option<()> {
        let snap = handle.snapshot(0)?;
        let solid = snap
            .order
            .iter()
            .rposition(|id| snap.stable_everywhere.contains(id))
            .map_or(0, |i| i + 1);
        let watermark: Vec<OpId> = snap.order[..solid].to_vec();
        // A replica mid-recovery can transiently report an estimate
        // shorter than, or ordered differently from, what was already
        // fed: skip such polls (digest guard); a later poll catches up.
        if watermark.len() < fed.0 {
            return Some(());
        }
        let seen = watermark[..fed.0]
            .iter()
            .fold(0, |d, &id| esds_spec::fold_digest(d, id));
        if seen != fed.1 {
            return Some(());
        }
        for &id in &watermark[fed.0..] {
            tap.tap_stabilize(id);
            fed.0 += 1;
            fed.1 = esds_spec::fold_digest(fed.1, id);
        }
        Some(())
    }

    /// The shared tap (for status polls while running).
    pub fn tap(&self) -> &AuditTap<T> {
        &self.tap
    }

    /// Stops the polling thread after one final watermark sync and
    /// returns the tap for final certification.
    pub fn stop(mut self) -> AuditTap<T> {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.thread.take() {
            let _ = h.join();
        }
        self.tap.clone()
    }
}

impl<T: SerialDataType> Drop for AuditSidecar<T> {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.thread.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RuntimeConfig, RuntimeService};
    use esds_datatypes::{Counter, CounterOp, CounterValue};
    use std::time::Instant;

    #[test]
    fn sidecar_audits_live_service() {
        let mut cfg = RuntimeConfig::new(2);
        cfg.replica = esds_alg::ReplicaConfig::default().with_witness();
        cfg.gossip_interval = Duration::from_millis(5);
        let mut svc = RuntimeService::start(Counter, cfg);
        let tap = AuditTap::new(Counter);
        let sidecar =
            AuditSidecar::attach(svc.inspect_handle(), tap.clone(), Duration::from_millis(5));
        let mut client = svc.client_with_audit(tap.clone());

        let mut ids = Vec::new();
        for i in 0..10i64 {
            let id = client.submit(
                CounterOp::Increment(i),
                &ids.last().copied().into_iter().collect::<Vec<_>>(),
                false,
            );
            assert!(client.await_response(id, Duration::from_secs(30)).is_some());
            ids.push(id);
        }
        // A strict read fenced after everything: answered only once it
        // is stable everywhere, with the eventual value.
        let fence = client.submit(CounterOp::Read, &ids, true);
        assert_eq!(
            client.await_response(fence, Duration::from_secs(60)),
            Some(CounterValue::Count(45))
        );
        // The watermark trails stability knowledge; wait (bounded) for
        // the sidecar to observe the whole eventual order.
        let deadline = Instant::now() + Duration::from_secs(30);
        while tap.status().stabilized < 11 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        let tap = sidecar.stop();
        let cert = tap.finish().unwrap_or_else(|v| panic!("audit red: {v}"));
        assert_eq!(cert.ops, 11);
        let st = tap.status();
        assert!(st.witnesses_checked >= 1, "{st}");
        assert_eq!(st.retired, 11, "everything answered + stable retires");
        assert_eq!(st.resident, 0, "{st}");
        assert!(!st.failed);
        svc.shutdown();
    }

    #[test]
    fn tap_latches_violations_without_panicking_clients() {
        let tap = AuditTap::new(Counter);
        // A response for an op nobody requested: red.
        tap.tap_response(
            esds_core::OpId::new(esds_core::ClientId(0), 0),
            CounterValue::Ack,
            None,
        );
        assert!(tap.status().failed);
        let v = tap.violation().expect("latched");
        assert!(v.violation.detail.contains("unrequested"), "{v}");
        assert!(tap.finish().is_err());
    }
}

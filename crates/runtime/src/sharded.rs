//! The threaded **sharded** deployment: one [`RuntimeService`] (replica
//! threads + network thread) per shard, behind a single client handle —
//! with **live rebalancing** by slot migration.
//!
//! Mirrors `esds-harness`'s `ShardedSimSystem` for real threads: a
//! versioned [`RoutingTable`] (`key → slot → shard`) partitions the
//! keyspace of a [`KeyedDataType`] across `S` independent replica
//! groups, each running the unmodified Section 6 protocol. A
//! [`ShardedClient`] owns one front end per shard and routes each
//! submission through the **shared, versioned** table.
//!
//! ## Table versions and in-flight operations
//!
//! Every routing decision happens under the shared table lock, and every
//! submission registers itself against its slot before the lock is
//! released. A migration ([`ShardedService::add_shard`]) can therefore
//! never catch an operation "routed with a stale table": it freezes the
//! migrating slots first (submissions targeting them block on a condition
//! variable — retried after the flip against the new table), then waits
//! for every registered in-flight operation on those slots to be
//! answered. Operations in flight at freeze time keep their original
//! owner, which still answers them — and because the handoff waits for
//! them *and* for their stability, their effects are part of the stable
//! prefix that is replayed onto the new owner. Clients observe the flip
//! as a version bump ([`ShardedClient::table_version`]).
//!
//! The handoff is the same four-phase state machine as the simulated
//! layer (freeze → replay stable prefix → flip → drain), with the replay
//! chained by `prev` and its final link submitted **strict**, so the
//! transferred state is stable at every replica of the receiving group
//! before any client request is allowed to route there.
//!
//! One liveness requirement follows from client-side response tracking:
//! every submission must eventually be awaited (or another call made on
//! its handle) so the client can observe the response and deregister the
//! operation; a handle that submits to a migrating slot and then goes
//! silent forever holds the migration until its timeout.
//!
//! ## Cross-shard `prev` constraints
//!
//! As before: the client **waits** for every foreign-shard predecessor's
//! response before handing the dependent operation to its shard
//! (different shards are disjoint objects, so once the predecessor is
//! answered the remaining constraint is vacuous). Same-shard
//! predecessors are passed through to the group's protocol unchanged.
//!
//! ## Whole-object queries: scatter-gather
//!
//! Operators with no shard key whose data type can merge partial results
//! ([`KeyedDataType::is_gatherable`]) are **scattered**: one sub-operation
//! per involved shard (every shard owning at least one slot), answers
//! merged by [`KeyedDataType::merge_gathered`]. Routing a whole-object
//! query to the [`HOME_SLOT`] owner would silently return one shard's
//! slice — the wrong-partial-answer bug this subsystem removes.
//!
//! A gather touches every slot, so it registers against **every** slot in
//! the shared in-flight table (a migration drains it like any keyed
//! operation before freezing its slots' state) and blocks while *any*
//! slot is frozen — it can never observe a half-migrated table or land on
//! a shard that just replayed-and-drained.
//!
//! In **eventual** mode the sub-operations are ordinary non-strict
//! requests and the merge is whatever each shard answered. In
//! **barrier-strict** mode the client first takes a per-shard barrier, one
//! shard at a time (no 2PC, shards stay independent): snapshot the
//! shard's *answered frontier* (over-approximated by the union of its
//! replicas' local orders, which contains every answered operation), wait
//! until every replica of that shard reports the frontier **stable
//! everywhere**, and only then submit the strict sub-operation. Its fresh
//! label necessarily orders after the whole frontier in the shard's
//! eventual total order, so the merged answer is a consistent cut —
//! `esds_spec::check_barrier_cut` is the per-shard conformance predicate
//! (feed it [`ShardedClient::gather_detail`]).
//!
//! A keyless operator that is *not* gatherable keeps the legacy
//! [`HOME_SLOT`] routing. Cross-shard `prev` composes with gathers in
//! both directions: a gathered query's sub-operations anchor behind the
//! per-shard frontier of its `prev` set, and a dependent of a gathered
//! query anchors on the gather's **own sub-operation** in each involved
//! shard.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use esds_alg::Replica;
use esds_core::{
    ClientId, KeyedDataType, MigrationPlan, OpId, RoutingTable, ShardedOpId, HOME_SLOT,
};

use crate::service::{InspectHandle, RuntimeClient, RuntimeConfig, RuntimeService};

/// The slot an operator is attributed to (keyless → [`HOME_SLOT`]).
fn slot_of_op<T: KeyedDataType>(dt: &T, table: &RoutingTable, op: &T::Operator) -> u16 {
    match dt.shard_key(op) {
        Some(k) => table.slot_of_key(k),
        None => HOME_SLOT,
    }
}

/// Routing state shared by the service and every client handle.
struct RouteState {
    table: RoutingTable,
    /// Slots frozen by an in-progress migration; submissions block.
    frozen: BTreeSet<u16>,
    /// In-flight (submitted, response not yet observed) operations per
    /// slot. A migration waits for its slots to drain to zero.
    inflight: BTreeMap<u16, u64>,
}

struct RoutingShared {
    state: Mutex<RouteState>,
    cv: Condvar,
}

/// Front ends (and inspect handles, for the gather barrier) created for
/// existing client handles when a shard is added, waiting to be picked
/// up: `handle → [(shard, front end, inspect handle)]`.
type Mailbox<T> = Arc<Mutex<BTreeMap<u32, Vec<(u32, RuntimeClient<T>, InspectHandle<T>)>>>>;

/// The running sharded service: `S` independent [`RuntimeService`]s
/// behind a shared, versioned routing table.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use esds_datatypes::{KvOp, KvStore, KvValue};
/// use esds_runtime::{RuntimeConfig, ShardedService};
///
/// let mut svc = ShardedService::start(KvStore, 2, RuntimeConfig::new(2));
/// let mut client = svc.client();
/// let put = client.submit(KvOp::put("user:1", "ada"), &[], false);
/// let get = client.submit(KvOp::get("user:1"), &[put], false);
/// let v = client.await_response(get, Duration::from_secs(10));
/// assert_eq!(v, Some(KvValue::Value(Some("ada".into()))));
/// svc.shutdown();
/// ```
pub struct ShardedService<T: KeyedDataType> {
    dt: T,
    config: RuntimeConfig,
    shards: Vec<RuntimeService<T>>,
    routing: Arc<RoutingShared>,
    mailbox: Mailbox<T>,
    /// Client handles created so far (mailbox keys).
    n_handles: u32,
    /// Timeout a client uses when waiting out a foreign-shard `prev`.
    cross_shard_wait: Duration,
    /// Timeout for a migration's drain/stability/replay phases.
    migration_timeout: Duration,
}

impl<T> ShardedService<T>
where
    T: KeyedDataType + Clone + Send + 'static,
    T::Operator: Send + Clone,
    T::Value: Send + Clone,
    T::State: Send,
{
    /// Starts `n_shards` independent replica groups, each configured by
    /// `config`, with the initial uniform routing table (version 0).
    ///
    /// # Panics
    ///
    /// Panics if `n_shards` is zero (and see [`RuntimeService::start`]).
    pub fn start(dt: T, n_shards: usize, config: RuntimeConfig) -> Self {
        assert!(n_shards > 0, "need at least one shard");
        let shards = (0..n_shards)
            .map(|_| RuntimeService::start(dt.clone(), config.clone()))
            .collect();
        Self::with_shards(dt, config, shards)
    }

    /// Starts a sharded service over **pre-built** replica groups, each
    /// replica paired with its durable backend (see
    /// [`RuntimeService::start_durable`]) — the restart-from-disk entry
    /// point: the caller recovers every `(shard, replica)` store and
    /// hands the recovered replicas here, outer index = shard. Shards
    /// added later by [`ShardedService::add_shard`] are volatile (no
    /// backend); persist them by restarting the service durably.
    ///
    /// # Panics
    ///
    /// Panics if `shard_replicas` is empty or any group's size differs
    /// from `config.n_replicas`.
    pub fn start_durable(
        dt: T,
        config: RuntimeConfig,
        shard_replicas: Vec<Vec<crate::DurableReplica<T>>>,
    ) -> Self {
        assert!(!shard_replicas.is_empty(), "need at least one shard");
        let shards = shard_replicas
            .into_iter()
            .map(|reps| RuntimeService::start_durable(config.clone(), reps))
            .collect();
        Self::with_shards(dt, config, shards)
    }

    fn with_shards(dt: T, config: RuntimeConfig, shards: Vec<RuntimeService<T>>) -> Self {
        let n_shards = shards.len();
        ShardedService {
            routing: Arc::new(RoutingShared {
                state: Mutex::new(RouteState {
                    table: RoutingTable::uniform(n_shards as u32),
                    frozen: BTreeSet::new(),
                    inflight: BTreeMap::new(),
                }),
                cv: Condvar::new(),
            }),
            mailbox: Arc::new(Mutex::new(BTreeMap::new())),
            n_handles: 0,
            dt,
            config,
            shards,
            cross_shard_wait: Duration::from_secs(30),
            migration_timeout: Duration::from_secs(30),
        }
    }

    /// Overrides the timeout used to wait for foreign-shard predecessors
    /// at submission time (default 30 s).
    #[must_use]
    pub fn with_cross_shard_wait(mut self, d: Duration) -> Self {
        self.cross_shard_wait = d;
        self
    }

    /// Overrides the migration timeout (default 30 s).
    #[must_use]
    pub fn with_migration_timeout(mut self, d: Duration) -> Self {
        self.migration_timeout = d;
        self
    }

    /// The current routing table (a snapshot — the live table is shared
    /// with every client and advances on migrations).
    pub fn table(&self) -> RoutingTable {
        self.routing
            .state
            .lock()
            .expect("routing lock")
            .table
            .clone()
    }

    /// The current table version (how many migrations have completed).
    pub fn table_version(&self) -> u64 {
        self.table().version()
    }

    /// Number of shards (including drained ones).
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Creates a client with a front end in **every** shard.
    ///
    /// Per-group [`ClientId`]s may differ across shards once shards have
    /// been added (each group numbers its own front ends); the handle's
    /// global identity is its shard-0 id, and all bookkeeping tracks
    /// group-local ids per placement, so this is invisible to callers.
    pub fn client(&mut self) -> ShardedClient<T> {
        let fes: Vec<RuntimeClient<T>> = self.shards.iter_mut().map(|s| s.client()).collect();
        let inspects: Vec<InspectHandle<T>> =
            self.shards.iter().map(|s| s.inspect_handle()).collect();
        let id = fes[0].client();
        let handle = self.n_handles;
        self.n_handles += 1;
        ShardedClient {
            dt: self.dt.clone(),
            routing: self.routing.clone(),
            mailbox: self.mailbox.clone(),
            handle,
            id,
            fes,
            inspects,
            next_seq: 0,
            placements: BTreeMap::new(),
            gathers: BTreeMap::new(),
            unsettled: BTreeSet::new(),
            cross_shard_wait: self.cross_shard_wait,
        }
    }

    /// An [`InspectHandle`] onto one shard's replica group — what a
    /// barrier-cut audit needs to obtain the shard's eventual order.
    pub fn inspect_handle(&self, shard: u32) -> InspectHandle<T> {
        self.shards[shard as usize].inspect_handle()
    }

    /// Adds a shard and live-migrates ~`1/(S+1)` of the slots onto it
    /// (freeze → replay stable prefix → flip → drain; see module docs).
    /// Blocks until the handoff completes and returns the new shard's id.
    /// Existing client handles pick up their new front end automatically
    /// on their next call.
    ///
    /// # Panics
    ///
    /// Panics if in-flight operations on the migrating slots are not
    /// settled, or the replayed prefix does not stabilize, within the
    /// migration timeout.
    pub fn add_shard(&mut self) -> u32 {
        let plan = {
            let st = self.routing.state.lock().expect("routing lock");
            assert!(st.frozen.is_empty(), "a migration is already in progress");
            MigrationPlan::add_shard(&st.table)
        };
        let new_idx = self.shards.len() as u32;
        // Start the receiving group and pre-create a front end in it for
        // every existing client handle (picked up lazily via the mailbox)
        // — in handle order, before any other client can reach the group,
        // so the assignment is deterministic.
        let mut svc = RuntimeService::start(self.dt.clone(), self.config.clone());
        {
            let mut mb = self.mailbox.lock().expect("mailbox lock");
            for h in 0..self.n_handles {
                mb.entry(h)
                    .or_default()
                    .push((new_idx, svc.client(), svc.inspect_handle()));
            }
        }
        // The migration's own front end for the stable-prefix replay.
        let mut mfe = svc.client();
        self.shards.push(svc);

        let slots = plan.slots();
        let deadline = Instant::now() + self.migration_timeout;
        // Phase 1: freeze. New submissions on migrating slots now block.
        {
            let mut st = self.routing.state.lock().expect("routing lock");
            st.frozen = slots.clone();
        }
        // Wait for registered in-flight operations on those slots to be
        // answered and observed by their clients.
        {
            let mut st = self.routing.state.lock().expect("routing lock");
            while slots
                .iter()
                .any(|s| st.inflight.get(s).copied().unwrap_or(0) > 0)
            {
                assert!(
                    Instant::now() < deadline,
                    "migration timed out: in-flight operations on migrating slots were never \
                     settled (every submission must eventually be awaited)"
                );
                let (guard, _) = self
                    .routing
                    .cv
                    .wait_timeout(st, Duration::from_millis(10))
                    .expect("routing lock");
                st = guard;
            }
        }
        // Phase 2 gate: wait until every replica of every source group
        // has the migrating slots' operations stable everywhere — the
        // slots' serialization is then final and fully transferable.
        // Probed with the allocation-light `count_unstable` (the full
        // snapshot is fetched exactly once afterwards, for the replay),
        // so polling does not stall busy replica threads on copying
        // their history.
        let table = self.table();
        let sources: BTreeSet<u32> = plan.moves().iter().map(|m| m.from).collect();
        let make_filter = || -> crate::service::OpFilter<T> {
            let dt = self.dt.clone();
            let table = table.clone();
            let slots = slots.clone();
            Box::new(move |op| slots.contains(&slot_of_op(&dt, &table, op)))
        };
        loop {
            let pending = sources.iter().any(|src| {
                let group = &self.shards[*src as usize];
                (0..group.n_replicas()).any(|r| group.count_unstable(r, make_filter()) > 0)
            });
            if !pending {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "migration timed out waiting for slot stability in the source groups"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        // Phase 2: replay each slot's stable prefix in its final order,
        // chained with prev; the last link is strict so the transferred
        // state is stable at every replica of the new group before any
        // client request routes there. One full snapshot per *source
        // shard* (not per move — an add-shard plan has ~256/(S+1) moves
        // but at most S sources), taken after the gate passed, so the
        // history is cloned a bounded number of times. The receiving
        // group is brand new and empty, so the whole prefix is the delta
        // (unlike the simulated layer's drain path, nothing can already
        // hold a slice of the slot's timeline here).
        let snapshots: BTreeMap<u32, crate::service::ReplicaSnapshot<T>> = sources
            .iter()
            .map(|src| (*src, self.shards[*src as usize].snapshot(0)))
            .collect();
        for mv in plan.moves() {
            let snap = &snapshots[&mv.from];
            let prefix: Vec<T::Operator> = snap
                .order
                .iter()
                .filter(|id| {
                    snap.stable_everywhere.contains(id)
                        && slot_of_op(&self.dt, &table, &snap.ops[id]) == mv.slot
                })
                .map(|id| snap.ops[id].clone())
                .collect();
            let mut anchor: Option<OpId> = None;
            let n = prefix.len();
            for (i, op) in prefix.into_iter().enumerate() {
                let prev: Vec<OpId> = anchor.into_iter().collect();
                anchor = Some(mfe.submit(op, &prev, i + 1 == n));
            }
            if let Some(a) = anchor {
                assert!(
                    mfe.await_response(a, deadline.saturating_duration_since(Instant::now()))
                        .is_some(),
                    "replayed stable prefix of slot {} did not stabilize on the new shard",
                    mv.slot
                );
            }
        }
        // Phase 3 + 4: flip the table and unfreeze; blocked submissions
        // retry their routing decision against the new version.
        {
            let mut st = self.routing.state.lock().expect("routing lock");
            st.table.apply(&plan);
            st.frozen.clear();
        }
        self.routing.cv.notify_all();
        new_idx
    }

    /// Stops every shard and returns the final replica states per shard
    /// (outer index = shard, inner = replica within the group).
    pub fn shutdown(self) -> Vec<Vec<Replica<T>>> {
        self.shards.into_iter().map(|s| s.shutdown()).collect()
    }

    /// Kills every shard abruptly (see [`RuntimeService::kill`]): no
    /// final checkpoint, replica states discarded, on-disk images left
    /// exactly as the last per-input syncs wrote them.
    pub fn kill(self) {
        for s in self.shards {
            s.kill();
        }
    }
}

/// A client handle of a [`ShardedService`]: one [`RuntimeClient`] per
/// shard, multiplexed behind global [`ShardedOpId`]s.
///
/// The handle resolves only identifiers it issued itself; `prev` sets may
/// reference any of this client's earlier submissions (the common case —
/// a front end only ever learns identifiers it requested, paper §6.2).
pub struct ShardedClient<T: KeyedDataType> {
    dt: T,
    routing: Arc<RoutingShared>,
    mailbox: Mailbox<T>,
    handle: u32,
    id: ClientId,
    fes: Vec<RuntimeClient<T>>,
    /// One inspect handle per shard — the gather barrier reads answered
    /// frontiers and stability through these.
    inspects: Vec<InspectHandle<T>>,
    next_seq: u64,
    /// Global sequence number → where the operation went.
    placements: BTreeMap<u64, Placement>,
    /// Global sequence number → scattered whole-object query.
    gathers: BTreeMap<u64, Gather<T>>,
    /// Sequence numbers whose response has not yet been observed by this
    /// handle (still registered as in-flight against their slot(s)).
    unsettled: BTreeSet<u64>,
    cross_shard_wait: Duration,
}

/// Where one of this client's submissions was routed. The global `prev`
/// sequence numbers are retained so later dependents can inherit this
/// operation's same-shard predecessors through foreign hops.
#[derive(Clone, Debug)]
struct Placement {
    shard: u32,
    local: OpId,
    prev: Vec<u64>,
    slot: u16,
    /// The routing-table version this operation was routed under.
    version: u64,
}

/// A scattered whole-object query: one sub-operation per involved shard,
/// merged once every shard has answered.
struct Gather<T: KeyedDataType> {
    /// The operator (kept to drive [`KeyedDataType::merge_gathered`]).
    op: T::Operator,
    /// Involved shard → the sub-operation submitted there.
    subs: BTreeMap<u32, OpId>,
    /// Global `prev` sequence numbers, for dependents' frontier walks.
    prev: Vec<u64>,
    /// Every slot this gather registered in-flight against (all of them).
    slots: Vec<u16>,
    /// The routing-table version the gather was routed under.
    version: u64,
    /// Barrier-strict only: per-shard answered frontier snapshotted (and
    /// stability-covered) before the sub-operations went out. Empty in
    /// eventual mode.
    frontier: BTreeMap<u32, Vec<OpId>>,
    /// The merged answer, once every sub-operation has responded.
    merged: Option<T::Value>,
}

impl<T: KeyedDataType> ShardedClient<T>
where
    T::Operator: Clone,
    T::Value: Clone,
{
    /// The client identity (its shard-0 front end's id, used to mint
    /// global identifiers).
    pub fn client(&self) -> ClientId {
        self.id
    }

    /// The routing-table version this handle currently observes.
    pub fn table_version(&self) -> u64 {
        self.routing
            .state
            .lock()
            .expect("routing lock")
            .table
            .version()
    }

    /// Picks up front ends for shards added since this handle last
    /// looked (created by [`ShardedService::add_shard`]).
    fn sync_shards(&mut self) {
        let mut mb = self.mailbox.lock().expect("mailbox lock");
        if let Some(pending) = mb.get_mut(&self.handle) {
            pending.sort_by_key(|(s, _, _)| *s);
            for (s, fe, ih) in pending.drain(..) {
                assert_eq!(
                    s as usize,
                    self.fes.len(),
                    "shard front ends must arrive in order"
                );
                self.fes.push(fe);
                self.inspects.push(ih);
            }
        }
    }

    /// Observes any responses that have arrived and deregisters the
    /// corresponding operations from the shared in-flight table (what a
    /// pending migration waits on).
    fn settle_answered(&mut self) {
        for fe in &mut self.fes {
            fe.poll_responses();
        }
        let pending: Vec<u64> = self.unsettled.iter().copied().collect();
        let mut done: Vec<u64> = Vec::new();
        for seq in pending {
            if let Some(p) = self.placements.get(&seq) {
                if self.fes[p.shard as usize].value_of(p.local).is_some() {
                    done.push(seq);
                }
                continue;
            }
            // A gather settles when every sub-operation has answered; the
            // merge happens here, once, and is cached on the record.
            let g = &self.gathers[&seq];
            let parts: Option<Vec<T::Value>> = g
                .subs
                .iter()
                .map(|(s, l)| self.fes[*s as usize].value_of(*l).cloned())
                .collect();
            if let Some(parts) = parts {
                let merged = self
                    .dt
                    .merge_gathered(&g.op, parts)
                    .expect("scattered operators are gatherable");
                self.gathers.get_mut(&seq).expect("just read").merged = Some(merged);
                done.push(seq);
            }
        }
        if done.is_empty() {
            return;
        }
        let mut st = self.routing.state.lock().expect("routing lock");
        for seq in &done {
            let slots: &[u16] = match self.placements.get(seq) {
                Some(p) => std::slice::from_ref(&p.slot),
                None => &self.gathers[seq].slots,
            };
            for slot in slots {
                let n = st.inflight.get_mut(slot).expect("registered at submit");
                *n -= 1;
            }
            self.unsettled.remove(seq);
        }
        drop(st);
        self.routing.cv.notify_all();
    }

    /// Submits an operation to the shard owning its key under the
    /// current routing table and returns its global id. If the slot is
    /// frozen by an in-progress migration, the submission blocks and is
    /// retried against the flipped table (never rejected, never routed
    /// stale). Foreign-shard `prev` entries are awaited (blocking, up to
    /// the configured cross-shard timeout) before the submission is
    /// handed to its group; same-shard entries ride the group's own
    /// protocol.
    ///
    /// # Panics
    ///
    /// Panics if `prev` names an id this handle did not issue, if a
    /// foreign predecessor stays unanswered past the cross-shard timeout,
    /// or if a migration keeps the slot frozen past that timeout (the
    /// deployment is then considered broken — the same situation in
    /// which [`ShardedClient::await_response`] would return `None`).
    pub fn submit(&mut self, op: T::Operator, prev: &[ShardedOpId], strict: bool) -> ShardedOpId {
        self.sync_shards();
        self.settle_answered();
        for g in prev {
            assert!(
                g.client() == self.id,
                "prev {g} was not issued by this client handle"
            );
            assert!(
                self.placements.contains_key(&g.seq()) || self.gathers.contains_key(&g.seq()),
                "prev {g} was never submitted via this handle"
            );
        }
        if self.dt.is_gatherable(&op) {
            return self.submit_gather(op, prev, strict);
        }
        // Route under the shared lock: the slot's owner and the version
        // are read atomically with the in-flight registration, so a
        // migration can never observe this operation as "routed but
        // unregistered" (no stale-table submissions, ever). While the
        // slot is frozen, the wait loop drops the lock and settles any
        // answered in-flight operations between polls — the migration
        // may be waiting on *this very handle* to observe a response on
        // the frozen slot, so blocking without settling would deadlock
        // both sides into their timeouts.
        let deadline = Instant::now() + self.cross_shard_wait;
        let (slot, shard, version) = loop {
            {
                let mut st = self.routing.state.lock().expect("routing lock");
                let slot = slot_of_op(&self.dt, &st.table, &op);
                if !st.frozen.contains(&slot) {
                    *st.inflight.entry(slot).or_default() += 1;
                    break (slot, st.table.shard_of_slot(slot), st.table.version());
                }
            }
            assert!(
                Instant::now() < deadline,
                "slot frozen past the cross-shard timeout; migration stuck?"
            );
            self.settle_answered();
            std::thread::sleep(Duration::from_millis(5));
        };
        // The table may have grown since this handle last synced.
        self.sync_shards();
        let seqs: Vec<u64> = prev.iter().map(|g| g.seq()).collect();
        let local_prev = self.local_frontier(&seqs, shard);
        self.settle_answered();
        let local = self.fes[shard as usize].submit(op, &local_prev, strict);
        let gid = ShardedOpId::new(self.id, self.next_seq);
        self.placements.insert(
            self.next_seq,
            Placement {
                shard,
                local,
                prev: seqs,
                slot,
                version,
            },
        );
        self.unsettled.insert(self.next_seq);
        self.next_seq += 1;
        gid
    }

    /// The shared frontier walk ([`esds_core::gather_frontier`]) for one
    /// target shard: same-shard predecessors — including those inherited
    /// *through* foreign hops — become local `prev` constraints; every
    /// foreign keyed predecessor encountered is awaited before
    /// descending. A gathered predecessor contributes its own sub-
    /// operation on the target shard as the anchor; if it has none there
    /// (the shard set changed under a migration), its sub-operations are
    /// awaited like foreign keyed predecessors and the walk descends.
    fn local_frontier(&mut self, seqs: &[u64], shard: u32) -> Vec<OpId> {
        esds_core::gather_frontier(seqs, shard, |seq| {
            if let Some(p) = self.placements.get(&seq).cloned() {
                if p.shard != shard && self.fes[p.shard as usize].value_of(p.local).is_none() {
                    let answered = self.fes[p.shard as usize]
                        .await_response(p.local, self.cross_shard_wait)
                        .is_some();
                    assert!(
                        answered,
                        "cross-shard prev {} unanswered after {:?}",
                        ShardedOpId::new(self.id, seq),
                        self.cross_shard_wait
                    );
                }
                return (vec![(p.shard, p.local)], p.prev);
            }
            let (subs, gprev) = {
                let g = &self.gathers[&seq];
                (g.subs.clone(), g.prev.clone())
            };
            if !subs.contains_key(&shard) {
                for (s, l) in &subs {
                    if self.fes[*s as usize].value_of(*l).is_none() {
                        let answered = self.fes[*s as usize]
                            .await_response(*l, self.cross_shard_wait)
                            .is_some();
                        assert!(
                            answered,
                            "cross-shard prev {} (gathered sub-op on shard {s}) unanswered \
                             after {:?}",
                            ShardedOpId::new(self.id, seq),
                            self.cross_shard_wait
                        );
                    }
                }
            }
            (subs.into_iter().collect(), gprev)
        })
    }

    /// Scatters a whole-object query: one sub-operation per involved
    /// shard, merged by the data type once every shard answers. In strict
    /// mode, takes the per-shard barrier first (see module docs). Blocks
    /// while any slot is frozen and registers against every slot, so a
    /// migration and a gather serialize against each other instead of
    /// racing the table flip.
    fn submit_gather(
        &mut self,
        op: T::Operator,
        prev: &[ShardedOpId],
        strict: bool,
    ) -> ShardedOpId {
        let deadline = Instant::now() + self.cross_shard_wait;
        let (table, slots) = loop {
            {
                let mut st = self.routing.state.lock().expect("routing lock");
                if st.frozen.is_empty() {
                    let slots: Vec<u16> = (0..st.table.n_slots()).collect();
                    for s in &slots {
                        *st.inflight.entry(*s).or_default() += 1;
                    }
                    break (st.table.clone(), slots);
                }
            }
            assert!(
                Instant::now() < deadline,
                "slots frozen past the cross-shard timeout; migration stuck?"
            );
            self.settle_answered();
            std::thread::sleep(Duration::from_millis(5));
        };
        self.sync_shards();
        let involved = table.involved_shards();
        let mut frontier: BTreeMap<u32, Vec<OpId>> = BTreeMap::new();
        if strict {
            // Barrier, one shard at a time: snapshot the answered
            // frontier, then wait until every replica of the shard has it
            // stable everywhere. Only then may the strict sub-operation
            // be submitted — its fresh label orders after the whole
            // frontier in the shard's eventual total order.
            for s in &involved {
                frontier.insert(*s, self.shard_frontier_snapshot(*s));
            }
            for (s, f) in &frontier {
                self.await_stability_cover(*s, f, deadline);
            }
        }
        let seqs: Vec<u64> = prev.iter().map(|g| g.seq()).collect();
        let mut subs: BTreeMap<u32, OpId> = BTreeMap::new();
        for shard in &involved {
            let local_prev = self.local_frontier(&seqs, *shard);
            let local = self.fes[*shard as usize].submit(op.clone(), &local_prev, strict);
            subs.insert(*shard, local);
        }
        self.settle_answered();
        let gid = ShardedOpId::new(self.id, self.next_seq);
        self.gathers.insert(
            self.next_seq,
            Gather {
                op,
                subs,
                prev: seqs,
                slots,
                version: table.version(),
                frontier,
                merged: None,
            },
        );
        self.unsettled.insert(self.next_seq);
        self.next_seq += 1;
        gid
    }

    /// One shard's answered frontier, over-approximated by the union of
    /// its replicas' local orders: every operation a replica has answered
    /// is in that replica's order, so the union contains the true
    /// answered frontier (the over-approximation only strengthens the
    /// barrier).
    fn shard_frontier_snapshot(&self, shard: u32) -> Vec<OpId> {
        let h = &self.inspects[shard as usize];
        let mut all: BTreeSet<OpId> = BTreeSet::new();
        for r in 0..h.n_replicas() {
            if let Some(snap) = h.snapshot(r) {
                all.extend(snap.order);
            }
        }
        all.into_iter().collect()
    }

    /// Waits until every replica of `shard` reports every frontier
    /// operation stable everywhere — after which any label minted in the
    /// shard is greater than every frontier label.
    fn await_stability_cover(&self, shard: u32, frontier: &[OpId], deadline: Instant) {
        let h = &self.inspects[shard as usize];
        loop {
            let covered = (0..h.n_replicas()).all(|r| match h.snapshot(r) {
                Some(snap) => frontier
                    .iter()
                    .all(|id| snap.stable_everywhere.contains(id)),
                // Service shut down under us; nothing left to wait for.
                None => true,
            });
            if covered {
                return;
            }
            assert!(
                Instant::now() < deadline,
                "barrier frontier on shard {shard} did not stabilize within the \
                 cross-shard timeout"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Waits until `id` is answered or `timeout` elapses (with the
    /// underlying front end's retry behaviour). An operation submitted
    /// before a migration of its slot is still answered by its original
    /// group — the handoff waits for it, so its effect is part of the
    /// transferred stable prefix.
    pub fn await_response(&mut self, id: ShardedOpId, timeout: Duration) -> Option<T::Value> {
        self.sync_shards();
        if id.client() == self.id && self.gathers.contains_key(&id.seq()) {
            if let Some(v) = &self.gathers[&id.seq()].merged {
                return Some(v.clone());
            }
            let deadline = Instant::now() + timeout;
            let subs: Vec<(u32, OpId)> = self.gathers[&id.seq()]
                .subs
                .iter()
                .map(|(s, l)| (*s, *l))
                .collect();
            for (s, l) in subs {
                let remaining = deadline.saturating_duration_since(Instant::now());
                self.fes[s as usize].await_response(l, remaining)?;
            }
            self.settle_answered();
            return self.gathers[&id.seq()].merged.clone();
        }
        let (shard, local) = self.resolve(id)?;
        let v = self.fes[shard as usize].await_response(local, timeout);
        self.settle_answered();
        v
    }

    /// The value previously returned for `id`, if completed. For a
    /// gathered query this is the merged answer, available once the
    /// handle has observed every sub-operation's response (via
    /// [`ShardedClient::await_response`] or any later call).
    pub fn value_of(&self, id: ShardedOpId) -> Option<&T::Value> {
        if id.client() == self.id {
            if let Some(g) = self.gathers.get(&id.seq()) {
                return g.merged.as_ref();
            }
        }
        let (shard, local) = self.resolve(id)?;
        self.fes[shard as usize].value_of(local)
    }

    /// The shard `id` was routed to, if issued by this handle. `None`
    /// for a gathered query (it has no single shard — see
    /// [`ShardedClient::gather_detail`]).
    pub fn shard_of(&self, id: ShardedOpId) -> Option<u32> {
        self.resolve(id).map(|(s, _)| s)
    }

    /// For a gathered query issued by this handle: its per-shard
    /// sub-operations and, in barrier-strict mode, the per-shard answered
    /// frontier snapshotted at the barrier (empty map = eventual mode).
    /// Pairs each shard's entries into the `esds_spec::ShardBarrier`
    /// shape that `esds_spec::check_barrier_cut` verifies against the
    /// shard's eventual order. `None` for keyed operations.
    #[allow(clippy::type_complexity)]
    pub fn gather_detail(
        &self,
        id: ShardedOpId,
    ) -> Option<(&BTreeMap<u32, OpId>, &BTreeMap<u32, Vec<OpId>>)> {
        if id.client() != self.id {
            return None;
        }
        self.gathers.get(&id.seq()).map(|g| (&g.subs, &g.frontier))
    }

    /// The shard-local [`OpId`] `id` was submitted under — the identity
    /// the owning group's replicas (and any per-shard audit trail) know
    /// the operation by. `None` if this handle never issued `id`.
    pub fn local_id(&self, id: ShardedOpId) -> Option<OpId> {
        self.resolve(id).map(|(_, l)| l)
    }

    /// The routing-table version `id` was routed under, if issued by
    /// this handle. An id with `routed_version(id) < table_version()`
    /// was submitted before a later migration; its response remains
    /// valid because migrations wait for in-flight operations before
    /// transferring their slots.
    pub fn routed_version(&self, id: ShardedOpId) -> Option<u64> {
        if id.client() != self.id {
            return None;
        }
        self.placements
            .get(&id.seq())
            .map(|p| p.version)
            .or_else(|| self.gathers.get(&id.seq()).map(|g| g.version))
    }

    fn resolve(&self, id: ShardedOpId) -> Option<(u32, OpId)> {
        if id.client() != self.id {
            return None;
        }
        self.placements.get(&id.seq()).map(|p| (p.shard, p.local))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esds_datatypes::{KvOp, KvStore, KvValue};

    #[test]
    fn sharded_runtime_roundtrip_and_isolation() {
        let mut svc = ShardedService::start(KvStore, 2, RuntimeConfig::new(2));
        let table = svc.table();
        let mut c = svc.client();
        let mut ids = Vec::new();
        for i in 0..10 {
            ids.push((
                i,
                c.submit(KvOp::put(format!("k{i}"), format!("{i}")), &[], false),
            ));
        }
        for (i, id) in &ids {
            let v = c.await_response(*id, Duration::from_secs(10));
            assert_eq!(v, Some(KvValue::Ack), "put k{i} timed out");
        }
        // Reads see their own shard's writes.
        for (i, _) in &ids {
            let get = c.submit(KvOp::get(format!("k{i}")), &[], false);
            let v = c.await_response(get, Duration::from_secs(10));
            assert_eq!(v, Some(KvValue::Value(Some(format!("{i}")))));
        }
        // Both shards actually received traffic (10 keys over 2 shards).
        let shards: std::collections::BTreeSet<u32> = (0..10)
            .map(|i| table.shard_of_key(&format!("k{i}")))
            .collect();
        assert_eq!(shards.len(), 2);
        svc.shutdown();
    }

    #[test]
    fn cross_shard_prev_waits_for_response() {
        let mut svc = ShardedService::start(KvStore, 4, RuntimeConfig::new(2));
        let table = svc.table();
        let mut c = svc.client();
        // Two keys on different shards.
        let ka = "a".to_string();
        let kb = (0..100)
            .map(|i| format!("b{i}"))
            .find(|k| table.shard_of_key(k) != table.shard_of_key(&ka))
            .expect("some key lands elsewhere");
        let wa = c.submit(KvOp::put(&ka, "1"), &[], false);
        // Submitting with a cross-shard prev blocks until wa is answered,
        // so by the time submit returns, wa's value is known.
        let wb = c.submit(KvOp::put(&kb, "2"), &[wa], false);
        assert_eq!(c.value_of(wa), Some(&KvValue::Ack));
        assert_ne!(c.shard_of(wa), c.shard_of(wb));
        let v = c.await_response(wb, Duration::from_secs(10));
        assert_eq!(v, Some(KvValue::Ack));
        svc.shutdown();
    }

    #[test]
    fn transitive_prev_through_foreign_hop_is_inherited() {
        // Chain A (shard s) ← B (foreign) ← C (shard s): C must carry
        // A's ordering into the shard even though its only direct prev
        // is foreign. Slow gossip keeps A from propagating on its own.
        let mut cfg = RuntimeConfig::new(2);
        cfg.gossip_interval = Duration::from_secs(5);
        let mut svc = ShardedService::start(KvStore, 4, cfg);
        let table = svc.table();
        let mut c = svc.client();
        let ka = "a".to_string();
        let kb = (0..100)
            .map(|i| format!("b{i}"))
            .find(|k| table.shard_of_key(k) != table.shard_of_key(&ka))
            .expect("some key lands elsewhere");
        let a = c.submit(KvOp::put(&ka, "1"), &[], false);
        let b = c.submit(KvOp::put(&kb, "2"), &[a], false);
        let read = c.submit(KvOp::get(&ka), &[b], false);
        assert_eq!(c.shard_of(read), c.shard_of(a), "same key, same shard");
        let v = c.await_response(read, Duration::from_secs(10));
        assert_eq!(v, Some(KvValue::Value(Some("1".into()))));
        svc.shutdown();
    }

    #[test]
    fn strict_ops_work_per_shard() {
        let mut svc = ShardedService::start(KvStore, 2, RuntimeConfig::new(2));
        let mut c = svc.client();
        let put = c.submit(KvOp::put("x", "1"), &[], true);
        let v = c.await_response(put, Duration::from_secs(30));
        assert_eq!(v, Some(KvValue::Ack));
        let get = c.submit(KvOp::get("x"), &[put], true);
        let v = c.await_response(get, Duration::from_secs(30));
        assert_eq!(v, Some(KvValue::Value(Some("1".into()))));
        svc.shutdown();
    }

    #[test]
    fn add_shard_hands_off_state_live() {
        let mut svc = ShardedService::start(KvStore, 2, RuntimeConfig::new(2));
        let mut c = svc.client();
        assert_eq!(c.table_version(), 0);
        // Populate, then rebalance onto a third group.
        let mut ids = Vec::new();
        for i in 0..16 {
            ids.push(c.submit(KvOp::put(format!("k{i}"), format!("v{i}")), &[], false));
        }
        for id in &ids {
            assert_eq!(
                c.await_response(*id, Duration::from_secs(10)),
                Some(KvValue::Ack)
            );
        }
        let new = svc.add_shard();
        assert_eq!(new, 2);
        assert_eq!(svc.table_version(), 1);
        let table = svc.table();
        assert!(
            !table.slots_of(2).is_empty(),
            "new shard must own slots after the migration"
        );
        // Every key is still readable — including those now owned by the
        // new shard, which must serve the replayed stable prefix.
        let mut migrated = 0;
        for i in 0..16 {
            let k = format!("k{i}");
            let get = c.submit(KvOp::get(&k), &[], false);
            assert_eq!(c.table_version(), 1);
            let v = c.await_response(get, Duration::from_secs(10));
            assert_eq!(
                v,
                Some(KvValue::Value(Some(format!("v{i}")))),
                "{k} lost in the handoff"
            );
            if c.shard_of(get) == Some(2) {
                migrated += 1;
                assert_eq!(c.routed_version(get), Some(1));
            }
        }
        assert!(migrated > 0, "no test key migrated; widen the key set");
        // Pre-migration ids report the version they were routed under.
        assert_eq!(c.routed_version(ids[0]), Some(0));
        svc.shutdown();
    }

    #[test]
    fn whole_object_keys_gathers_union_across_shards() {
        // Regression pin for the wrong-partial-answer bug: before
        // scatter-gather, `Keys` routed to the HOME_SLOT owner and
        // returned only that shard's slice. Reverting to home routing
        // fails the equality below.
        let mut svc = ShardedService::start(KvStore, 2, RuntimeConfig::new(2));
        let table = svc.table();
        let mut c = svc.client();
        let mut expect = Vec::new();
        let mut ids = Vec::new();
        for i in 0..16 {
            let k = format!("k{i}");
            expect.push(k.clone());
            ids.push(c.submit(KvOp::put(&k, "v"), &[], false));
        }
        for id in &ids {
            assert_eq!(
                c.await_response(*id, Duration::from_secs(10)),
                Some(KvValue::Ack)
            );
        }
        // Both shards own keys, so a home-shard answer would be a strict
        // subset of the union.
        let shards: std::collections::BTreeSet<u32> = (0..16)
            .map(|i| table.shard_of_key(&format!("k{i}")))
            .collect();
        assert_eq!(shards.len(), 2);
        expect.sort();
        let keys = c.submit(KvOp::Keys, &[*ids.last().expect("nonempty")], false);
        assert_eq!(
            c.await_response(keys, Duration::from_secs(10)),
            Some(KvValue::Keys(expect))
        );
        assert_eq!(c.shard_of(keys), None, "a gather has no single shard");
        {
            let (subs, frontier) = c.gather_detail(keys).expect("gathered");
            assert_eq!(subs.len(), 2);
            assert!(frontier.is_empty(), "eventual mode takes no barrier");
        }
        // A dependent of the gather anchors on its same-shard sub-op.
        let dep = c.submit(KvOp::get("k0"), &[keys], false);
        assert_eq!(
            c.await_response(dep, Duration::from_secs(10)),
            Some(KvValue::Value(Some("v".into())))
        );
        svc.shutdown();
    }

    #[test]
    fn barrier_strict_keys_is_exact_and_cut_checks() {
        use esds_spec::{check_barrier_cut, ShardBarrier};
        let mut svc = ShardedService::start(KvStore, 4, RuntimeConfig::new(2));
        let mut c = svc.client();
        let mut expect = Vec::new();
        let mut ids = Vec::new();
        for i in 0..12 {
            let k = format!("k{i}");
            expect.push(k.clone());
            ids.push(c.submit(KvOp::put(&k, "v"), &[], false));
        }
        for id in &ids {
            assert_eq!(
                c.await_response(*id, Duration::from_secs(10)),
                Some(KvValue::Ack)
            );
        }
        expect.sort();
        let keys = c.submit(KvOp::Keys, &[], true);
        assert_eq!(
            c.await_response(keys, Duration::from_secs(30)),
            Some(KvValue::Keys(expect)),
            "barrier-strict Keys must be exactly the 1-shard union"
        );
        let (subs, frontier) = c.gather_detail(keys).expect("gathered");
        assert_eq!(subs.len(), 4);
        assert_eq!(frontier.len(), 4, "strict mode snapshots every shard");
        // The checkable residue of the barrier: on every shard, the
        // sub-op appears after the whole frontier in the shard's (stable,
        // hence eventual) order.
        for (shard, sub) in subs {
            let h = svc.inspect_handle(*shard);
            let deadline = Instant::now() + Duration::from_secs(30);
            let order = loop {
                let snap = h.snapshot(0).expect("service running");
                if snap.stable_everywhere.contains(sub) {
                    break snap.order;
                }
                assert!(Instant::now() < deadline, "sub-op never stabilized");
                std::thread::sleep(Duration::from_millis(5));
            };
            let b = ShardBarrier {
                shard: *shard,
                frontier: frontier[shard].clone(),
                sub: *sub,
            };
            assert_eq!(check_barrier_cut(&b, &order), vec![]);
        }
        svc.shutdown();
    }

    #[test]
    fn gather_serializes_with_add_shard_and_spans_new_shard() {
        let mut svc = ShardedService::start(KvStore, 2, RuntimeConfig::new(2));
        let mut c = svc.client();
        let mut expect: Vec<String> = (0..16).map(|i| format!("k{i}")).collect();
        let mut ids = Vec::new();
        for k in &expect {
            ids.push(c.submit(KvOp::put(k, "v"), &[], false));
        }
        for id in &ids {
            assert_eq!(
                c.await_response(*id, Duration::from_secs(10)),
                Some(KvValue::Ack)
            );
        }
        expect.sort();
        // A reader thread keeps gathering while the migration runs: every
        // answer must be the full union — never a partial slice from a
        // half-migrated table. Gathers register against every slot (the
        // migration drains them before freezing) and block while any slot
        // is frozen, so the two serialize instead of racing the flip.
        let exp = expect.clone();
        let reader = std::thread::spawn(move || {
            let deadline = Instant::now() + Duration::from_secs(20);
            loop {
                let keys = c.submit(KvOp::Keys, &[], false);
                let v = c.await_response(keys, Duration::from_secs(10));
                assert_eq!(v, Some(KvValue::Keys(exp.clone())));
                if c.routed_version(keys) == Some(1) {
                    let (subs, _) = c.gather_detail(keys).expect("gathered");
                    assert_eq!(subs.len(), 3, "post-flip gathers span the new shard");
                    return;
                }
                assert!(
                    Instant::now() < deadline,
                    "never observed a post-flip gather"
                );
            }
        });
        std::thread::sleep(Duration::from_millis(30));
        let new = svc.add_shard();
        assert_eq!(new, 2);
        reader.join().expect("reader panicked");
        svc.shutdown();
    }

    #[test]
    fn writer_in_another_thread_survives_add_shard() {
        // A concurrent writer hammers a key that the migration will move;
        // the freeze blocks it (never rejects, never routes stale), and
        // after the flip its writes land on the new owner. The final read
        // must see the last write — nothing lost, nothing duplicated.
        let mut svc = ShardedService::start(KvStore, 2, RuntimeConfig::new(2));
        // Find a key the deterministic add-shard plan will migrate.
        let plan = MigrationPlan::add_shard(&svc.table());
        let table = svc.table();
        let hot = (0..1000)
            .map(|i| format!("hot{i}"))
            .find(|k| plan.slots().contains(&table.slot_of_key(k)))
            .expect("some key migrates");
        let mut writer = svc.client();
        let hot_w = hot.clone();
        let handle = std::thread::spawn(move || {
            let mut last = 0u32;
            for i in 0..200u32 {
                let id = writer.submit(KvOp::put(&hot_w, format!("{i}")), &[], false);
                assert_eq!(
                    writer.await_response(id, Duration::from_secs(10)),
                    Some(KvValue::Ack)
                );
                last = i;
            }
            last
        });
        // Let the writer get going, then migrate under it.
        std::thread::sleep(Duration::from_millis(30));
        let new = svc.add_shard();
        let last = handle.join().expect("writer panicked");
        assert_eq!(last, 199);
        // A fresh client reads the final value from the new owner.
        let mut reader = svc.client();
        let get = reader.submit(KvOp::get(&hot), &[], false);
        assert_eq!(reader.shard_of(get), Some(new));
        assert_eq!(
            reader.await_response(get, Duration::from_secs(10)),
            Some(KvValue::Value(Some("199".into())))
        );
        svc.shutdown();
    }
}

//! The threaded **sharded** deployment: one [`RuntimeService`] (replica
//! threads + network thread) per shard, behind a single client handle.
//!
//! Mirrors `esds-harness`'s `ShardedSimSystem` for real threads: a
//! [`ShardRouter`] hash-partitions the keyspace of a [`KeyedDataType`]
//! across `S` independent replica groups, each running the unmodified
//! Section 6 protocol. A [`ShardedClient`] owns one front end per shard
//! and routes each submission to the group owning its key.
//!
//! Cross-shard `prev` constraints are enforced at submission time: the
//! client **waits** for every foreign-shard predecessor's response before
//! handing the dependent operation to its shard (different shards are
//! disjoint objects, so once the predecessor is answered the remaining
//! constraint is vacuous). Same-shard predecessors are passed through to
//! the group's protocol unchanged.

use std::collections::BTreeMap;
use std::time::Duration;

use esds_alg::Replica;
use esds_core::{ClientId, KeyedDataType, OpId, ShardRouter, ShardedOpId};

use crate::service::{RuntimeClient, RuntimeConfig, RuntimeService};

/// The running sharded service: `S` independent [`RuntimeService`]s.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use esds_datatypes::{KvOp, KvStore, KvValue};
/// use esds_runtime::{RuntimeConfig, ShardedService};
///
/// let mut svc = ShardedService::start(KvStore, 2, RuntimeConfig::new(2));
/// let mut client = svc.client();
/// let put = client.submit(KvOp::put("user:1", "ada"), &[], false);
/// let get = client.submit(KvOp::get("user:1"), &[put], false);
/// let v = client.await_response(get, Duration::from_secs(10));
/// assert_eq!(v, Some(KvValue::Value(Some("ada".into()))));
/// svc.shutdown();
/// ```
pub struct ShardedService<T: KeyedDataType> {
    dt: T,
    router: ShardRouter,
    shards: Vec<RuntimeService<T>>,
    /// Timeout a client uses when waiting out a foreign-shard `prev`.
    cross_shard_wait: Duration,
}

impl<T> ShardedService<T>
where
    T: KeyedDataType + Clone + Send + 'static,
    T::Operator: Send + Clone,
    T::Value: Send + Clone,
    T::State: Send,
{
    /// Starts `n_shards` independent replica groups, each configured by
    /// `config`.
    ///
    /// # Panics
    ///
    /// Panics if `n_shards` is zero (and see [`RuntimeService::start`]).
    pub fn start(dt: T, n_shards: usize, config: RuntimeConfig) -> Self {
        assert!(n_shards > 0, "need at least one shard");
        let shards = (0..n_shards)
            .map(|_| RuntimeService::start(dt.clone(), config.clone()))
            .collect();
        ShardedService {
            router: ShardRouter::new(n_shards as u32),
            dt,
            shards,
            cross_shard_wait: Duration::from_secs(30),
        }
    }

    /// Overrides the timeout used to wait for foreign-shard predecessors
    /// at submission time (default 30 s).
    #[must_use]
    pub fn with_cross_shard_wait(mut self, d: Duration) -> Self {
        self.cross_shard_wait = d;
        self
    }

    /// The router (key → shard map).
    pub fn router(&self) -> ShardRouter {
        self.router
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Creates a client with a front end in **every** shard.
    pub fn client(&mut self) -> ShardedClient<T> {
        let fes: Vec<RuntimeClient<T>> = self.shards.iter_mut().map(|s| s.client()).collect();
        let id = fes[0].client();
        assert!(
            fes.iter().all(|f| f.client() == id),
            "per-shard client ids diverged; create clients only through ShardedService"
        );
        ShardedClient {
            dt: self.dt.clone(),
            router: self.router,
            id,
            fes,
            next_seq: 0,
            placements: BTreeMap::new(),
            cross_shard_wait: self.cross_shard_wait,
        }
    }

    /// Stops every shard and returns the final replica states per shard
    /// (outer index = shard, inner = replica within the group).
    pub fn shutdown(self) -> Vec<Vec<Replica<T>>> {
        self.shards.into_iter().map(|s| s.shutdown()).collect()
    }
}

/// A client handle of a [`ShardedService`]: one [`RuntimeClient`] per
/// shard, multiplexed behind global [`ShardedOpId`]s.
///
/// The handle resolves only identifiers it issued itself; `prev` sets may
/// reference any of this client's earlier submissions (the common case —
/// a front end only ever learns identifiers it requested, paper §6.2).
pub struct ShardedClient<T: KeyedDataType> {
    dt: T,
    router: ShardRouter,
    id: ClientId,
    fes: Vec<RuntimeClient<T>>,
    next_seq: u64,
    /// Global sequence number → where the operation went.
    placements: BTreeMap<u64, Placement>,
    cross_shard_wait: Duration,
}

/// Where one of this client's submissions was routed. The global `prev`
/// sequence numbers are retained so later dependents can inherit this
/// operation's same-shard predecessors through foreign hops.
#[derive(Clone, Debug)]
struct Placement {
    shard: u32,
    local: OpId,
    prev: Vec<u64>,
}

impl<T: KeyedDataType> ShardedClient<T>
where
    T::Operator: Clone,
    T::Value: Clone,
{
    /// The client identity (shared by all per-shard front ends).
    pub fn client(&self) -> ClientId {
        self.id
    }

    /// Submits an operation to the shard owning its key and returns its
    /// global id. Foreign-shard `prev` entries are awaited (blocking, up
    /// to the configured cross-shard timeout) before the submission is
    /// handed to its group; same-shard entries ride the group's own
    /// protocol.
    ///
    /// # Panics
    ///
    /// Panics if `prev` names an id this handle did not issue, or if a
    /// foreign predecessor stays unanswered past the cross-shard timeout
    /// (the deployment is then considered broken — the same situation in
    /// which [`ShardedClient::await_response`] would return `None`).
    pub fn submit(&mut self, op: T::Operator, prev: &[ShardedOpId], strict: bool) -> ShardedOpId {
        let shard = self.router.route(&self.dt, &op);
        for g in prev {
            assert!(
                g.client() == self.id,
                "prev {g} was not issued by this client handle"
            );
            assert!(
                self.placements.contains_key(&g.seq()),
                "prev {g} was never submitted via this handle"
            );
        }
        // The shared frontier walk ([`esds_core::shard_frontier`]):
        // same-shard predecessors — including those inherited *through*
        // foreign hops — become local `prev` constraints, and every
        // foreign predecessor encountered is awaited before descending.
        let seqs: Vec<u64> = prev.iter().map(|g| g.seq()).collect();
        let local_prev: Vec<OpId> = esds_core::shard_frontier(&seqs, shard, |seq| {
            let p = self.placements[&seq].clone();
            if p.shard != shard && self.fes[p.shard as usize].value_of(p.local).is_none() {
                let answered = self.fes[p.shard as usize]
                    .await_response(p.local, self.cross_shard_wait)
                    .is_some();
                assert!(
                    answered,
                    "cross-shard prev {} unanswered after {:?}",
                    ShardedOpId::new(self.id, seq),
                    self.cross_shard_wait
                );
            }
            (p.shard, p.local, p.prev)
        });
        let local = self.fes[shard as usize].submit(op, &local_prev, strict);
        let gid = ShardedOpId::new(self.id, self.next_seq);
        self.placements.insert(
            self.next_seq,
            Placement {
                shard,
                local,
                prev: prev.iter().map(|g| g.seq()).collect(),
            },
        );
        self.next_seq += 1;
        gid
    }

    /// Waits until `id` is answered or `timeout` elapses (with the
    /// underlying front end's retry behaviour).
    pub fn await_response(&mut self, id: ShardedOpId, timeout: Duration) -> Option<T::Value> {
        let (shard, local) = self.resolve(id)?;
        self.fes[shard as usize].await_response(local, timeout)
    }

    /// The value previously returned for `id`, if completed.
    pub fn value_of(&self, id: ShardedOpId) -> Option<&T::Value> {
        let (shard, local) = self.resolve(id)?;
        self.fes[shard as usize].value_of(local)
    }

    /// The shard `id` was routed to, if issued by this handle.
    pub fn shard_of(&self, id: ShardedOpId) -> Option<u32> {
        self.resolve(id).map(|(s, _)| s)
    }

    fn resolve(&self, id: ShardedOpId) -> Option<(u32, OpId)> {
        if id.client() != self.id {
            return None;
        }
        self.placements.get(&id.seq()).map(|p| (p.shard, p.local))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esds_datatypes::{KvOp, KvStore, KvValue};

    #[test]
    fn sharded_runtime_roundtrip_and_isolation() {
        let mut svc = ShardedService::start(KvStore, 2, RuntimeConfig::new(2));
        let router = svc.router();
        let mut c = svc.client();
        let mut ids = Vec::new();
        for i in 0..10 {
            ids.push((
                i,
                c.submit(KvOp::put(format!("k{i}"), format!("{i}")), &[], false),
            ));
        }
        for (i, id) in &ids {
            let v = c.await_response(*id, Duration::from_secs(10));
            assert_eq!(v, Some(KvValue::Ack), "put k{i} timed out");
        }
        // Reads see their own shard's writes.
        for (i, _) in &ids {
            let get = c.submit(KvOp::get(format!("k{i}")), &[], false);
            let v = c.await_response(get, Duration::from_secs(10));
            assert_eq!(v, Some(KvValue::Value(Some(format!("{i}")))));
        }
        // Both shards actually received traffic (10 keys over 2 shards).
        let shards: std::collections::BTreeSet<u32> = (0..10)
            .map(|i| router.shard_of_key(&format!("k{i}")))
            .collect();
        assert_eq!(shards.len(), 2);
        svc.shutdown();
    }

    #[test]
    fn cross_shard_prev_waits_for_response() {
        let mut svc = ShardedService::start(KvStore, 4, RuntimeConfig::new(2));
        let router = svc.router();
        let mut c = svc.client();
        // Two keys on different shards.
        let ka = "a".to_string();
        let kb = (0..100)
            .map(|i| format!("b{i}"))
            .find(|k| router.shard_of_key(k) != router.shard_of_key(&ka))
            .expect("some key lands elsewhere");
        let wa = c.submit(KvOp::put(&ka, "1"), &[], false);
        // Submitting with a cross-shard prev blocks until wa is answered,
        // so by the time submit returns, wa's value is known.
        let wb = c.submit(KvOp::put(&kb, "2"), &[wa], false);
        assert_eq!(c.value_of(wa), Some(&KvValue::Ack));
        assert_ne!(c.shard_of(wa), c.shard_of(wb));
        let v = c.await_response(wb, Duration::from_secs(10));
        assert_eq!(v, Some(KvValue::Ack));
        svc.shutdown();
    }

    #[test]
    fn transitive_prev_through_foreign_hop_is_inherited() {
        // Chain A (shard s) ← B (foreign) ← C (shard s): C must carry
        // A's ordering into the shard even though its only direct prev
        // is foreign. Slow gossip keeps A from propagating on its own.
        let mut cfg = RuntimeConfig::new(2);
        cfg.gossip_interval = Duration::from_secs(5);
        let mut svc = ShardedService::start(KvStore, 4, cfg);
        let router = svc.router();
        let mut c = svc.client();
        let ka = "a".to_string();
        let kb = (0..100)
            .map(|i| format!("b{i}"))
            .find(|k| router.shard_of_key(k) != router.shard_of_key(&ka))
            .expect("some key lands elsewhere");
        let a = c.submit(KvOp::put(&ka, "1"), &[], false);
        let b = c.submit(KvOp::put(&kb, "2"), &[a], false);
        let read = c.submit(KvOp::get(&ka), &[b], false);
        assert_eq!(c.shard_of(read), c.shard_of(a), "same key, same shard");
        let v = c.await_response(read, Duration::from_secs(10));
        assert_eq!(v, Some(KvValue::Value(Some("1".into()))));
        svc.shutdown();
    }

    #[test]
    fn strict_ops_work_per_shard() {
        let mut svc = ShardedService::start(KvStore, 2, RuntimeConfig::new(2));
        let mut c = svc.client();
        let put = c.submit(KvOp::put("x", "1"), &[], true);
        let v = c.await_response(put, Duration::from_secs(30));
        assert_eq!(v, Some(KvValue::Ack));
        let get = c.submit(KvOp::get("x"), &[put], true);
        let v = c.await_response(get, Duration::from_secs(30));
        assert_eq!(v, Some(KvValue::Value(Some("1".into()))));
        svc.shutdown();
    }
}

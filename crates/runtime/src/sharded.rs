//! The threaded **sharded** deployment: one [`RuntimeService`] (replica
//! threads + network thread) per shard, behind a single client handle —
//! with **live rebalancing** by slot migration.
//!
//! Mirrors `esds-harness`'s `ShardedSimSystem` for real threads: a
//! versioned [`RoutingTable`] (`key → slot → shard`) partitions the
//! keyspace of a [`KeyedDataType`] across `S` independent replica
//! groups, each running the unmodified Section 6 protocol. A
//! [`ShardedClient`] owns one front end per shard and routes each
//! submission through the **shared, versioned** table.
//!
//! ## Table versions and in-flight operations
//!
//! Every routing decision happens under the shared table lock, and every
//! submission registers itself against its slot before the lock is
//! released. A migration ([`ShardedService::add_shard`]) can therefore
//! never catch an operation "routed with a stale table": it freezes the
//! migrating slots first (submissions targeting them block on a condition
//! variable — retried after the flip against the new table), then waits
//! for every registered in-flight operation on those slots to be
//! answered. Operations in flight at freeze time keep their original
//! owner, which still answers them — and because the handoff waits for
//! them *and* for their stability, their effects are part of the stable
//! prefix that is replayed onto the new owner. Clients observe the flip
//! as a version bump ([`ShardedClient::table_version`]).
//!
//! The handoff is the same four-phase state machine as the simulated
//! layer (freeze → replay stable prefix → flip → drain), with the replay
//! chained by `prev` and its final link submitted **strict**, so the
//! transferred state is stable at every replica of the receiving group
//! before any client request is allowed to route there.
//!
//! One liveness requirement follows from client-side response tracking:
//! every submission must eventually be awaited (or another call made on
//! its handle) so the client can observe the response and deregister the
//! operation; a handle that submits to a migrating slot and then goes
//! silent forever holds the migration until its timeout.
//!
//! ## Cross-shard `prev` constraints
//!
//! As before: the client **waits** for every foreign-shard predecessor's
//! response before handing the dependent operation to its shard
//! (different shards are disjoint objects, so once the predecessor is
//! answered the remaining constraint is vacuous). Same-shard
//! predecessors are passed through to the group's protocol unchanged.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use esds_alg::Replica;
use esds_core::{
    ClientId, KeyedDataType, MigrationPlan, OpId, RoutingTable, ShardedOpId, HOME_SLOT,
};

use crate::service::{RuntimeClient, RuntimeConfig, RuntimeService};

/// The slot an operator is attributed to (keyless → [`HOME_SLOT`]).
fn slot_of_op<T: KeyedDataType>(dt: &T, table: &RoutingTable, op: &T::Operator) -> u16 {
    match dt.shard_key(op) {
        Some(k) => table.slot_of_key(k),
        None => HOME_SLOT,
    }
}

/// Routing state shared by the service and every client handle.
struct RouteState {
    table: RoutingTable,
    /// Slots frozen by an in-progress migration; submissions block.
    frozen: BTreeSet<u16>,
    /// In-flight (submitted, response not yet observed) operations per
    /// slot. A migration waits for its slots to drain to zero.
    inflight: BTreeMap<u16, u64>,
}

struct RoutingShared {
    state: Mutex<RouteState>,
    cv: Condvar,
}

/// Front ends created for existing client handles when a shard is added,
/// waiting to be picked up: `handle → [(shard, front end)]`.
type Mailbox<T> = Arc<Mutex<BTreeMap<u32, Vec<(u32, RuntimeClient<T>)>>>>;

/// The running sharded service: `S` independent [`RuntimeService`]s
/// behind a shared, versioned routing table.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use esds_datatypes::{KvOp, KvStore, KvValue};
/// use esds_runtime::{RuntimeConfig, ShardedService};
///
/// let mut svc = ShardedService::start(KvStore, 2, RuntimeConfig::new(2));
/// let mut client = svc.client();
/// let put = client.submit(KvOp::put("user:1", "ada"), &[], false);
/// let get = client.submit(KvOp::get("user:1"), &[put], false);
/// let v = client.await_response(get, Duration::from_secs(10));
/// assert_eq!(v, Some(KvValue::Value(Some("ada".into()))));
/// svc.shutdown();
/// ```
pub struct ShardedService<T: KeyedDataType> {
    dt: T,
    config: RuntimeConfig,
    shards: Vec<RuntimeService<T>>,
    routing: Arc<RoutingShared>,
    mailbox: Mailbox<T>,
    /// Client handles created so far (mailbox keys).
    n_handles: u32,
    /// Timeout a client uses when waiting out a foreign-shard `prev`.
    cross_shard_wait: Duration,
    /// Timeout for a migration's drain/stability/replay phases.
    migration_timeout: Duration,
}

impl<T> ShardedService<T>
where
    T: KeyedDataType + Clone + Send + 'static,
    T::Operator: Send + Clone,
    T::Value: Send + Clone,
    T::State: Send,
{
    /// Starts `n_shards` independent replica groups, each configured by
    /// `config`, with the initial uniform routing table (version 0).
    ///
    /// # Panics
    ///
    /// Panics if `n_shards` is zero (and see [`RuntimeService::start`]).
    pub fn start(dt: T, n_shards: usize, config: RuntimeConfig) -> Self {
        assert!(n_shards > 0, "need at least one shard");
        let shards = (0..n_shards)
            .map(|_| RuntimeService::start(dt.clone(), config.clone()))
            .collect();
        Self::with_shards(dt, config, shards)
    }

    /// Starts a sharded service over **pre-built** replica groups, each
    /// replica paired with its durable backend (see
    /// [`RuntimeService::start_durable`]) — the restart-from-disk entry
    /// point: the caller recovers every `(shard, replica)` store and
    /// hands the recovered replicas here, outer index = shard. Shards
    /// added later by [`ShardedService::add_shard`] are volatile (no
    /// backend); persist them by restarting the service durably.
    ///
    /// # Panics
    ///
    /// Panics if `shard_replicas` is empty or any group's size differs
    /// from `config.n_replicas`.
    pub fn start_durable(
        dt: T,
        config: RuntimeConfig,
        shard_replicas: Vec<Vec<crate::DurableReplica<T>>>,
    ) -> Self {
        assert!(!shard_replicas.is_empty(), "need at least one shard");
        let shards = shard_replicas
            .into_iter()
            .map(|reps| RuntimeService::start_durable(config.clone(), reps))
            .collect();
        Self::with_shards(dt, config, shards)
    }

    fn with_shards(dt: T, config: RuntimeConfig, shards: Vec<RuntimeService<T>>) -> Self {
        let n_shards = shards.len();
        ShardedService {
            routing: Arc::new(RoutingShared {
                state: Mutex::new(RouteState {
                    table: RoutingTable::uniform(n_shards as u32),
                    frozen: BTreeSet::new(),
                    inflight: BTreeMap::new(),
                }),
                cv: Condvar::new(),
            }),
            mailbox: Arc::new(Mutex::new(BTreeMap::new())),
            n_handles: 0,
            dt,
            config,
            shards,
            cross_shard_wait: Duration::from_secs(30),
            migration_timeout: Duration::from_secs(30),
        }
    }

    /// Overrides the timeout used to wait for foreign-shard predecessors
    /// at submission time (default 30 s).
    #[must_use]
    pub fn with_cross_shard_wait(mut self, d: Duration) -> Self {
        self.cross_shard_wait = d;
        self
    }

    /// Overrides the migration timeout (default 30 s).
    #[must_use]
    pub fn with_migration_timeout(mut self, d: Duration) -> Self {
        self.migration_timeout = d;
        self
    }

    /// The current routing table (a snapshot — the live table is shared
    /// with every client and advances on migrations).
    pub fn table(&self) -> RoutingTable {
        self.routing
            .state
            .lock()
            .expect("routing lock")
            .table
            .clone()
    }

    /// The current table version (how many migrations have completed).
    pub fn table_version(&self) -> u64 {
        self.table().version()
    }

    /// Number of shards (including drained ones).
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Creates a client with a front end in **every** shard.
    ///
    /// Per-group [`ClientId`]s may differ across shards once shards have
    /// been added (each group numbers its own front ends); the handle's
    /// global identity is its shard-0 id, and all bookkeeping tracks
    /// group-local ids per placement, so this is invisible to callers.
    pub fn client(&mut self) -> ShardedClient<T> {
        let fes: Vec<RuntimeClient<T>> = self.shards.iter_mut().map(|s| s.client()).collect();
        let id = fes[0].client();
        let handle = self.n_handles;
        self.n_handles += 1;
        ShardedClient {
            dt: self.dt.clone(),
            routing: self.routing.clone(),
            mailbox: self.mailbox.clone(),
            handle,
            id,
            fes,
            next_seq: 0,
            placements: BTreeMap::new(),
            unsettled: BTreeSet::new(),
            cross_shard_wait: self.cross_shard_wait,
        }
    }

    /// Adds a shard and live-migrates ~`1/(S+1)` of the slots onto it
    /// (freeze → replay stable prefix → flip → drain; see module docs).
    /// Blocks until the handoff completes and returns the new shard's id.
    /// Existing client handles pick up their new front end automatically
    /// on their next call.
    ///
    /// # Panics
    ///
    /// Panics if in-flight operations on the migrating slots are not
    /// settled, or the replayed prefix does not stabilize, within the
    /// migration timeout.
    pub fn add_shard(&mut self) -> u32 {
        let plan = {
            let st = self.routing.state.lock().expect("routing lock");
            assert!(st.frozen.is_empty(), "a migration is already in progress");
            MigrationPlan::add_shard(&st.table)
        };
        let new_idx = self.shards.len() as u32;
        // Start the receiving group and pre-create a front end in it for
        // every existing client handle (picked up lazily via the mailbox)
        // — in handle order, before any other client can reach the group,
        // so the assignment is deterministic.
        let mut svc = RuntimeService::start(self.dt.clone(), self.config.clone());
        {
            let mut mb = self.mailbox.lock().expect("mailbox lock");
            for h in 0..self.n_handles {
                mb.entry(h).or_default().push((new_idx, svc.client()));
            }
        }
        // The migration's own front end for the stable-prefix replay.
        let mut mfe = svc.client();
        self.shards.push(svc);

        let slots = plan.slots();
        let deadline = Instant::now() + self.migration_timeout;
        // Phase 1: freeze. New submissions on migrating slots now block.
        {
            let mut st = self.routing.state.lock().expect("routing lock");
            st.frozen = slots.clone();
        }
        // Wait for registered in-flight operations on those slots to be
        // answered and observed by their clients.
        {
            let mut st = self.routing.state.lock().expect("routing lock");
            while slots
                .iter()
                .any(|s| st.inflight.get(s).copied().unwrap_or(0) > 0)
            {
                assert!(
                    Instant::now() < deadline,
                    "migration timed out: in-flight operations on migrating slots were never \
                     settled (every submission must eventually be awaited)"
                );
                let (guard, _) = self
                    .routing
                    .cv
                    .wait_timeout(st, Duration::from_millis(10))
                    .expect("routing lock");
                st = guard;
            }
        }
        // Phase 2 gate: wait until every replica of every source group
        // has the migrating slots' operations stable everywhere — the
        // slots' serialization is then final and fully transferable.
        // Probed with the allocation-light `count_unstable` (the full
        // snapshot is fetched exactly once afterwards, for the replay),
        // so polling does not stall busy replica threads on copying
        // their history.
        let table = self.table();
        let sources: BTreeSet<u32> = plan.moves().iter().map(|m| m.from).collect();
        let make_filter = || -> crate::service::OpFilter<T> {
            let dt = self.dt.clone();
            let table = table.clone();
            let slots = slots.clone();
            Box::new(move |op| slots.contains(&slot_of_op(&dt, &table, op)))
        };
        loop {
            let pending = sources.iter().any(|src| {
                let group = &self.shards[*src as usize];
                (0..group.n_replicas()).any(|r| group.count_unstable(r, make_filter()) > 0)
            });
            if !pending {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "migration timed out waiting for slot stability in the source groups"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        // Phase 2: replay each slot's stable prefix in its final order,
        // chained with prev; the last link is strict so the transferred
        // state is stable at every replica of the new group before any
        // client request routes there. One full snapshot per *source
        // shard* (not per move — an add-shard plan has ~256/(S+1) moves
        // but at most S sources), taken after the gate passed, so the
        // history is cloned a bounded number of times. The receiving
        // group is brand new and empty, so the whole prefix is the delta
        // (unlike the simulated layer's drain path, nothing can already
        // hold a slice of the slot's timeline here).
        let snapshots: BTreeMap<u32, crate::service::ReplicaSnapshot<T>> = sources
            .iter()
            .map(|src| (*src, self.shards[*src as usize].snapshot(0)))
            .collect();
        for mv in plan.moves() {
            let snap = &snapshots[&mv.from];
            let prefix: Vec<T::Operator> = snap
                .order
                .iter()
                .filter(|id| {
                    snap.stable_everywhere.contains(id)
                        && slot_of_op(&self.dt, &table, &snap.ops[id]) == mv.slot
                })
                .map(|id| snap.ops[id].clone())
                .collect();
            let mut anchor: Option<OpId> = None;
            let n = prefix.len();
            for (i, op) in prefix.into_iter().enumerate() {
                let prev: Vec<OpId> = anchor.into_iter().collect();
                anchor = Some(mfe.submit(op, &prev, i + 1 == n));
            }
            if let Some(a) = anchor {
                assert!(
                    mfe.await_response(a, deadline.saturating_duration_since(Instant::now()))
                        .is_some(),
                    "replayed stable prefix of slot {} did not stabilize on the new shard",
                    mv.slot
                );
            }
        }
        // Phase 3 + 4: flip the table and unfreeze; blocked submissions
        // retry their routing decision against the new version.
        {
            let mut st = self.routing.state.lock().expect("routing lock");
            st.table.apply(&plan);
            st.frozen.clear();
        }
        self.routing.cv.notify_all();
        new_idx
    }

    /// Stops every shard and returns the final replica states per shard
    /// (outer index = shard, inner = replica within the group).
    pub fn shutdown(self) -> Vec<Vec<Replica<T>>> {
        self.shards.into_iter().map(|s| s.shutdown()).collect()
    }

    /// Kills every shard abruptly (see [`RuntimeService::kill`]): no
    /// final checkpoint, replica states discarded, on-disk images left
    /// exactly as the last per-input syncs wrote them.
    pub fn kill(self) {
        for s in self.shards {
            s.kill();
        }
    }
}

/// A client handle of a [`ShardedService`]: one [`RuntimeClient`] per
/// shard, multiplexed behind global [`ShardedOpId`]s.
///
/// The handle resolves only identifiers it issued itself; `prev` sets may
/// reference any of this client's earlier submissions (the common case —
/// a front end only ever learns identifiers it requested, paper §6.2).
pub struct ShardedClient<T: KeyedDataType> {
    dt: T,
    routing: Arc<RoutingShared>,
    mailbox: Mailbox<T>,
    handle: u32,
    id: ClientId,
    fes: Vec<RuntimeClient<T>>,
    next_seq: u64,
    /// Global sequence number → where the operation went.
    placements: BTreeMap<u64, Placement>,
    /// Sequence numbers whose response has not yet been observed by this
    /// handle (still registered as in-flight against their slot).
    unsettled: BTreeSet<u64>,
    cross_shard_wait: Duration,
}

/// Where one of this client's submissions was routed. The global `prev`
/// sequence numbers are retained so later dependents can inherit this
/// operation's same-shard predecessors through foreign hops.
#[derive(Clone, Debug)]
struct Placement {
    shard: u32,
    local: OpId,
    prev: Vec<u64>,
    slot: u16,
    /// The routing-table version this operation was routed under.
    version: u64,
}

impl<T: KeyedDataType> ShardedClient<T>
where
    T::Operator: Clone,
    T::Value: Clone,
{
    /// The client identity (its shard-0 front end's id, used to mint
    /// global identifiers).
    pub fn client(&self) -> ClientId {
        self.id
    }

    /// The routing-table version this handle currently observes.
    pub fn table_version(&self) -> u64 {
        self.routing
            .state
            .lock()
            .expect("routing lock")
            .table
            .version()
    }

    /// Picks up front ends for shards added since this handle last
    /// looked (created by [`ShardedService::add_shard`]).
    fn sync_shards(&mut self) {
        let mut mb = self.mailbox.lock().expect("mailbox lock");
        if let Some(pending) = mb.get_mut(&self.handle) {
            pending.sort_by_key(|(s, _)| *s);
            for (s, fe) in pending.drain(..) {
                assert_eq!(
                    s as usize,
                    self.fes.len(),
                    "shard front ends must arrive in order"
                );
                self.fes.push(fe);
            }
        }
    }

    /// Observes any responses that have arrived and deregisters the
    /// corresponding operations from the shared in-flight table (what a
    /// pending migration waits on).
    fn settle_answered(&mut self) {
        for fe in &mut self.fes {
            fe.poll_responses();
        }
        let done: Vec<u64> = self
            .unsettled
            .iter()
            .copied()
            .filter(|seq| {
                let p = &self.placements[seq];
                self.fes[p.shard as usize].value_of(p.local).is_some()
            })
            .collect();
        if done.is_empty() {
            return;
        }
        let mut st = self.routing.state.lock().expect("routing lock");
        for seq in &done {
            let slot = self.placements[seq].slot;
            let n = st.inflight.get_mut(&slot).expect("registered at submit");
            *n -= 1;
            self.unsettled.remove(seq);
        }
        drop(st);
        self.routing.cv.notify_all();
    }

    /// Submits an operation to the shard owning its key under the
    /// current routing table and returns its global id. If the slot is
    /// frozen by an in-progress migration, the submission blocks and is
    /// retried against the flipped table (never rejected, never routed
    /// stale). Foreign-shard `prev` entries are awaited (blocking, up to
    /// the configured cross-shard timeout) before the submission is
    /// handed to its group; same-shard entries ride the group's own
    /// protocol.
    ///
    /// # Panics
    ///
    /// Panics if `prev` names an id this handle did not issue, if a
    /// foreign predecessor stays unanswered past the cross-shard timeout,
    /// or if a migration keeps the slot frozen past that timeout (the
    /// deployment is then considered broken — the same situation in
    /// which [`ShardedClient::await_response`] would return `None`).
    pub fn submit(&mut self, op: T::Operator, prev: &[ShardedOpId], strict: bool) -> ShardedOpId {
        self.sync_shards();
        self.settle_answered();
        for g in prev {
            assert!(
                g.client() == self.id,
                "prev {g} was not issued by this client handle"
            );
            assert!(
                self.placements.contains_key(&g.seq()),
                "prev {g} was never submitted via this handle"
            );
        }
        // Route under the shared lock: the slot's owner and the version
        // are read atomically with the in-flight registration, so a
        // migration can never observe this operation as "routed but
        // unregistered" (no stale-table submissions, ever). While the
        // slot is frozen, the wait loop drops the lock and settles any
        // answered in-flight operations between polls — the migration
        // may be waiting on *this very handle* to observe a response on
        // the frozen slot, so blocking without settling would deadlock
        // both sides into their timeouts.
        let deadline = Instant::now() + self.cross_shard_wait;
        let (slot, shard, version) = loop {
            {
                let mut st = self.routing.state.lock().expect("routing lock");
                let slot = slot_of_op(&self.dt, &st.table, &op);
                if !st.frozen.contains(&slot) {
                    *st.inflight.entry(slot).or_default() += 1;
                    break (slot, st.table.shard_of_slot(slot), st.table.version());
                }
            }
            assert!(
                Instant::now() < deadline,
                "slot frozen past the cross-shard timeout; migration stuck?"
            );
            self.settle_answered();
            std::thread::sleep(Duration::from_millis(5));
        };
        // The table may have grown since this handle last synced.
        self.sync_shards();
        // The shared frontier walk ([`esds_core::shard_frontier`]):
        // same-shard predecessors — including those inherited *through*
        // foreign hops — become local `prev` constraints, and every
        // foreign predecessor encountered is awaited before descending.
        let seqs: Vec<u64> = prev.iter().map(|g| g.seq()).collect();
        let local_prev: Vec<OpId> = esds_core::shard_frontier(&seqs, shard, |seq| {
            let p = self.placements[&seq].clone();
            if p.shard != shard && self.fes[p.shard as usize].value_of(p.local).is_none() {
                let answered = self.fes[p.shard as usize]
                    .await_response(p.local, self.cross_shard_wait)
                    .is_some();
                assert!(
                    answered,
                    "cross-shard prev {} unanswered after {:?}",
                    ShardedOpId::new(self.id, seq),
                    self.cross_shard_wait
                );
            }
            (p.shard, p.local, p.prev)
        });
        self.settle_answered();
        let local = self.fes[shard as usize].submit(op, &local_prev, strict);
        let gid = ShardedOpId::new(self.id, self.next_seq);
        self.placements.insert(
            self.next_seq,
            Placement {
                shard,
                local,
                prev: seqs,
                slot,
                version,
            },
        );
        self.unsettled.insert(self.next_seq);
        self.next_seq += 1;
        gid
    }

    /// Waits until `id` is answered or `timeout` elapses (with the
    /// underlying front end's retry behaviour). An operation submitted
    /// before a migration of its slot is still answered by its original
    /// group — the handoff waits for it, so its effect is part of the
    /// transferred stable prefix.
    pub fn await_response(&mut self, id: ShardedOpId, timeout: Duration) -> Option<T::Value> {
        self.sync_shards();
        let (shard, local) = self.resolve(id)?;
        let v = self.fes[shard as usize].await_response(local, timeout);
        self.settle_answered();
        v
    }

    /// The value previously returned for `id`, if completed.
    pub fn value_of(&self, id: ShardedOpId) -> Option<&T::Value> {
        let (shard, local) = self.resolve(id)?;
        self.fes[shard as usize].value_of(local)
    }

    /// The shard `id` was routed to, if issued by this handle.
    pub fn shard_of(&self, id: ShardedOpId) -> Option<u32> {
        self.resolve(id).map(|(s, _)| s)
    }

    /// The shard-local [`OpId`] `id` was submitted under — the identity
    /// the owning group's replicas (and any per-shard audit trail) know
    /// the operation by. `None` if this handle never issued `id`.
    pub fn local_id(&self, id: ShardedOpId) -> Option<OpId> {
        self.resolve(id).map(|(_, l)| l)
    }

    /// The routing-table version `id` was routed under, if issued by
    /// this handle. An id with `routed_version(id) < table_version()`
    /// was submitted before a later migration; its response remains
    /// valid because migrations wait for in-flight operations before
    /// transferring their slots.
    pub fn routed_version(&self, id: ShardedOpId) -> Option<u64> {
        if id.client() != self.id {
            return None;
        }
        self.placements.get(&id.seq()).map(|p| p.version)
    }

    fn resolve(&self, id: ShardedOpId) -> Option<(u32, OpId)> {
        if id.client() != self.id {
            return None;
        }
        self.placements.get(&id.seq()).map(|p| (p.shard, p.local))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esds_datatypes::{KvOp, KvStore, KvValue};

    #[test]
    fn sharded_runtime_roundtrip_and_isolation() {
        let mut svc = ShardedService::start(KvStore, 2, RuntimeConfig::new(2));
        let table = svc.table();
        let mut c = svc.client();
        let mut ids = Vec::new();
        for i in 0..10 {
            ids.push((
                i,
                c.submit(KvOp::put(format!("k{i}"), format!("{i}")), &[], false),
            ));
        }
        for (i, id) in &ids {
            let v = c.await_response(*id, Duration::from_secs(10));
            assert_eq!(v, Some(KvValue::Ack), "put k{i} timed out");
        }
        // Reads see their own shard's writes.
        for (i, _) in &ids {
            let get = c.submit(KvOp::get(format!("k{i}")), &[], false);
            let v = c.await_response(get, Duration::from_secs(10));
            assert_eq!(v, Some(KvValue::Value(Some(format!("{i}")))));
        }
        // Both shards actually received traffic (10 keys over 2 shards).
        let shards: std::collections::BTreeSet<u32> = (0..10)
            .map(|i| table.shard_of_key(&format!("k{i}")))
            .collect();
        assert_eq!(shards.len(), 2);
        svc.shutdown();
    }

    #[test]
    fn cross_shard_prev_waits_for_response() {
        let mut svc = ShardedService::start(KvStore, 4, RuntimeConfig::new(2));
        let table = svc.table();
        let mut c = svc.client();
        // Two keys on different shards.
        let ka = "a".to_string();
        let kb = (0..100)
            .map(|i| format!("b{i}"))
            .find(|k| table.shard_of_key(k) != table.shard_of_key(&ka))
            .expect("some key lands elsewhere");
        let wa = c.submit(KvOp::put(&ka, "1"), &[], false);
        // Submitting with a cross-shard prev blocks until wa is answered,
        // so by the time submit returns, wa's value is known.
        let wb = c.submit(KvOp::put(&kb, "2"), &[wa], false);
        assert_eq!(c.value_of(wa), Some(&KvValue::Ack));
        assert_ne!(c.shard_of(wa), c.shard_of(wb));
        let v = c.await_response(wb, Duration::from_secs(10));
        assert_eq!(v, Some(KvValue::Ack));
        svc.shutdown();
    }

    #[test]
    fn transitive_prev_through_foreign_hop_is_inherited() {
        // Chain A (shard s) ← B (foreign) ← C (shard s): C must carry
        // A's ordering into the shard even though its only direct prev
        // is foreign. Slow gossip keeps A from propagating on its own.
        let mut cfg = RuntimeConfig::new(2);
        cfg.gossip_interval = Duration::from_secs(5);
        let mut svc = ShardedService::start(KvStore, 4, cfg);
        let table = svc.table();
        let mut c = svc.client();
        let ka = "a".to_string();
        let kb = (0..100)
            .map(|i| format!("b{i}"))
            .find(|k| table.shard_of_key(k) != table.shard_of_key(&ka))
            .expect("some key lands elsewhere");
        let a = c.submit(KvOp::put(&ka, "1"), &[], false);
        let b = c.submit(KvOp::put(&kb, "2"), &[a], false);
        let read = c.submit(KvOp::get(&ka), &[b], false);
        assert_eq!(c.shard_of(read), c.shard_of(a), "same key, same shard");
        let v = c.await_response(read, Duration::from_secs(10));
        assert_eq!(v, Some(KvValue::Value(Some("1".into()))));
        svc.shutdown();
    }

    #[test]
    fn strict_ops_work_per_shard() {
        let mut svc = ShardedService::start(KvStore, 2, RuntimeConfig::new(2));
        let mut c = svc.client();
        let put = c.submit(KvOp::put("x", "1"), &[], true);
        let v = c.await_response(put, Duration::from_secs(30));
        assert_eq!(v, Some(KvValue::Ack));
        let get = c.submit(KvOp::get("x"), &[put], true);
        let v = c.await_response(get, Duration::from_secs(30));
        assert_eq!(v, Some(KvValue::Value(Some("1".into()))));
        svc.shutdown();
    }

    #[test]
    fn add_shard_hands_off_state_live() {
        let mut svc = ShardedService::start(KvStore, 2, RuntimeConfig::new(2));
        let mut c = svc.client();
        assert_eq!(c.table_version(), 0);
        // Populate, then rebalance onto a third group.
        let mut ids = Vec::new();
        for i in 0..16 {
            ids.push(c.submit(KvOp::put(format!("k{i}"), format!("v{i}")), &[], false));
        }
        for id in &ids {
            assert_eq!(
                c.await_response(*id, Duration::from_secs(10)),
                Some(KvValue::Ack)
            );
        }
        let new = svc.add_shard();
        assert_eq!(new, 2);
        assert_eq!(svc.table_version(), 1);
        let table = svc.table();
        assert!(
            !table.slots_of(2).is_empty(),
            "new shard must own slots after the migration"
        );
        // Every key is still readable — including those now owned by the
        // new shard, which must serve the replayed stable prefix.
        let mut migrated = 0;
        for i in 0..16 {
            let k = format!("k{i}");
            let get = c.submit(KvOp::get(&k), &[], false);
            assert_eq!(c.table_version(), 1);
            let v = c.await_response(get, Duration::from_secs(10));
            assert_eq!(
                v,
                Some(KvValue::Value(Some(format!("v{i}")))),
                "{k} lost in the handoff"
            );
            if c.shard_of(get) == Some(2) {
                migrated += 1;
                assert_eq!(c.routed_version(get), Some(1));
            }
        }
        assert!(migrated > 0, "no test key migrated; widen the key set");
        // Pre-migration ids report the version they were routed under.
        assert_eq!(c.routed_version(ids[0]), Some(0));
        svc.shutdown();
    }

    #[test]
    fn writer_in_another_thread_survives_add_shard() {
        // A concurrent writer hammers a key that the migration will move;
        // the freeze blocks it (never rejects, never routes stale), and
        // after the flip its writes land on the new owner. The final read
        // must see the last write — nothing lost, nothing duplicated.
        let mut svc = ShardedService::start(KvStore, 2, RuntimeConfig::new(2));
        // Find a key the deterministic add-shard plan will migrate.
        let plan = MigrationPlan::add_shard(&svc.table());
        let table = svc.table();
        let hot = (0..1000)
            .map(|i| format!("hot{i}"))
            .find(|k| plan.slots().contains(&table.slot_of_key(k)))
            .expect("some key migrates");
        let mut writer = svc.client();
        let hot_w = hot.clone();
        let handle = std::thread::spawn(move || {
            let mut last = 0u32;
            for i in 0..200u32 {
                let id = writer.submit(KvOp::put(&hot_w, format!("{i}")), &[], false);
                assert_eq!(
                    writer.await_response(id, Duration::from_secs(10)),
                    Some(KvValue::Ack)
                );
                last = i;
            }
            last
        });
        // Let the writer get going, then migrate under it.
        std::thread::sleep(Duration::from_millis(30));
        let new = svc.add_shard();
        let last = handle.join().expect("writer panicked");
        assert_eq!(last, 199);
        // A fresh client reads the final value from the new owner.
        let mut reader = svc.client();
        let get = reader.submit(KvOp::get(&hot), &[], false);
        assert_eq!(reader.shard_of(get), Some(new));
        assert_eq!(
            reader.await_response(get, Duration::from_secs(10)),
            Some(KvValue::Value(Some("199".into())))
        );
        svc.shutdown();
    }
}

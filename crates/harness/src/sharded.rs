//! A simulated **sharded** ESDS deployment: `S` independent replica
//! groups, each an unmodified [`SimSystem`], behind one routing layer —
//! with **live rebalancing** by slot migration.
//!
//! The keyspace of a [`KeyedDataType`] is partitioned through a versioned
//! [`RoutingTable`] (`key → slot → shard`, fixed
//! [`SLOT_COUNT`](esds_core::SLOT_COUNT) slots); each shard runs the full
//! Section 6 protocol (gossip, labels, stabilization) over its slice
//! only, so aggregate throughput scales with the shard count instead of
//! plateauing at one group's capacity. Operations on different shards
//! touch disjoint state and commute trivially — the paper's Section 10
//! commutativity insight applied at the partition level.
//!
//! ## Cross-shard `prev` constraints
//!
//! A descriptor's `prev` set may name operations that were routed to
//! *other* shards. Within a shard, `prev` is enforced by the replica
//! protocol as usual. Across shards, [`ShardedSimSystem::submit`] holds
//! the dependent operation back until every foreign operation in its
//! constraint closure has been **responded to** by its own group; only
//! then is the operation released to its shard, carrying the same-shard
//! frontier of its `prev` closure (see [`esds_core::shard_frontier`]). This
//! preserves the client-observable guarantee (a response to the
//! predecessor exists before the dependent is even requested) while the
//! state-level constraint is vacuous: different shards are disjoint
//! objects, so every cross-shard pair of operations is independent.
//!
//! ## Slot migration (rebalancing)
//!
//! [`ShardedSimSystem::begin_migration`] starts executing a
//! [`MigrationPlan`] (add a shard, drain a shard, or any custom move
//! set). The handoff runs as a four-phase state machine, entirely inside
//! virtual time, so it is observable under partitions, crashes, and load:
//!
//! 1. **Freeze** — new submissions touching a migrating slot are queued
//!    in the routing layer (deferred, not rejected); everything already
//!    inside the source group keeps running.
//! 2. **Replay** — once every already-submitted operation of the
//!    migrating slots is answered *and stable everywhere* in its source
//!    group, each slot's **stable prefix** (its operations in final,
//!    minimum-label order — see [`SimSystem::stable_prefix`]) is
//!    resubmitted onto the receiving group by an internal migration
//!    client, chained with `prev` so the receiving group reproduces the
//!    exact serialization the source group stabilized. The stable prefix
//!    is the natural unit of transfer: it is the largest part of the
//!    history whose order can never change, and the smallest that every
//!    future response must reflect.
//! 3. **Flip** — the routing table version is bumped
//!    ([`esds_core::RoutingTable::apply`]); from this instant the moved
//!    slots route to their new owner.
//! 4. **Drain** — the frozen queue is released through the normal
//!    deferred path; each drained operation carries a `prev` anchor on
//!    the last replayed operation of its slot, so the receiving group's
//!    protocol orders it (and everything after it) behind the replayed
//!    prefix.
//!
//! If a source replica is partitioned or crashed, phase 2's stability
//! gate cannot pass and the migration simply waits — frozen submissions
//! stay queued and are answered after recovery, never lost.
//!
//! ## Whole-object queries: scatter-gather
//!
//! A keyless operator touches the whole object, which sharding has cut
//! into `S` disjoint slices. If the data type can merge partial answers
//! ([`KeyedDataType::merge_gathered`] — e.g. `Keys`, `ListNames`), the
//! router executes it as one **sub-operation per involved shard** (every
//! shard owning at least one slot) and merges the per-shard answers into
//! the value a single unsharded deployment would have returned:
//!
//! * **eventual mode** — sub-operations are scattered immediately and
//!   merged as they answer: each slice is *some* consistent view of its
//!   shard, with no cross-shard ordering claim (mirroring the paper's
//!   eventual consistency level);
//! * **barrier-strict mode** (`strict = true`) — before scattering, the
//!   router snapshots each involved shard's **answered frontier** and
//!   waits until every snapshotted operation is **stable everywhere** in
//!   its shard. Only then are strict sub-operations submitted: each
//!   one's freshly-minted label is necessarily greater than every
//!   frontier label, so each sub-operation is ordered after its shard's
//!   entire frontier in that shard's eventual total order (Theorem 5.8)
//!   — the merged answer is a **consistent cut** covering everything
//!   answered anywhere before the gather began. No 2PC: shards never
//!   coordinate; the barrier is pure waiting, per shard independently.
//!   (A bare strict sub-operation is *not* enough: an operation answered
//!   at a fast-clocked replica before the query can carry a label larger
//!   than the sub-operation's, excluding it from the answer despite
//!   having been answered first. The stability-cover wait closes exactly
//!   that race.)
//!
//! A gathered operation participates in `prev` like any other: each
//! sub-operation carries the same-shard frontier of the gather's `prev`
//! closure, and a later dependent anchors on the involved shard's own
//! sub-operation (see [`esds_core::gather_frontier`]). Gathers defer
//! while a migration is active — the involved-shard set must not change
//! mid-gather — and keyless operators *without* a merge keep the legacy
//! home-slot routing, answering from one shard's slice only.
//!
//! Shards advance in lockstep: [`ShardedSimSystem::run_until`] drives
//! every per-shard event queue to the same virtual instant, releasing
//! deferred operations and advancing any active migration between
//! slices.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use esds_core::{ClientId, KeyedDataType, MigrationPlan, OpId, ShardRouter, ShardedOpId};
use esds_sim::{derive_seed, SimDuration, SimTime};

use crate::system::{SimSystem, SystemConfig};

/// Configuration of a sharded simulated deployment.
#[derive(Clone, Debug)]
pub struct ShardedSystemConfig {
    /// Number of independent replica groups.
    pub n_shards: usize,
    /// Per-shard configuration template. Each shard derives its own
    /// channel/workload seed from `shard.seed` and its shard index, so
    /// shards are deterministic but not identical. Shards added later by
    /// a migration are built from the same template.
    pub shard: SystemConfig,
}

impl ShardedSystemConfig {
    /// A sharded deployment of `n_shards` groups built from one template.
    pub fn new(n_shards: usize, shard: SystemConfig) -> Self {
        ShardedSystemConfig { n_shards, shard }
    }
}

/// A deferred submission waiting for foreign-shard predecessors, its
/// scheduled submission time, or a frozen (migrating) slot.
struct PendingOp<T: KeyedDataType> {
    client: ClientId,
    /// The slot this operation's key hashes to (keyless operators:
    /// [`esds_core::HOME_SLOT`]). The owning shard is always derived from
    /// the *current* routing table, so a pending operation follows a
    /// migration automatically.
    slot: u16,
    op: T::Operator,
    prev: Vec<ShardedOpId>,
    strict: bool,
    /// Earliest virtual instant the request may enter the network.
    at: SimTime,
}

/// Where a globally-identified operation currently is.
enum TicketState<T: KeyedDataType> {
    /// Held back in the routing layer (cross-shard `prev`, scheduled
    /// time, or frozen slot).
    Pending(PendingOp<T>),
    /// Submitted to a shard under a local identifier. The global `prev`
    /// set is retained so that later dependents can inherit this
    /// operation's same-shard predecessors through foreign hops (see
    /// [`ShardedSimSystem::local_frontier`]). Migrations do not need
    /// per-ticket slot bookkeeping: their stability gate consults the
    /// source groups' own request logs, which also cover replayed
    /// operations no ticket ever named.
    Submitted {
        shard: u32,
        local: OpId,
        prev: Vec<ShardedOpId>,
    },
    /// A gatherable whole-object query in barrier-strict mode: released
    /// from the routing layer, holding each involved shard's answered
    /// frontier, waiting until every snapshotted operation is stable
    /// everywhere in its shard before scattering.
    GatherBarrier {
        p: PendingOp<T>,
        frontier: BTreeMap<u32, Vec<OpId>>,
    },
    /// A gathered query scattered as one sub-operation per involved
    /// shard. `merged` is filled once every sub-operation is answered;
    /// `frontier` retains the barrier obligation (empty in eventual
    /// mode) so conformance tests can check the cut.
    GatherScattered {
        op: T::Operator,
        subs: BTreeMap<u32, OpId>,
        prev: Vec<ShardedOpId>,
        frontier: BTreeMap<u32, Vec<OpId>>,
        requested_at: SimTime,
        merged: Option<T::Value>,
    },
}

/// An in-progress slot migration (see the module docs' state machine).
struct Migration {
    plan: MigrationPlan,
    /// The slots being moved — frozen until the flip.
    slots: BTreeSet<u16>,
}

/// A complete sharded simulated deployment: `S` independent
/// [`SimSystem`]s multiplexed behind one submit/response API, with live
/// slot rebalancing.
///
/// Clients exist in every shard (their per-shard front ends are created
/// together, so one [`ClientId`] is valid everywhere); each submission is
/// routed to the shard owning its operator's key and identified globally
/// by a [`ShardedOpId`].
///
/// # Examples
///
/// ```
/// use esds_harness::{ShardedSimSystem, ShardedSystemConfig, SystemConfig};
/// use esds_datatypes::{KvOp, KvStore, KvValue};
///
/// let cfg = ShardedSystemConfig::new(4, SystemConfig::new(3).with_seed(7));
/// let mut sys = ShardedSimSystem::new(KvStore, cfg);
/// let c = sys.add_client(0);
/// let put = sys.submit(c, KvOp::put("user:1", "ada"), &[], false);
/// // The read is constrained after the put; if the two keys hash to
/// // different shards, the router waits for the put's response first.
/// let get = sys.submit(c, KvOp::get("user:1"), &[put], false);
/// sys.run_until_quiescent();
/// assert_eq!(sys.response(get), Some(&KvValue::Value(Some("ada".into()))));
/// ```
pub struct ShardedSimSystem<T: KeyedDataType + Clone> {
    dt: T,
    config: ShardedSystemConfig,
    router: ShardRouter,
    shards: Vec<SimSystem<T>>,
    tickets: BTreeMap<ShardedOpId, TicketState<T>>,
    /// Deferred submissions in FIFO order (release preserves per-client
    /// submission order whenever constraints allow).
    deferred: VecDeque<ShardedOpId>,
    /// Gathered queries still in flight: waiting on their barrier or on
    /// sub-operation answers (see [`TicketState::GatherBarrier`] /
    /// [`TicketState::GatherScattered`]).
    active_gathers: Vec<ShardedOpId>,
    next_seq: BTreeMap<ClientId, u64>,
    /// Relay hints of every client, in creation order — replayed into
    /// shards spawned later so per-shard [`ClientId`]s stay aligned.
    client_hints: Vec<u32>,
    /// The active migration, if any (at most one at a time).
    migration: Option<Migration>,
    /// Internal client used to replay stable prefixes during handoffs.
    migration_client: Option<ClientId>,
    /// `(shard, slot) →` the last operation of the slot's replayed
    /// prefix on that shard. Future submissions on the slot carry it as
    /// an extra `prev` so the receiving group orders them behind the
    /// transferred history.
    replay_anchor: BTreeMap<(u32, u16), OpId>,
}

impl<T: KeyedDataType + Clone> ShardedSimSystem<T> {
    /// Builds `config.n_shards` independent replica groups and a router
    /// over them.
    ///
    /// # Panics
    ///
    /// Panics if `n_shards` is zero or the per-shard template is invalid
    /// (see [`SimSystem::new`]).
    pub fn new(dt: T, config: ShardedSystemConfig) -> Self {
        assert!(config.n_shards > 0, "need at least one shard");
        let shards = (0..config.n_shards)
            .map(|s| Self::build_shard(&dt, &config.shard, s))
            .collect();
        ShardedSimSystem {
            router: ShardRouter::new(config.n_shards as u32),
            dt,
            shards,
            tickets: BTreeMap::new(),
            deferred: VecDeque::new(),
            active_gathers: Vec::new(),
            next_seq: BTreeMap::new(),
            client_hints: Vec::new(),
            migration: None,
            migration_client: None,
            replay_anchor: BTreeMap::new(),
            config,
        }
    }

    fn build_shard(dt: &T, template: &SystemConfig, index: usize) -> SimSystem<T> {
        let mut cfg = template.clone();
        cfg.seed = derive_seed(template.seed, 0x5A4D ^ index as u64);
        SimSystem::new(dt.clone(), cfg)
    }

    /// The router (key → slot → shard map), at its current version.
    pub fn router(&self) -> ShardRouter {
        self.router.clone()
    }

    /// The configuration (per-shard template; new shards clone it).
    pub fn config(&self) -> &ShardedSystemConfig {
        &self.config
    }

    /// The routing-table version: how many migrations have completed.
    pub fn table_version(&self) -> u64 {
        self.router.version()
    }

    /// Number of shards (including drained ones, which own no slots).
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard systems, for inspection (stats, states, orders).
    pub fn shards(&self) -> &[SimSystem<T>] {
        &self.shards
    }

    /// Mutable access to one shard's system — for scheduling
    /// [`crate::FaultEvent`]s against a single group in fault/chaos
    /// scenarios. Submit operations only through the sharded API, never
    /// directly through this handle, or global identifiers will drift.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn shard_mut(&mut self, shard: usize) -> &mut SimSystem<T> {
        &mut self.shards[shard]
    }

    /// Current virtual time (shards run in lockstep; this is the frontier).
    pub fn now(&self) -> SimTime {
        self.shards
            .iter()
            .map(|s| s.now())
            .max()
            .expect("at least one shard")
    }

    /// Adds a client to **every** shard, returning its (shared) identity.
    pub fn add_client(&mut self, hint: u32) -> ClientId {
        let mut ids = self.shards.iter_mut().map(|s| s.add_client(hint));
        let c = ids.next().expect("at least one shard");
        assert!(
            ids.all(|i| i == c),
            "per-shard client ids diverged; add clients only through ShardedSimSystem"
        );
        self.next_seq.insert(c, 0);
        self.client_hints.push(hint);
        c
    }

    /// Submits an operation *now*. Routes it by its shard key, translates
    /// the same-shard part of `prev` to local identifiers, and defers the
    /// submission while any foreign-shard predecessor is still unanswered
    /// or the slot is frozen by a migration (see the module docs).
    ///
    /// # Panics
    ///
    /// Panics if `client` is unknown or `prev` names an identifier never
    /// returned by this system (client well-formedness, paper §4).
    pub fn submit(
        &mut self,
        client: ClientId,
        op: T::Operator,
        prev: &[ShardedOpId],
        strict: bool,
    ) -> ShardedOpId {
        self.submit_at(self.now(), client, op, prev, strict)
    }

    /// Submits an operation at a future virtual time (the open-loop
    /// workload driver, mirroring [`SimSystem::submit_at`]). The global
    /// identifier is assigned immediately; the request is held in the
    /// routing layer until `at`, so a migration that freezes its slot in
    /// the meantime captures it like any live submission.
    ///
    /// # Panics
    ///
    /// Panics if `client` is unknown or `prev` names an identifier never
    /// returned by this system.
    pub fn submit_at(
        &mut self,
        at: SimTime,
        client: ClientId,
        op: T::Operator,
        prev: &[ShardedOpId],
        strict: bool,
    ) -> ShardedOpId {
        let seq = self
            .next_seq
            .get_mut(&client)
            .expect("unknown client; use add_client");
        let gid = ShardedOpId::new(client, *seq);
        *seq += 1;
        let slot = self.router.slot_of(&self.dt, &op);
        let pending = PendingOp {
            client,
            slot,
            op,
            prev: prev.to_vec(),
            strict,
            at,
        };
        if self.is_ready(&pending) {
            self.release(gid, pending);
        } else {
            self.tickets.insert(gid, TicketState::Pending(pending));
            self.deferred.push_back(gid);
        }
        gid
    }

    /// Whether `slot` is currently frozen by an active migration.
    fn is_frozen(&self, slot: u16) -> bool {
        self.migration
            .as_ref()
            .is_some_and(|m| m.slots.contains(&slot))
    }

    /// Whether `p` may be handed to its shard: its scheduled time has
    /// arrived, its slot is not frozen, every `prev` entry has itself
    /// been released, and every **foreign** operation reachable in the
    /// constraint closure (the same nodes [`esds_core::shard_frontier`]
    /// visits: descend through foreign nodes, stop at same-shard ones) is
    /// answered.
    ///
    /// Direct answeredness does *not* propagate transitively — a foreign
    /// predecessor can be answered by a replica that learned *its* own
    /// predecessors through gossip before those were answered — so the
    /// walk checks every visited foreign node explicitly, exactly as the
    /// threaded `ShardedClient` awaits each one.
    fn is_ready(&self, p: &PendingOp<T>) -> bool {
        if self.dt.is_gatherable(&p.op) {
            return self.gather_ready(p);
        }
        if p.at > self.now() || self.is_frozen(p.slot) {
            return false;
        }
        let target = self.router.table().shard_of_slot(p.slot);
        let mut visited: BTreeSet<ShardedOpId> = BTreeSet::new();
        let mut stack: Vec<ShardedOpId> = p.prev.clone();
        while let Some(g) = stack.pop() {
            if !visited.insert(g) {
                continue;
            }
            match self.tickets.get(&g) {
                None => panic!("prev {g} was never submitted to this system"),
                Some(TicketState::Pending(_)) | Some(TicketState::GatherBarrier { .. }) => {
                    return false
                }
                Some(TicketState::Submitted {
                    shard, local, prev, ..
                }) => {
                    if *shard != target {
                        if self.shards[*shard as usize].response(*local).is_none() {
                            return false;
                        }
                        stack.extend(prev.iter().copied());
                    }
                }
                Some(TicketState::GatherScattered {
                    subs, prev, merged, ..
                }) => {
                    // A sub-operation on the target shard anchors the
                    // dependent in-shard (inherited by local_frontier);
                    // otherwise the gather is foreign and must be fully
                    // answered before its edge can be dropped.
                    if !subs.contains_key(&target) {
                        if merged.is_none() {
                            return false;
                        }
                        stack.extend(prev.iter().copied());
                    }
                }
            }
        }
        true
    }

    /// Whether a gatherable whole-object query may scatter: its time has
    /// arrived, no migration is active (the involved-shard set must not
    /// change mid-gather — this also closes the keyless/flip race: a
    /// whole-object query can never land on a shard that just
    /// replayed-and-drained), and every predecessor in its constraint
    /// closure is either placed on an involved shard (the gather's own
    /// sub-operation there will carry the ordering) or answered.
    fn gather_ready(&self, p: &PendingOp<T>) -> bool {
        if p.at > self.now() || self.migration.is_some() {
            return false;
        }
        let involved: BTreeSet<u32> = self.router.table().involved_shards().into_iter().collect();
        let mut visited: BTreeSet<ShardedOpId> = BTreeSet::new();
        let mut stack: Vec<ShardedOpId> = p.prev.clone();
        while let Some(g) = stack.pop() {
            if !visited.insert(g) {
                continue;
            }
            match self.tickets.get(&g) {
                None => panic!("prev {g} was never submitted to this system"),
                Some(TicketState::Pending(_)) | Some(TicketState::GatherBarrier { .. }) => {
                    return false
                }
                Some(TicketState::Submitted {
                    shard, local, prev, ..
                }) => {
                    if !involved.contains(shard) {
                        // Placed on a drained shard no sub-operation
                        // will visit: must be answered, like any
                        // foreign predecessor.
                        if self.shards[*shard as usize].response(*local).is_none() {
                            return false;
                        }
                        stack.extend(prev.iter().copied());
                    }
                }
                Some(TicketState::GatherScattered { merged, .. }) => {
                    if merged.is_none() {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// The `prev` constraints to carry into shard `shard`: the local ids
    /// of every same-shard operation reachable from `prev` through
    /// foreign hops — [`esds_core::gather_frontier`] over the ticket map
    /// (a gathered predecessor anchors on its own sub-operation in
    /// `shard`). Every foreign node the walk visits is already answered
    /// (checked over the same closure by [`ShardedSimSystem::is_ready`]),
    /// so only ordering must be inherited here, not awaited.
    fn local_frontier(&self, prev: &[ShardedOpId], shard: u32) -> Vec<OpId> {
        esds_core::gather_frontier(prev, shard, |g| match self.tickets.get(&g) {
            Some(TicketState::Submitted {
                shard: s,
                local,
                prev,
                ..
            }) => (vec![(*s, *local)], prev.clone()),
            Some(TicketState::GatherScattered { subs, prev, .. }) => {
                (subs.iter().map(|(s, l)| (*s, *l)).collect(), prev.clone())
            }
            _ => unreachable!("is_ready guarantees every predecessor is released"),
        })
    }

    /// Hands a ready operation to its shard (derived from the *current*
    /// routing table) and records its placement. Operations landing on a
    /// slot with a replayed prefix carry a `prev` anchor on the last
    /// replayed operation, ordering them behind the transferred history.
    fn release(&mut self, gid: ShardedOpId, p: PendingOp<T>) {
        if self.dt.is_gatherable(&p.op) {
            self.release_gather(gid, p);
            return;
        }
        let shard = self.router.table().shard_of_slot(p.slot);
        let mut local_prev = self.local_frontier(&p.prev, shard);
        if let Some(anchor) = self.replay_anchor.get(&(shard, p.slot)) {
            local_prev.push(*anchor);
        }
        let target = &mut self.shards[shard as usize];
        let at = p.at.max(target.now());
        let local = target.submit_at(at, p.client, p.op, &local_prev, p.strict);
        self.tickets.insert(
            gid,
            TicketState::Submitted {
                shard,
                local,
                prev: p.prev,
            },
        );
    }

    /// Routes a ready gatherable query: barrier-strict queries snapshot
    /// every involved shard's answered frontier and wait for stability
    /// cover ([`ShardedSimSystem::pump_gathers`] scatters them once
    /// covered); eventual queries scatter immediately.
    fn release_gather(&mut self, gid: ShardedOpId, p: PendingOp<T>) {
        if p.strict {
            let frontier: BTreeMap<u32, Vec<OpId>> = self
                .router
                .table()
                .involved_shards()
                .into_iter()
                .map(|s| (s, self.answered_frontier(s)))
                .collect();
            self.tickets
                .insert(gid, TicketState::GatherBarrier { p, frontier });
            self.active_gathers.push(gid);
        } else {
            self.scatter(gid, p, BTreeMap::new());
        }
    }

    /// Every operation some replica of `shard` has responded to — the
    /// shard's answered frontier, the barrier's unit of snapshot.
    fn answered_frontier(&self, shard: u32) -> Vec<OpId> {
        let sys = &self.shards[shard as usize];
        sys.requested()
            .keys()
            .filter(|id| sys.response(**id).is_some())
            .copied()
            .collect()
    }

    /// Whether every snapshotted frontier operation is stable everywhere
    /// in its shard — the barrier condition.
    fn barrier_covered(&self, frontier: &BTreeMap<u32, Vec<OpId>>) -> bool {
        frontier.iter().all(|(s, ids)| {
            let sys = &self.shards[*s as usize];
            ids.iter().all(|id| sys.op_is_stable_everywhere(*id))
        })
    }

    /// Submits one sub-operation of a gathered query per involved shard,
    /// carrying the gather's same-shard `prev` frontier plus an anchor
    /// behind any prefix replayed onto the shard by past migrations (so
    /// the query cannot observe a pre-handoff state).
    fn scatter(&mut self, gid: ShardedOpId, p: PendingOp<T>, frontier: BTreeMap<u32, Vec<OpId>>) {
        let involved = self.router.table().involved_shards();
        let mut subs = BTreeMap::new();
        for s in involved {
            let mut local_prev = self.local_frontier(&p.prev, s);
            for ((sh, _), anchor) in self.replay_anchor.iter() {
                if *sh == s {
                    local_prev.push(*anchor);
                }
            }
            let target = &mut self.shards[s as usize];
            let at = p.at.max(target.now());
            let local = target.submit_at(at, p.client, p.op.clone(), &local_prev, p.strict);
            subs.insert(s, local);
        }
        self.tickets.insert(
            gid,
            TicketState::GatherScattered {
                op: p.op,
                subs,
                prev: p.prev,
                frontier,
                requested_at: p.at,
                merged: None,
            },
        );
        self.active_gathers.push(gid);
    }

    /// Advances in-flight gathers: scatters barrier gathers whose
    /// frontier is now covered, merges scattered gathers whose
    /// sub-operations are all answered. Returns whether anything moved.
    fn pump_gathers(&mut self) -> bool {
        enum Step {
            Wait,
            Scatter,
            Merge,
            Done,
        }
        let mut progressed = false;
        let gids: Vec<ShardedOpId> = std::mem::take(&mut self.active_gathers);
        for gid in gids {
            let step = match self.tickets.get(&gid) {
                Some(TicketState::GatherBarrier { frontier, .. }) => {
                    if self.barrier_covered(frontier) {
                        Step::Scatter
                    } else {
                        Step::Wait
                    }
                }
                Some(TicketState::GatherScattered { subs, merged, .. }) => {
                    if merged.is_some() {
                        Step::Done
                    } else if subs
                        .iter()
                        .all(|(s, l)| self.shards[*s as usize].response(*l).is_some())
                    {
                        Step::Merge
                    } else {
                        Step::Wait
                    }
                }
                _ => unreachable!("active gather must be a gather ticket"),
            };
            match step {
                Step::Wait => self.active_gathers.push(gid),
                Step::Done => {}
                Step::Scatter => {
                    let Some(TicketState::GatherBarrier { p, frontier }) =
                        self.tickets.remove(&gid)
                    else {
                        unreachable!("checked above");
                    };
                    self.scatter(gid, p, frontier);
                    progressed = true;
                }
                Step::Merge => {
                    let (op, parts) = {
                        let Some(TicketState::GatherScattered { op, subs, .. }) =
                            self.tickets.get(&gid)
                        else {
                            unreachable!("checked above");
                        };
                        let parts: Vec<T::Value> = subs
                            .iter()
                            .map(|(s, l)| {
                                self.shards[*s as usize]
                                    .response(*l)
                                    .expect("checked")
                                    .clone()
                            })
                            .collect();
                        (op.clone(), parts)
                    };
                    let v = self
                        .dt
                        .merge_gathered(&op, parts)
                        .expect("scattered operators are gatherable");
                    let Some(TicketState::GatherScattered { merged, .. }) =
                        self.tickets.get_mut(&gid)
                    else {
                        unreachable!("checked above");
                    };
                    *merged = Some(v);
                    progressed = true;
                }
            }
        }
        progressed
    }

    /// Releases every deferred operation whose predecessors, schedule,
    /// and slot are now clear, and advances in-flight gathers, to
    /// fixpoint (one release can unblock another; a merged gather can
    /// unblock a deferred dependent).
    fn pump(&mut self) {
        loop {
            self.pump_deferred();
            if !self.pump_gathers() {
                return;
            }
        }
    }

    /// One sub-step of [`ShardedSimSystem::pump`]: the deferred queue
    /// alone, to fixpoint.
    fn pump_deferred(&mut self) {
        loop {
            let mut progressed = false;
            let mut still: VecDeque<ShardedOpId> = VecDeque::new();
            while let Some(gid) = self.deferred.pop_front() {
                let ready = match self.tickets.get(&gid) {
                    Some(TicketState::Pending(p)) => self.is_ready(p),
                    _ => unreachable!("deferred ticket must be pending"),
                };
                if !ready {
                    still.push_back(gid);
                    continue;
                }
                let Some(TicketState::Pending(p)) = self.tickets.remove(&gid) else {
                    unreachable!("checked above");
                };
                self.release(gid, p);
                progressed = true;
            }
            self.deferred = still;
            if !progressed || self.deferred.is_empty() {
                return;
            }
        }
    }

    // ------------------------------------------------------------------
    // Slot migration
    // ------------------------------------------------------------------

    /// Starts executing a [`MigrationPlan`] (see the module docs' state
    /// machine). Any destination shards beyond the current count are
    /// spawned from the configuration template, with every existing
    /// client re-created so identities stay aligned. Returns immediately;
    /// the handoff advances as virtual time runs and completes once the
    /// migrating slots' history is stable — observe progress with
    /// [`ShardedSimSystem::migration_active`] and
    /// [`ShardedSimSystem::table_version`].
    ///
    /// # Panics
    ///
    /// Panics if a migration is already active or the plan was computed
    /// against a different table version.
    pub fn begin_migration(&mut self, plan: MigrationPlan) {
        assert!(
            self.migration.is_none(),
            "a migration is already in progress"
        );
        assert_eq!(
            plan.from_version(),
            self.router.version(),
            "migration plan is stale"
        );
        while (self.shards.len() as u32) < plan.n_shards_after() {
            let index = self.shards.len();
            let mut sys = Self::build_shard(&self.dt, &self.config.shard, index);
            for (i, hint) in self.client_hints.iter().enumerate() {
                let c = sys.add_client(*hint);
                assert_eq!(c, ClientId(i as u32), "client ids must align across shards");
            }
            self.shards.push(sys);
        }
        if self.migration_client.is_none() {
            self.migration_client = Some(self.add_client(0));
        }
        self.migration = Some(Migration {
            slots: plan.slots(),
            plan,
        });
        // A quiescent system can hand off immediately.
        self.try_complete_migration();
    }

    /// Convenience: plan and start an add-shard migration (the new
    /// group takes ~`1/(S+1)` of the slots). Returns the new shard's id.
    pub fn begin_add_shard(&mut self) -> u32 {
        let plan = MigrationPlan::add_shard(self.router.table());
        let new = self.router.n_shards();
        self.begin_migration(plan);
        new
    }

    /// Convenience: plan and start draining `shard` (its slots spread
    /// over the remaining shards; the group itself stays alive to finish
    /// answering what it already accepted).
    pub fn begin_drain_shard(&mut self, shard: u32) {
        let plan = MigrationPlan::drain_shard(self.router.table(), shard);
        self.begin_migration(plan);
    }

    /// Whether a migration is still in progress (slots frozen, handoff
    /// pending).
    pub fn migration_active(&self) -> bool {
        self.migration.is_some()
    }

    /// The slots currently frozen by the active migration.
    pub fn frozen_slots(&self) -> BTreeSet<u16> {
        self.migration
            .as_ref()
            .map(|m| m.slots.clone())
            .unwrap_or_default()
    }

    /// A group's operations on `slot`, restricted to its stable prefix,
    /// in final minimum-label order — the slot's share of the group's
    /// transferable history.
    fn slot_timeline(&self, shard: u32, slot: u16) -> Vec<OpId> {
        let sys = &self.shards[shard as usize];
        sys.stable_prefix()
            .expect("caller checks liveness")
            .into_iter()
            .filter(|id| self.router.slot_of(&self.dt, &sys.requested()[id].op) == slot)
            .collect()
    }

    /// Advances the active migration if its stability gate is met:
    /// replays each migrating slot's stable prefix onto its destination,
    /// flips the routing table, and drains the frozen queue. No-op while
    /// any operation of a migrating slot is unanswered or unstable in
    /// its group, or while any group involved in a move has a crashed
    /// replica (e.g. during a partition or outage — the migration simply
    /// waits), or when no migration is active.
    fn try_complete_migration(&mut self) {
        let Some(m) = &self.migration else { return };
        // Phase 2 gate, part 1: every group a move touches — source or
        // destination — must have all replicas alive, so both sides'
        // stability knowledge is complete.
        let involved: BTreeSet<u32> = m
            .plan
            .moves()
            .iter()
            .flat_map(|mv| [mv.from, mv.to])
            .collect();
        for shard in &involved {
            if !self.shards[*shard as usize].all_replicas_alive() {
                return;
            }
        }
        // Phase 2 gate, part 2: every operation *any* involved group has
        // received on a migrating slot — client submissions and earlier
        // handoffs' replays alike — must be answered and stable
        // everywhere in its group, so the slot's serialization is final
        // and fully transferable. Checked against each group's own
        // request log, not the ticket map: a back-to-back migration of a
        // just-moved slot must wait for the previous handoff's replayed
        // prefix to stabilize on the group it is now moving out of.
        for shard in &involved {
            let sys = &self.shards[*shard as usize];
            for (id, desc) in sys.requested() {
                if m.slots.contains(&self.router.slot_of(&self.dt, &desc.op))
                    && (sys.response(*id).is_none() || !sys.op_is_stable_everywhere(*id))
                {
                    return;
                }
            }
        }
        let m = self.migration.take().expect("checked above");
        let mc = self.migration_client.expect("set at begin_migration");
        // Phase 2: replay each slot's stable prefix, in its final
        // minimum-label order, onto the receiving group. `prev` chains
        // preserve the order; the last link becomes the slot's anchor.
        //
        // A destination that held the slot *earlier* (a drain returning
        // it to a former owner) already has a frozen prefix of the
        // slot's timeline in its own history: when the slot left it, the
        // current owner started from a replay of exactly those
        // operations, in the same order, and the former owner received
        // nothing on the slot since. Only the timeline's *suffix* beyond
        // that shared prefix is replayed — re-applying the shared part
        // would double-apply non-idempotent operators (a bank deposit
        // counted twice).
        for mv in m.plan.moves() {
            let src_timeline = self.slot_timeline(mv.from, mv.slot);
            let already_held = self.slot_timeline(mv.to, mv.slot);
            assert!(
                already_held.len() <= src_timeline.len(),
                "destination shard {} holds more of slot {} ({} ops) than the source timeline \
                 ({} ops); handoff bookkeeping corrupted",
                mv.to,
                mv.slot,
                already_held.len(),
                src_timeline.len()
            );
            let suffix: Vec<T::Operator> = src_timeline[already_held.len()..]
                .iter()
                .map(|id| self.shards[mv.from as usize].requested()[id].op.clone())
                .collect();
            // Order the replayed suffix — and everything drained after —
            // behind the destination's existing share of the timeline.
            let mut anchor = already_held.last().copied();
            for op in suffix {
                let prev: Vec<OpId> = anchor.into_iter().collect();
                let dest = &mut self.shards[mv.to as usize];
                anchor = Some(dest.submit(mc, op, &prev, false));
            }
            if let Some(a) = anchor {
                self.replay_anchor.insert((mv.to, mv.slot), a);
            }
        }
        // Phase 3: flip the table; phase 4: drain the frozen queue.
        self.router.apply(&m.plan);
        self.pump();
    }

    // ------------------------------------------------------------------
    // Running
    // ------------------------------------------------------------------

    /// Runs every shard to virtual time `t` in lockstep (slices of the
    /// gossip interval, shortened so scheduled submissions release on
    /// time), releasing deferred submissions and advancing any active
    /// migration between slices.
    pub fn run_until(&mut self, t: SimTime) {
        let slice = self.config.shard.gossip_interval;
        loop {
            let now = self.now();
            if now >= t {
                return;
            }
            let mut target = (now + slice).min(t);
            if let Some(next_at) = self.next_scheduled_release(now) {
                target = target.min(next_at);
            }
            for s in &mut self.shards {
                s.run_until(target);
            }
            self.pump();
            self.try_complete_migration();
        }
    }

    /// The earliest future release instant among deferred submissions.
    fn next_scheduled_release(&self, now: SimTime) -> Option<SimTime> {
        self.deferred
            .iter()
            .filter_map(|gid| match self.tickets.get(gid) {
                Some(TicketState::Pending(p)) if p.at > now => Some(p.at),
                _ => None,
            })
            .min()
    }

    /// Runs for a span of virtual time.
    pub fn run_for(&mut self, d: SimDuration) {
        let t = self.now() + d;
        self.run_until(t);
    }

    /// Releases any deferred cross-shard submissions earlier steps
    /// unblocked, advances any active migration, then runs **one** event
    /// of shard `shard` and returns its report. `None` when that shard's
    /// queue is empty. This is the fine-grained stepping mode the
    /// per-shard [`crate::ConformanceObserver`]s need: each shard is an
    /// independent ESDS instance, so observing every shard's steps
    /// against its own `ESDS-II` automaton is exactly the sharded
    /// conformance statement — and it holds *through* a slot handoff,
    /// because replayed and drained operations are ordinary requests of
    /// the receiving shard.
    ///
    /// The release pump runs **before** the step, not after: a released
    /// operation (and in particular a scattered whole-object query,
    /// whose sub-operations land on *every* involved shard at once —
    /// including `shard` itself) must appear in the next report the
    /// observer sees for its shard, never in the gap between a report
    /// and the post-step view it is checked against.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn step_shard(&mut self, shard: usize) -> Option<crate::system::TimedStep<T>> {
        self.pump();
        self.try_complete_migration();
        self.shards[shard].step_one()
    }

    /// A live borrow view of shard `shard` for invariant/conformance
    /// checks (see [`SimSystem::view`]). `None` if a replica of that
    /// shard is crashed.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn shard_view(&self, shard: usize) -> Option<esds_alg::SystemView<'_, T>> {
        self.shards[shard].view()
    }

    /// Whether every submission has been released to its shard, answered,
    /// and stabilized within its group, and no migration is pending.
    pub fn is_converged(&self) -> bool {
        self.migration.is_none()
            && self.deferred.is_empty()
            && self.active_gathers.is_empty()
            && self.shards.iter().all(|s| s.is_converged())
    }

    /// Runs until converged or until `max` virtual time passes.
    ///
    /// # Errors
    ///
    /// Returns a description of what is still outstanding on timeout.
    pub fn run_until_converged(&mut self, max: SimTime) -> Result<SimTime, String> {
        while !self.is_converged() {
            if self.now() >= max {
                let mut parts: Vec<String> = Vec::new();
                if let Some(m) = &self.migration {
                    parts.push(format!(
                        "migration of slots {:?} not handed off",
                        m.slots.iter().collect::<Vec<_>>()
                    ));
                }
                if !self.deferred.is_empty() {
                    let held: Vec<String> = self.deferred.iter().map(|g| g.to_string()).collect();
                    parts.push(format!("{} deferred {held:?}", self.deferred.len()));
                }
                if !self.active_gathers.is_empty() {
                    let held: Vec<String> =
                        self.active_gathers.iter().map(|g| g.to_string()).collect();
                    parts.push(format!(
                        "{} gathers in flight {held:?}",
                        self.active_gathers.len()
                    ));
                }
                for (i, s) in self.shards.iter().enumerate() {
                    if !s.is_converged() {
                        let unanswered: Vec<String> = s
                            .op_times()
                            .iter()
                            .filter(|(_, t)| t.responded.is_none())
                            .map(|(id, _)| id.to_string())
                            .collect();
                        parts.push(format!("shard {i} unconverged (unanswered {unanswered:?})"));
                    }
                }
                return Err(format!("not converged by {max}: {}", parts.join("; ")));
            }
            let t = self.now() + self.config.shard.gossip_interval;
            self.run_until(t.min(max));
        }
        Ok(self.now())
    }

    /// Convenience wrapper: converge within a generous horizon.
    ///
    /// # Panics
    ///
    /// Panics if convergence is not reached (deterministic fault-free
    /// deployments always converge; prefer
    /// [`ShardedSimSystem::run_until_converged`] under faults).
    pub fn run_until_quiescent(&mut self) -> SimTime {
        let budget = self.config.shard.quiescence_budget(self.now());
        match self.run_until_converged(budget) {
            Ok(t) => t,
            Err(e) => panic!("run_until_quiescent: {e}"),
        }
    }

    // ------------------------------------------------------------------
    // Results & inspection
    // ------------------------------------------------------------------

    /// Where `id` was routed: its shard and, once released, its local
    /// identifier within that shard. For pending operations the shard is
    /// the *current* owner of the operation's slot (a pending operation
    /// follows migrations until it is released). Gathered queries have
    /// no single placement — `None` here; see
    /// [`ShardedSimSystem::gather_detail`].
    pub fn placement(&self, id: ShardedOpId) -> Option<(u32, Option<OpId>)> {
        match self.tickets.get(&id)? {
            TicketState::Pending(p) => Some((self.router.table().shard_of_slot(p.slot), None)),
            TicketState::Submitted { shard, local, .. } => Some((*shard, Some(*local))),
            TicketState::GatherBarrier { .. } | TicketState::GatherScattered { .. } => None,
        }
    }

    /// A gathered query's per-shard sub-operations and, in barrier-strict
    /// mode, the answered-frontier snapshot its barrier waited out (empty
    /// in eventual mode) — the raw material of an `esds_spec::ShardBarrier`
    /// cut check. `None` until the query scatters, and for single-key
    /// operations.
    #[allow(clippy::type_complexity)]
    pub fn gather_detail(
        &self,
        id: ShardedOpId,
    ) -> Option<(&BTreeMap<u32, OpId>, &BTreeMap<u32, Vec<OpId>>)> {
        match self.tickets.get(&id)? {
            TicketState::GatherScattered { subs, frontier, .. } => Some((subs, frontier)),
            _ => None,
        }
    }

    /// The response delivered for `id`, if any. For a gathered query this
    /// is the merged whole-object answer, available once every involved
    /// shard has answered its sub-operation.
    pub fn response(&self, id: ShardedOpId) -> Option<&T::Value> {
        match self.tickets.get(&id)? {
            TicketState::Pending { .. } | TicketState::GatherBarrier { .. } => None,
            TicketState::Submitted { shard, local, .. } => {
                self.shards[*shard as usize].response(*local)
            }
            TicketState::GatherScattered { merged, .. } => merged.as_ref(),
        }
    }

    /// Total operations submitted through this system (excluding
    /// internal stable-prefix replays).
    pub fn submitted_count(&self) -> usize {
        self.tickets.len()
    }

    /// Total operations answered across all shards (including internal
    /// stable-prefix replays, which are requests of the receiving group).
    pub fn completed_count(&self) -> usize {
        self.shards.iter().map(|s| s.completed_count()).sum()
    }

    /// Total client-submitted operations answered (excluding internal
    /// stable-prefix replays) — the numerator rebalancing experiments
    /// should use, so handoff traffic doesn't inflate throughput.
    pub fn completed_client_ops(&self) -> usize {
        self.tickets
            .values()
            .filter(|t| match t {
                TicketState::Pending(_) | TicketState::GatherBarrier { .. } => false,
                TicketState::Submitted { shard, local, .. } => {
                    self.shards[*shard as usize].response(*local).is_some()
                }
                TicketState::GatherScattered { merged, .. } => merged.is_some(),
            })
            .count()
    }

    /// The latest response-delivery instant across all shards (the
    /// completion time a throughput measurement should divide by).
    pub fn latest_response(&self) -> SimTime {
        self.shards
            .iter()
            .flat_map(|s| s.op_times().values())
            .filter_map(|t| t.responded)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// The submission/response timing of `id`, if released and known:
    /// `(submitted, responded)`. For a gathered query, `submitted` is
    /// the instant the client requested it (barrier waiting counts
    /// toward latency — it is part of what the client pays) and
    /// `responded` the instant the *last* sub-operation answered.
    pub fn op_timing(&self, id: ShardedOpId) -> Option<(SimTime, Option<SimTime>)> {
        match self.tickets.get(&id)? {
            TicketState::Pending { .. } | TicketState::GatherBarrier { .. } => None,
            TicketState::Submitted { shard, local, .. } => self.shards[*shard as usize]
                .op_times()
                .get(local)
                .map(|t| (t.submitted, t.responded)),
            TicketState::GatherScattered {
                subs, requested_at, ..
            } => {
                let responded = subs
                    .iter()
                    .map(|(s, l)| {
                        self.shards[*s as usize]
                            .op_times()
                            .get(l)
                            .and_then(|t| t.responded)
                    })
                    .collect::<Option<Vec<_>>>()
                    .and_then(|ts| ts.into_iter().max());
                Some((*requested_at, responded))
            }
        }
    }

    /// Per-shard count of operations routed there (load-balance metric).
    /// Pending operations count toward their slot's current owner; a
    /// gathered query counts once per involved shard (it really does
    /// occupy each of them).
    pub fn shard_loads(&self) -> Vec<usize> {
        let mut loads = vec![0usize; self.shards.len()];
        for t in self.tickets.values() {
            match t {
                TicketState::Pending(p) | TicketState::GatherBarrier { p, .. } => {
                    loads[self.router.table().shard_of_slot(p.slot) as usize] += 1;
                }
                TicketState::Submitted { shard, .. } => loads[*shard as usize] += 1,
                TicketState::GatherScattered { subs, .. } => {
                    for s in subs.keys() {
                        loads[*s as usize] += 1;
                    }
                }
            }
        }
        loads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esds_datatypes::{Bank, BankOp, BankValue, KvOp, KvStore, KvValue};
    use esds_spec::check_converged;

    fn kv_sys(n_shards: usize, seed: u64) -> ShardedSimSystem<KvStore> {
        ShardedSimSystem::new(
            KvStore,
            ShardedSystemConfig::new(n_shards, SystemConfig::new(3).with_seed(seed)),
        )
    }

    #[test]
    fn routes_by_key_and_answers() {
        let mut sys = kv_sys(4, 1);
        let c = sys.add_client(0);
        let mut ids = Vec::new();
        for i in 0..32 {
            ids.push(sys.submit(c, KvOp::put(format!("k{i}"), format!("v{i}")), &[], false));
        }
        sys.run_until_quiescent();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(sys.response(*id), Some(&KvValue::Ack), "op {i}");
        }
        let loads = sys.shard_loads();
        assert_eq!(loads.iter().sum::<usize>(), 32);
        assert!(
            loads.iter().all(|l| *l > 0),
            "32 keys must spread over 4 shards: {loads:?}"
        );
    }

    #[test]
    fn same_key_same_shard_preserves_order_semantics() {
        let mut sys = kv_sys(8, 2);
        let c = sys.add_client(0);
        let put = sys.submit(c, KvOp::put("x", "1"), &[], false);
        let overwrite = sys.submit(c, KvOp::put("x", "2"), &[put], false);
        let get = sys.submit(c, KvOp::get("x"), &[overwrite], false);
        sys.run_until_quiescent();
        assert_eq!(sys.response(get), Some(&KvValue::Value(Some("2".into()))));
    }

    #[test]
    fn cross_shard_prev_defers_until_foreign_response() {
        let mut sys = kv_sys(4, 3);
        let c = sys.add_client(0);
        // Find two keys on different shards.
        let router = sys.router();
        let (ka, kb) = {
            let a = "a".to_string();
            let b = (0..100)
                .map(|i| format!("b{i}"))
                .find(|k| router.shard_of_key(k) != router.shard_of_key(&a))
                .expect("some key lands elsewhere");
            (a, b)
        };
        let wa = sys.submit(c, KvOp::put(&ka, "1"), &[], false);
        let wb = sys.submit(c, KvOp::put(&kb, "2"), &[wa], false);
        // wb is deferred until wa is answered.
        assert_eq!(sys.placement(wb), Some((router.shard_of_key(&kb), None)));
        sys.run_until_quiescent();
        let (_, local) = sys.placement(wb).expect("placed");
        assert!(local.is_some(), "deferred op must eventually release");
        assert_eq!(sys.response(wb), Some(&KvValue::Ack));
        // The dependent's release happened at-or-after the foreign response.
        assert_eq!(sys.response(wa), Some(&KvValue::Ack));
    }

    #[test]
    fn transitive_prev_survives_foreign_hop() {
        use esds_alg::RelayPolicy;
        // Chain A (shard s) ← B (foreign shard) ← C (shard s). Dropping
        // B's edge naively would also drop C's transitive ordering after
        // A. Slow gossip plus a round-robin relay places C's request on a
        // replica of s that has NOT seen A yet — only the inherited prev
        // constraint makes that replica defer C until gossip delivers A.
        let shard_cfg = SystemConfig::new(3)
            .with_seed(9)
            .with_gossip_interval(SimDuration::from_millis(500))
            .with_relay(RelayPolicy::RoundRobin);
        let mut sys = ShardedSimSystem::new(KvStore, ShardedSystemConfig::new(4, shard_cfg));
        let c = sys.add_client(0);
        let router = sys.router();
        let ka = "a".to_string();
        let kb = (0..100)
            .map(|i| format!("b{i}"))
            .find(|k| router.shard_of_key(k) != router.shard_of_key(&ka))
            .expect("some key lands elsewhere");
        let a = sys.submit(c, KvOp::put(&ka, "1"), &[], false);
        let b = sys.submit(c, KvOp::put(&kb, "2"), &[a], false);
        let read = sys.submit(c, KvOp::get(&ka), &[b], false);
        // Fine-grained slices so B and C release long before the first
        // gossip round (t = 500 ms) can propagate A within shard s.
        for _ in 0..10 {
            sys.run_for(SimDuration::from_millis(15));
        }
        sys.run_until_quiescent();
        assert_eq!(
            sys.response(read),
            Some(&KvValue::Value(Some("1".into()))),
            "a read ordered after the write through a foreign hop must see it"
        );
    }

    #[test]
    fn chained_cross_shard_deps_release_in_order() {
        let mut sys = kv_sys(2, 4);
        let c = sys.add_client(0);
        let mut prev: Vec<ShardedOpId> = Vec::new();
        let mut ids = Vec::new();
        for i in 0..10 {
            let id = sys.submit(c, KvOp::put(format!("k{i}"), format!("{i}")), &prev, false);
            prev = vec![id];
            ids.push(id);
        }
        sys.run_until_quiescent();
        assert_eq!(sys.completed_count(), 10);
        for id in ids {
            assert_eq!(sys.response(id), Some(&KvValue::Ack));
        }
    }

    #[test]
    fn strict_ops_stabilize_within_their_shard() {
        let mut sys = kv_sys(4, 5);
        let c = sys.add_client(0);
        let put = sys.submit(c, KvOp::put("k", "v"), &[], true);
        sys.run_until_quiescent();
        assert_eq!(sys.response(put), Some(&KvValue::Ack));
        // Every shard's replica group individually converged.
        for s in sys.shards() {
            assert!(check_converged(&s.local_orders(), &s.replica_states()).is_ok());
        }
    }

    #[test]
    fn whole_object_query_gathers_union_across_shards() {
        // Regression pin for the PR 2–5 bug: `Keys` used to route to the
        // HOME_SLOT owner and return only that shard's slice. Reverting
        // scatter-gather (keyless → home shard) makes this fail: 32 keys
        // spread over 4 shards, and the home shard holds only ~a quarter
        // of them.
        let mut sys = kv_sys(4, 6);
        let c = sys.add_client(0);
        let mut expect: Vec<String> = Vec::new();
        for i in 0..32 {
            let k = format!("k{i}");
            sys.submit(c, KvOp::put(&k, "v"), &[], false);
            expect.push(k);
        }
        expect.sort();
        let keys = sys.submit(c, KvOp::Keys, &[], false);
        sys.run_until_quiescent();
        let loads = sys.shard_loads();
        assert!(
            loads.iter().all(|l| *l > 0),
            "precondition: every shard must hold some keys: {loads:?}"
        );
        let (subs, frontier) = sys.gather_detail(keys).expect("scattered");
        assert_eq!(subs.len(), 4, "one sub-operation per involved shard");
        assert!(frontier.is_empty(), "eventual gather takes no barrier");
        assert_eq!(
            sys.response(keys),
            Some(&KvValue::Keys(expect)),
            "a whole-object query must return the union of every shard's slice"
        );
    }

    #[test]
    fn barrier_strict_keys_is_exact_and_cut_checks() {
        use esds_spec::{check_barrier_cut, ShardBarrier};
        let mut sys = kv_sys(4, 21);
        let c = sys.add_client(0);
        let mut expect: Vec<String> = Vec::new();
        for i in 0..24 {
            let k = format!("k{i}");
            sys.submit(c, KvOp::put(&k, "v"), &[], i % 5 == 0);
            expect.push(k);
        }
        expect.sort();
        // Everything answered before the query is requested: barrier
        // strictness must make the answer exactly the full key set.
        sys.run_until_quiescent();
        let keys = sys.submit(c, KvOp::Keys, &[], true);
        sys.run_until_quiescent();
        assert_eq!(sys.response(keys), Some(&KvValue::Keys(expect)));
        let (subs, frontier) = sys.gather_detail(keys).expect("scattered");
        assert_eq!(subs.len(), 4);
        assert_eq!(frontier.len(), 4, "barrier snapshots every involved shard");
        assert!(
            frontier.values().any(|f| !f.is_empty()),
            "an answered workload must leave a nonempty frontier somewhere"
        );
        // The conformance predicate: each sub-op after its shard's whole
        // frontier in that shard's eventual order.
        for (shard, f) in frontier {
            let b = ShardBarrier {
                shard: *shard,
                frontier: f.clone(),
                sub: subs[shard],
            };
            let order = sys.shards()[*shard as usize].minlabel_order();
            assert_eq!(check_barrier_cut(&b, &order), vec![], "shard {shard}");
        }
    }

    #[test]
    fn gather_defers_while_migration_active() {
        // The keyless/flip race (satellite of ISSUE 8): a whole-object
        // query must never race a routing-table flip — it defers until
        // the migration completes, then gathers over the *new* shard
        // set, seeing every migrated key exactly once.
        let mut sys = kv_sys(2, 23);
        let c = sys.add_client(0);
        let mut expect: Vec<String> = Vec::new();
        for i in 0..20 {
            let k = format!("k{i}");
            sys.submit(c, KvOp::put(&k, "v"), &[], false);
            expect.push(k);
        }
        expect.sort();
        sys.run_for(SimDuration::from_millis(40));
        sys.begin_add_shard();
        assert!(sys.migration_active());
        let keys = sys.submit(c, KvOp::Keys, &[], true);
        assert!(
            sys.gather_detail(keys).is_none(),
            "a gather must not scatter mid-migration"
        );
        sys.run_until_quiescent();
        assert_eq!(sys.table_version(), 1);
        let (subs, _) = sys.gather_detail(keys).expect("scattered after the flip");
        assert_eq!(
            subs.len(),
            3,
            "the deferred gather must cover the post-flip shard set"
        );
        assert_eq!(sys.response(keys), Some(&KvValue::Keys(expect)));
    }

    #[test]
    fn gather_participates_in_prev_both_directions() {
        let mut sys = kv_sys(4, 25);
        let c = sys.add_client(0);
        // Writes on (at least) two different shards, unanswered when the
        // gather is requested, ordered before it via prev.
        let a = sys.submit(c, KvOp::put("a", "1"), &[], false);
        let b = sys.submit(c, KvOp::put("b0", "2"), &[], false);
        let keys = sys.submit(c, KvOp::Keys, &[a, b], false);
        // And a dependent ordered after the gather.
        let after = sys.submit(c, KvOp::put("c", "3"), &[keys], false);
        sys.run_until_quiescent();
        let KvValue::Keys(ks) = sys.response(keys).expect("answered") else {
            panic!("wrong value kind");
        };
        assert!(
            ks.contains(&"a".to_string()),
            "prev write a missing: {ks:?}"
        );
        assert!(
            ks.contains(&"b0".to_string()),
            "prev write b missing: {ks:?}"
        );
        assert_eq!(sys.response(after), Some(&KvValue::Ack));
    }

    #[test]
    fn ungatherable_keyless_ops_still_route_home() {
        use esds_core::SerialDataType;
        // A keyless operator without a merge keeps the legacy home-slot
        // routing (the sim's document-and-route analog of the wire
        // layer's typed rejection).
        #[derive(Clone)]
        struct NoMerge;
        #[derive(Clone, PartialEq, Debug)]
        enum NmOp {
            Touch(String),
            Whole,
        }
        impl SerialDataType for NoMerge {
            type State = u64;
            type Operator = NmOp;
            type Value = u64;
            fn initial_state(&self) -> u64 {
                0
            }
            fn apply(&self, s: &u64, _op: &NmOp) -> (u64, u64) {
                (s + 1, s + 1)
            }
        }
        impl esds_core::KeyedDataType for NoMerge {
            fn shard_key<'a>(&self, op: &'a NmOp) -> Option<&'a str> {
                match op {
                    NmOp::Touch(k) => Some(k),
                    NmOp::Whole => None,
                }
            }
        }
        let cfg = ShardedSystemConfig::new(4, SystemConfig::new(2).with_seed(27));
        let mut sys = ShardedSimSystem::new(NoMerge, cfg);
        let c = sys.add_client(0);
        let t = sys.submit(c, NmOp::Touch("x".into()), &[], false);
        let w = sys.submit(c, NmOp::Whole, &[t], false);
        assert_eq!(
            sys.placement(t).map(|(s, _)| s),
            Some(sys.router().shard_of_key("x"))
        );
        assert_eq!(
            sys.placement(w).map(|(s, _)| s),
            Some(sys.router().table().shard_of_slot(esds_core::HOME_SLOT))
        );
        sys.run_until_quiescent();
        assert!(sys.gather_detail(w).is_none());
        assert!(sys.response(w).is_some());
    }

    #[test]
    fn single_key_type_occupies_one_shard() {
        let cfg = ShardedSystemConfig::new(4, SystemConfig::new(2).with_seed(7));
        let mut sys = ShardedSimSystem::new(Bank, cfg);
        let c = sys.add_client(0);
        let d = sys.submit(c, BankOp::Deposit(100), &[], false);
        let w = sys.submit(c, BankOp::Withdraw(40), &[d], true);
        let b = sys.submit(c, BankOp::Balance, &[w], false);
        sys.run_until_quiescent();
        assert_eq!(sys.response(w), Some(&BankValue::Withdrawn(true)));
        assert_eq!(sys.response(b), Some(&BankValue::Balance(60)));
        let loads = sys.shard_loads();
        assert_eq!(
            loads.iter().filter(|l| **l > 0).count(),
            1,
            "an unkeyed-state bank never splits: {loads:?}"
        );
    }

    #[test]
    fn deterministic_under_same_seed() {
        let run = |seed: u64| {
            let mut sys = kv_sys(3, seed);
            let c = sys.add_client(0);
            let ids: Vec<_> = (0..12)
                .map(|i| sys.submit(c, KvOp::put(format!("k{i}"), "v"), &[], i % 4 == 0))
                .collect();
            sys.run_until_quiescent();
            (sys.now(), ids.len(), sys.completed_count())
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    #[should_panic(expected = "never submitted")]
    fn unknown_prev_rejected() {
        let mut sys = kv_sys(2, 8);
        let c = sys.add_client(0);
        let ghost = ShardedOpId::new(c, 99);
        let _ = sys.submit(c, KvOp::put("k", "v"), &[ghost], false);
    }

    #[test]
    fn submit_at_schedules_release() {
        let mut sys = kv_sys(2, 9);
        let c = sys.add_client(0);
        let at = SimTime::from_millis(120);
        let id = sys.submit_at(at, c, KvOp::put("k", "v"), &[], false);
        // Held in the routing layer until `at`.
        assert_eq!(sys.placement(id).map(|(_, l)| l), Some(None));
        sys.run_until(SimTime::from_millis(100));
        assert_eq!(sys.placement(id).map(|(_, l)| l), Some(None));
        sys.run_until_quiescent();
        let (submitted, responded) = sys.op_timing(id).expect("released");
        assert_eq!(submitted, at, "request must enter the network at `at`");
        assert!(responded.is_some());
        assert_eq!(sys.response(id), Some(&KvValue::Ack));
    }

    // ------------------------------------------------------------------
    // Slot migration
    // ------------------------------------------------------------------

    /// Keys of `sys`'s key universe that live on migrating vs staying
    /// slots under the current table.
    fn keys_by_slot_move(
        sys: &ShardedSimSystem<KvStore>,
        plan_slots: &BTreeSet<u16>,
        n: usize,
    ) -> (Vec<String>, Vec<String>) {
        let router = sys.router();
        let mut moving = Vec::new();
        let mut staying = Vec::new();
        for i in 0..n {
            let k = format!("k{i}");
            if plan_slots.contains(&router.slot_of_key(&k)) {
                moving.push(k);
            } else {
                staying.push(k);
            }
        }
        (moving, staying)
    }

    #[test]
    fn add_shard_hands_off_state_and_serves_reads() {
        let mut sys = kv_sys(2, 11);
        let c = sys.add_client(0);
        // Populate 40 keys, some strict.
        let mut writes = Vec::new();
        for i in 0..40 {
            writes.push(sys.submit(
                c,
                KvOp::put(format!("k{i}"), format!("v{i}")),
                &[],
                i % 7 == 0,
            ));
        }
        sys.run_for(SimDuration::from_millis(50));
        // Begin the migration mid-flight; submissions keep coming.
        let plan = MigrationPlan::add_shard(sys.router().table());
        let plan_slots = plan.slots();
        sys.begin_migration(plan);
        assert!(sys.migration_active());
        let (moving, _) = keys_by_slot_move(&sys, &plan_slots, 40);
        assert!(!moving.is_empty(), "some key must migrate");
        // Reads of migrating keys submitted during the freeze are queued,
        // not rejected, and answered by the NEW owner after the flip.
        let mut frozen_reads = Vec::new();
        for k in &moving {
            frozen_reads.push((k.clone(), sys.submit(c, KvOp::get(k), &[], false)));
        }
        sys.run_until_quiescent();
        assert!(!sys.migration_active());
        assert_eq!(sys.table_version(), 1);
        assert_eq!(sys.n_shards(), 3);
        for w in writes {
            assert_eq!(sys.response(w), Some(&KvValue::Ack));
        }
        let router = sys.router();
        for (k, id) in frozen_reads {
            let i: usize = k[1..].parse().unwrap();
            assert_eq!(
                sys.response(id),
                Some(&KvValue::Value(Some(format!("v{i}")))),
                "read of migrated key {k} lost the handed-off state"
            );
            let (shard, local) = sys.placement(id).expect("placed");
            assert!(local.is_some());
            assert_eq!(shard, 2, "migrated key {k} must be served by the new shard");
            assert_eq!(router.shard_of_key(&k), 2);
        }
        // And post-migration writes/reads on migrated keys work end-to-end.
        let k = &moving[0];
        let w2 = sys.submit(c, KvOp::put(k, "fresh"), &[], false);
        let r2 = sys.submit(c, KvOp::get(k), &[w2], false);
        sys.run_until_quiescent();
        assert_eq!(
            sys.response(r2),
            Some(&KvValue::Value(Some("fresh".into())))
        );
    }

    #[test]
    fn drain_shard_relocates_its_keyspace() {
        let mut sys = kv_sys(3, 13);
        let c = sys.add_client(0);
        for i in 0..30 {
            sys.submit(c, KvOp::put(format!("k{i}"), format!("v{i}")), &[], false);
        }
        sys.run_for(SimDuration::from_millis(60));
        sys.begin_drain_shard(1);
        sys.run_until_quiescent();
        assert!(!sys.migration_active());
        let router = sys.router();
        assert!(
            router.table().slots_of(1).is_empty(),
            "shard 1 still owns slots"
        );
        // Every key is still readable, none is routed to the drained shard.
        let mut reads = Vec::new();
        for i in 0..30 {
            reads.push((i, sys.submit(c, KvOp::get(format!("k{i}")), &[], false)));
        }
        sys.run_until_quiescent();
        for (i, id) in reads {
            let (shard, _) = sys.placement(id).expect("placed");
            assert_ne!(shard, 1, "k{i} still routed to the drained shard");
            assert_eq!(
                sys.response(id),
                Some(&KvValue::Value(Some(format!("v{i}")))),
                "k{i} lost during drain"
            );
        }
    }

    #[test]
    fn migration_waits_for_partitioned_source_replica() {
        use crate::system::FaultEvent;
        use esds_core::ReplicaId;
        let shard_cfg = SystemConfig::new(3)
            .with_seed(17)
            .with_retry(SimDuration::from_millis(40));
        let mut sys = ShardedSimSystem::new(KvStore, ShardedSystemConfig::new(2, shard_cfg));
        let c = sys.add_client(0);
        let mut ids = Vec::new();
        for i in 0..12 {
            ids.push(sys.submit(c, KvOp::put(format!("k{i}"), "v"), &[], false));
        }
        sys.run_for(SimDuration::from_millis(30));
        // Isolate a replica of shard 0: its slots cannot stabilize, so a
        // migration touching them must hold.
        let t = sys.now();
        sys.shard_mut(0).schedule_fault(
            t + SimDuration::from_millis(1),
            FaultEvent::Isolate(ReplicaId(2)),
        );
        sys.shard_mut(0).schedule_fault(
            t + SimDuration::from_millis(400),
            FaultEvent::Reconnect(ReplicaId(2)),
        );
        sys.run_for(SimDuration::from_millis(20));
        sys.begin_add_shard();
        // While the partition lasts, the migration must not complete
        // (shard 0's ops cannot become stable everywhere).
        sys.run_until(t + SimDuration::from_millis(300));
        assert!(
            sys.migration_active(),
            "handoff must wait out the partition"
        );
        // After reconnection it completes and everything is answered.
        sys.run_until_quiescent();
        assert!(!sys.migration_active());
        for id in ids {
            assert_eq!(sys.response(id), Some(&KvValue::Ack));
        }
    }

    #[test]
    fn back_to_back_migrations_wait_for_replayed_prefix() {
        // Regression (found in review): the stability gate used to scan
        // only the client ticket map, so a second migration moving a
        // just-moved slot could replay from the new owner *before* the
        // previous handoff's replayed prefix had been processed there —
        // silently dropping the slot's state. The gate must consult the
        // source group's own request log, which includes replays.
        let mut sys = kv_sys(2, 29);
        let c = sys.add_client(0);
        for i in 0..24 {
            sys.submit(c, KvOp::put(format!("k{i}"), format!("v{i}")), &[], false);
        }
        sys.run_until_quiescent();
        // First handoff: completes synchronously (everything stable),
        // replaying the moved slots onto the brand-new shard 2 — whose
        // replica group has not even processed the requests yet.
        sys.begin_add_shard();
        assert!(!sys.migration_active(), "quiescent handoff is immediate");
        // Immediately drain shard 2, with NO quiescing in between: the
        // gate must hold until shard 2 has answered and stabilized the
        // replayed prefix it is about to pass on.
        sys.begin_drain_shard(2);
        sys.run_until_quiescent();
        assert_eq!(sys.table_version(), 2);
        let mut reads = Vec::new();
        for i in 0..24 {
            reads.push((i, sys.submit(c, KvOp::get(format!("k{i}")), &[], false)));
        }
        sys.run_until_quiescent();
        for (i, id) in reads {
            let (shard, _) = sys.placement(id).expect("placed");
            assert_ne!(shard, 2, "k{i} still routed to the drained shard");
            assert_eq!(
                sys.response(id),
                Some(&KvValue::Value(Some(format!("v{i}")))),
                "k{i} lost in back-to-back handoffs"
            );
        }
    }

    #[test]
    fn drain_back_to_former_owner_does_not_double_apply() {
        // Regression (found in review): a drain can return a slot to a
        // former owner whose group still holds the slot's original
        // history. Replaying the full timeline there would re-apply it —
        // invisible for last-writer-wins kv, but a bank deposit counted
        // twice. Only the timeline suffix beyond the shared prefix may
        // be replayed.
        let cfg = ShardedSystemConfig::new(2, SystemConfig::new(2).with_seed(33));
        let mut sys = ShardedSimSystem::new(Bank, cfg);
        let c = sys.add_client(0);
        let d = sys.submit(c, BankOp::Deposit(50), &[], false);
        sys.run_until_quiescent();
        let (owner, _) = sys.placement(d).expect("placed");
        let other = 1 - owner;
        // Send the bank's slot away, deposit more there, then send it
        // home: the former owner must apply only the new deposit.
        sys.begin_drain_shard(owner);
        sys.run_until_quiescent();
        let d2 = sys.submit(c, BankOp::Deposit(25), &[], false);
        sys.run_until_quiescent();
        assert_eq!(sys.placement(d2).map(|(s, _)| s), Some(other));
        sys.begin_drain_shard(other);
        sys.run_until_quiescent();
        assert_eq!(sys.table_version(), 2);
        let b = sys.submit(c, BankOp::Balance, &[], false);
        sys.run_until_quiescent();
        assert_eq!(sys.placement(b).map(|(s, _)| s), Some(owner));
        assert_eq!(
            sys.response(b),
            Some(&BankValue::Balance(75)),
            "history double-applied on return to the former owner"
        );
    }

    #[test]
    fn migration_waits_for_crashed_replica_in_idle_source() {
        // Regression (found in review): a source group with a crashed
        // replica but *no operations on the migrating slots* used to
        // pass the stability gate vacuously, then panic extracting its
        // stable prefix. The gate must treat liveness of every involved
        // group as part of the handoff precondition and simply wait.
        use crate::system::FaultEvent;
        use esds_core::ReplicaId;
        let cfg = ShardedSystemConfig::new(
            2,
            SystemConfig::new(3)
                .with_seed(37)
                .with_retry(SimDuration::from_millis(40)),
        );
        let mut sys = ShardedSimSystem::new(KvStore, cfg);
        let c = sys.add_client(0);
        // Route all traffic to shard 0's keyspace: shard 1 stays empty.
        let router = sys.router();
        let keys: Vec<String> = (0..200)
            .map(|i| format!("k{i}"))
            .filter(|k| router.shard_of_key(k) == 0)
            .take(6)
            .collect();
        for k in &keys {
            sys.submit(c, KvOp::put(k, "v"), &[], false);
        }
        sys.run_until_quiescent();
        // Crash a replica of the idle shard 1, then start a migration
        // that donates some of shard 1's (empty) slots.
        let t = sys.now();
        sys.shard_mut(1).schedule_fault(
            t + SimDuration::from_millis(1),
            FaultEvent::Crash(ReplicaId(2)),
        );
        sys.run_for(SimDuration::from_millis(10));
        sys.begin_add_shard();
        sys.run_for(SimDuration::from_millis(200));
        assert!(
            sys.migration_active(),
            "handoff must wait out the crashed replica, not panic"
        );
        let recover_at = sys.now() + SimDuration::from_millis(1);
        sys.shard_mut(1)
            .schedule_fault(recover_at, FaultEvent::Recover(ReplicaId(2)));
        sys.run_until_quiescent();
        assert!(!sys.migration_active());
        assert_eq!(sys.table_version(), 1);
        for k in &keys {
            let id = sys.submit(c, KvOp::get(k), &[], false);
            sys.run_until_quiescent();
            assert_eq!(sys.response(id), Some(&KvValue::Value(Some("v".into()))));
        }
    }

    #[test]
    fn sequential_migrations_compound() {
        // Add a shard, then drain the original home shard: slots that
        // migrated once migrate again, replaying the replayed prefix.
        let mut sys = kv_sys(2, 19);
        let c = sys.add_client(0);
        for i in 0..20 {
            sys.submit(c, KvOp::put(format!("k{i}"), format!("v{i}")), &[], false);
        }
        sys.run_for(SimDuration::from_millis(40));
        sys.begin_add_shard();
        sys.run_until_quiescent();
        assert_eq!(sys.table_version(), 1);
        sys.begin_drain_shard(0);
        sys.run_until_quiescent();
        assert_eq!(sys.table_version(), 2);
        let mut reads = Vec::new();
        for i in 0..20 {
            reads.push((i, sys.submit(c, KvOp::get(format!("k{i}")), &[], false)));
        }
        sys.run_until_quiescent();
        for (i, id) in reads {
            let (shard, _) = sys.placement(id).expect("placed");
            assert_ne!(shard, 0);
            assert_eq!(
                sys.response(id),
                Some(&KvValue::Value(Some(format!("v{i}")))),
                "k{i} lost across two migrations"
            );
        }
    }
}

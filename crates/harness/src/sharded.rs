//! A simulated **sharded** ESDS deployment: `S` independent replica
//! groups, each an unmodified [`SimSystem`], behind one routing layer.
//!
//! The keyspace of a [`KeyedDataType`] is hash-partitioned by a
//! [`ShardRouter`]; each shard runs the full Section 6 protocol (gossip,
//! labels, stabilization) over its slice only, so aggregate throughput
//! scales with the shard count instead of plateauing at one group's
//! capacity. Operations on different shards touch disjoint state and
//! commute trivially — the paper's Section 10 commutativity insight
//! applied at the partition level.
//!
//! ## Cross-shard `prev` constraints
//!
//! A descriptor's `prev` set may name operations that were routed to
//! *other* shards. Within a shard, `prev` is enforced by the replica
//! protocol as usual. Across shards, [`ShardedSimSystem::submit`] holds
//! the dependent operation back until every foreign operation in its
//! constraint closure has been **responded to** by its own group; only
//! then is the operation released to its shard, carrying the same-shard
//! frontier of its `prev` closure (see [`esds_core::shard_frontier`]). This
//! preserves the client-observable guarantee (a response to the
//! predecessor exists before the dependent is even requested) while the
//! state-level constraint is vacuous: different shards are disjoint
//! objects, so every cross-shard pair of operations is independent.
//!
//! Shards advance in lockstep: [`ShardedSimSystem::run_until`] drives
//! every per-shard event queue to the same virtual instant, releasing
//! deferred operations between slices.

use std::collections::{BTreeMap, VecDeque};

use esds_core::{ClientId, KeyedDataType, OpId, ShardRouter, ShardedOpId};
use esds_sim::{derive_seed, SimDuration, SimTime};

use crate::system::{SimSystem, SystemConfig};

/// Configuration of a sharded simulated deployment.
#[derive(Clone, Debug)]
pub struct ShardedSystemConfig {
    /// Number of independent replica groups.
    pub n_shards: usize,
    /// Per-shard configuration template. Each shard derives its own
    /// channel/workload seed from `shard.seed` and its shard index, so
    /// shards are deterministic but not identical.
    pub shard: SystemConfig,
}

impl ShardedSystemConfig {
    /// A sharded deployment of `n_shards` groups built from one template.
    pub fn new(n_shards: usize, shard: SystemConfig) -> Self {
        ShardedSystemConfig { n_shards, shard }
    }
}

/// A deferred submission waiting for foreign-shard predecessors.
struct PendingOp<T: KeyedDataType> {
    client: ClientId,
    shard: u32,
    op: T::Operator,
    prev: Vec<ShardedOpId>,
    strict: bool,
}

/// Where a globally-identified operation currently is.
enum TicketState<T: KeyedDataType> {
    /// Held back by cross-shard `prev` constraints.
    Pending(PendingOp<T>),
    /// Submitted to its shard under a local identifier. The global `prev`
    /// set is retained so that later dependents can inherit this
    /// operation's same-shard predecessors through foreign hops (see
    /// [`ShardedSimSystem::local_frontier`]).
    Submitted {
        shard: u32,
        local: OpId,
        prev: Vec<ShardedOpId>,
    },
}

/// A complete sharded simulated deployment: `S` independent
/// [`SimSystem`]s multiplexed behind one submit/response API.
///
/// Clients exist in every shard (their per-shard front ends are created
/// together, so one [`ClientId`] is valid everywhere); each submission is
/// routed to the shard owning its operator's key and identified globally
/// by a [`ShardedOpId`].
///
/// # Examples
///
/// ```
/// use esds_harness::{ShardedSimSystem, ShardedSystemConfig, SystemConfig};
/// use esds_datatypes::{KvOp, KvStore, KvValue};
///
/// let cfg = ShardedSystemConfig::new(4, SystemConfig::new(3).with_seed(7));
/// let mut sys = ShardedSimSystem::new(KvStore, cfg);
/// let c = sys.add_client(0);
/// let put = sys.submit(c, KvOp::put("user:1", "ada"), &[], false);
/// // The read is constrained after the put; if the two keys hash to
/// // different shards, the router waits for the put's response first.
/// let get = sys.submit(c, KvOp::get("user:1"), &[put], false);
/// sys.run_until_quiescent();
/// assert_eq!(sys.response(get), Some(&KvValue::Value(Some("ada".into()))));
/// ```
pub struct ShardedSimSystem<T: KeyedDataType + Clone> {
    dt: T,
    router: ShardRouter,
    shards: Vec<SimSystem<T>>,
    tickets: BTreeMap<ShardedOpId, TicketState<T>>,
    /// Deferred submissions in FIFO order (release preserves per-client
    /// submission order whenever constraints allow).
    deferred: VecDeque<ShardedOpId>,
    next_seq: BTreeMap<ClientId, u64>,
}

impl<T: KeyedDataType + Clone> ShardedSimSystem<T> {
    /// Builds `config.n_shards` independent replica groups and a router
    /// over them.
    ///
    /// # Panics
    ///
    /// Panics if `n_shards` is zero or the per-shard template is invalid
    /// (see [`SimSystem::new`]).
    pub fn new(dt: T, config: ShardedSystemConfig) -> Self {
        assert!(config.n_shards > 0, "need at least one shard");
        let shards = (0..config.n_shards)
            .map(|s| {
                let mut cfg = config.shard.clone();
                cfg.seed = derive_seed(config.shard.seed, 0x5A4D ^ s as u64);
                SimSystem::new(dt.clone(), cfg)
            })
            .collect();
        ShardedSimSystem {
            router: ShardRouter::new(config.n_shards as u32),
            dt,
            shards,
            tickets: BTreeMap::new(),
            deferred: VecDeque::new(),
            next_seq: BTreeMap::new(),
        }
    }

    /// The router (key → shard map).
    pub fn router(&self) -> ShardRouter {
        self.router
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard systems, for inspection (stats, states, orders).
    pub fn shards(&self) -> &[SimSystem<T>] {
        &self.shards
    }

    /// Current virtual time (shards run in lockstep; this is the frontier).
    pub fn now(&self) -> SimTime {
        self.shards
            .iter()
            .map(|s| s.now())
            .max()
            .expect("at least one shard")
    }

    /// Adds a client to **every** shard, returning its (shared) identity.
    pub fn add_client(&mut self, hint: u32) -> ClientId {
        let mut ids = self.shards.iter_mut().map(|s| s.add_client(hint));
        let c = ids.next().expect("at least one shard");
        assert!(
            ids.all(|i| i == c),
            "per-shard client ids diverged; add clients only through ShardedSimSystem"
        );
        self.next_seq.insert(c, 0);
        c
    }

    /// Submits an operation *now*. Routes it by its shard key, translates
    /// the same-shard part of `prev` to local identifiers, and defers the
    /// submission while any foreign-shard predecessor is still
    /// unanswered (see the module docs).
    ///
    /// # Panics
    ///
    /// Panics if `client` is unknown or `prev` names an identifier never
    /// returned by this system (client well-formedness, paper §4).
    pub fn submit(
        &mut self,
        client: ClientId,
        op: T::Operator,
        prev: &[ShardedOpId],
        strict: bool,
    ) -> ShardedOpId {
        let seq = self
            .next_seq
            .get_mut(&client)
            .expect("unknown client; use add_client");
        let gid = ShardedOpId::new(client, *seq);
        *seq += 1;
        let shard = self.router.route(&self.dt, &op);
        let pending = PendingOp {
            client,
            shard,
            op,
            prev: prev.to_vec(),
            strict,
        };
        if self.is_ready(&pending) {
            self.release(gid, pending);
        } else {
            self.tickets.insert(gid, TicketState::Pending(pending));
            self.deferred.push_back(gid);
        }
        gid
    }

    /// Whether `p` may be handed to its shard: every `prev` entry has
    /// itself been released, and every **foreign** operation reachable in
    /// the constraint closure (the same nodes [`esds_core::shard_frontier`]
    /// visits: descend through foreign nodes, stop at same-shard ones) is
    /// answered.
    ///
    /// Direct answeredness does *not* propagate transitively — a foreign
    /// predecessor can be answered by a replica that learned *its* own
    /// predecessors through gossip before those were answered — so the
    /// walk checks every visited foreign node explicitly, exactly as the
    /// threaded `ShardedClient` awaits each one.
    fn is_ready(&self, p: &PendingOp<T>) -> bool {
        let mut visited: std::collections::BTreeSet<ShardedOpId> =
            std::collections::BTreeSet::new();
        let mut stack: Vec<ShardedOpId> = p.prev.clone();
        while let Some(g) = stack.pop() {
            if !visited.insert(g) {
                continue;
            }
            match self.tickets.get(&g) {
                None => panic!("prev {g} was never submitted to this system"),
                Some(TicketState::Pending(_)) => return false,
                Some(TicketState::Submitted { shard, local, prev }) => {
                    if *shard != p.shard {
                        if self.shards[*shard as usize].response(*local).is_none() {
                            return false;
                        }
                        stack.extend(prev.iter().copied());
                    }
                }
            }
        }
        true
    }

    /// The `prev` constraints to carry into shard `shard`: the local ids
    /// of every same-shard operation reachable from `prev` through
    /// foreign hops — [`esds_core::shard_frontier`] over the ticket map.
    /// Every foreign node the walk visits is already answered (checked
    /// over the same closure by [`ShardedSimSystem::is_ready`]), so only
    /// ordering must be inherited here, not awaited.
    fn local_frontier(&self, prev: &[ShardedOpId], shard: u32) -> Vec<OpId> {
        esds_core::shard_frontier(prev, shard, |g| {
            let Some(TicketState::Submitted {
                shard: s,
                local,
                prev,
            }) = self.tickets.get(&g)
            else {
                unreachable!("is_ready guarantees every predecessor is released");
            };
            (*s, *local, prev.clone())
        })
    }

    /// Hands a ready operation to its shard and records its placement.
    fn release(&mut self, gid: ShardedOpId, p: PendingOp<T>) {
        let local_prev = self.local_frontier(&p.prev, p.shard);
        let local = self.shards[p.shard as usize].submit(p.client, p.op, &local_prev, p.strict);
        self.tickets.insert(
            gid,
            TicketState::Submitted {
                shard: p.shard,
                local,
                prev: p.prev,
            },
        );
    }

    /// Releases every deferred operation whose predecessors are now
    /// satisfied, to fixpoint (one release can unblock another).
    fn pump(&mut self) {
        loop {
            let mut progressed = false;
            let mut still: VecDeque<ShardedOpId> = VecDeque::new();
            while let Some(gid) = self.deferred.pop_front() {
                let ready = match self.tickets.get(&gid) {
                    Some(TicketState::Pending(p)) => self.is_ready(p),
                    _ => unreachable!("deferred ticket must be pending"),
                };
                if !ready {
                    still.push_back(gid);
                    continue;
                }
                let Some(TicketState::Pending(p)) = self.tickets.remove(&gid) else {
                    unreachable!("checked above");
                };
                self.release(gid, p);
                progressed = true;
            }
            self.deferred = still;
            if !progressed || self.deferred.is_empty() {
                return;
            }
        }
    }

    /// Runs every shard to virtual time `t` in lockstep (slices of the
    /// gossip interval), releasing deferred submissions between slices.
    pub fn run_until(&mut self, t: SimTime) {
        let slice = self.shards[0].config().gossip_interval;
        loop {
            let now = self.now();
            if now >= t {
                return;
            }
            let target = (now + slice).min(t);
            for s in &mut self.shards {
                s.run_until(target);
            }
            self.pump();
        }
    }

    /// Runs for a span of virtual time.
    pub fn run_for(&mut self, d: SimDuration) {
        let t = self.now() + d;
        self.run_until(t);
    }

    /// Runs **one** event of shard `shard` and returns its report, then
    /// releases any deferred cross-shard submissions the event unblocked.
    /// `None` when that shard's queue is empty. This is the
    /// fine-grained stepping mode the per-shard
    /// [`crate::ConformanceObserver`]s need: each shard is an independent
    /// ESDS instance, so observing every shard's steps against its own
    /// `ESDS-II` automaton is exactly the sharded conformance statement.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn step_shard(&mut self, shard: usize) -> Option<crate::system::TimedStep<T>> {
        let out = self.shards[shard].step_one();
        self.pump();
        out
    }

    /// A live borrow view of shard `shard` for invariant/conformance
    /// checks (see [`SimSystem::view`]). `None` if a replica of that
    /// shard is crashed.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn shard_view(&self, shard: usize) -> Option<esds_alg::SystemView<'_, T>> {
        self.shards[shard].view()
    }

    /// Whether every submission has been released to its shard, answered,
    /// and stabilized within its group.
    pub fn is_converged(&self) -> bool {
        self.deferred.is_empty() && self.shards.iter().all(|s| s.is_converged())
    }

    /// Runs until converged or until `max` virtual time passes.
    ///
    /// # Errors
    ///
    /// Returns a description of what is still outstanding on timeout.
    pub fn run_until_converged(&mut self, max: SimTime) -> Result<SimTime, String> {
        while !self.is_converged() {
            if self.now() >= max {
                let mut parts: Vec<String> = Vec::new();
                if !self.deferred.is_empty() {
                    let held: Vec<String> = self.deferred.iter().map(|g| g.to_string()).collect();
                    parts.push(format!("{} deferred {held:?}", self.deferred.len()));
                }
                for (i, s) in self.shards.iter().enumerate() {
                    if !s.is_converged() {
                        let unanswered: Vec<String> = s
                            .op_times()
                            .iter()
                            .filter(|(_, t)| t.responded.is_none())
                            .map(|(id, _)| id.to_string())
                            .collect();
                        parts.push(format!("shard {i} unconverged (unanswered {unanswered:?})"));
                    }
                }
                return Err(format!("not converged by {max}: {}", parts.join("; ")));
            }
            let t = self.now() + self.shards[0].config().gossip_interval;
            self.run_until(t.min(max));
        }
        Ok(self.now())
    }

    /// Convenience wrapper: converge within a generous horizon.
    ///
    /// # Panics
    ///
    /// Panics if convergence is not reached (deterministic fault-free
    /// deployments always converge; prefer
    /// [`ShardedSimSystem::run_until_converged`] under faults).
    pub fn run_until_quiescent(&mut self) -> SimTime {
        let budget = self.shards[0].config().quiescence_budget(self.now());
        match self.run_until_converged(budget) {
            Ok(t) => t,
            Err(e) => panic!("run_until_quiescent: {e}"),
        }
    }

    /// Where `id` was routed: its shard and, once released, its local
    /// identifier within that shard.
    pub fn placement(&self, id: ShardedOpId) -> Option<(u32, Option<OpId>)> {
        match self.tickets.get(&id)? {
            TicketState::Pending(p) => Some((p.shard, None)),
            TicketState::Submitted { shard, local, .. } => Some((*shard, Some(*local))),
        }
    }

    /// The response delivered for `id`, if any.
    pub fn response(&self, id: ShardedOpId) -> Option<&T::Value> {
        match self.tickets.get(&id)? {
            TicketState::Pending { .. } => None,
            TicketState::Submitted { shard, local, .. } => {
                self.shards[*shard as usize].response(*local)
            }
        }
    }

    /// Total operations submitted through this system.
    pub fn submitted_count(&self) -> usize {
        self.tickets.len()
    }

    /// Total operations answered across all shards.
    pub fn completed_count(&self) -> usize {
        self.shards.iter().map(|s| s.completed_count()).sum()
    }

    /// The latest response-delivery instant across all shards (the
    /// completion time a throughput measurement should divide by).
    pub fn latest_response(&self) -> SimTime {
        self.shards
            .iter()
            .flat_map(|s| s.op_times().values())
            .filter_map(|t| t.responded)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Per-shard count of operations routed there (load-balance metric).
    pub fn shard_loads(&self) -> Vec<usize> {
        let mut loads = vec![0usize; self.shards.len()];
        for t in self.tickets.values() {
            let s = match t {
                TicketState::Pending(p) => p.shard,
                TicketState::Submitted { shard, .. } => *shard,
            };
            loads[s as usize] += 1;
        }
        loads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esds_datatypes::{Bank, BankOp, BankValue, KvOp, KvStore, KvValue};
    use esds_spec::check_converged;

    fn kv_sys(n_shards: usize, seed: u64) -> ShardedSimSystem<KvStore> {
        ShardedSimSystem::new(
            KvStore,
            ShardedSystemConfig::new(n_shards, SystemConfig::new(3).with_seed(seed)),
        )
    }

    #[test]
    fn routes_by_key_and_answers() {
        let mut sys = kv_sys(4, 1);
        let c = sys.add_client(0);
        let mut ids = Vec::new();
        for i in 0..32 {
            ids.push(sys.submit(c, KvOp::put(format!("k{i}"), format!("v{i}")), &[], false));
        }
        sys.run_until_quiescent();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(sys.response(*id), Some(&KvValue::Ack), "op {i}");
        }
        let loads = sys.shard_loads();
        assert_eq!(loads.iter().sum::<usize>(), 32);
        assert!(
            loads.iter().all(|l| *l > 0),
            "32 keys must spread over 4 shards: {loads:?}"
        );
    }

    #[test]
    fn same_key_same_shard_preserves_order_semantics() {
        let mut sys = kv_sys(8, 2);
        let c = sys.add_client(0);
        let put = sys.submit(c, KvOp::put("x", "1"), &[], false);
        let overwrite = sys.submit(c, KvOp::put("x", "2"), &[put], false);
        let get = sys.submit(c, KvOp::get("x"), &[overwrite], false);
        sys.run_until_quiescent();
        assert_eq!(sys.response(get), Some(&KvValue::Value(Some("2".into()))));
    }

    #[test]
    fn cross_shard_prev_defers_until_foreign_response() {
        let mut sys = kv_sys(4, 3);
        let c = sys.add_client(0);
        // Find two keys on different shards.
        let router = sys.router();
        let (ka, kb) = {
            let a = "a".to_string();
            let b = (0..100)
                .map(|i| format!("b{i}"))
                .find(|k| router.shard_of_key(k) != router.shard_of_key(&a))
                .expect("some key lands elsewhere");
            (a, b)
        };
        let wa = sys.submit(c, KvOp::put(&ka, "1"), &[], false);
        let wb = sys.submit(c, KvOp::put(&kb, "2"), &[wa], false);
        // wb is deferred until wa is answered.
        assert_eq!(sys.placement(wb), Some((router.shard_of_key(&kb), None)));
        sys.run_until_quiescent();
        let (_, local) = sys.placement(wb).expect("placed");
        assert!(local.is_some(), "deferred op must eventually release");
        assert_eq!(sys.response(wb), Some(&KvValue::Ack));
        // The dependent's release happened at-or-after the foreign response.
        assert_eq!(sys.response(wa), Some(&KvValue::Ack));
    }

    #[test]
    fn transitive_prev_survives_foreign_hop() {
        use esds_alg::RelayPolicy;
        // Chain A (shard s) ← B (foreign shard) ← C (shard s). Dropping
        // B's edge naively would also drop C's transitive ordering after
        // A. Slow gossip plus a round-robin relay places C's request on a
        // replica of s that has NOT seen A yet — only the inherited prev
        // constraint makes that replica defer C until gossip delivers A.
        let shard_cfg = SystemConfig::new(3)
            .with_seed(9)
            .with_gossip_interval(SimDuration::from_millis(500))
            .with_relay(RelayPolicy::RoundRobin);
        let mut sys = ShardedSimSystem::new(KvStore, ShardedSystemConfig::new(4, shard_cfg));
        let c = sys.add_client(0);
        let router = sys.router();
        let ka = "a".to_string();
        let kb = (0..100)
            .map(|i| format!("b{i}"))
            .find(|k| router.shard_of_key(k) != router.shard_of_key(&ka))
            .expect("some key lands elsewhere");
        let a = sys.submit(c, KvOp::put(&ka, "1"), &[], false);
        let b = sys.submit(c, KvOp::put(&kb, "2"), &[a], false);
        let read = sys.submit(c, KvOp::get(&ka), &[b], false);
        // Fine-grained slices so B and C release long before the first
        // gossip round (t = 500 ms) can propagate A within shard s.
        for _ in 0..10 {
            sys.run_for(SimDuration::from_millis(15));
        }
        sys.run_until_quiescent();
        assert_eq!(
            sys.response(read),
            Some(&KvValue::Value(Some("1".into()))),
            "a read ordered after the write through a foreign hop must see it"
        );
    }

    #[test]
    fn chained_cross_shard_deps_release_in_order() {
        let mut sys = kv_sys(2, 4);
        let c = sys.add_client(0);
        let mut prev: Vec<ShardedOpId> = Vec::new();
        let mut ids = Vec::new();
        for i in 0..10 {
            let id = sys.submit(c, KvOp::put(format!("k{i}"), format!("{i}")), &prev, false);
            prev = vec![id];
            ids.push(id);
        }
        sys.run_until_quiescent();
        assert_eq!(sys.completed_count(), 10);
        for id in ids {
            assert_eq!(sys.response(id), Some(&KvValue::Ack));
        }
    }

    #[test]
    fn strict_ops_stabilize_within_their_shard() {
        let mut sys = kv_sys(4, 5);
        let c = sys.add_client(0);
        let put = sys.submit(c, KvOp::put("k", "v"), &[], true);
        sys.run_until_quiescent();
        assert_eq!(sys.response(put), Some(&KvValue::Ack));
        // Every shard's replica group individually converged.
        for s in sys.shards() {
            assert!(check_converged(&s.local_orders(), &s.replica_states()).is_ok());
        }
    }

    #[test]
    fn keyless_ops_go_to_home_shard() {
        let mut sys = kv_sys(4, 6);
        let c = sys.add_client(0);
        let keys = sys.submit(c, KvOp::Keys, &[], false);
        assert_eq!(sys.placement(keys).map(|(s, _)| s), Some(0));
        sys.run_until_quiescent();
        assert!(matches!(sys.response(keys), Some(KvValue::Keys(_))));
    }

    #[test]
    fn single_key_type_occupies_one_shard() {
        let cfg = ShardedSystemConfig::new(4, SystemConfig::new(2).with_seed(7));
        let mut sys = ShardedSimSystem::new(Bank, cfg);
        let c = sys.add_client(0);
        let d = sys.submit(c, BankOp::Deposit(100), &[], false);
        let w = sys.submit(c, BankOp::Withdraw(40), &[d], true);
        let b = sys.submit(c, BankOp::Balance, &[w], false);
        sys.run_until_quiescent();
        assert_eq!(sys.response(w), Some(&BankValue::Withdrawn(true)));
        assert_eq!(sys.response(b), Some(&BankValue::Balance(60)));
        let loads = sys.shard_loads();
        assert_eq!(
            loads.iter().filter(|l| **l > 0).count(),
            1,
            "an unkeyed-state bank never splits: {loads:?}"
        );
    }

    #[test]
    fn deterministic_under_same_seed() {
        let run = |seed: u64| {
            let mut sys = kv_sys(3, seed);
            let c = sys.add_client(0);
            let ids: Vec<_> = (0..12)
                .map(|i| sys.submit(c, KvOp::put(format!("k{i}"), "v"), &[], i % 4 == 0))
                .collect();
            sys.run_until_quiescent();
            (sys.now(), ids.len(), sys.completed_count())
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    #[should_panic(expected = "never submitted")]
    fn unknown_prev_rejected() {
        let mut sys = kv_sys(2, 8);
        let c = sys.add_client(0);
        let ghost = ShardedOpId::new(c, 99);
        let _ = sys.submit(c, KvOp::put("k", "v"), &[ghost], false);
    }
}

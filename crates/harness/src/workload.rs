//! Workload generation for the experiments (paper §11.1).
//!
//! Cheiner's evaluation drives the service with a constant request
//! frequency per replica and a controlled percentage of strict requests.
//! [`OpenLoopWorkload`] reproduces that: each client submits operations at
//! a fixed period, with configurable strict and `prev`-dependency
//! fractions; [`OperatorSource`] implementations supply data-type-specific
//! operator mixes.

use esds_core::{ClientId, KeyedDataType, OpId, SerialDataType, ShardedOpId};
use esds_datatypes::{
    Counter, CounterOp, Directory, DirectoryOp, GSet, GSetOp, KvOp, KvStore, Register, RegisterOp,
};
use esds_sim::{derive_seed, SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::sharded::ShardedSimSystem;
use crate::system::SimSystem;

/// Supplies the operator stream of one workload.
pub trait OperatorSource<T: SerialDataType> {
    /// The operator for `client`'s `seq`-th operation.
    fn next_op(&mut self, client: ClientId, seq: u64) -> T::Operator;
}

/// Counter workload: reads with probability `read_fraction`, else
/// increments.
#[derive(Clone, Debug)]
pub struct CounterSource {
    /// Fraction of reads.
    pub read_fraction: f64,
    rng: SmallRng,
}

impl CounterSource {
    /// Creates a source with the given read mix.
    pub fn new(read_fraction: f64, seed: u64) -> Self {
        CounterSource {
            read_fraction,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl OperatorSource<Counter> for CounterSource {
    fn next_op(&mut self, _client: ClientId, _seq: u64) -> CounterOp {
        if self.rng.gen_bool(self.read_fraction) {
            CounterOp::Read
        } else {
            CounterOp::Increment(1)
        }
    }
}

/// Register workload: reads vs writes of small integers.
#[derive(Clone, Debug)]
pub struct RegisterSource {
    /// Fraction of reads.
    pub read_fraction: f64,
    rng: SmallRng,
}

impl RegisterSource {
    /// Creates a source with the given read mix.
    pub fn new(read_fraction: f64, seed: u64) -> Self {
        RegisterSource {
            read_fraction,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl OperatorSource<Register> for RegisterSource {
    fn next_op(&mut self, _client: ClientId, _seq: u64) -> RegisterOp {
        if self.rng.gen_bool(self.read_fraction) {
            RegisterOp::Read
        } else {
            RegisterOp::Write(self.rng.gen_range(0..1000))
        }
    }
}

/// Grow-only-set workload: membership queries vs adds over a small key
/// universe (fully commutative mutations — the §10.3 showcase).
#[derive(Clone, Debug)]
pub struct GSetSource {
    /// Fraction of queries.
    pub query_fraction: f64,
    /// Universe size.
    pub universe: u64,
    rng: SmallRng,
}

impl GSetSource {
    /// Creates a source over `universe` elements.
    pub fn new(query_fraction: f64, universe: u64, seed: u64) -> Self {
        GSetSource {
            query_fraction,
            universe,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl OperatorSource<GSet> for GSetSource {
    fn next_op(&mut self, _client: ClientId, _seq: u64) -> GSetOp {
        let e = self.rng.gen_range(0..self.universe);
        if self.rng.gen_bool(self.query_fraction) {
            GSetOp::Contains(e)
        } else {
            GSetOp::Add(e)
        }
    }
}

/// Key-value workload: gets vs puts over `keys` keys.
#[derive(Clone, Debug)]
pub struct KvSource {
    /// Fraction of gets.
    pub read_fraction: f64,
    /// Number of distinct keys.
    pub keys: u32,
    rng: SmallRng,
}

impl KvSource {
    /// Creates a source over `keys` keys.
    pub fn new(read_fraction: f64, keys: u32, seed: u64) -> Self {
        KvSource {
            read_fraction,
            keys,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl OperatorSource<KvStore> for KvSource {
    fn next_op(&mut self, _client: ClientId, seq: u64) -> KvOp {
        let k = format!("k{}", self.rng.gen_range(0..self.keys));
        if self.rng.gen_bool(self.read_fraction) {
            KvOp::Get(k)
        } else {
            KvOp::Put(k, format!("v{seq}"))
        }
    }
}

/// Directory-service workload (paper §11.2): query-dominated, occasional
/// name creation and attribute updates.
#[derive(Clone, Debug)]
pub struct DirectorySource {
    /// Fraction of lookups (the paper: "access … is dominated by queries").
    pub query_fraction: f64,
    /// Number of distinct names.
    pub names: u32,
    rng: SmallRng,
}

impl DirectorySource {
    /// Creates a source over `names` names.
    pub fn new(query_fraction: f64, names: u32, seed: u64) -> Self {
        DirectorySource {
            query_fraction,
            names,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl OperatorSource<Directory> for DirectorySource {
    fn next_op(&mut self, _client: ClientId, _seq: u64) -> DirectoryOp {
        let name = format!("n{}", self.rng.gen_range(0..self.names));
        if self.rng.gen_bool(self.query_fraction) {
            DirectoryOp::lookup(name, "addr")
        } else {
            match self.rng.gen_range(0..3u8) {
                0 => DirectoryOp::create(name),
                1 => DirectoryOp::set_attr(
                    name,
                    "addr",
                    format!("10.0.0.{}", self.rng.gen_range(0..255)),
                ),
                _ => DirectoryOp::remove(name),
            }
        }
    }
}

/// An open-loop workload: every client submits `ops_per_client` operations
/// at a fixed period, starting at `start` (staggered by client to avoid a
/// thundering herd).
#[derive(Clone, Debug)]
pub struct OpenLoopWorkload {
    /// Clients to create (each attached per the system's relay policy).
    pub clients: usize,
    /// Operations per client.
    pub ops_per_client: usize,
    /// Submission period per client.
    pub period: SimDuration,
    /// Probability an operation is strict (the §11.1 knob).
    pub strict_fraction: f64,
    /// Probability a nonstrict operation depends (`prev`) on the client's
    /// previous operation.
    pub prev_fraction: f64,
    /// First submission time.
    pub start: SimTime,
}

impl OpenLoopWorkload {
    /// A workload with the given shape and no constraints.
    pub fn new(clients: usize, ops_per_client: usize, period: SimDuration) -> Self {
        OpenLoopWorkload {
            clients,
            ops_per_client,
            period,
            strict_fraction: 0.0,
            prev_fraction: 0.0,
            start: SimTime::ZERO,
        }
    }

    /// Sets the strict fraction.
    #[must_use]
    pub fn with_strict_fraction(mut self, f: f64) -> Self {
        self.strict_fraction = f;
        self
    }

    /// Sets the `prev`-dependency fraction.
    #[must_use]
    pub fn with_prev_fraction(mut self, f: f64) -> Self {
        self.prev_fraction = f;
        self
    }
}

/// The shared open-loop driver: schedules `workload` over `clients`,
/// sampling strictness and `prev` chains from `seed`, submitting through
/// `submit_at` (the only part that differs between the single-group and
/// sharded systems). One copy keeps the workload *shape* — stagger, mix,
/// chaining policy — identical across deployment layers by construction.
fn drive_open_loop<T, S, Id>(
    seed: u64,
    clients: &[ClientId],
    workload: &OpenLoopWorkload,
    source: &mut S,
    mut submit_at: impl FnMut(SimTime, ClientId, T::Operator, &[Id], bool) -> Id,
) -> Vec<Id>
where
    T: SerialDataType,
    S: OperatorSource<T>,
    Id: Copy,
{
    let mut rng = SmallRng::seed_from_u64(derive_seed(seed, 0xB10B));
    let mut ids = Vec::with_capacity(clients.len() * workload.ops_per_client);
    let stagger = workload.period / (clients.len().max(1) as u64);
    let mut last_op: Vec<Option<Id>> = vec![None; clients.len()];
    for seq in 0..workload.ops_per_client {
        for (ci, c) in clients.iter().enumerate() {
            let at = workload.start + workload.period * seq as u64 + stagger * ci as u64;
            let op = source.next_op(*c, seq as u64);
            let strict = rng.gen_bool(workload.strict_fraction);
            let prev: Vec<Id> = if !strict && rng.gen_bool(workload.prev_fraction) {
                last_op[ci].into_iter().collect()
            } else {
                Vec::new()
            };
            let id = submit_at(at, *c, op, &prev, strict);
            last_op[ci] = Some(id);
            ids.push(id);
        }
    }
    ids
}

/// Schedules the whole workload into the system. Returns all submitted
/// operation ids. Deterministic given the system seed.
pub fn apply_open_loop<T, S>(
    sys: &mut SimSystem<T>,
    workload: &OpenLoopWorkload,
    source: &mut S,
) -> Vec<OpId>
where
    T: SerialDataType + Clone,
    S: OperatorSource<T>,
{
    let seed = sys.config().seed;
    let clients: Vec<ClientId> = (0..workload.clients)
        .map(|i| sys.add_client(i as u32))
        .collect();
    drive_open_loop(
        seed,
        &clients,
        workload,
        source,
        |at, c, op, prev, strict| sys.submit_at(at, c, op, prev, strict),
    )
}

/// Schedules the whole workload into a **sharded** system — the sharded
/// analogue of [`apply_open_loop`], for latency-vs-load sweeps against
/// multi-group deployments (and through rebalancing events: submissions
/// scheduled onto a slot that later freezes are queued by the routing
/// layer and drained to the new owner, like any live submission).
/// Returns all submitted global operation ids. Deterministic given the
/// system seed.
pub fn apply_sharded_open_loop<T, S>(
    sys: &mut ShardedSimSystem<T>,
    workload: &OpenLoopWorkload,
    source: &mut S,
) -> Vec<ShardedOpId>
where
    T: KeyedDataType + Clone,
    S: OperatorSource<T>,
{
    let seed = sys.config().shard.seed;
    let clients: Vec<ClientId> = (0..workload.clients)
        .map(|i| sys.add_client(i as u32))
        .collect();
    drive_open_loop(
        seed,
        &clients,
        workload,
        source,
        |at, c, op, prev, strict| sys.submit_at(at, c, op, prev, strict),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sharded::ShardedSystemConfig;
    use crate::system::SystemConfig;
    use esds_spec::check_converged;

    #[test]
    fn open_loop_counter_workload_runs_to_convergence() {
        let cfg = SystemConfig::new(3).with_seed(9);
        let mut sys = SimSystem::new(Counter, cfg);
        let w = OpenLoopWorkload::new(3, 10, SimDuration::from_millis(10))
            .with_strict_fraction(0.3)
            .with_prev_fraction(0.4);
        let mut src = CounterSource::new(0.5, 77);
        let ids = apply_open_loop(&mut sys, &w, &mut src);
        assert_eq!(ids.len(), 30);
        sys.run_until_quiescent();
        assert_eq!(sys.completed_count(), 30);
        assert!(check_converged(&sys.local_orders(), &sys.replica_states()).is_ok());
    }

    #[test]
    fn sharded_open_loop_runs_to_convergence() {
        let cfg = ShardedSystemConfig::new(3, SystemConfig::new(3).with_seed(11));
        let mut sys = ShardedSimSystem::new(KvStore, cfg);
        let w = OpenLoopWorkload::new(4, 8, SimDuration::from_millis(10))
            .with_strict_fraction(0.2)
            .with_prev_fraction(0.3);
        let mut src = KvSource::new(0.5, 32, 5);
        let ids = apply_sharded_open_loop(&mut sys, &w, &mut src);
        assert_eq!(ids.len(), 32);
        sys.run_until_quiescent();
        for id in &ids {
            assert!(sys.response(*id).is_some(), "op {id} unanswered");
        }
        // Submissions entered the network paced, not all at once.
        let times: Vec<_> = ids
            .iter()
            .filter_map(|id| sys.op_timing(*id).map(|(s, _)| s))
            .collect();
        assert!(times.iter().max() > times.iter().min());
    }

    #[test]
    fn sharded_open_loop_survives_mid_sweep_rebalance() {
        // The ROADMAP ask: latency-vs-load sweeps against shards — here
        // with a shard added mid-sweep. Submissions scheduled before the
        // freeze drain to the new owner without loss.
        let cfg = ShardedSystemConfig::new(2, SystemConfig::new(3).with_seed(23));
        let mut sys = ShardedSimSystem::new(KvStore, cfg);
        let w = OpenLoopWorkload::new(3, 12, SimDuration::from_millis(8));
        let mut src = KvSource::new(0.4, 24, 9);
        let ids = apply_sharded_open_loop(&mut sys, &w, &mut src);
        sys.run_for(SimDuration::from_millis(30));
        sys.begin_add_shard();
        sys.run_until_quiescent();
        assert!(!sys.migration_active());
        assert_eq!(sys.n_shards(), 3);
        for id in &ids {
            assert!(sys.response(*id).is_some(), "op {id} lost in rebalance");
        }
    }

    #[test]
    fn sources_are_deterministic() {
        let mut a = KvSource::new(0.5, 4, 3);
        let mut b = KvSource::new(0.5, 4, 3);
        for s in 0..20 {
            assert_eq!(a.next_op(ClientId(0), s), b.next_op(ClientId(0), s));
        }
    }

    #[test]
    fn directory_source_is_query_dominated() {
        let mut src = DirectorySource::new(0.9, 8, 1);
        let queries = (0..200)
            .filter(|s| src.next_op(ClientId(0), *s).is_query())
            .count();
        assert!(queries > 150, "expected ~90% queries, got {queries}/200");
    }
}

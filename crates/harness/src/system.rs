//! The simulated ESDS deployment: replicas, front ends, and channels
//! composed under the discrete-event kernel.
//!
//! This is the executable analogue of the paper's composed automaton
//! `ESDS-Alg = Π front-ends × Π channels × Π replicas` (§6.4), with the
//! timing structure of Section 9 made explicit: front-end↔replica channels
//! bounded by `df`, replica↔replica channels by `dg`, and periodic gossip
//! with interval `g`. A processing model adds per-event service times so
//! the Section 11 throughput experiments have a capacity to saturate.

use std::collections::{BTreeMap, BTreeSet};

use esds_alg::{
    FrontEnd, GossipEnvelope, GossipMsg, RelayPolicy, Replica, ReplicaConfig, ReplicaStats,
    RequestMsg, ResponseMsg, SystemView,
};
use esds_core::{ClientId, OpDescriptor, OpId, ReplicaId, SerialDataType};
use esds_sim::{
    derive_seed, ChannelConfig, ChannelModel, EventQueue, Histogram, SimDuration, SimTime,
    StopReason, World,
};
use esds_spec::Users;

/// The paper's three response-time classes (Theorem 9.3).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum OpClass {
    /// Nonstrict with an empty `prev` set: bound `2·df`.
    NonstrictEmptyPrev,
    /// Nonstrict with a nonempty `prev` set: bound `2·df + g + dg`.
    NonstrictWithPrev,
    /// Strict: bound `2·df + 3·(g + dg)`.
    Strict,
}

impl OpClass {
    /// Classifies a descriptor.
    pub fn of<O>(desc: &OpDescriptor<O>) -> Self {
        if desc.strict {
            OpClass::Strict
        } else if desc.prev.is_empty() {
            OpClass::NonstrictEmptyPrev
        } else {
            OpClass::NonstrictWithPrev
        }
    }

    /// The Theorem 9.3 bound `δ(x)` under the given timing parameters.
    pub fn delta_bound(self, df: SimDuration, dg: SimDuration, g: SimDuration) -> SimDuration {
        match self {
            OpClass::NonstrictEmptyPrev => df * 2,
            OpClass::NonstrictWithPrev => df * 2 + g + dg,
            OpClass::Strict => df * 2 + (g + dg) * 3,
        }
    }
}

/// Per-event service times at a replica (zero = the Section 9 idealization
/// "local computation time is negligible"; nonzero = the queueing model for
/// the Section 11 throughput experiments).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct ProcessingModel {
    /// Server time consumed by one client request.
    pub request_cost: SimDuration,
    /// Server time consumed by applying one incoming gossip message.
    pub gossip_cost: SimDuration,
}

/// Configuration of a simulated deployment.
#[derive(Clone, Debug)]
pub struct SystemConfig {
    /// Number of replicas (ids `0..n`).
    pub n_replicas: usize,
    /// Master seed; all channel and workload randomness derives from it.
    pub seed: u64,
    /// Replica configuration (optimizations, gossip strategy, witnesses).
    pub replica: ReplicaConfig,
    /// Front-end relay policy. `None` = each client is *attached* to
    /// replica `client mod n` (the paper's locality setup).
    pub relay: Option<RelayPolicy>,
    /// Gossip interval `g`.
    pub gossip_interval: SimDuration,
    /// Front-end ↔ replica channels (delay bound `df`).
    pub fr_channel: ChannelConfig,
    /// Replica ↔ replica channels (delay bound `dg`).
    pub rr_channel: ChannelConfig,
    /// Service times.
    pub processing: ProcessingModel,
    /// Front-end retry period for unanswered requests (fault tolerance).
    pub retry_interval: Option<SimDuration>,
    /// Deliver each gossip message to all peers from one construction
    /// (§10.4's broadcast optimization; one message counted per round).
    pub broadcast_gossip: bool,
    /// Keep clones of in-flight gossip for [`SimSystem::view`] (needed by
    /// invariant/conformance checks; costs memory).
    pub track_in_flight: bool,
}

impl SystemConfig {
    /// A sensible default: `df = 5ms`, `dg = 5ms`, `g = 20ms`, zero
    /// processing cost, no retries, no faults.
    pub fn new(n_replicas: usize) -> Self {
        SystemConfig {
            n_replicas,
            seed: 0,
            replica: ReplicaConfig::default(),
            relay: None,
            gossip_interval: SimDuration::from_millis(20),
            fr_channel: ChannelConfig::fixed(SimDuration::from_millis(5)),
            rr_channel: ChannelConfig::fixed(SimDuration::from_millis(5)),
            processing: ProcessingModel::default(),
            retry_interval: None,
            broadcast_gossip: false,
            track_in_flight: false,
        }
    }

    /// Sets the master seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the replica configuration.
    #[must_use]
    pub fn with_replica(mut self, replica: ReplicaConfig) -> Self {
        self.replica = replica;
        self
    }

    /// Sets both channel configs.
    #[must_use]
    pub fn with_channels(mut self, fr: ChannelConfig, rr: ChannelConfig) -> Self {
        self.fr_channel = fr;
        self.rr_channel = rr;
        self
    }

    /// Sets the gossip interval `g`.
    #[must_use]
    pub fn with_gossip_interval(mut self, g: SimDuration) -> Self {
        self.gossip_interval = g;
        self
    }

    /// Sets the processing model.
    #[must_use]
    pub fn with_processing(mut self, p: ProcessingModel) -> Self {
        self.processing = p;
        self
    }

    /// Enables front-end retries.
    #[must_use]
    pub fn with_retry(mut self, every: SimDuration) -> Self {
        self.retry_interval = Some(every);
        self
    }

    /// Enables in-flight tracking (checker support).
    #[must_use]
    pub fn with_tracking(mut self) -> Self {
        self.track_in_flight = true;
        self
    }

    /// Overrides the relay policy for all clients.
    #[must_use]
    pub fn with_relay(mut self, relay: RelayPolicy) -> Self {
        self.relay = Some(relay);
        self
    }

    /// The worst-case `df` of the current channel config.
    pub fn df(&self) -> SimDuration {
        self.fr_channel.delay.upper_bound()
    }

    /// The worst-case `dg`.
    pub fn dg(&self) -> SimDuration {
        self.rr_channel.delay.upper_bound()
    }

    /// The virtual-time horizon `run_until_quiescent` is willing to wait
    /// from `now`: a generous multiple of the gossip + propagation period
    /// plus a constant floor. Deterministic fault-free runs converge far
    /// earlier; hitting this budget indicates a genuine liveness bug.
    pub fn quiescence_budget(&self, now: SimTime) -> SimTime {
        SimTime::from_micros(
            now.as_micros()
                + (self.gossip_interval + self.dg()).as_micros() * 1_000
                + 1_000_000_000,
        )
    }
}

/// Scheduled fault-injection actions (paper §9.3 / Theorem 9.4).
#[derive(Clone, Debug)]
pub enum FaultEvent {
    /// Crash a replica, losing volatile memory (stable storage retained).
    Crash(ReplicaId),
    /// Restart a crashed replica from its stable-storage stub.
    Recover(ReplicaId),
    /// Drop all traffic on every channel touching this replica.
    Isolate(ReplicaId),
    /// End the isolation.
    Reconnect(ReplicaId),
    /// Replace every channel's configuration (e.g. to violate and later
    /// restore the timing assumptions for Theorem 9.4).
    SetChannels {
        /// New front-end↔replica config.
        fr: ChannelConfig,
        /// New replica↔replica config.
        rr: ChannelConfig,
    },
}

/// Simulation events.
enum Event<O, V> {
    SubmitRequest {
        client: ClientId,
        sends: Vec<(ReplicaId, RequestMsg<O>)>,
    },
    DeliverRequest {
        to: ReplicaId,
        msg: RequestMsg<O>,
    },
    ProcessRequest {
        at: ReplicaId,
        msg: RequestMsg<O>,
    },
    DeliverGossip {
        to: ReplicaId,
        msg: GossipEnvelope<O>,
        tag: u64,
        /// The (sender, receiver) incarnations when the message was sent:
        /// a gossip message in flight across a crash of either endpoint
        /// dies with the connection.
        epochs: (u64, u64),
    },
    ProcessGossip {
        at: ReplicaId,
        msg: GossipEnvelope<O>,
        epochs: (u64, u64),
    },
    DeliverResponse {
        to: ClientId,
        msg: ResponseMsg<V>,
    },
    GossipTick {
        from: ReplicaId,
    },
    RetryTick {
        client: ClientId,
    },
    Fault(FaultEvent),
}

/// One entry of the response log: `(id, value, witness order)`.
pub type ResponseRecord<V> = (OpId, V, Option<Vec<OpId>>);

/// One simulator step: the virtual time it completed at plus its report.
pub type TimedStep<T> = (
    SimTime,
    StepReport<<T as SerialDataType>::Operator, <T as SerialDataType>::Value>,
);

/// What happened during one simulation event (conformance-observer food).
#[derive(Clone, Debug)]
pub struct StepReport<O, V> {
    /// Requests newly submitted (the `request(x)` actions).
    pub new_requests: Vec<OpDescriptor<O>>,
    /// Responses computed by replicas: `(id, value, witness)`.
    pub responses_computed: Vec<(OpId, V, Option<Vec<OpId>>)>,
    /// Responses delivered to clients (the `response(x, v)` actions).
    pub deliveries: Vec<(OpId, V)>,
}

// Manual impl: `O`/`V` need not be Default themselves.
impl<O, V> Default for StepReport<O, V> {
    fn default() -> Self {
        StepReport {
            new_requests: Vec::new(),
            responses_computed: Vec::new(),
            deliveries: Vec::new(),
        }
    }
}

impl<O, V> StepReport<O, V> {
    /// Whether this step produced no externally-visible action.
    pub fn is_trivial(&self) -> bool {
        self.new_requests.is_empty()
            && self.responses_computed.is_empty()
            && self.deliveries.is_empty()
    }
}

/// Per-operation timing record.
#[derive(Copy, Clone, Debug)]
pub struct OpTiming {
    /// Submission time.
    pub submitted: SimTime,
    /// Client-delivery time of the response, if any yet.
    pub responded: Option<SimTime>,
    /// Time the operation became done at every replica (Lemma 9.2), if
    /// known.
    pub done_everywhere: Option<SimTime>,
    /// Response-time class.
    pub class: OpClass,
}

enum Slot<T: SerialDataType> {
    Alive(Box<Replica<T>>),
    Crashed(esds_alg::RecoveryStub),
}

struct EsdsWorld<T: SerialDataType + Clone> {
    dt: T,
    config: SystemConfig,
    replicas: Vec<Slot<T>>,
    /// Per-replica durable backends (see [`SimSystem::install_persistence`]).
    /// A replica with a backend persists after every mutating handler,
    /// before its effects enter the network; a persist failure crashes
    /// the slot exactly like [`FaultEvent::Crash`].
    persistence: Vec<Option<Box<dyn esds_alg::Persistence<T>>>>,
    busy: Vec<SimTime>,
    isolated: Vec<bool>,
    /// Per-replica incarnation counter, bumped at every crash; gossip
    /// events carry both endpoints' values at send time so pre-crash
    /// in-flight messages are dropped instead of crossing the crash.
    /// Toward a recovered receiver, stale deltas could mark ops done
    /// whose labels died with the crash (Invariant 7.5); from a dead
    /// sender, a stale handshake could re-pollute the state the
    /// receiver's `reset_watermark` just rewound, suppressing re-sends
    /// the recovered incarnation still needs.
    crash_epoch: Vec<u64>,
    front_ends: Vec<FrontEnd<T::Operator, T::Value>>,
    users: Users<T::Operator>,

    c2r: BTreeMap<(u32, u32), ChannelModel>,
    r2c: BTreeMap<(u32, u32), ChannelModel>,
    r2r: BTreeMap<(u32, u32), ChannelModel>,

    requested: BTreeMap<OpId, OpDescriptor<T::Operator>>,
    submission_order: Vec<OpId>,
    responded: BTreeSet<OpId>,
    responses_log: Vec<(OpId, T::Value, Option<Vec<OpId>>)>,
    op_times: BTreeMap<OpId, OpTiming>,
    done_at: BTreeMap<OpId, BTreeSet<ReplicaId>>,

    in_flight_gossip: BTreeMap<u64, (ReplicaId, GossipMsg<T::Operator>)>,
    gossip_tag: u64,
    gossip_messages_sent: u64,
    gossip_bytes_sent: u64,

    scratch: StepReport<T::Operator, T::Value>,
}

impl<T: SerialDataType + Clone> EsdsWorld<T> {
    fn channel_seed(&self, kind: u64, a: u32, b: u32) -> u64 {
        derive_seed(
            self.config.seed,
            (kind << 48) | ((a as u64) << 24) | b as u64,
        )
    }

    fn replica(&mut self, r: ReplicaId) -> Option<&mut Replica<T>> {
        match &mut self.replicas[r.0 as usize] {
            Slot::Alive(rep) => Some(rep),
            Slot::Crashed(_) => None,
        }
    }

    fn transmit_c2r(
        &mut self,
        c: ClientId,
        r: ReplicaId,
        queue: &mut EventQueue<Event<T::Operator, T::Value>>,
        msg: RequestMsg<T::Operator>,
    ) {
        if self.isolated[r.0 as usize] {
            return;
        }
        let cfg = self.config.fr_channel;
        let seed = self.channel_seed(1, c.0, r.0);
        let ch = self
            .c2r
            .entry((c.0, r.0))
            .or_insert_with(|| ChannelModel::new(cfg, seed));
        for d in ch.transmit() {
            queue.schedule_after(
                d,
                Event::DeliverRequest {
                    to: r,
                    msg: msg.clone(),
                },
            );
        }
    }

    fn transmit_r2c(
        &mut self,
        r: ReplicaId,
        c: ClientId,
        queue: &mut EventQueue<Event<T::Operator, T::Value>>,
        msg: ResponseMsg<T::Value>,
    ) {
        if self.isolated[r.0 as usize] {
            return;
        }
        let cfg = self.config.fr_channel;
        let seed = self.channel_seed(2, r.0, c.0);
        let ch = self
            .r2c
            .entry((r.0, c.0))
            .or_insert_with(|| ChannelModel::new(cfg, seed));
        for d in ch.transmit() {
            queue.schedule_after(
                d,
                Event::DeliverResponse {
                    to: c,
                    msg: msg.clone(),
                },
            );
        }
    }

    fn transmit_r2r(
        &mut self,
        from: ReplicaId,
        to: ReplicaId,
        queue: &mut EventQueue<Event<T::Operator, T::Value>>,
        msg: GossipEnvelope<T::Operator>,
    ) {
        if self.isolated[from.0 as usize] || self.isolated[to.0 as usize] {
            return;
        }
        let cfg = self.config.rr_channel;
        let seed = self.channel_seed(3, from.0, to.0);
        let ch = self
            .r2r
            .entry((from.0, to.0))
            .or_insert_with(|| ChannelModel::new(cfg, seed));
        for d in ch.transmit() {
            let tag = self.gossip_tag;
            self.gossip_tag += 1;
            if self.config.track_in_flight {
                // Checkers reason over the snapshot-shaped view of the
                // message (batched D/S summaries expanded).
                self.in_flight_gossip.insert(tag, (to, msg.to_snapshot()));
            }
            queue.schedule_after(
                d,
                Event::DeliverGossip {
                    to,
                    msg: msg.clone(),
                    tag,
                    epochs: (
                        self.crash_epoch[from.0 as usize],
                        self.crash_epoch[to.0 as usize],
                    ),
                },
            );
        }
    }

    /// Queueing model: returns when the replica's server finishes this
    /// event's processing; `None` means "process inline right now".
    fn finish_time(&mut self, r: ReplicaId, now: SimTime, cost: SimDuration) -> Option<SimTime> {
        let b = &mut self.busy[r.0 as usize];
        let start = (*b).max(now);
        let done = start + cost;
        if done == now {
            None
        } else {
            *b = done;
            Some(done)
        }
    }

    /// Whether an in-flight gossip message predates a crash of either
    /// endpoint (see the `crash_epoch` field): such messages died with
    /// the connection.
    fn gossip_is_stale(&self, from: ReplicaId, to: ReplicaId, epochs: (u64, u64)) -> bool {
        epochs
            != (
                self.crash_epoch[from.0 as usize],
                self.crash_epoch[to.0 as usize],
            )
    }

    /// Persists replica `r`'s pending delta through its installed
    /// backend (no-op without one). Returns `false` if the persist
    /// failed — the replica is then crashed in place (volatile state
    /// lost, [`FaultEvent::Crash`] semantics) and the caller must drop
    /// the handler's effects: a response whose log write failed was
    /// never released.
    fn persist_replica(&mut self, r: ReplicaId) -> bool {
        let i = r.0 as usize;
        let Some(store) = self.persistence[i].as_mut() else {
            return true;
        };
        let Slot::Alive(rep) = &mut self.replicas[i] else {
            return true;
        };
        if store.persist(rep).is_ok() {
            return true;
        }
        self.persistence[i] = None;
        if let Slot::Alive(rep) = std::mem::replace(
            &mut self.replicas[i],
            Slot::Crashed(esds_alg::RecoveryStub {
                id: r,
                next_counter: 0,
                local_min_labels: Vec::new(),
            }),
        ) {
            self.replicas[i] = Slot::Crashed(rep.crash());
            self.crash_epoch[i] += 1;
        }
        false
    }

    /// Handles replica output effects: transmit responses, update logs.
    fn apply_effects(
        &mut self,
        r: ReplicaId,
        queue: &mut EventQueue<Event<T::Operator, T::Value>>,
        effects: Vec<esds_alg::RespondEffect<T::Value>>,
    ) {
        for e in effects {
            self.responded.insert(e.msg.id);
            self.responses_log
                .push((e.msg.id, e.msg.value.clone(), e.msg.witness.clone()));
            self.scratch.responses_computed.push((
                e.msg.id,
                e.msg.value.clone(),
                e.msg.witness.clone(),
            ));
            self.transmit_r2c(r, e.client, queue, e.msg);
        }
    }

    /// Drains newly-done bookkeeping for the Lemma 9.2 experiment.
    fn note_newly_done(&mut self, r: ReplicaId, now: SimTime) {
        let n = self.config.n_replicas;
        let Some(rep) = self.replica(r) else { return };
        let newly = rep.take_newly_done();
        for x in newly {
            let set = self.done_at.entry(x).or_default();
            set.insert(r);
            if set.len() == n {
                if let Some(t) = self.op_times.get_mut(&x) {
                    t.done_everywhere.get_or_insert(now);
                }
            }
        }
    }

    fn apply_fault(&mut self, f: FaultEvent, queue: &mut EventQueue<Event<T::Operator, T::Value>>) {
        match f {
            FaultEvent::Crash(r) => {
                let i = r.0 as usize;
                if let Slot::Alive(rep) = std::mem::replace(
                    &mut self.replicas[i],
                    Slot::Crashed(esds_alg::RecoveryStub {
                        id: r,
                        next_counter: 0,
                        local_min_labels: Vec::new(),
                    }),
                ) {
                    self.replicas[i] = Slot::Crashed(rep.crash());
                    // In-flight messages to the old incarnation die with
                    // its connections.
                    self.crash_epoch[i] += 1;
                }
            }
            FaultEvent::Recover(r) => {
                let i = r.0 as usize;
                if let Slot::Crashed(stub) = std::mem::replace(
                    &mut self.replicas[i],
                    Slot::Crashed(esds_alg::RecoveryStub {
                        id: r,
                        next_counter: 0,
                        local_min_labels: Vec::new(),
                    }),
                ) {
                    let rep = Replica::recover(
                        self.dt.clone(),
                        stub,
                        self.config.n_replicas,
                        self.config.replica,
                    );
                    self.replicas[i] = Slot::Alive(Box::new(rep));
                    self.busy[i] = queue.now();
                    // Peers restart their incremental watermarks: the next
                    // gossip to the recovered replica is full ("requesting
                    // new gossip", §9.3).
                    for j in 0..self.config.n_replicas {
                        if j != i {
                            if let Slot::Alive(peer) = &mut self.replicas[j] {
                                peer.reset_watermark(r);
                            }
                        }
                    }
                }
            }
            FaultEvent::Isolate(r) => self.isolated[r.0 as usize] = true,
            FaultEvent::Reconnect(r) => self.isolated[r.0 as usize] = false,
            FaultEvent::SetChannels { fr, rr } => {
                self.config.fr_channel = fr;
                self.config.rr_channel = rr;
                for ch in self.c2r.values_mut().chain(self.r2c.values_mut()) {
                    ch.set_config(fr);
                }
                for ch in self.r2r.values_mut() {
                    ch.set_config(rr);
                }
            }
        }
    }
}

impl<T: SerialDataType + Clone> World for EsdsWorld<T> {
    type Event = Event<T::Operator, T::Value>;

    fn handle(&mut self, event: Self::Event, queue: &mut EventQueue<Self::Event>) {
        match event {
            Event::SubmitRequest { client, sends } => {
                for (r, msg) in sends {
                    self.transmit_c2r(client, r, queue, msg);
                }
            }
            Event::DeliverRequest { to, msg } => {
                if self.replica(to).is_none() {
                    return; // crashed: message lost with the process
                }
                match self.finish_time(to, queue.now(), self.config.processing.request_cost) {
                    None => {
                        let fx = self
                            .replica(to)
                            .expect("alive checked")
                            .on_request(msg.desc);
                        if self.persist_replica(to) {
                            self.apply_effects(to, queue, fx);
                            self.note_newly_done(to, queue.now());
                        }
                    }
                    Some(at) => queue.schedule_at(at, Event::ProcessRequest { at: to, msg }),
                }
            }
            Event::ProcessRequest { at, msg } => {
                if self.replica(at).is_none() {
                    return;
                }
                let fx = self.replica(at).expect("alive").on_request(msg.desc);
                if self.persist_replica(at) {
                    self.apply_effects(at, queue, fx);
                    self.note_newly_done(at, queue.now());
                }
            }
            Event::DeliverGossip {
                to,
                msg,
                tag,
                epochs,
            } => {
                self.in_flight_gossip.remove(&tag);
                if self.gossip_is_stale(msg.from(), to, epochs) || self.replica(to).is_none() {
                    return;
                }
                match self.finish_time(to, queue.now(), self.config.processing.gossip_cost) {
                    None => {
                        let fx = self.replica(to).expect("alive").on_gossip_envelope(msg);
                        if self.persist_replica(to) {
                            self.apply_effects(to, queue, fx);
                            self.note_newly_done(to, queue.now());
                        }
                    }
                    Some(at) => queue.schedule_at(
                        at,
                        Event::ProcessGossip {
                            at: to,
                            msg,
                            epochs,
                        },
                    ),
                }
            }
            Event::ProcessGossip { at, msg, epochs } => {
                if self.gossip_is_stale(msg.from(), at, epochs) || self.replica(at).is_none() {
                    return;
                }
                let fx = self.replica(at).expect("alive").on_gossip_envelope(msg);
                if self.persist_replica(at) {
                    self.apply_effects(at, queue, fx);
                    self.note_newly_done(at, queue.now());
                }
            }
            Event::DeliverResponse { to, msg } => {
                let id = msg.id;
                if let Some(delivery) = self.front_ends[to.0 as usize].on_response(msg) {
                    if let Some(t) = self.op_times.get_mut(&id) {
                        t.responded.get_or_insert(queue.now());
                    }
                    self.scratch.deliveries.push((delivery.id, delivery.value));
                }
            }
            Event::GossipTick { from } => {
                queue.schedule_after(self.config.gossip_interval, Event::GossipTick { from });
                let n = self.config.n_replicas;
                if n < 2 {
                    return;
                }
                // Isolated endpoints produce/receive nothing. Skipping
                // *before* constructing the message matters for the delta
                // strategies: make_gossip/poll_gossip irreversibly record
                // what was shipped (incremental watermarks, batched
                // handshake state), so building a message the fault model
                // then drops would lose those deltas forever (Reconnect,
                // unlike Recover, does not reset peers' watermarks).
                if self.isolated[from.0 as usize] {
                    return;
                }
                let peers: Vec<ReplicaId> = (0..n as u32)
                    .map(ReplicaId)
                    .filter(|p| *p != from && !self.isolated[p.0 as usize])
                    .collect();
                if peers.is_empty() {
                    return;
                }
                if self.config.broadcast_gossip {
                    let Some(rep) = self.replica(from) else {
                        return;
                    };
                    let msg = GossipEnvelope::Snapshot(rep.make_gossip(peers[0]));
                    // Sync-before-release: a failing disk silences the
                    // replica before the envelope enters the network.
                    if !self.persist_replica(from) {
                        return;
                    }
                    self.gossip_messages_sent += 1;
                    self.gossip_bytes_sent += msg.approx_bytes() as u64;
                    for p in peers {
                        self.transmit_r2r(from, p, queue, msg.clone());
                    }
                } else {
                    for p in peers {
                        let Some(rep) = self.replica(from) else {
                            return;
                        };
                        // Batched strategies skip ticks that are still
                        // accumulating: no message, no bytes.
                        let Some(msg) = rep.poll_gossip(p) else {
                            continue;
                        };
                        if !self.persist_replica(from) {
                            return;
                        }
                        self.gossip_messages_sent += 1;
                        self.gossip_bytes_sent += msg.approx_bytes() as u64;
                        self.transmit_r2r(from, p, queue, msg);
                    }
                }
            }
            Event::RetryTick { client } => {
                if let Some(every) = self.config.retry_interval {
                    queue.schedule_after(every, Event::RetryTick { client });
                }
                let sends = self.front_ends[client.0 as usize].resend_pending();
                for (r, msg) in sends {
                    self.transmit_c2r(client, r, queue, msg);
                }
            }
            Event::Fault(f) => self.apply_fault(f, queue),
        }
    }
}

/// A complete simulated ESDS deployment with a user-facing API: create
/// clients, submit operations, run virtual time, inspect results.
///
/// # Examples
///
/// ```
/// use esds_harness::{SimSystem, SystemConfig};
/// use esds_datatypes::{Counter, CounterOp, CounterValue};
///
/// let mut sys = SimSystem::new(Counter, SystemConfig::new(3).with_seed(7));
/// let c = sys.add_client(0);
/// let inc = sys.submit(c, CounterOp::Increment(5), &[], true);
/// let read = sys.submit(c, CounterOp::Read, &[inc], false);
/// sys.run_until_quiescent();
/// assert_eq!(sys.response(read), Some(&CounterValue::Count(5)));
/// ```
pub struct SimSystem<T: SerialDataType + Clone> {
    world: EsdsWorld<T>,
    queue: EventQueue<Event<T::Operator, T::Value>>,
}

impl<T: SerialDataType + Clone> SimSystem<T> {
    /// Builds a deployment with `config.n_replicas` replicas and no clients.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is internally inconsistent (zero
    /// replicas; broadcast combined with incremental gossip).
    pub fn new(dt: T, config: SystemConfig) -> Self {
        assert!(config.n_replicas > 0, "need at least one replica");
        assert!(
            !(config.broadcast_gossip
                && config.replica.gossip != esds_alg::GossipStrategy::Full),
            "broadcast gossip sends one message to all peers; per-peer incremental/batched state cannot apply"
        );
        assert!(
            !(config.rr_channel.loss_prob > 0.0
                && config.replica.gossip != esds_alg::GossipStrategy::Full),
            "delta gossip (incremental/batched) assumes reliable replica channels: a dropped \
             message loses its deltas forever (the simulator, unlike the TCP transport, has no \
             send-failure signal to trigger reset_watermark); use GossipStrategy::Full with lossy \
             rr channels"
        );
        if config.replica.gossip == esds_alg::GossipStrategy::Batched {
            // Batched exchanges additionally need *in-order* delivery:
            // each batch carries a complete done/stable summary while the
            // matching labels ship only once, so a later batch overtaking
            // an earlier one can mark an op done before its label arrives
            // (Invariant 7.5). Successive batches to one peer are
            // batch_interval·g apart, so delivery is order-preserving iff
            // the channel's delay spread is within that gap. (Incremental
            // is not gated: its done/stable ids travel in the same
            // message as their labels.)
            let delay = config.rr_channel.delay;
            let spread = delay.upper_bound().as_micros() - delay.lower_bound().as_micros();
            let gap = config.gossip_interval.as_micros()
                * u64::from(config.replica.batch_interval.max(1));
            assert!(
                spread <= gap,
                "batched gossip needs FIFO replica channels: rr delay spread {spread}µs exceeds \
                 the {gap}µs between successive batches, so batches could be reordered"
            );
        }
        let replicas = (0..config.n_replicas)
            .map(|i| {
                Slot::Alive(Box::new(Replica::new(
                    dt.clone(),
                    ReplicaId(i as u32),
                    config.n_replicas,
                    config.replica,
                )))
            })
            .collect();
        let mut queue = EventQueue::new();
        for i in 0..config.n_replicas {
            queue.schedule_at(
                SimTime::ZERO + config.gossip_interval,
                Event::GossipTick {
                    from: ReplicaId(i as u32),
                },
            );
        }
        let world = EsdsWorld {
            dt,
            persistence: (0..config.n_replicas).map(|_| None).collect(),
            busy: vec![SimTime::ZERO; config.n_replicas],
            isolated: vec![false; config.n_replicas],
            crash_epoch: vec![0; config.n_replicas],
            replicas,
            front_ends: Vec::new(),
            users: Users::new(),
            c2r: BTreeMap::new(),
            r2c: BTreeMap::new(),
            r2r: BTreeMap::new(),
            requested: BTreeMap::new(),
            submission_order: Vec::new(),
            responded: BTreeSet::new(),
            responses_log: Vec::new(),
            op_times: BTreeMap::new(),
            done_at: BTreeMap::new(),
            in_flight_gossip: BTreeMap::new(),
            gossip_tag: 0,
            gossip_messages_sent: 0,
            gossip_bytes_sent: 0,
            scratch: StepReport::default(),
            config,
        };
        SimSystem { world, queue }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// The configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.world.config
    }

    /// Adds a client; its front end uses the configured relay policy, or
    /// attaches to replica `hint mod n` by default.
    pub fn add_client(&mut self, hint: u32) -> ClientId {
        let c = ClientId(self.world.front_ends.len() as u32);
        let policy = self
            .world
            .config
            .relay
            .unwrap_or(RelayPolicy::Fixed(ReplicaId(
                hint % self.world.config.n_replicas as u32,
            )));
        self.world
            .front_ends
            .push(FrontEnd::new(c, self.world.config.n_replicas, policy));
        if let Some(every) = self.world.config.retry_interval {
            self.queue
                .schedule_at(self.queue.now() + every, Event::RetryTick { client: c });
        }
        c
    }

    /// Submits an operation *now*; the request enters the network at the
    /// current virtual time. Returns the assigned operation id.
    ///
    /// # Panics
    ///
    /// Panics on client well-formedness violations (unknown `prev` ids) —
    /// these are bugs in the calling test/experiment, not runtime
    /// conditions.
    pub fn submit(
        &mut self,
        client: ClientId,
        op: T::Operator,
        prev: &[OpId],
        strict: bool,
    ) -> OpId {
        self.submit_at(self.queue.now(), client, op, prev, strict)
    }

    /// Submits an operation at a future virtual time. The identifier is
    /// assigned immediately (ids are in submission order); the request
    /// message enters the network at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past or the request is ill-formed.
    pub fn submit_at(
        &mut self,
        at: SimTime,
        client: ClientId,
        op: T::Operator,
        prev: &[OpId],
        strict: bool,
    ) -> OpId {
        let fe = &mut self.world.front_ends[client.0 as usize];
        let (id, sends) = fe.submit(op, prev.iter().copied(), strict);
        let desc = sends
            .first()
            .map(|(_, m)| m.desc.clone())
            .expect("at least one relay target");
        self.world
            .users
            .request(desc.clone())
            .expect("well-formed request");
        self.world.requested.insert(id, desc.clone());
        self.world.submission_order.push(id);
        self.world.op_times.insert(
            id,
            OpTiming {
                submitted: at,
                responded: None,
                done_everywhere: None,
                class: OpClass::of(&desc),
            },
        );
        self.world.scratch.new_requests.push(desc);
        self.queue
            .schedule_at(at, Event::SubmitRequest { client, sends });
        id
    }

    /// Schedules a fault at an absolute time.
    pub fn schedule_fault(&mut self, at: SimTime, fault: FaultEvent) {
        self.queue.schedule_at(at, Event::Fault(fault));
    }

    /// Installs a durable backend for replica `r`. From now on the
    /// replica persists after every mutating handler, *before* its
    /// effects (responses, gossip) enter the simulated network — the
    /// sync-before-release discipline of [`esds_alg::Persistence`]. A
    /// persist failure (e.g. an armed `esds_store::CrashPlan`) crashes
    /// the slot exactly like [`FaultEvent::Crash`]: the handler's
    /// effects are dropped, volatile state is lost.
    ///
    /// The backend must have been opened for the *same* identity and an
    /// *empty* disk, so its internal generation matches the fresh
    /// replica it now shadows; a restart-from-disk goes through
    /// [`SimSystem::replace_replica`] instead.
    ///
    /// # Panics
    ///
    /// Panics if the system was not configured with
    /// `config.replica.durable` (the replica would not track its WAL
    /// delta, making the log silently empty), if `r` is out of range,
    /// or if replica `r` has already processed an operation.
    pub fn install_persistence(&mut self, r: usize, store: Box<dyn esds_alg::Persistence<T>>) {
        assert!(
            self.world.config.replica.durable,
            "install_persistence needs config.replica.durable (with_durable()): without it the \
             replica does not track a WAL delta and nothing would ever be logged"
        );
        match &self.world.replicas[r] {
            Slot::Alive(rep) => assert!(
                rep.rcvd().is_empty() && rep.memo_order().is_empty(),
                "install_persistence must run before replica {r} processes anything (earlier \
                 inputs would be missing from the log)"
            ),
            Slot::Crashed(_) => panic!("replica {r} is crashed; use replace_replica"),
        }
        self.world.persistence[r] = Some(store);
    }

    /// Replaces a **crashed** slot with a replica recovered from disk
    /// (e.g. by `esds_store::DurableStore::open` over the surviving
    /// image), installing its backend alongside. The replica re-enters
    /// through the §9.3 gate — passive until it has gossiped with every
    /// peer — and peers restart their incremental watermarks toward it,
    /// like [`FaultEvent::Recover`].
    ///
    /// # Panics
    ///
    /// Panics if slot `r` is still alive.
    pub fn replace_replica(
        &mut self,
        r: usize,
        rep: Replica<T>,
        store: Option<Box<dyn esds_alg::Persistence<T>>>,
    ) {
        assert!(
            matches!(self.world.replicas[r], Slot::Crashed(_)),
            "replace_replica targets a crashed slot; crash replica {r} first"
        );
        self.world.replicas[r] = Slot::Alive(Box::new(rep));
        self.world.persistence[r] = store;
        self.world.busy[r] = self.queue.now();
        let id = ReplicaId(r as u32);
        for j in 0..self.world.config.n_replicas {
            if j != r {
                if let Slot::Alive(peer) = &mut self.world.replicas[j] {
                    peer.reset_watermark(id);
                }
            }
        }
    }

    /// Runs until the given virtual time.
    pub fn run_until(&mut self, t: SimTime) {
        esds_sim::run(&mut self.world, &mut self.queue, Some(t));
    }

    /// Runs for a span of virtual time.
    pub fn run_for(&mut self, d: SimDuration) {
        let t = self.queue.now() + d;
        self.run_until(t);
    }

    /// Runs one event and returns its report (`None` when the queue is
    /// empty). The report also carries any `submit` calls made since the
    /// previous step — their `request(x)` actions belong to this
    /// observation window.
    pub fn step_one(&mut self) -> Option<TimedStep<T>> {
        let stats = esds_sim::run_steps(&mut self.world, &mut self.queue, 1);
        if stats.events == 0 {
            return None;
        }
        let report = std::mem::take(&mut self.world.scratch);
        Some((stats.end_time, report))
    }

    /// Runs until every submitted operation has been answered *and* is
    /// stable at every replica, or until `max` virtual time passes.
    ///
    /// # Errors
    ///
    /// Returns the ids still unanswered/unstable on timeout.
    pub fn run_until_converged(&mut self, max: SimTime) -> Result<SimTime, String> {
        loop {
            let horizon = (self.queue.now() + self.world.config.gossip_interval).min(max);
            let stats = esds_sim::run(&mut self.world, &mut self.queue, Some(horizon));
            if self.is_converged() {
                return Ok(self.queue.now());
            }
            if self.queue.now() >= max || stats.stopped == StopReason::Quiescent {
                let missing: Vec<String> = self
                    .world
                    .requested
                    .keys()
                    .filter(|id| !self.world.responded.contains(id))
                    .map(|id| id.to_string())
                    .collect();
                return Err(format!("not converged by {max}: unanswered {missing:?}"));
            }
        }
    }

    /// Convenience wrapper: converge within a generous horizon.
    ///
    /// # Panics
    ///
    /// Panics if convergence is not reached (deterministic tests should
    /// always converge; prefer [`SimSystem::run_until_converged`] when
    /// faults make convergence uncertain).
    pub fn run_until_quiescent(&mut self) -> SimTime {
        let budget = self.world.config.quiescence_budget(self.queue.now());
        match self.run_until_converged(budget) {
            Ok(t) => t,
            Err(e) => panic!("run_until_quiescent: {e}"),
        }
    }

    /// Whether every requested operation is answered and stable at every
    /// replica (and all replicas are alive).
    pub fn is_converged(&self) -> bool {
        let all_alive = self
            .world
            .replicas
            .iter()
            .all(|s| matches!(s, Slot::Alive(r) if !r.is_recovering()));
        if !all_alive {
            return false;
        }
        let all_answered = self
            .world
            .front_ends
            .iter()
            .all(|f| f.waiting_ids().is_empty());
        if !all_answered {
            return false;
        }
        self.world.replicas.iter().all(|s| match s {
            Slot::Alive(r) => self
                .world
                .requested
                .keys()
                .all(|id| r.stable_everywhere().contains(id)),
            Slot::Crashed(_) => false,
        })
    }

    // ------------------------------------------------------------------
    // Results & inspection
    // ------------------------------------------------------------------

    /// The response delivered for `id`, if any.
    pub fn response(&self, id: OpId) -> Option<&T::Value> {
        self.world
            .front_ends
            .get(id.client().0 as usize)
            .and_then(|f| f.value_of(id))
    }

    /// Every request ever submitted.
    pub fn requested(&self) -> &BTreeMap<OpId, OpDescriptor<T::Operator>> {
        &self.world.requested
    }

    /// Every request, in submission order (the order the `Users` automaton
    /// observed them — prev targets always precede their dependents).
    pub fn requested_in_order(&self) -> Vec<&OpDescriptor<T::Operator>> {
        self.world
            .submission_order
            .iter()
            .map(|id| &self.world.requested[id])
            .collect()
    }

    /// The response log: `(id, value, witness)` in computation order
    /// (includes duplicates from retries).
    pub fn responses_log(&self) -> &[ResponseRecord<T::Value>] {
        &self.world.responses_log
    }

    /// Timing record per operation.
    pub fn op_times(&self) -> &BTreeMap<OpId, OpTiming> {
        &self.world.op_times
    }

    /// Latency histograms per response-time class, over answered ops.
    pub fn latency_by_class(&self) -> BTreeMap<OpClass, Histogram> {
        let mut out: BTreeMap<OpClass, Histogram> = BTreeMap::new();
        for t in self.world.op_times.values() {
            if let Some(r) = t.responded {
                out.entry(t.class)
                    .or_default()
                    .record(r.duration_since(t.submitted));
            }
        }
        out
    }

    /// Count of answered operations.
    pub fn completed_count(&self) -> usize {
        self.world
            .op_times
            .values()
            .filter(|t| t.responded.is_some())
            .count()
    }

    /// The system-wide minimum-label order over all done operations — the
    /// eventual total order once every label has converged.
    pub fn minlabel_order(&self) -> Vec<OpId> {
        self.view().expect("all replicas alive").minlabel_order()
    }

    /// Whether every replica of this deployment is currently alive (not
    /// crashed). Stability knowledge — and therefore
    /// [`SimSystem::stable_prefix`] — is only complete when they are.
    pub fn all_replicas_alive(&self) -> bool {
        self.world
            .replicas
            .iter()
            .all(|s| matches!(s, Slot::Alive(_)))
    }

    /// Whether `id` is *stable everywhere at every replica*: each replica
    /// knows every replica has it stable, so its label — and therefore
    /// its position in the eventual total order — is final and identical
    /// across the group. `false` while any replica is crashed (stability
    /// knowledge cannot be complete).
    pub fn op_is_stable_everywhere(&self, id: OpId) -> bool {
        self.world.replicas.iter().all(|s| match s {
            Slot::Alive(r) => r.stable_everywhere().contains(&id),
            Slot::Crashed(_) => false,
        })
    }

    /// The **stable prefix** of this deployment: every operation that is
    /// stable everywhere at every replica, in minimum-label order. This
    /// order is final — no future gossip can reorder it — which makes
    /// the prefix a *transferable artifact*: replaying it elsewhere
    /// reproduces exactly the state every strict (and eventually every
    /// nonstrict) response reflects. Slot migration
    /// (`ShardedSimSystem::begin_migration`) ships a keyspace slice of
    /// this prefix to the receiving group. `None` if a replica is
    /// crashed.
    pub fn stable_prefix(&self) -> Option<Vec<OpId>> {
        let order = self.view()?.minlabel_order();
        Some(
            order
                .into_iter()
                .filter(|id| self.op_is_stable_everywhere(*id))
                .collect(),
        )
    }

    /// The **position-final prefix** of the eventual total order: the
    /// minimum-label order truncated just past its *last*
    /// stable-everywhere operation — tentative operations interleaved
    /// before that point included.
    ///
    /// Unlike [`SimSystem::stable_prefix`] (which keeps only stable
    /// operations and so can have holes — stability *knowledge* of
    /// different operations completes in arbitrary order), this sequence
    /// is gap-free and every position in it is final. The fence
    /// argument: once `x` is stable everywhere, every replica has
    /// labeled `x`, so every replica's clock exceeds `x`'s
    /// system-minimum label; any label assigned from now on lands after
    /// `x`, and the already-assigned minimum labels below `x`'s are
    /// visible in the view — so the membership *and order* of everything
    /// at or before `x`'s position can no longer change. This is the
    /// correct `Stabilize` feed for the streaming audit
    /// ([`AuditDriver`](crate::AuditDriver)). `None` if a replica is
    /// crashed (stability knowledge is unobservable).
    pub fn final_prefix(&self) -> Option<Vec<OpId>> {
        let mut order = self.view()?.minlabel_order();
        let solid = order
            .iter()
            .rposition(|id| self.op_is_stable_everywhere(*id))
            .map_or(0, |i| i + 1);
        order.truncate(solid);
        Some(order)
    }

    /// A live borrow view for invariant checks. `None` if any replica is
    /// crashed or the system has no replicas.
    pub fn view(&self) -> Option<SystemView<'_, T>> {
        let mut replicas = Vec::with_capacity(self.world.replicas.len());
        for s in &self.world.replicas {
            match s {
                Slot::Alive(r) => replicas.push(&**r),
                Slot::Crashed(_) => return None,
            }
        }
        let mut waiting = BTreeSet::new();
        for f in &self.world.front_ends {
            waiting.extend(f.waiting_ids());
        }
        Some(SystemView {
            replicas,
            gossip_in_flight: self
                .world
                .in_flight_gossip
                .values()
                .map(|(to, m)| (*to, m.clone()))
                .collect(),
            requested: self.world.requested.clone(),
            waiting,
            responded: self.world.responded.clone(),
        })
    }

    /// Per-replica local orders (label order) — equal iff converged.
    pub fn local_orders(&self) -> Vec<Vec<OpId>> {
        self.world
            .replicas
            .iter()
            .filter_map(|s| match s {
                Slot::Alive(r) => Some(r.local_order()),
                Slot::Crashed(_) => None,
            })
            .collect()
    }

    /// Per-replica object states obtained by replaying each local order.
    pub fn replica_states(&self) -> Vec<T::State> {
        self.world
            .replicas
            .iter()
            .filter_map(|s| match s {
                Slot::Alive(r) => Some(r.current_state()),
                Slot::Crashed(_) => None,
            })
            .collect()
    }

    /// Aggregated replica statistics.
    pub fn replica_stats(&self) -> Vec<ReplicaStats> {
        self.world
            .replicas
            .iter()
            .map(|s| match s {
                Slot::Alive(r) => r.stats(),
                Slot::Crashed(_) => ReplicaStats::default(),
            })
            .collect()
    }

    /// Total gossip messages sent and their approximate bytes.
    pub fn gossip_traffic(&self) -> (u64, u64) {
        (
            self.world.gossip_messages_sent,
            self.world.gossip_bytes_sent,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esds_datatypes::{Counter, CounterOp, CounterValue};

    #[test]
    fn quickstart_roundtrip() {
        let mut sys = SimSystem::new(Counter, SystemConfig::new(3).with_seed(7));
        let c = sys.add_client(0);
        let inc = sys.submit(c, CounterOp::Increment(5), &[], true);
        let read = sys.submit(c, CounterOp::Read, &[inc], false);
        sys.run_until_quiescent();
        assert_eq!(sys.response(inc), Some(&CounterValue::Ack));
        assert_eq!(sys.response(read), Some(&CounterValue::Count(5)));
    }

    #[test]
    fn convergence_across_clients_and_replicas() {
        let mut sys = SimSystem::new(Counter, SystemConfig::new(4).with_seed(3));
        let clients: Vec<ClientId> = (0..4).map(|i| sys.add_client(i)).collect();
        for (i, c) in clients.iter().enumerate() {
            for _ in 0..5 {
                sys.submit(*c, CounterOp::Increment(i as i64 + 1), &[], false);
            }
        }
        sys.run_until_quiescent();
        let orders = sys.local_orders();
        let states = sys.replica_states();
        assert!(esds_spec::check_converged(&orders, &states).is_ok());
        // 5·(1+2+3+4) = 50.
        assert_eq!(states[0], 50);
        assert_eq!(sys.completed_count(), 20);
    }

    #[test]
    fn deterministic_under_same_seed() {
        let run = |seed: u64| -> Vec<(OpId, CounterValue)> {
            let cfg = SystemConfig::new(3).with_seed(seed).with_channels(
                ChannelConfig::uniform(SimDuration::from_millis(1), SimDuration::from_millis(9)),
                ChannelConfig::uniform(SimDuration::from_millis(1), SimDuration::from_millis(9)),
            );
            let mut sys = SimSystem::new(Counter, cfg);
            let a = sys.add_client(0);
            let b = sys.add_client(1);
            for i in 0..10 {
                sys.submit(a, CounterOp::Increment(1), &[], i % 3 == 0);
                sys.submit(b, CounterOp::Read, &[], false);
                sys.run_for(SimDuration::from_millis(2));
            }
            sys.run_until_quiescent();
            sys.responses_log()
                .iter()
                .map(|(id, v, _)| (*id, v.clone()))
                .collect()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds should reorder something");
    }

    #[test]
    fn retry_overcomes_message_loss() {
        let lossy = ChannelConfig::fixed(SimDuration::from_millis(5)).with_loss(0.4);
        let cfg = SystemConfig::new(3)
            .with_seed(11)
            .with_channels(lossy, lossy)
            .with_retry(SimDuration::from_millis(40));
        let mut sys = SimSystem::new(Counter, cfg);
        let c = sys.add_client(0);
        for _ in 0..10 {
            sys.submit(c, CounterOp::Increment(1), &[], false);
        }
        let t = sys
            .run_until_converged(SimTime::from_millis(60_000))
            .expect("retries must eventually deliver");
        assert!(t > SimTime::ZERO);
        assert_eq!(sys.completed_count(), 10);
        assert_eq!(sys.replica_states()[0], 10);
    }

    #[test]
    fn batched_gossip_deployment_converges() {
        // The §10.4 batched strategy under the full simulator: batching 4
        // gossip intervals per exchange must still answer everything
        // (including strict ops) and converge, with fewer messages than
        // one per peer per tick.
        let cfg = SystemConfig::new(3)
            .with_seed(17)
            .with_replica(ReplicaConfig::default().with_batched(4));
        let mut sys = SimSystem::new(Counter, cfg);
        let c = sys.add_client(0);
        let mut ids = Vec::new();
        for i in 0..8 {
            ids.push(sys.submit(c, CounterOp::Increment(1), &[], i % 4 == 0));
        }
        sys.run_until_quiescent();
        for id in &ids {
            assert_eq!(sys.response(*id), Some(&CounterValue::Ack));
        }
        let states = sys.replica_states();
        assert!(states.iter().all(|s| *s == 8), "diverged: {states:?}");
        let (msgs, bytes) = sys.gossip_traffic();
        assert!(msgs > 0 && bytes > 0);
        // 6 directed pairs tick every interval; batching emits on every
        // 4th tick per pair.
        let elapsed_ticks = sys.now().as_micros() / sys.config().gossip_interval.as_micros();
        assert!(
            msgs <= 6 * (elapsed_ticks / 4 + 1),
            "batching must cut message count: {msgs} msgs over {elapsed_ticks} ticks"
        );
    }

    #[test]
    fn batched_gossip_survives_isolation_fault() {
        // Regression: gossip polled toward an isolated replica used to be
        // dropped *after* the batched handshake recorded it as sent, so
        // the deltas were lost forever and the system never converged
        // after Reconnect.
        let cfg = SystemConfig::new(3)
            .with_seed(23)
            .with_replica(ReplicaConfig::default().with_batched(2));
        let mut sys = SimSystem::new(Counter, cfg);
        let c = sys.add_client(0); // attached to replica 0
        sys.schedule_fault(SimTime::from_millis(10), FaultEvent::Isolate(ReplicaId(2)));
        sys.schedule_fault(
            SimTime::from_millis(400),
            FaultEvent::Reconnect(ReplicaId(2)),
        );
        let mut ids = Vec::new();
        for _ in 0..5 {
            ids.push(sys.submit(c, CounterOp::Increment(1), &[], false));
        }
        // Run through the outage: plenty of gossip ticks fire while
        // replica 2 is unreachable.
        sys.run_for(SimDuration::from_millis(300));
        // A strict op after reconnection needs replica 2 fully caught up.
        let audit = sys.submit_at(SimTime::from_millis(450), c, CounterOp::Read, &ids, true);
        sys.run_until_converged(SimTime::from_millis(10_000))
            .expect("deltas must survive the isolation window");
        assert_eq!(sys.response(audit), Some(&CounterValue::Count(5)));
        let states = sys.replica_states();
        assert!(states.iter().all(|s| *s == 5), "diverged: {states:?}");
    }

    #[test]
    fn batched_gossip_survives_crash_with_gossip_in_flight() {
        // Regression (found in review): a batch sent before a crash and
        // delivered after a fast recovery carried a complete done summary
        // whose labels only earlier batches had — the recovered replica
        // (labels lost) would mark those ops done unlabeled (Invariant
        // 7.5 panic in debug). Crash now invalidates in-flight gossip.
        let cfg = SystemConfig::new(2)
            .with_seed(31)
            .with_replica(ReplicaConfig::default().with_batched(1))
            .with_retry(SimDuration::from_millis(50));
        let mut sys = SimSystem::new(Counter, cfg);
        let c = sys.add_client(0); // attached to replica 0
        sys.submit(c, CounterOp::Increment(1), &[], false);
        // Let op1's label ship and settle, then time the crash inside a
        // later batch's flight window (ticks every 20 ms, delivery 5 ms
        // later): batch sent at 240 ms carries D ⊇ op1 but no label.
        sys.schedule_fault(SimTime::from_millis(241), FaultEvent::Crash(ReplicaId(1)));
        sys.schedule_fault(SimTime::from_millis(243), FaultEvent::Recover(ReplicaId(1)));
        sys.run_for(SimDuration::from_millis(400));
        let audit = sys.submit(c, CounterOp::Read, &[], true);
        sys.run_until_converged(SimTime::from_millis(10_000))
            .expect("recovered replica must catch up");
        assert_eq!(sys.response(audit), Some(&CounterValue::Count(1)));
    }

    #[test]
    #[should_panic(expected = "FIFO replica channels")]
    fn reordering_channels_reject_batched() {
        // uniform(1, 60) on a 20 ms gossip interval can reorder
        // successive batches; the constructor must refuse.
        let wide =
            ChannelConfig::uniform(SimDuration::from_millis(1), SimDuration::from_millis(60));
        let cfg = SystemConfig::new(3)
            .with_replica(ReplicaConfig::default().with_batched(1))
            .with_channels(ChannelConfig::fixed(SimDuration::from_millis(5)), wide);
        let _ = SimSystem::new(Counter, cfg);
    }

    #[test]
    fn narrow_jitter_accepts_batched() {
        // A delay spread inside the batch gap cannot reorder batches:
        // accepted and converges.
        let narrow =
            ChannelConfig::uniform(SimDuration::from_millis(1), SimDuration::from_millis(9));
        let cfg = SystemConfig::new(3)
            .with_seed(41)
            .with_replica(ReplicaConfig::default().with_batched(2))
            .with_channels(narrow, narrow);
        let mut sys = SimSystem::new(Counter, cfg);
        let c = sys.add_client(0);
        let id = sys.submit(c, CounterOp::Increment(3), &[], true);
        sys.run_until_quiescent();
        assert_eq!(sys.response(id), Some(&CounterValue::Ack));
    }

    #[test]
    #[should_panic(expected = "delta gossip")]
    fn lossy_channels_reject_batched() {
        let lossy = ChannelConfig::fixed(SimDuration::from_millis(5)).with_loss(0.2);
        let cfg = SystemConfig::new(3)
            .with_replica(ReplicaConfig::default().with_batched(2))
            .with_channels(ChannelConfig::fixed(SimDuration::from_millis(5)), lossy);
        let _ = SimSystem::new(Counter, cfg);
    }

    #[test]
    #[should_panic(expected = "broadcast gossip")]
    fn broadcast_rejects_batched() {
        let mut cfg = SystemConfig::new(3).with_replica(ReplicaConfig::default().with_batched(2));
        cfg.broadcast_gossip = true;
        let _ = SimSystem::new(Counter, cfg);
    }

    #[test]
    fn view_reports_in_flight_gossip() {
        let cfg = SystemConfig::new(2).with_seed(1).with_tracking();
        let mut sys = SimSystem::new(Counter, cfg);
        let c = sys.add_client(0);
        sys.submit(c, CounterOp::Increment(1), &[], false);
        // Run past a gossip tick but not past delivery (tick at 20ms,
        // delivery at 25ms).
        sys.run_until(SimTime::from_millis(21));
        let view = sys.view().expect("alive");
        assert!(!view.gossip_in_flight.is_empty());
    }

    #[test]
    fn crash_and_recover_preserves_service() {
        let cfg = SystemConfig::new(3)
            .with_seed(5)
            .with_replica(ReplicaConfig::basic())
            .with_retry(SimDuration::from_millis(50));
        let mut sys = SimSystem::new(Counter, cfg);
        let c = sys.add_client(0); // attached to replica 0
        sys.submit(c, CounterOp::Increment(1), &[], false);
        sys.run_for(SimDuration::from_millis(200));
        // Crash the client's replica; retries keep hitting it until it
        // recovers (Fixed policy), so recovery must restore service.
        sys.schedule_fault(SimTime::from_millis(210), FaultEvent::Crash(ReplicaId(0)));
        sys.schedule_fault(SimTime::from_millis(400), FaultEvent::Recover(ReplicaId(0)));
        sys.run_for(SimDuration::from_millis(250));
        let id = sys.submit(c, CounterOp::Read, &[], false);
        sys.run_until_converged(SimTime::from_millis(5_000))
            .unwrap();
        assert_eq!(sys.response(id), Some(&CounterValue::Count(1)));
    }
}

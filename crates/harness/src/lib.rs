//! # esds-harness
//!
//! The experiment harness: the ESDS algorithm composed under the
//! discrete-event simulator, plus workload generation, fault scripts,
//! timing probes (Section 9), and the ESDS-II conformance observer
//! (Theorem 8.4).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod audit;
mod conformance;
mod sharded;
mod system;
mod workload;

pub use audit::AuditDriver;
pub use conformance::{ConformanceError, ConformanceObserver};
pub use sharded::{ShardedSimSystem, ShardedSystemConfig};
pub use system::{
    FaultEvent, OpClass, OpTiming, ProcessingModel, SimSystem, StepReport, SystemConfig,
};
pub use workload::{
    apply_open_loop, apply_sharded_open_loop, CounterSource, DirectorySource, GSetSource, KvSource,
    OpenLoopWorkload, OperatorSource, RegisterSource,
};

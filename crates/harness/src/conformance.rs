//! The executable simulation relation of Theorem 8.4: every step of the
//! algorithm is mapped to the corresponding `ESDS-II` action sequence, and
//! each spec action's precondition is checked — these are exactly the proof
//! obligations of the paper's forward simulation `F` (Fig. 9).
//!
//! Mapping (following the proof of Theorem 8.4):
//!
//! | algorithm event                     | spec actions                     |
//! |-------------------------------------|----------------------------------|
//! | `request(x)`                        | `request(x)`                     |
//! | `do_it` of a waiting op             | `enter(x, po′)`                  |
//! | any event changing the derived `po` | `add_constraints(po′)`           |
//! | op newly in `∩ᵣ stable_r[r]`        | `stabilize(x)`                   |
//! | replica computes a response `(x,v)` | `calculate(x, v)` (with witness) |
//! | front end delivers `(x,v)`          | `response(x, v)`                 |
//!
//! The observer also re-checks the `F`-relation components after every
//! step: `u.ops = ∪ᵣ done_r[r]`, `u.stabilized = ∩ᵣ stable_r[r]`, and
//! `u.wait = ∪ wait_c`.

use std::collections::BTreeSet;
use std::fmt;

use esds_alg::SystemView;
use esds_core::{OpId, PreconditionError, SerialDataType, WellFormednessError};
use esds_spec::{EsdsSpec, SpecVariant, Users};

use crate::system::StepReport;

/// A conformance failure: the algorithm took a step the specification
/// cannot simulate.
#[derive(Clone, Debug)]
pub enum ConformanceError {
    /// A client request broke well-formedness.
    WellFormedness(WellFormednessError),
    /// A spec action's precondition failed (with the algorithm event
    /// context).
    Precondition {
        /// What the observer was simulating.
        context: String,
        /// The failed clause.
        error: PreconditionError,
    },
    /// An `F`-relation component diverged.
    Relation(String),
}

impl fmt::Display for ConformanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConformanceError::WellFormedness(e) => write!(f, "well-formedness: {e}"),
            ConformanceError::Precondition { context, error } => {
                write!(f, "while simulating {context}: {error}")
            }
            ConformanceError::Relation(s) => write!(f, "F-relation broken: {s}"),
        }
    }
}

impl std::error::Error for ConformanceError {}

/// Replays algorithm steps against an `ESDS-II` automaton (see module
/// docs). Requires the system to run with witness recording and in-flight
/// tracking enabled and no faults. Any gossip strategy works: delta
/// strategies (incremental, batched) re-ship a label whenever it drops
/// below the last value sent to that peer, so on the FIFO channels the
/// simulator provides, an in-flight delta constrains the derived `po`
/// exactly as the full snapshot would (`tests/sharded_conformance.rs`
/// exercises this under batched gossip).
pub struct ConformanceObserver<T: SerialDataType + Clone> {
    spec: EsdsSpec<T>,
    users: Users<T::Operator>,
    /// Steps observed (for reporting).
    pub steps: u64,
    /// Spec actions replayed (for reporting).
    pub actions: u64,
}

impl<T: SerialDataType + Clone> ConformanceObserver<T> {
    /// Creates an observer for a fresh system.
    pub fn new(dt: T) -> Self {
        ConformanceObserver {
            spec: EsdsSpec::new(dt, SpecVariant::EsdsII),
            users: Users::new(),
            steps: 0,
            actions: 0,
        }
    }

    /// Observes one simulation step: `report` is what the step did, `view`
    /// is the post-state of the whole system.
    ///
    /// # Errors
    ///
    /// Returns the first proof obligation that fails.
    pub fn observe(
        &mut self,
        report: &StepReport<T::Operator, T::Value>,
        view: &SystemView<'_, T>,
    ) -> Result<(), ConformanceError> {
        self.steps += 1;

        // 1. request(x) actions.
        for d in &report.new_requests {
            self.users
                .request(d.clone())
                .map_err(ConformanceError::WellFormedness)?;
            self.spec.request(d.clone());
            self.actions += 1;
        }

        // 2. enter(x, po′) for ops newly done somewhere. The proof enters
        //    with the post-state po; entering in minlabel order keeps every
        //    intermediate new-po well-formed.
        let alg_ops = view.ops();
        let po = view.po();
        let mut new_ops: Vec<OpId> = alg_ops
            .iter()
            .filter(|id| !self.spec.ops().contains_key(id))
            .copied()
            .collect();
        new_ops.sort_by_key(|id| view.minlabel(*id));
        for x in new_ops {
            // new-po = po induced on (spec.ops ∪ {x}).
            let mut keep: BTreeSet<OpId> = self.spec.ops().keys().copied().collect();
            keep.insert(x);
            let mut sub = po.induced_on(&keep);
            for k in &keep {
                sub.add_node(*k);
            }
            self.spec
                .enter(x, sub)
                .map_err(|error| ConformanceError::Precondition {
                    context: format!("enter({x})"),
                    error,
                })?;
            self.actions += 1;
        }

        // 3. add_constraints(po′) with the full derived po.
        let mut full = po.clone();
        for id in &alg_ops {
            full.add_node(*id);
        }
        self.spec
            .add_constraints(full)
            .map_err(|error| ConformanceError::Precondition {
                context: "add_constraints(po)".to_string(),
                error,
            })?;
        self.actions += 1;

        // 4. stabilize(x) for ops newly stable at every replica, in
        //    minlabel order (the proof stabilizes x1 … xk in order).
        let mut stable_all: Option<BTreeSet<OpId>> = None;
        for rep in &view.replicas {
            stable_all = Some(match stable_all {
                None => rep.stable_here().clone(),
                Some(acc) => acc.intersection(rep.stable_here()).copied().collect(),
            });
        }
        let mut newly_stable: Vec<OpId> = stable_all
            .unwrap_or_default()
            .into_iter()
            .filter(|x| !self.spec.stabilized().contains(x))
            .collect();
        newly_stable.sort_by_key(|id| view.minlabel(*id));
        for x in newly_stable {
            self.spec
                .stabilize(x)
                .map_err(|error| ConformanceError::Precondition {
                    context: format!("stabilize({x})"),
                    error,
                })?;
            self.actions += 1;
        }

        // 5. calculate(x, v) for every response computed this step.
        for (x, v, witness) in &report.responses_computed {
            let w = witness.as_deref().ok_or_else(|| {
                ConformanceError::Relation(
                    "conformance requires record_witness=true on replicas".to_string(),
                )
            })?;
            self.spec.calculate(*x, v, Some(w)).map_err(|error| {
                ConformanceError::Precondition {
                    context: format!("calculate({x})"),
                    error,
                }
            })?;
            self.actions += 1;
        }

        // 6. response(x, v) for client deliveries.
        for (x, v) in &report.deliveries {
            self.spec
                .respond_with(*x, v)
                .map_err(|error| ConformanceError::Precondition {
                    context: format!("response({x})"),
                    error,
                })?;
            self.actions += 1;
        }

        // 7. F-relation components (Fig. 9).
        let spec_ops: BTreeSet<OpId> = self.spec.ops().keys().copied().collect();
        if spec_ops != alg_ops {
            return Err(ConformanceError::Relation(format!(
                "u.ops ({}) ≠ ∪ᵣ done_r[r] ({})",
                spec_ops.len(),
                alg_ops.len()
            )));
        }
        if self.spec.waiting() != view.waiting {
            return Err(ConformanceError::Relation(format!(
                "u.wait ({:?}) ≠ ∪ wait_c ({:?})",
                self.spec.waiting(),
                view.waiting
            )));
        }
        // Spec invariants (§5.2) must hold throughout.
        let bad = self.spec.check_invariants();
        if let Some(b) = bad.first() {
            return Err(ConformanceError::Relation(b.clone()));
        }
        Ok(())
    }

    /// The underlying specification state (for final assertions).
    pub fn spec(&self) -> &EsdsSpec<T> {
        &self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{SimSystem, SystemConfig};
    use esds_alg::ReplicaConfig;
    use esds_datatypes::{Counter, CounterOp};

    /// End-to-end conformance over a mixed workload: every simulator step
    /// must be simulable by ESDS-II.
    #[test]
    fn algorithm_conforms_to_esds2() {
        let cfg = SystemConfig::new(3)
            .with_seed(21)
            .with_replica(ReplicaConfig::default().with_witness())
            .with_tracking();
        let mut sys = SimSystem::new(Counter, cfg);
        let mut obs = ConformanceObserver::new(Counter);

        let a = sys.add_client(0);
        let b = sys.add_client(1);
        let mut last = None;
        for i in 0..12u64 {
            let strict = i % 4 == 0;
            let prev: Vec<_> = if i % 3 == 0 {
                last.into_iter().collect()
            } else {
                vec![]
            };
            let op = if i % 2 == 0 {
                CounterOp::Increment(1)
            } else {
                CounterOp::Read
            };
            let c = if i % 2 == 0 { a } else { b };
            last = Some(sys.submit(c, op, &prev, strict));
        }

        let mut guard = 0;
        loop {
            guard += 1;
            assert!(guard < 100_000, "conformance test runaway");
            let Some((_, report)) = sys.step_one() else {
                break;
            };
            let view = sys.view().expect("no crashes in this test");
            obs.observe(&report, &view).expect("conformance violated");
            if sys.is_converged() && report.is_trivial() {
                break;
            }
        }
        assert!(obs.actions > 0);
        // All ops entered and stabilized in the spec.
        assert_eq!(obs.spec().ops().len(), 12);
        assert_eq!(obs.spec().stabilized().len(), 12);
    }
}

//! Streaming-audit driver for the simulator: feeds a
//! [`StreamingChecker`] from [`StepReport`]s and the advancing stable
//! prefix, maintaining the checker's stream contract mechanically.
//!
//! This is the simulated-deployment analogue of the runtime sidecar
//! (`esds-runtime`) and the wire auditor (`esds-wire`): same checker,
//! different tap. The driver observes the *externally visible* trace
//! (requests and computed responses) plus the system's stable watermark
//! — it never reads replica internals, so a green audit is a black-box
//! statement about the deployment, unlike the white-box
//! [`ConformanceObserver`](crate::ConformanceObserver).

use esds_core::SerialDataType;
use esds_spec::{fold_digest, AuditResult, AuditStatus, AuditViolation, StreamingChecker};

use crate::system::{SimSystem, StepReport};

/// Drives a [`StreamingChecker`] from a running [`SimSystem`].
///
/// Call [`observe`](AuditDriver::observe) with every step report and
/// [`sync_watermark`](AuditDriver::sync_watermark) whenever stability
/// may have advanced (each step, or each chunk of steps — the stable
/// prefix is final, so syncing late never unsounds the audit, it only
/// delays retirement and grows the resident window).
///
/// # Examples
///
/// ```
/// use esds_datatypes::{KvOp, KvStore};
/// use esds_harness::{AuditDriver, SystemConfig, SimSystem};
///
/// let mut sys = SimSystem::new(KvStore, SystemConfig::new(3).with_seed(7));
/// let client = sys.add_client(0);
/// let mut audit = AuditDriver::new(KvStore);
/// let a = sys.submit(client, KvOp::put("k", "v"), &[], false);
/// let _b = sys.submit(client, KvOp::get("k"), &[a], true);
/// while !sys.is_converged() {
///     let (_, report) = sys.step_one().expect("events pending");
///     audit.observe(&report).expect("audit green");
///     audit.sync_watermark(&sys).expect("audit green");
/// }
/// audit.sync_watermark(&sys).expect("audit green");
/// let cert = audit.finish().expect("trace fully explained");
/// assert_eq!(cert.ops, 2);
/// ```
#[derive(Clone, Debug)]
pub struct AuditDriver<T: SerialDataType> {
    checker: StreamingChecker<T>,
    /// How many stable-prefix entries have been fed as `Stabilize`.
    fed_stable: usize,
    /// Chain digest of the fed entries, guarding against transiently
    /// re-ordered prefix estimates during crash recovery.
    fed_digest: u64,
}

impl<T: SerialDataType> AuditDriver<T> {
    /// A driver with the checker's default configuration.
    pub fn new(dt: T) -> Self {
        AuditDriver {
            checker: StreamingChecker::new(dt),
            fed_stable: 0,
            fed_digest: 0,
        }
    }

    /// A driver around a pre-configured checker (custom grace window or
    /// `check_all` mode).
    pub fn with_checker(checker: StreamingChecker<T>) -> Self {
        AuditDriver {
            checker,
            fed_stable: 0,
            fed_digest: 0,
        }
    }

    /// Feeds one step's externally-visible actions: new requests, then
    /// computed responses (with witnesses when the replicas record
    /// them).
    ///
    /// # Errors
    ///
    /// The first [`AuditViolation`], which latches the checker red.
    pub fn observe(&mut self, report: &StepReport<T::Operator, T::Value>) -> AuditResult {
        for desc in &report.new_requests {
            self.checker.on_request(desc.clone())?;
        }
        for (id, value, witness) in &report.responses_computed {
            self.checker
                .on_response(*id, value.clone(), witness.clone())?;
        }
        Ok(())
    }

    /// Feeds the system's watermark: every operation whose
    /// eventual-order position has become final
    /// ([`SimSystem::final_prefix`] — the minimum-label order truncated
    /// just past the last stable-everywhere operation) becomes a
    /// `Stabilize` event, in order. The truncated prefix is gap-free:
    /// it includes tentative operations interleaved before the fence,
    /// whose positions are already final even though their stability
    /// *knowledge* has not completed. While a replica is crashed the
    /// prefix is unobservable and this is a no-op. A freshly recovered
    /// replica relearns labels, so for a while the *estimated* prefix
    /// may be shorter than — or ordered differently from — what was
    /// already fed; such polls are skipped (guarded by a chain digest
    /// of the fed prefix) and a later poll, once estimates re-converge,
    /// feeds the missed suffix.
    ///
    /// # Errors
    ///
    /// The first [`AuditViolation`], which latches the checker red.
    pub fn sync_watermark(&mut self, sys: &SimSystem<T>) -> AuditResult
    where
        T: Clone,
    {
        let Some(prefix) = sys.final_prefix() else {
            return Ok(());
        };
        if prefix.len() < self.fed_stable {
            return Ok(());
        }
        let fed = prefix[..self.fed_stable]
            .iter()
            .fold(0, |d, &id| fold_digest(d, id));
        if fed != self.fed_digest {
            return Ok(());
        }
        for &id in &prefix[self.fed_stable..] {
            self.checker.on_stabilize(id)?;
            self.fed_stable += 1;
            self.fed_digest = fold_digest(self.fed_digest, id);
        }
        Ok(())
    }

    /// Ends the stream: every requested operation must have stabilized.
    /// Returns the audit certificate.
    ///
    /// # Errors
    ///
    /// A latched violation or incomplete eventual-order coverage.
    pub fn finish(&self) -> Result<esds_spec::AuditCertificate, AuditViolation> {
        self.checker.finish()
    }

    /// The checker's current status (counters, watermark lag, peak
    /// resident window).
    pub fn status(&self) -> AuditStatus {
        self.checker.status()
    }

    /// The underlying checker.
    pub fn checker(&self) -> &StreamingChecker<T> {
        &self.checker
    }
}

//! Deterministic fault injection for durable replicas under the
//! simulator: a replica persisting through an `esds-store` backend over
//! [`MemStorage`] loses power at an injected byte budget
//! ([`CrashPlan`]), is rebuilt from the surviving disk image, and
//! rejoins through the §9.3 recovery gate — after which the whole
//! system reconverges and every submitted operation completes (front
//! ends retry; Theorem 9.4's liveness resumes after recovery).

use esds_alg::ReplicaConfig;
use esds_core::ReplicaId;
use esds_datatypes::{Counter, CounterOp, CounterValue};
use esds_harness::{SimSystem, SystemConfig};
use esds_sim::SimDuration;
use esds_store::{CrashPlan, DurableConfig, DurableStore, MemStorage};

fn durable_config(seed: u64) -> SystemConfig {
    SystemConfig::new(3)
        .with_seed(seed)
        .with_replica(ReplicaConfig::default().with_durable())
        .with_retry(SimDuration::from_millis(50))
}

#[test]
fn injected_crash_point_loses_power_and_recovery_rejoins() {
    let mut sys = SimSystem::new(Counter, durable_config(11));
    let disk = MemStorage::new();
    let (store, _fresh, report) = DurableStore::open(
        Counter,
        disk.clone(),
        ReplicaId(0),
        3,
        ReplicaConfig::default(),
        DurableConfig {
            snapshot_every: Some(8),
        },
    )
    .expect("fresh open");
    assert!(!report.recovered);
    sys.install_persistence(0, Box::new(store));
    // Power cut mid-run: the plan fires inside some handler's persist,
    // which must crash the slot and drop that handler's effects.
    disk.set_crash_plan(CrashPlan {
        after_bytes: 700,
        keep_unsynced_tail: false,
    });

    let clients: Vec<_> = (0..3).map(|i| sys.add_client(i)).collect();
    let total = 30u64;
    let mut ids = Vec::new();
    for i in 0..total {
        ids.push(sys.submit(
            clients[(i % 3) as usize],
            CounterOp::Increment(1),
            &[],
            false,
        ));
        sys.run_for(SimDuration::from_millis(30));
    }
    assert!(
        disk.is_crashed(),
        "the crash plan never fired; lower after_bytes"
    );
    assert!(
        !sys.all_replicas_alive(),
        "persist failure must crash the slot"
    );

    // Restart replica 0 from what survives on disk.
    let survivor = disk.survivor();
    let (store, recovered, report) = DurableStore::open(
        Counter,
        survivor,
        ReplicaId(0),
        3,
        ReplicaConfig::default(),
        DurableConfig {
            snapshot_every: Some(8),
        },
    )
    .expect("recovery from the survivor image");
    assert!(
        report.recovered,
        "the crashed replica had synced state: {report}"
    );
    assert!(
        recovered.is_recovering(),
        "re-entry goes through the §9.3 gate"
    );
    sys.replace_replica(0, recovered, Some(Box::new(store)));
    assert!(sys.all_replicas_alive());

    // Every submitted operation completes (retries re-deliver the ones
    // the crash swallowed), and a strict read pinned after all of them
    // observes every increment.
    let read = sys.submit(clients[0], CounterOp::Read, &ids, true);
    sys.run_until_converged(sys.now() + SimDuration::from_secs(120))
        .expect("system reconverges after recovery");
    assert_eq!(
        sys.response(read),
        Some(&CounterValue::Count(total as i64)),
        "a strict read after recovery must count every increment"
    );
}

#[test]
#[should_panic(expected = "config.replica.durable")]
fn install_persistence_requires_durable_replicas() {
    let mut sys = SimSystem::new(Counter, SystemConfig::new(3).with_seed(1));
    let (store, _rep, _) = DurableStore::open(
        Counter,
        MemStorage::new(),
        ReplicaId(0),
        3,
        ReplicaConfig::default(),
        DurableConfig::default(),
    )
    .expect("fresh open");
    sys.install_persistence(0, Box::new(store));
}

//! Differential testing of scatter-gather whole-object queries: a
//! sharded deployment (S ∈ {2, 4}) must answer whole-object queries
//! like the unsharded reference (S = 1).
//!
//! * **Barrier-strict is exact**: at quiescence, a strict `Keys` /
//!   `ListNames` returns the *same* answer on every shard count — the
//!   full sorted union. Pre-fix, the sharded deployments answered from
//!   the home shard's slice alone, so this property is precisely the
//!   ISSUE's bug statement run as a property.
//! * **Eventual is bounded**: a gathered eventual query racing the
//!   writes reflects *some* cut of the concurrent history — everything
//!   the query was constrained after (its `prev` closure) must appear,
//!   and nothing never written may appear. The same bound holds at
//!   S = 1, making the sharded answer indistinguishable from a legal
//!   unsharded interleaving.
//! * **The colocated control is exact**: `Bank` has a single key, so
//!   every operation lands on one home shard at any S; under a fully
//!   `prev`-chained workload the eventual total order is forced and the
//!   final strict `Balance` equals the serial fold everywhere.
//!
//! Runs at 512 cases in the release-mode CI `proptests` job.

use std::collections::BTreeSet;

use esds_datatypes::{
    Bank, BankOp, BankValue, Directory, DirectoryOp, DirectoryValue, KvOp, KvStore, KvValue,
};
use esds_harness::{ShardedSimSystem, ShardedSystemConfig, SystemConfig};
use esds_sim::SimTime;
use proptest::prelude::*;

/// Generous virtual-time budget; convergence is typically milliseconds.
fn budget() -> SimTime {
    SimTime::from_millis(600_000)
}

fn shard_counts() -> impl Strategy<Value = usize> {
    prop_oneof![Just(2usize), Just(4usize)]
}

/// One sharded run of a kv workload: `writes` submitted eventually with
/// no constraints, one eventual `Keys` racing them (constrained after
/// the first half), then — at quiescence — one barrier-strict `Keys`.
/// Returns `(eventual answer, strict answer)`.
fn kv_run(n_shards: usize, seed: u64, writes: &[(u8, u8)]) -> (Vec<String>, Vec<String>) {
    let shard = SystemConfig::new(2).with_seed(seed);
    let mut sys = ShardedSimSystem::new(KvStore, ShardedSystemConfig::new(n_shards, shard));
    let c = sys.add_client(0);
    let ids: Vec<_> = writes
        .iter()
        .map(|(k, v)| sys.submit(c, KvOp::put(format!("k{k}"), format!("v{v}")), &[], false))
        .collect();
    let qe = sys.submit(c, KvOp::Keys, &ids[..ids.len().div_ceil(2)], false);
    sys.run_until_converged(budget())
        .expect("kv workload converges");
    let qs = sys.submit(c, KvOp::Keys, &[], true);
    sys.run_until_converged(budget())
        .expect("strict gather converges");
    let KvValue::Keys(ev) = sys.response(qe).expect("eventual Keys answered").clone() else {
        panic!("Keys answered with a non-Keys value")
    };
    let KvValue::Keys(st) = sys.response(qs).expect("strict Keys answered").clone() else {
        panic!("Keys answered with a non-Keys value")
    };
    (ev, st)
}

/// Same shape for the directory service (`create` + `ListNames`).
fn dir_run(n_shards: usize, seed: u64, names: &[u8]) -> (Vec<String>, Vec<String>) {
    let shard = SystemConfig::new(2).with_seed(seed);
    let mut sys = ShardedSimSystem::new(Directory, ShardedSystemConfig::new(n_shards, shard));
    let c = sys.add_client(0);
    let ids: Vec<_> = names
        .iter()
        .map(|n| sys.submit(c, DirectoryOp::create(format!("n{n}")), &[], false))
        .collect();
    let qe = sys.submit(
        c,
        DirectoryOp::ListNames,
        &ids[..ids.len().div_ceil(2)],
        false,
    );
    sys.run_until_converged(budget())
        .expect("directory workload converges");
    let qs = sys.submit(c, DirectoryOp::ListNames, &[], true);
    sys.run_until_converged(budget())
        .expect("strict gather converges");
    let DirectoryValue::Names(ev) = sys
        .response(qe)
        .expect("eventual ListNames answered")
        .clone()
    else {
        panic!("ListNames answered with a non-Names value")
    };
    let DirectoryValue::Names(st) = sys.response(qs).expect("strict ListNames answered").clone()
    else {
        panic!("ListNames answered with a non-Names value")
    };
    (ev, st)
}

/// A fully `prev`-chained bank workload ending in a strict `Balance`:
/// the chain forces the eventual total order, so the balance is the
/// serial fold of the chain on any deployment.
fn bank_run(n_shards: usize, seed: u64, ops: &[BankOp]) -> u64 {
    let shard = SystemConfig::new(2).with_seed(seed);
    let mut sys = ShardedSimSystem::new(Bank, ShardedSystemConfig::new(n_shards, shard));
    let c = sys.add_client(0);
    let mut last = Vec::new();
    for op in ops {
        last = vec![sys.submit(c, op.clone(), &last, false)];
    }
    let q = sys.submit(c, BankOp::Balance, &last, true);
    sys.run_until_converged(budget())
        .expect("bank workload converges");
    let BankValue::Balance(b) = sys.response(q).expect("strict Balance answered") else {
        panic!("Balance answered with a non-Balance value")
    };
    *b
}

/// The eventual-query bound shared by both shard counts: the answer is
/// a set containing every `prev`-constrained write and nothing that was
/// never written.
fn assert_some_interleaving(
    tag: &str,
    answer: &[String],
    must: &BTreeSet<String>,
    may: &BTreeSet<String>,
) {
    let got: BTreeSet<String> = answer.iter().cloned().collect();
    assert_eq!(
        got.len(),
        answer.len(),
        "{tag}: merged answer repeats entries"
    );
    assert!(
        got.is_superset(must),
        "{tag}: eventual answer {got:?} misses prev-constrained writes {must:?}"
    );
    assert!(
        got.is_subset(may),
        "{tag}: eventual answer {got:?} invents entries beyond {may:?}"
    );
}

proptest! {
    /// `Keys` on S ∈ {2, 4} versus the S = 1 reference: barrier-strict
    /// answers are identical (and equal the full union); eventual
    /// answers on every deployment are legal cuts of the same history.
    #[test]
    fn kv_keys_differential(
        writes in proptest::collection::vec((0u8..12, 0u8..8), 1..12),
        n in shard_counts(),
        seed in 0u64..1024,
    ) {
        let (ev1, st1) = kv_run(1, seed, &writes);
        let (evn, stn) = kv_run(n, seed, &writes);
        let all: BTreeSet<String> = writes.iter().map(|(k, _)| format!("k{k}")).collect();
        let must: BTreeSet<String> = writes[..writes.len().div_ceil(2)]
            .iter()
            .map(|(k, _)| format!("k{k}"))
            .collect();
        // Exactness: the sharded strict union is the unsharded answer.
        prop_assert_eq!(&stn, &st1, "strict Keys must not depend on the shard count");
        let full: Vec<String> = all.iter().cloned().collect();
        prop_assert_eq!(&st1, &full, "strict Keys at quiescence is the full sorted union");
        // Interleaving bound, identical on both deployments.
        assert_some_interleaving("S=1", &ev1, &must, &all);
        assert_some_interleaving(&format!("S={n}"), &evn, &must, &all);
    }

    /// Same differential for the directory's `ListNames`.
    #[test]
    fn directory_list_names_differential(
        names in proptest::collection::vec(0u8..12, 1..12),
        n in shard_counts(),
        seed in 0u64..1024,
    ) {
        let (ev1, st1) = dir_run(1, seed, &names);
        let (evn, stn) = dir_run(n, seed, &names);
        let all: BTreeSet<String> = names.iter().map(|n| format!("n{n}")).collect();
        let must: BTreeSet<String> = names[..names.len().div_ceil(2)]
            .iter()
            .map(|n| format!("n{n}"))
            .collect();
        prop_assert_eq!(&stn, &st1, "strict ListNames must not depend on the shard count");
        let full: Vec<String> = all.iter().cloned().collect();
        prop_assert_eq!(&st1, &full, "strict ListNames at quiescence is the full sorted union");
        assert_some_interleaving("S=1", &ev1, &must, &all);
        assert_some_interleaving(&format!("S={n}"), &evn, &must, &all);
    }

    /// The colocated control: a single-key data type behaves identically
    /// at any shard count, and the chained workload pins the exact value.
    #[test]
    fn bank_balance_differential(
        amounts in proptest::collection::vec((any::<bool>(), 0u64..50), 1..12),
        n in shard_counts(),
        seed in 0u64..1024,
    ) {
        let ops: Vec<BankOp> = amounts
            .iter()
            .map(|(dep, a)| if *dep { BankOp::Deposit(*a) } else { BankOp::Withdraw(*a) })
            .collect();
        let expect = ops.iter().fold(0u64, |s, op| match op {
            BankOp::Deposit(a) => s.saturating_add(*a),
            BankOp::Withdraw(a) if s >= *a => s - a,
            _ => s,
        });
        prop_assert_eq!(bank_run(1, seed, &ops), expect);
        prop_assert_eq!(bank_run(n, seed, &ops), expect);
    }
}

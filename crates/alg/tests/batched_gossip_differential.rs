//! Differential property test: `GossipStrategy::Batched` is observably
//! identical to the paper's full-snapshot gossip.
//!
//! The batched protocol (delta descriptors pruned by the `IdSummary`
//! watermark handshake, `done`/`stable` as summaries diffed at the
//! receiver, delta labels) is a *wire-level* optimization: a delivered
//! batched exchange must leave the receiver in exactly the state a full
//! `(R, D, L, S)` snapshot from the same sender would have. This suite
//! checks that black-box, Vbox-style, on random workloads and partition
//! schedules:
//!
//! 1. **Lockstep equivalence** (batch interval 1): running the *same*
//!    random schedule of requests, gossip rounds, and partitions under
//!    `Full` and under `Batched` produces identical response sequences
//!    (ids *and* values, in order), identical final local orders,
//!    identical stable-everywhere prefixes, and identical object states.
//! 2. **Eventual equivalence** (batch interval > 1): pacing changes what
//!    each replica knows *when* (so nonstrict response values may
//!    legitimately differ), but every request is still answered and all
//!    replicas of the batched run converge to one order and state.
//!
//! The acceptance bar for this suite is ≥ 256 cases (`PROPTEST_CASES`;
//! CI runs it at 512).

use esds_alg::{Replica, ReplicaConfig};
use esds_core::{ClientId, OpDescriptor, OpId, ReplicaId, SerialDataType};
use proptest::prelude::*;

/// Minimal counter data type (kept local so the test exercises `esds-alg`
/// alone).
#[derive(Clone, Copy, Debug)]
struct Ctr;
#[derive(Clone, PartialEq, Eq, Debug)]
enum Op {
    Inc(i64),
    Read,
}
impl SerialDataType for Ctr {
    type State = i64;
    type Operator = Op;
    type Value = i64;
    fn initial_state(&self) -> i64 {
        0
    }
    fn apply(&self, s: &i64, op: &Op) -> (i64, i64) {
        match op {
            Op::Inc(d) => (s + d, s + d),
            Op::Read => (*s, *s),
        }
    }
}

const N: usize = 3;

/// One step of the random schedule.
#[derive(Clone, Debug)]
struct Step {
    /// Replica receiving the request.
    target: usize,
    /// Increment amount (reads ignore it).
    amount: i64,
    /// Submit a read instead of an increment.
    read: bool,
    /// Make the request strict.
    strict: bool,
    /// Constrain the request after the previously submitted one.
    chain_prev: bool,
    /// Run a gossip round after the request.
    gossip_after: bool,
    /// Partition pattern for that round: 0 = none, 1..=3 = isolate
    /// replica `partition - 1` (no gossip to or from it).
    partition: u8,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    (0..N as u32, 1..5i64, 0..4u8, 0..5u8, 0..3u8, 0..2u8, 0..4u8).prop_map(
        |(t, a, r, s, c, g, p)| Step {
            target: t as usize,
            amount: a,
            read: r == 0,
            strict: s == 0,
            chain_prev: c == 0,
            gossip_after: g == 0,
            partition: p,
        },
    )
}

/// Whether gossip `from → to` is blocked by the round's partition
/// pattern.
fn blocked(partition: u8, from: usize, to: usize) -> bool {
    match partition {
        0 => false,
        p => {
            let isolated = (p - 1) as usize;
            from == isolated || to == isolated
        }
    }
}

/// One full gossip round among non-partitioned pairs. `batched` drives
/// `poll_gossip` (the batched wire contract); otherwise the snapshot
/// path. Returns the response effects in a deterministic (from, to)
/// order.
fn gossip_round(reps: &mut [Replica<Ctr>], partition: u8, batched: bool) -> Vec<(OpId, i64)> {
    let mut responses = Vec::new();
    for from in 0..N {
        for to in 0..N {
            if from == to || blocked(partition, from, to) {
                continue;
            }
            let effects = if batched {
                match reps[from].poll_gossip(ReplicaId(to as u32)) {
                    Some(env) => reps[to].on_gossip_envelope(env),
                    None => Vec::new(),
                }
            } else {
                let g = reps[from].make_gossip(ReplicaId(to as u32));
                reps[to].on_gossip(g)
            };
            responses.extend(effects.into_iter().map(|e| (e.msg.id, e.msg.value)));
        }
    }
    responses
}

/// Runs the schedule under one configuration and returns every observable:
/// the response sequence, each replica's final order and state, and the
/// stable-everywhere prefix of replica 0's order.
#[allow(clippy::type_complexity)]
fn run_schedule(
    cfg: ReplicaConfig,
    steps: &[Step],
    batched: bool,
) -> (Vec<(OpId, i64)>, Vec<Vec<OpId>>, Vec<i64>, Vec<OpId>) {
    let mut reps: Vec<Replica<Ctr>> = (0..N)
        .map(|i| Replica::new(Ctr, ReplicaId(i as u32), N, cfg))
        .collect();
    let mut responses: Vec<(OpId, i64)> = Vec::new();
    let mut last: Option<OpId> = None;
    for (seq, s) in steps.iter().enumerate() {
        let id = OpId::new(ClientId(s.target as u32), seq as u64);
        let op = if s.read { Op::Read } else { Op::Inc(s.amount) };
        let mut desc = OpDescriptor::new(id, op).with_strict(s.strict);
        // A prev constraint must target an operation the receiving
        // replica can eventually learn; any earlier submission works.
        if s.chain_prev {
            if let Some(p) = last {
                desc = desc.with_prev([p]);
            }
        }
        last = Some(id);
        responses.extend(
            reps[s.target]
                .on_request(desc)
                .into_iter()
                .map(|e| (e.msg.id, e.msg.value)),
        );
        if s.gossip_after {
            responses.extend(gossip_round(&mut reps, s.partition, batched));
        }
    }
    // Drain: enough unpartitioned rounds for every op to be done,
    // answered, and stable everywhere (each round is a full exchange;
    // three rounds propagate knowledge-of-knowledge-of-knowledge).
    for _ in 0..5 {
        responses.extend(gossip_round(&mut reps, 0, batched));
    }
    let orders: Vec<Vec<OpId>> = reps.iter().map(|r| r.local_order()).collect();
    let states: Vec<i64> = reps.iter().map(|r| r.current_state()).collect();
    let stable_prefix: Vec<OpId> = reps[0]
        .local_order()
        .into_iter()
        .filter(|x| reps[0].stable_everywhere().contains(x))
        .collect();
    (responses, orders, states, stable_prefix)
}

proptest! {
    /// Property 1: with batch interval 1 the batched protocol is
    /// *lockstep-equivalent* to full snapshots — same responses (values
    /// included), same orders, same stable prefixes, same states.
    #[test]
    fn batched_gossip_is_observably_identical_to_full(
        steps in proptest::collection::vec(step_strategy(), 5..40),
    ) {
        let full = run_schedule(ReplicaConfig::default(), &steps, false);
        let batched = run_schedule(ReplicaConfig::default().with_batched(1), &steps, true);
        prop_assert_eq!(&batched.0, &full.0, "response sequences diverged");
        prop_assert_eq!(&batched.1, &full.1, "local orders diverged");
        prop_assert_eq!(&batched.2, &full.2, "object states diverged");
        prop_assert_eq!(&batched.3, &full.3, "stable prefixes diverged");
        // The schedule itself must be non-trivial for the comparison to
        // mean anything: everything submitted was answered and stabilized.
        prop_assert_eq!(full.0.iter().map(|(id, _)| *id).collect::<std::collections::BTreeSet<_>>().len(), steps.len());
        prop_assert_eq!(full.3.len(), steps.len());
    }

    /// Property 2: with batch intervals > 1 the pacing changes response
    /// *timing* (so nonstrict values may differ) but not the service's
    /// guarantees: every operation answers, and the batched run converges
    /// to one order and one state across replicas with everything stable.
    #[test]
    fn batched_pacing_preserves_convergence(
        steps in proptest::collection::vec(step_strategy(), 5..30),
        interval in 2u32..5,
    ) {
        let cfg = ReplicaConfig::default().with_batched(interval);
        let mut reps: Vec<Replica<Ctr>> = (0..N)
            .map(|i| Replica::new(Ctr, ReplicaId(i as u32), N, cfg))
            .collect();
        let mut answered: std::collections::BTreeSet<OpId> = Default::default();
        for (seq, s) in steps.iter().enumerate() {
            let id = OpId::new(ClientId(s.target as u32), seq as u64);
            let op = if s.read { Op::Read } else { Op::Inc(s.amount) };
            let desc = OpDescriptor::new(id, op).with_strict(s.strict);
            answered.extend(reps[s.target].on_request(desc).iter().map(|e| e.msg.id));
            if s.gossip_after {
                answered.extend(
                    gossip_round(&mut reps, s.partition, true).iter().map(|(id, _)| *id),
                );
            }
        }
        // Drain enough rounds that even interval-4 pacing exchanges
        // several times in each direction.
        for _ in 0..(5 * interval as usize) {
            answered.extend(gossip_round(&mut reps, 0, true).iter().map(|(id, _)| *id));
        }
        prop_assert_eq!(answered.len(), steps.len(), "every request answers");
        let order0 = reps[0].local_order();
        prop_assert_eq!(order0.len(), steps.len());
        for r in &reps[1..] {
            prop_assert_eq!(&r.local_order(), &order0, "orders diverged");
            prop_assert_eq!(r.current_state(), reps[0].current_state(), "states diverged");
        }
        prop_assert_eq!(reps[0].stable_everywhere().len(), steps.len());
    }
}

//! Property test: crash/recovery (§9.3) interacting with §10.2 local
//! compaction must never lose the stable-everywhere prefix.
//!
//! Scenario, randomized by proptest: three replicas process a random
//! request/gossip schedule; replicas 0 and 1 compact aggressively after
//! every gossip round while replica 2 never compacts (the deployment rule
//! documented on [`Replica::compact`]: at least one replica keeps the
//! replay material). Replica 0 then crashes losing volatile memory,
//! recovers from its stable-storage stub, and resynchronizes via gossip.
//!
//! The properties checked after recovery:
//!
//! 1. the operations that were stable-everywhere at replica 0 before the
//!    crash reappear in its rebuilt local order **in the same relative
//!    order** (labels are preserved by the stub's minima, so the eventual
//!    total order is unchanged by the crash — §9.3);
//! 2. all replicas converge to the same local order and object state;
//! 3. the recovered replica's memoized values for the pre-crash stable
//!    prefix agree with the uncompacted witness replica's;
//! 4. the §10.1 memo invariants hold everywhere ([`Replica::check_memo_consistency`]).

use esds_alg::{Replica, ReplicaConfig};
use esds_core::{ClientId, OpDescriptor, OpId, ReplicaId, SerialDataType};
use proptest::prelude::*;

/// Minimal counter data type (kept local so the test exercises `esds-alg`
/// alone).
#[derive(Clone, Copy, Debug)]
struct Ctr;
#[derive(Clone, PartialEq, Eq, Debug)]
enum Op {
    Inc(i64),
    Read,
}
impl SerialDataType for Ctr {
    type State = i64;
    type Operator = Op;
    type Value = i64;
    fn initial_state(&self) -> i64 {
        0
    }
    fn apply(&self, s: &i64, op: &Op) -> (i64, i64) {
        match op {
            Op::Inc(d) => (s + d, s + d),
            Op::Read => (*s, *s),
        }
    }
}

const N: usize = 3;

fn gossip_round(reps: &mut [Replica<Ctr>]) {
    for from in 0..N {
        for to in 0..N {
            if from != to {
                let g = reps[from].make_gossip(ReplicaId(to as u32));
                reps[to].on_gossip(g);
            }
        }
    }
}

/// One step of the random schedule: which replica receives the request,
/// what the operator is, and whether a gossip round (followed by
/// compaction at replicas 0 and 1) runs afterwards.
#[derive(Clone, Debug)]
struct Step {
    target: usize,
    amount: i64,
    read: bool,
    gossip_after: bool,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    (0..N as u32, 1..5i64, 0..4u8, 0..3u8).prop_map(|(t, a, r, g)| Step {
        target: t as usize,
        amount: a,
        read: r == 0,
        gossip_after: g == 0,
    })
}

proptest! {
    #[test]
    fn compacted_crash_recovery_preserves_stable_prefix(
        steps in proptest::collection::vec(step_strategy(), 5..40),
    ) {
        let cfg = ReplicaConfig::default(); // memoize on, gc_gossip off
        let mut reps: Vec<Replica<Ctr>> = (0..N)
            .map(|i| Replica::new(Ctr, ReplicaId(i as u32), N, cfg))
            .collect();

        // Random request/gossip/compaction schedule.
        for (seq, s) in steps.iter().enumerate() {
            let id = OpId::new(ClientId(s.target as u32), seq as u64);
            let op = if s.read { Op::Read } else { Op::Inc(s.amount) };
            reps[s.target].on_request(OpDescriptor::new(id, op));
            if s.gossip_after {
                gossip_round(&mut reps);
                // Aggressive compaction everywhere except the witness.
                reps[0].compact();
                reps[1].compact();
            }
        }
        // Enough rounds for every operation to become stable everywhere.
        for _ in 0..4 {
            gossip_round(&mut reps);
        }
        reps[0].compact();
        reps[1].compact();

        // Pre-crash facts at the replica about to die.
        let stable_pre: Vec<OpId> = reps[0]
            .local_order()
            .into_iter()
            .filter(|x| reps[0].stable_everywhere().contains(x))
            .collect();
        prop_assert_eq!(
            stable_pre.len(),
            steps.len(),
            "after full gossip rounds everything is stable everywhere"
        );
        let state_pre = reps[0].current_state();

        // Crash replica 0 (volatile memory lost; stub survives), recover,
        // and resynchronize: the recovering replica stays passive until it
        // has heard from every peer.
        let stub = reps[0].clone().crash();
        reps[0] = Replica::recover(Ctr, stub, N, cfg);
        prop_assert!(reps[0].is_recovering());
        for _ in 0..4 {
            gossip_round(&mut reps);
        }
        prop_assert!(!reps[0].is_recovering());

        // (1) The stable-everywhere prefix survives with its order.
        let stable_post: Vec<OpId> = reps[0]
            .local_order()
            .into_iter()
            .filter(|x| stable_pre.contains(x))
            .collect();
        prop_assert_eq!(&stable_post, &stable_pre, "stable prefix lost or reordered");

        // (2) Full convergence: same order, same state, everywhere.
        let order0 = reps[0].local_order();
        for r in &reps[1..] {
            prop_assert_eq!(&r.local_order(), &order0);
            prop_assert_eq!(r.current_state(), state_pre);
        }
        prop_assert_eq!(reps[0].current_state(), state_pre);

        // (3) Memoized (eventual-order) values agree with the witness.
        for x in &stable_pre {
            if let (Some(a), Some(b)) = (reps[0].memo_value(*x), reps[2].memo_value(*x)) {
                prop_assert_eq!(a, b, "memoized value of {} diverged", x);
            }
        }

        // (4) §10.1 invariants hold on every replica after the dust settles.
        for r in &reps {
            prop_assert!(r.check_memo_consistency().is_ok(), "{:?}", r.check_memo_consistency());
        }
    }
}

//! The pluggable persistence hook a durable deployment drives.
//!
//! The replica automaton is sans-IO; durability is a *driver* concern.
//! A driver (threaded runtime, TCP node, simulator) that wants durable
//! replicas holds a [`Persistence`] backend per replica and calls
//! [`Persistence::persist`] after every mutating input — request or
//! gossip — **before** releasing the handler's effects (responses to
//! clients, and by extension anything later gossip says about them).
//! This sync-before-release discipline is the whole soundness argument:
//! any fact another process can have observed about this replica is
//! backed by its durable log, so a crash can only lose knowledge nobody
//! was told about.
//!
//! The backend decides internally when to cut a snapshot and truncate
//! its log; the trait deliberately has a single method so drivers stay
//! policy-free. Errors are strings (not a concrete store error type) to
//! keep `esds-alg` free of storage dependencies; drivers treat any
//! error as the replica's death — effects are dropped and the thread or
//! simulated node stops, exactly as if the machine had lost power.

use esds_core::SerialDataType;

use crate::replica::Replica;

/// A durable backend for one replica (implemented by `esds-store`).
pub trait Persistence<T: SerialDataType>: Send {
    /// Durably records everything the replica changed since the last
    /// call (drains [`Replica::take_wal_delta`]), syncing before
    /// returning. May also cut a snapshot / compact the log.
    ///
    /// # Errors
    ///
    /// Any storage failure. The driver must not release the handler's
    /// effects after an error — it treats the replica as crashed.
    fn persist(&mut self, replica: &mut Replica<T>) -> Result<(), String>;
}

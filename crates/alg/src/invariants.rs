//! The paper's invariants (Sections 4, 7, 8, 10) as executable checks over
//! a [`SystemView`].
//!
//! These are the proof obligations of the simulation proof (Theorem 8.4)
//! turned into runtime predicates. They do not *prove* the theorems, but
//! they validate this implementation against every stated invariant on
//! arbitrarily many reachable states; the property tests drive them over
//! randomized executions with loss, duplication, and reordering.
//!
//! Scope: the message-content invariants (the parts of 7.3, 7.5, 7.10,
//! 7.17, 7.18 quantifying over in-flight gossip) are stated by the paper
//! for the *full-snapshot* gossip algorithm. Under the §10.4 optimizations
//! (incremental gossip, GC) messages are deltas and those parts do not
//! apply verbatim; [`check_all`] detects the configuration and checks only
//! the applicable invariants. Replica-state invariants are checked always.

use std::collections::BTreeSet;
use std::fmt;

use esds_core::{csc, Digraph, LabelSlot, OpId, ReplicaId, SerialDataType};

use crate::global::SystemView;
use crate::replica::GossipStrategy;

/// A failed invariant: which one, and what broke.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct InvariantViolation {
    /// Paper identifier, e.g. `"Invariant 7.2"`.
    pub invariant: &'static str,
    /// Human-readable description of the violation.
    pub detail: String,
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.invariant, self.detail)
    }
}

impl std::error::Error for InvariantViolation {}

fn fail(invariant: &'static str, detail: impl Into<String>) -> InvariantViolation {
    InvariantViolation {
        invariant,
        detail: detail.into(),
    }
}

/// Runs every applicable invariant check; returns all violations found
/// (empty = all invariants hold in this state).
pub fn check_all<T: SerialDataType>(view: &SystemView<'_, T>) -> Vec<InvariantViolation> {
    let mut v = Vec::new();
    v.extend(inv_4_users(view));
    v.extend(inv_7_1(view));
    v.extend(inv_7_2(view));
    v.extend(inv_7_4(view));
    v.extend(inv_7_5(view));
    v.extend(inv_7_6(view));
    v.extend(inv_7_7(view));
    v.extend(inv_7_8(view));
    v.extend(inv_7_10(view));
    v.extend(inv_7_11(view));
    v.extend(inv_7_12(view));
    v.extend(inv_7_13(view));
    v.extend(inv_7_15(view));
    v.extend(inv_7_17(view));
    v.extend(inv_7_19(view));
    v.extend(inv_7_20(view));
    v.extend(inv_7_21(view));
    v.extend(inv_8_1(view));
    v.extend(inv_8_3(view));
    v.extend(inv_10_memo(view));
    if full_gossip_messages(view) {
        v.extend(inv_7_3(view));
        v.extend(inv_7_5_messages(view));
        v.extend(inv_7_10_messages(view));
        v.extend(inv_7_17_messages(view));
        v.extend(inv_7_18(view));
    }
    v
}

/// Whether in-flight messages are full snapshots (the configuration the
/// message-content invariants are stated for).
fn full_gossip_messages<T: SerialDataType>(view: &SystemView<'_, T>) -> bool {
    view.replicas.iter().all(|r| {
        r.config().gossip == GossipStrategy::Full
            && !r.config().gc_gossip
            && !r.is_recovering()
            // §10.2 compaction removes descriptors retroactively, so an
            // in-flight message can legitimately be "ahead" of rcvd_r.
            && r.stats().compacted == 0
    })
}

/// Invariants 4.1–4.2: requested ids unique (guaranteed by the map key) and
/// `TC(CSC(requested))` a strict partial order.
pub fn inv_4_users<T: SerialDataType>(view: &SystemView<'_, T>) -> Vec<InvariantViolation> {
    let g = Digraph::from_pairs(csc(view.requested.values()));
    if !g.is_strict_partial_order() {
        return vec![fail(
            "Invariant 4.2",
            "client-specified constraints contain a cycle",
        )];
    }
    for d in view.requested.values() {
        for p in &d.prev {
            if !view.requested.contains_key(p) {
                return vec![fail(
                    "Invariant 4.x",
                    format!("{} depends on unrequested {p}", d.id),
                )];
            }
        }
    }
    Vec::new()
}

/// Invariant 7.1: `done_r[r] = ∪ᵢ done_r[i]` and `stable_r[r] = ∪ᵢ
/// stable_r[i]`.
pub fn inv_7_1<T: SerialDataType>(view: &SystemView<'_, T>) -> Vec<InvariantViolation> {
    let mut out = Vec::new();
    for rep in &view.replicas {
        let r = rep.id();
        for i in 0..rep.n() as u32 {
            let i = ReplicaId(i);
            if !rep.done(i).is_subset(rep.done_here()) {
                out.push(fail(
                    "Invariant 7.1",
                    format!("done_{r}[{i}] ⊄ done_{r}[{r}]"),
                ));
            }
            if !rep.stable(i).is_subset(rep.stable_here()) {
                out.push(fail(
                    "Invariant 7.1",
                    format!("stable_{r}[{i}] ⊄ stable_{r}[{r}]"),
                ));
            }
        }
    }
    out
}

/// Invariant 7.2: `stable_r[r] = ∩ᵢ done_r[i]`.
pub fn inv_7_2<T: SerialDataType>(view: &SystemView<'_, T>) -> Vec<InvariantViolation> {
    let mut out = Vec::new();
    for rep in &view.replicas {
        let r = rep.id();
        let mut inter: Option<BTreeSet<OpId>> = None;
        for i in 0..rep.n() as u32 {
            let d = rep.done(ReplicaId(i));
            inter = Some(match inter {
                None => d.clone(),
                Some(acc) => acc.intersection(d).copied().collect(),
            });
        }
        let inter = inter.unwrap_or_default();
        if &inter != rep.stable_here() {
            out.push(fail(
                "Invariant 7.2",
                format!(
                    "stable_{r}[{r}] has {} ops, ∩ᵢ done_{r}[i] has {}",
                    rep.stable_here().len(),
                    inter.len()
                ),
            ));
        }
    }
    out
}

/// Invariant 7.3 (message part): a gossip message from `r` is no more
/// up-to-date than `r`'s current state, and `S ⊆ D`.
pub fn inv_7_3<T: SerialDataType>(view: &SystemView<'_, T>) -> Vec<InvariantViolation> {
    let mut out = Vec::new();
    for (_, m) in &view.gossip_in_flight {
        let rep = view.replicas[m.from.0 as usize];
        let r = m.from;
        if !m.rcvd.iter().all(|d| rep.rcvd().contains_key(&d.id)) {
            out.push(fail("Invariant 7.3", format!("R_m ⊄ rcvd_{r}")));
        }
        if !m.done.iter().all(|x| rep.done_here().contains(x)) {
            out.push(fail("Invariant 7.3", format!("D_m ⊄ done_{r}[{r}]")));
        }
        if !m
            .labels
            .iter()
            .all(|(id, l)| rep.labels().get(*id) <= LabelSlot::Fin(*l))
        {
            out.push(fail("Invariant 7.3", format!("L_m < label_{r} somewhere")));
        }
        if !m.stable.iter().all(|x| rep.stable_here().contains(x)) {
            out.push(fail("Invariant 7.3", format!("S_m ⊄ stable_{r}[{r}]")));
        }
        let d: BTreeSet<OpId> = m.done.iter().copied().collect();
        if !m.stable.iter().all(|x| d.contains(x)) {
            out.push(fail("Invariant 7.3", "S_m ⊄ D_m".to_string()));
        }
    }
    out
}

/// Invariant 7.4: `done_r[i] ⊆ done_i[i]` and `stable_r[i] ⊆ stable_i[i]`
/// — third-party knowledge is never ahead of the subject. (Does not hold
/// across a crash that lost `i`'s volatile memory; skip in crash tests.)
pub fn inv_7_4<T: SerialDataType>(view: &SystemView<'_, T>) -> Vec<InvariantViolation> {
    let mut out = Vec::new();
    for rep in &view.replicas {
        let r = rep.id();
        for other in &view.replicas {
            let i = other.id();
            if !rep.done(i).is_subset(other.done_here()) {
                out.push(fail(
                    "Invariant 7.4",
                    format!("done_{r}[{i}] ⊄ done_{i}[{i}]"),
                ));
            }
            if !rep.stable(i).is_subset(other.stable_here()) {
                out.push(fail(
                    "Invariant 7.4",
                    format!("stable_{r}[{i}] ⊄ stable_{i}[{i}]"),
                ));
            }
        }
    }
    out
}

/// Invariant 7.5 (replica part): `done_r[r].id = {id : label_r(id) < ∞}`.
pub fn inv_7_5<T: SerialDataType>(view: &SystemView<'_, T>) -> Vec<InvariantViolation> {
    let mut out = Vec::new();
    for rep in &view.replicas {
        let r = rep.id();
        let labeled: BTreeSet<OpId> = rep.labels().iter().map(|(id, _)| id).collect();
        if &labeled != rep.done_here() {
            out.push(fail(
                "Invariant 7.5",
                format!(
                    "labeled ids ({}) ≠ done_{r}[{r}] ({})",
                    labeled.len(),
                    rep.done_here().len()
                ),
            ));
        }
    }
    out
}

/// Invariant 7.5 (message part): `D_m.id = {id : L_m(id) < ∞}`.
pub fn inv_7_5_messages<T: SerialDataType>(view: &SystemView<'_, T>) -> Vec<InvariantViolation> {
    let mut out = Vec::new();
    for (_, m) in &view.gossip_in_flight {
        let labeled: BTreeSet<OpId> = m.labels.iter().map(|(id, _)| *id).collect();
        let done: BTreeSet<OpId> = m.done.iter().copied().collect();
        if labeled != done {
            out.push(fail("Invariant 7.5", "D_m.id ≠ labeled ids of L_m"));
        }
    }
    out
}

/// Invariant 7.6: everything in the system was requested.
pub fn inv_7_6<T: SerialDataType>(view: &SystemView<'_, T>) -> Vec<InvariantViolation> {
    let mut out = Vec::new();
    for rep in &view.replicas {
        for id in rep.rcvd().keys() {
            if !view.requested.contains_key(id) {
                out.push(fail(
                    "Invariant 7.6",
                    format!("{id} received but never requested"),
                ));
            }
        }
    }
    for (_, m) in &view.gossip_in_flight {
        for d in &m.rcvd {
            if !view.requested.contains_key(&d.id) {
                out.push(fail(
                    "Invariant 7.6",
                    format!("{} gossiped but never requested", d.id),
                ));
            }
        }
    }
    out
}

/// Invariant 7.7: responded operations are done at some replica.
pub fn inv_7_7<T: SerialDataType>(view: &SystemView<'_, T>) -> Vec<InvariantViolation> {
    let ops = view.ops();
    view.responded
        .iter()
        .filter(|id| !ops.contains(id))
        .map(|id| fail("Invariant 7.7", format!("{id} responded but not done")))
        .collect()
}

/// Invariant 7.8: requested operations no longer waiting are done
/// somewhere.
pub fn inv_7_8<T: SerialDataType>(view: &SystemView<'_, T>) -> Vec<InvariantViolation> {
    let ops = view.ops();
    view.requested
        .keys()
        .filter(|id| !view.waiting.contains(id) && !ops.contains(id))
        .map(|id| {
            fail(
                "Invariant 7.8",
                format!("{id} neither waiting nor done anywhere"),
            )
        })
        .collect()
}

/// Invariant 7.10 (replica part): client-specified constraints are
/// respected by every replica's labels: `(id, id′) ∈ CSC(ops)` implies
/// `label_r(id) ≤ label_r(id′)`.
pub fn inv_7_10<T: SerialDataType>(view: &SystemView<'_, T>) -> Vec<InvariantViolation> {
    let mut out = Vec::new();
    let descs = view.op_descriptors();
    for (a, b) in csc(descs.values()) {
        for rep in &view.replicas {
            if rep.labels().get(a) > rep.labels().get(b) {
                out.push(fail(
                    "Invariant 7.10",
                    format!(
                        "label_{}({a}) > label_{}({b}) despite {a} ∈ {b}.prev",
                        rep.id(),
                        rep.id()
                    ),
                ));
            }
        }
    }
    out
}

/// Invariant 7.10 (message part): same, for the label functions carried by
/// in-flight gossip.
pub fn inv_7_10_messages<T: SerialDataType>(view: &SystemView<'_, T>) -> Vec<InvariantViolation> {
    let mut out = Vec::new();
    let descs = view.op_descriptors();
    let pairs = csc(descs.values());
    for (_, m) in &view.gossip_in_flight {
        let label = |id: OpId| -> LabelSlot {
            m.labels
                .iter()
                .find(|(i, _)| *i == id)
                .map(|(_, l)| LabelSlot::Fin(*l))
                .unwrap_or(LabelSlot::Inf)
        };
        for (a, b) in &pairs {
            if label(*a) > label(*b) {
                out.push(fail(
                    "Invariant 7.10",
                    format!("L_m({a}) > L_m({b}) despite constraint"),
                ));
            }
        }
    }
    out
}

/// Invariant 7.11: `TC(CSC(ops) ∪ lc_r)` is a strict partial order.
pub fn inv_7_11<T: SerialDataType>(view: &SystemView<'_, T>) -> Vec<InvariantViolation> {
    let mut out = Vec::new();
    let descs = view.op_descriptors();
    let ops = view.ops();
    for rep in &view.replicas {
        let mut g = view.lc(rep.id(), &ops);
        for (a, b) in csc(descs.values()) {
            g.add_edge(a, b);
        }
        if !g.is_strict_partial_order() {
            out.push(fail(
                "Invariant 7.11",
                format!("TC(CSC(ops) ∪ lc_{}) has a cycle", rep.id()),
            ));
        }
    }
    out
}

/// Invariant 7.12: `TC(CSC(ops) ∪ sc)` is a strict partial order.
pub fn inv_7_12<T: SerialDataType>(view: &SystemView<'_, T>) -> Vec<InvariantViolation> {
    let descs = view.op_descriptors();
    let mut g = view.sc();
    for (a, b) in csc(descs.values()) {
        g.add_edge(a, b);
    }
    if g.is_strict_partial_order() {
        Vec::new()
    } else {
        vec![fail("Invariant 7.12", "TC(CSC(ops) ∪ sc) has a cycle")]
    }
}

/// Invariant 7.13: operations bearing a label from 𝓛ᵣ anywhere in the
/// system are done at `r`.
pub fn inv_7_13<T: SerialDataType>(view: &SystemView<'_, T>) -> Vec<InvariantViolation> {
    let mut out = Vec::new();
    let mut check = |id: OpId, owner: ReplicaId, whence: String| {
        let rep = view.replicas[owner.0 as usize];
        if !rep.done_here().contains(&id) {
            out.push(fail(
                "Invariant 7.13",
                format!("{id} has a label from {owner} ({whence}) but is not done at {owner}"),
            ));
        }
    };
    for rep in &view.replicas {
        for (id, l) in rep.labels().iter() {
            check(id, l.replica, format!("at {}", rep.id()));
        }
    }
    for (_, m) in &view.gossip_in_flight {
        for (id, l) in &m.labels {
            check(*id, l.replica, format!("in gossip from {}", m.from));
        }
    }
    out
}

/// Invariant 7.15: `lc_r` totally orders `done_r[r]` (labels are unique at
/// each replica).
pub fn inv_7_15<T: SerialDataType>(view: &SystemView<'_, T>) -> Vec<InvariantViolation> {
    let mut out = Vec::new();
    for rep in &view.replicas {
        // LabelMap is injective by construction; totality = every done op
        // labeled, i.e. Invariant 7.5, plus distinctness, which the
        // two-sided map enforces. Re-verify counts anyway.
        let order = rep.local_order();
        if order.len() != rep.done_here().len() {
            out.push(fail(
                "Invariant 7.15",
                format!("local order at {} misses done ops", rep.id()),
            ));
        }
    }
    out
}

/// Invariant 7.17 (replica part): if some replica has label `l ∈ 𝓛ᵣ` for
/// `id`, then `label_r(id) ≤ l` — the label's *generator* always holds the
/// smallest value.
pub fn inv_7_17<T: SerialDataType>(view: &SystemView<'_, T>) -> Vec<InvariantViolation> {
    let mut out = Vec::new();
    for rep in &view.replicas {
        for (id, l) in rep.labels().iter() {
            let gen = view.replicas[l.replica.0 as usize];
            if gen.labels().get(id) > LabelSlot::Fin(l) {
                out.push(fail(
                    "Invariant 7.17",
                    format!(
                        "{} holds {l} for {id} but generator {} has a larger label",
                        rep.id(),
                        l.replica
                    ),
                ));
            }
        }
    }
    out
}

/// Invariant 7.17 (message part): same for labels in flight.
pub fn inv_7_17_messages<T: SerialDataType>(view: &SystemView<'_, T>) -> Vec<InvariantViolation> {
    let mut out = Vec::new();
    for (_, m) in &view.gossip_in_flight {
        for (id, l) in &m.labels {
            let gen = view.replicas[l.replica.0 as usize];
            if gen.labels().get(*id) > LabelSlot::Fin(*l) {
                out.push(fail(
                    "Invariant 7.17",
                    format!("gossip holds {l} for {id} but its generator has larger"),
                ));
            }
        }
    }
    out
}

/// Invariant 7.18: if `label_r(id′) = l ∈ 𝓛ᵣ` and `l < label_r(id)`, then
/// anyone who knows `id` is done at `r` holds a label ≤ l for `id′`.
pub fn inv_7_18<T: SerialDataType>(view: &SystemView<'_, T>) -> Vec<InvariantViolation> {
    let mut out = Vec::new();
    for rep in &view.replicas {
        let r = rep.id();
        for (id_prime, l) in rep.labels().iter() {
            if l.replica != r {
                continue;
            }
            // Candidate ids with larger label at r (or unlabeled = ∞).
            for id in view.requested.keys() {
                if rep.labels().get(*id) <= LabelSlot::Fin(l) {
                    continue;
                }
                for other in &view.replicas {
                    if other.done(r).contains(id)
                        && other.labels().get(id_prime) > LabelSlot::Fin(l)
                    {
                        out.push(fail(
                            "Invariant 7.18",
                            format!(
                                "{} knows {id} done at {r} but label({id_prime}) > {l}",
                                other.id()
                            ),
                        ));
                    }
                }
                for (_, m) in &view.gossip_in_flight {
                    let msg_label = |want: OpId| -> LabelSlot {
                        m.labels
                            .iter()
                            .find(|(i, _)| *i == want)
                            .map(|(_, l)| LabelSlot::Fin(*l))
                            .unwrap_or(LabelSlot::Inf)
                    };
                    let in_d = m.from == r && m.done.contains(id);
                    let in_s = m.stable.contains(id);
                    if (in_d || in_s) && msg_label(id_prime) > LabelSlot::Fin(l) {
                        out.push(fail(
                            "Invariant 7.18",
                            format!("gossip shows {id} done at {r} but L_m({id_prime}) > {l}"),
                        ));
                    }
                }
            }
        }
    }
    out
}

/// Invariant 7.19: a replica with a stable operation holds the system-wide
/// minimum label for every operation at or below it.
pub fn inv_7_19<T: SerialDataType>(view: &SystemView<'_, T>) -> Vec<InvariantViolation> {
    let mut out = Vec::new();
    let ops = view.ops();
    for rep in &view.replicas {
        let r = rep.id();
        let max_stable = rep.stable_here().iter().map(|x| view.minlabel(*x)).max();
        let Some(max_stable) = max_stable else {
            continue;
        };
        for id in &ops {
            let ml = view.minlabel(*id);
            if ml <= max_stable && rep.labels().get(*id) != ml {
                out.push(fail(
                    "Invariant 7.19",
                    format!("{r} has a stable op above {id} but label_{r}({id}) ≠ minlabel({id})"),
                ));
            }
        }
    }
    out
}

/// Invariant 7.20: operations whose minimum label is universally agreed
/// are ordered into the system constraints.
pub fn inv_7_20<T: SerialDataType>(view: &SystemView<'_, T>) -> Vec<InvariantViolation> {
    let mut out = Vec::new();
    let ops = view.ops();
    let descs = view.op_descriptors();
    let mut combined = view.sc();
    for (a, b) in csc(descs.values()) {
        combined.add_edge(a, b);
    }
    for id in &ops {
        let ml = view.minlabel(*id);
        let agreed = view.replicas.iter().all(|r| r.labels().get(*id) == ml);
        if !agreed {
            continue;
        }
        for other in &ops {
            if other == id {
                continue;
            }
            if ml < view.minlabel(*other) && !combined.precedes(id, other) {
                out.push(fail(
                    "Invariant 7.20",
                    format!("agreed minlabel({id}) < minlabel({other}) but not in TC(CSC ∪ sc)"),
                ));
            }
        }
    }
    out
}

/// Invariant 7.21: operations stable at *every* replica are ordered in
/// `TC(CSC(ops) ∪ sc)` exactly by their minimum labels.
pub fn inv_7_21<T: SerialDataType>(view: &SystemView<'_, T>) -> Vec<InvariantViolation> {
    let mut out = Vec::new();
    let ops = view.ops();
    let descs = view.op_descriptors();
    let mut combined = view.sc();
    for (a, b) in csc(descs.values()) {
        combined.add_edge(a, b);
    }
    // ∩_r stable_r[r]
    let mut stable_all: Option<BTreeSet<OpId>> = None;
    for rep in &view.replicas {
        stable_all = Some(match stable_all {
            None => rep.stable_here().clone(),
            Some(acc) => acc.intersection(rep.stable_here()).copied().collect(),
        });
    }
    for id in stable_all.unwrap_or_default() {
        for other in &ops {
            if *other == id {
                continue;
            }
            let forward = combined.precedes(&id, other);
            let by_label = view.minlabel(id) < view.minlabel(*other);
            if forward != by_label {
                out.push(fail(
                    "Invariant 7.21",
                    format!(
                        "stable {id} vs {other}: order-by-constraints {forward} ≠ order-by-minlabel {by_label}"
                    ),
                ));
            }
        }
    }
    out
}

/// Invariant 8.1: `po` is a strict partial order spanning only `ops`.
pub fn inv_8_1<T: SerialDataType>(view: &SystemView<'_, T>) -> Vec<InvariantViolation> {
    let po = view.po();
    let ops = view.ops();
    let mut out = Vec::new();
    if !po.is_strict_partial_order() {
        out.push(fail("Invariant 8.1", "po has a cycle"));
    }
    if !po.span().is_subset(&ops) {
        out.push(fail("Invariant 8.1", "span(po) ⊄ ops"));
    }
    out
}

/// Invariant 8.3: for `x` stable at every replica and any done `y`,
/// `x ≺_po y ⟺ minlabel(x) < minlabel(y)`.
pub fn inv_8_3<T: SerialDataType>(view: &SystemView<'_, T>) -> Vec<InvariantViolation> {
    let mut out = Vec::new();
    let po = view.po();
    let ops = view.ops();
    let mut stable_all: Option<BTreeSet<OpId>> = None;
    for rep in &view.replicas {
        stable_all = Some(match stable_all {
            None => rep.stable_here().clone(),
            Some(acc) => acc.intersection(rep.stable_here()).copied().collect(),
        });
    }
    for x in stable_all.unwrap_or_default() {
        for y in &ops {
            if *y == x {
                continue;
            }
            let forward = po.precedes(&x, y);
            let by_label = view.minlabel(x) < view.minlabel(*y);
            if forward != by_label {
                out.push(fail(
                    "Invariant 8.3",
                    format!("stable {x} vs {y}: po {forward} ≠ minlabel order {by_label}"),
                ));
            }
        }
    }
    out
}

/// Invariants 10.1/10.4: per-replica memoization consistency.
pub fn inv_10_memo<T: SerialDataType>(view: &SystemView<'_, T>) -> Vec<InvariantViolation> {
    let mut out = Vec::new();
    for rep in &view.replicas {
        if let Err(e) = rep.check_memo_consistency() {
            out.push(fail("Invariant 10.1/10.4", format!("at {}: {e}", rep.id())));
        }
    }
    out
}

/// Checks the *monotonicity lemmas* across successive states: the system
/// constraints only grow (Lemma 7.9) and `po` only grows (Lemma 8.2).
///
/// Stateful: feed it every observed state in order. Only valid for
/// full-snapshot gossip (the lemmas are stated for the base algorithm).
#[derive(Default)]
pub struct MonotonicityChecker {
    prev_sc: BTreeSet<(OpId, OpId)>,
    prev_po: BTreeSet<(OpId, OpId)>,
}

impl MonotonicityChecker {
    /// Creates a checker with no history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes the next state; returns violations of Lemma 7.9 / 8.2
    /// relative to the previous observation.
    pub fn observe<T: SerialDataType>(
        &mut self,
        view: &SystemView<'_, T>,
    ) -> Vec<InvariantViolation> {
        let mut out = Vec::new();
        let sc: BTreeSet<(OpId, OpId)> = view.sc().edges().collect();
        let po: BTreeSet<(OpId, OpId)> = view.po().transitive_closure().edges().collect();
        for pair in &self.prev_sc {
            if !sc.contains(pair) {
                out.push(fail(
                    "Lemma 7.9",
                    format!("sc lost pair {} ≺ {}", pair.0, pair.1),
                ));
            }
        }
        for pair in &self.prev_po {
            if !po.contains(pair) {
                out.push(fail(
                    "Lemma 8.2",
                    format!("po lost pair {} ≺ {}", pair.0, pair.1),
                ));
            }
        }
        self.prev_sc = sc;
        self.prev_po = po;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replica::{Replica, ReplicaConfig};
    use esds_core::{ClientId, OpDescriptor};
    use std::collections::BTreeMap;

    #[derive(Clone, Copy, Debug)]
    struct Ctr;
    #[derive(Clone, PartialEq, Eq, Debug)]
    enum Op {
        Inc,
    }
    impl SerialDataType for Ctr {
        type State = i64;
        type Operator = Op;
        type Value = i64;
        fn initial_state(&self) -> i64 {
            0
        }
        fn apply(&self, s: &i64, _op: &Op) -> (i64, i64) {
            (s + 1, s + 1)
        }
    }

    fn id(c: u32, s: u64) -> OpId {
        OpId::new(ClientId(c), s)
    }

    /// Drives a 3-replica system through a small execution, checking all
    /// invariants after every event.
    #[test]
    fn invariants_hold_throughout_small_execution() {
        let n = 3;
        let mut reps: Vec<Replica<Ctr>> = (0..n)
            .map(|i| Replica::new(Ctr, ReplicaId(i), n as usize, ReplicaConfig::default()))
            .collect();
        let mut requested: BTreeMap<OpId, OpDescriptor<Op>> = BTreeMap::new();
        let mut responded: BTreeSet<OpId> = BTreeSet::new();
        let mut waiting: BTreeSet<OpId> = BTreeSet::new();
        let mut mono = MonotonicityChecker::new();

        let check = |reps: &Vec<Replica<Ctr>>,
                     requested: &BTreeMap<OpId, OpDescriptor<Op>>,
                     responded: &BTreeSet<OpId>,
                     waiting: &BTreeSet<OpId>,
                     mono: &mut MonotonicityChecker| {
            let view = SystemView {
                replicas: reps.iter().collect(),
                gossip_in_flight: Vec::new(),
                requested: requested.clone(),
                waiting: waiting.clone(),
                responded: responded.clone(),
            };
            let violations = check_all(&view);
            assert!(violations.is_empty(), "violations: {violations:?}");
            let mv = mono.observe(&view);
            assert!(mv.is_empty(), "monotonicity: {mv:?}");
        };

        for round in 0..4u64 {
            // Each replica gets one request; the round number doubles as
            // the per-client sequence number.
            for i in 0..n {
                let d = OpDescriptor::new(id(i, round), Op::Inc).with_strict(round % 2 == 0);
                requested.insert(d.id, d.clone());
                waiting.insert(d.id);
                let fx = reps[i as usize].on_request(d);
                for e in fx {
                    responded.insert(e.msg.id);
                    waiting.remove(&e.msg.id);
                }
                check(&reps, &requested, &responded, &waiting, &mut mono);
            }
            // Full gossip exchange.
            for a in 0..n as usize {
                for b in 0..n as usize {
                    if a == b {
                        continue;
                    }
                    let g = reps[a].make_gossip(ReplicaId(b as u32));
                    let fx = reps[b].on_gossip(g);
                    for e in fx {
                        responded.insert(e.msg.id);
                        waiting.remove(&e.msg.id);
                    }
                    check(&reps, &requested, &responded, &waiting, &mut mono);
                }
            }
        }
        // Three more gossip exchanges let the last strict operations
        // stabilize everywhere (Theorem 9.3 allows up to three rounds).
        for _ in 0..3 {
            for a in 0..n as usize {
                for b in 0..n as usize {
                    if a == b {
                        continue;
                    }
                    let g = reps[a].make_gossip(ReplicaId(b as u32));
                    let fx = reps[b].on_gossip(g);
                    for e in fx {
                        responded.insert(e.msg.id);
                        waiting.remove(&e.msg.id);
                    }
                    check(&reps, &requested, &responded, &waiting, &mut mono);
                }
            }
        }
        // Everything eventually answered.
        assert!(waiting.is_empty(), "unanswered: {waiting:?}");
    }

    #[test]
    fn violation_display() {
        let v = fail("Invariant 7.2", "mismatch");
        assert_eq!(v.to_string(), "Invariant 7.2: mismatch");
    }
}

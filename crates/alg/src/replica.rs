//! The replica automaton (paper Fig. 7) with the Section 10 optimizations.
//!
//! A replica is a *sans-IO* state machine: inputs are requests, gossip
//! messages, and "make a gossip message now" prompts; outputs are response
//! effects. Both the discrete-event simulator (`esds-harness`) and the
//! threaded runtime (`esds-runtime`) drive this same type, so properties
//! verified under simulation transfer to the deployment.
//!
//! ## The replica state, in the paper's vocabulary (§6.3)
//!
//! Every replica `r` maintains five components; understanding their roles
//! is most of understanding the algorithm:
//!
//! * **`pending_r`** — identifiers of requests received directly from
//!   front ends and not yet answered. Only entries of `pending_r` ever
//!   generate responses; operations learned through gossip are applied
//!   but answered by whichever replica received them firsthand.
//!
//! * **`rcvd_r`** — every operation descriptor `r` has *received*, whether
//!   directly or via gossip. This is the replica's knowledge of the
//!   operation set `O`; it only grows (until §10.2 compaction purges the
//!   descriptors — never the knowledge — of globally-finished
//!   operations).
//!
//! * **`done_r[i]`** (one set per replica `i`) — the operations `r`
//!   *knows* have been **done** at `i`, i.e. `i` has performed `do_it`
//!   for them: assigned a label and scheduled them into its local order.
//!   `done_r[r]` is ground truth about `r` itself; for `i ≠ r` the set is
//!   (possibly stale) knowledge learned from gossip, always a subset of
//!   the truth (Invariant 7.x monotonicity). An operation may only be
//!   done after every operation in its `prev` set is done (the
//!   client-specified constraints, §2.3).
//!
//! * **`stable_r[i]`** — the operations `r` knows are **stable** at `i`.
//!   An operation is stable at `r` when `r` knows it is done at *every*
//!   replica: `stable_r[r] = ∩ᵢ done_r[i]` (Invariant 7.2). Once stable
//!   at `r`, its label can never shrink again — no replica will relabel
//!   it — so the prefix of the local order up to the largest stable label
//!   is frozen (*solid*, §10.1), which is what memoization exploits. The
//!   intersection `∩ᵢ stable_r[i]` ("stable everywhere") is the gate for
//!   **strict** responses: a strict operation answers only when `r` knows
//!   every replica has it stable, making the response consistent with the
//!   eventual total order (Theorem 5.8).
//!
//! * **`label_r`** — the minimum label seen per operation (`∞` if
//!   unlabeled). Labels come from per-replica well-ordered label sets
//!   `𝓛ᵣ` (§6.3); gossip merges them by minimum, so all replicas converge
//!   to the system-wide minimum label per operation, and sorting by that
//!   minimum label *is* the eventual total order.
//!
//! Gossip (`send_{rr'}` / `receive_{r'r}`, Fig. 7) exchanges the four
//! knowledge components `(R, D, L, S)` = (`rcvd`, `done[r]`, `label`,
//! `stable[r]`); receiving merges by union/minimum, which is commutative
//! and idempotent — duplicated or reordered gossip is harmless.
//!
//! The paper's fine-grained actions (`do_it`, `send_response`) are run to
//! fixpoint inside each event handler; this batching is a refinement that
//! the conformance observer in `esds-harness` checks against `ESDS-II`.

use std::collections::{BTreeMap, BTreeSet};

use esds_core::{
    ClientId, Digraph, Label, LabelGenerator, LabelMap, OpDescriptor, OpId, ReplicaId,
    SerialDataType,
};

use crate::messages::{GossipMsg, ResponseMsg};

/// Which gossip construction [`Replica::make_gossip`] uses (paper §10.4).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum GossipStrategy {
    /// The paper's algorithm: every gossip message carries the full
    /// `(R, D, L, S)` snapshot.
    #[default]
    Full,
    /// Send only what changed since the last gossip to that peer. Safe on
    /// reliable channels (the components are merged with commutative set
    /// unions / label minima, so reordering is harmless), unsafe under
    /// message loss.
    Incremental,
}

/// How response values are produced (paper §10.1 / §10.3).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum ValueStrategy {
    /// Recompute along the local label order on demand, starting from the
    /// memoized prefix when available (`ESDS-Alg` / `ESDS-Alg′`).
    #[default]
    Recompute,
    /// The `Commute` automaton of Fig. 11: maintain a *current state* `cs_r`
    /// updated as each operation is done (in a CSC-consistent order) and fix
    /// every value at do-time. Sound only for `SafeUsers` workloads that
    /// CSC-order all non-commuting operations (Lemma 10.6); see
    /// [`crate::commute`].
    EagerCommute,
}

/// Configuration of one replica.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct ReplicaConfig {
    /// Enable the §10.1 memoization of the solid prefix (`ESDS-Alg′`).
    pub memoize: bool,
    /// Value production strategy (§10.3).
    pub value_strategy: ValueStrategy,
    /// Gossip construction strategy (§10.4).
    pub gossip: GossipStrategy,
    /// Prune from gossip to peer `p` the `R`/`D`/`L` entries of operations
    /// `r` knows are stable at `p` (§10.2/§10.4 memory & message GC). The
    /// `S` component is never pruned (peers still count stability votes).
    /// Incompatible with crash-recovery experiments (see `DESIGN.md`).
    pub gc_gossip: bool,
    /// Attach to each response a witness: the local label order up to the
    /// answered operation (used by the `esds-spec` checkers; costs memory).
    pub record_witness: bool,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        ReplicaConfig {
            memoize: true,
            value_strategy: ValueStrategy::Recompute,
            gossip: GossipStrategy::Full,
            gc_gossip: false,
            record_witness: false,
        }
    }
}

impl ReplicaConfig {
    /// The paper's base algorithm, no optimizations (used as the ablation
    /// baseline).
    pub fn basic() -> Self {
        ReplicaConfig {
            memoize: false,
            value_strategy: ValueStrategy::Recompute,
            gossip: GossipStrategy::Full,
            gc_gossip: false,
            record_witness: false,
        }
    }

    /// The `Commute` automaton of Fig. 11 (§10.3): eager values plus
    /// memoization (strict responses use the memoized, eventual-order
    /// value). Only sound for `SafeUsers` workloads.
    pub fn commute() -> Self {
        ReplicaConfig {
            memoize: true,
            value_strategy: ValueStrategy::EagerCommute,
            gossip: GossipStrategy::Full,
            gc_gossip: false,
            record_witness: false,
        }
    }

    /// Enables witness recording (checker support).
    #[must_use]
    pub fn with_witness(mut self) -> Self {
        self.record_witness = true;
        self
    }

    /// Sets the gossip strategy.
    #[must_use]
    pub fn with_gossip(mut self, g: GossipStrategy) -> Self {
        self.gossip = g;
        self
    }

    /// Enables gossip GC.
    #[must_use]
    pub fn with_gc(mut self) -> Self {
        self.gc_gossip = true;
        self
    }
}

/// An output of the replica: send a response message to a client's front
/// end.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RespondEffect<V> {
    /// Destination front end.
    pub client: ClientId,
    /// The response message.
    pub msg: ResponseMsg<V>,
}

/// Counters for the experiments (ablations A1/A3 in `DESIGN.md`).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct ReplicaStats {
    /// `do_it` actions performed.
    pub do_its: u64,
    /// Responses computed.
    pub responses: u64,
    /// Data-type `apply` calls spent computing response values (the cost
    /// memoization attacks; excludes applies spent building memo state).
    pub response_applies: u64,
    /// Data-type `apply` calls spent advancing the memo prefix.
    pub memo_applies: u64,
    /// Data-type `apply` calls spent maintaining the eager current state
    /// (`cs_r` of Fig. 11; §10.3 mode only).
    pub eager_applies: u64,
    /// Gossip messages received.
    pub gossip_in: u64,
    /// Gossip messages produced.
    pub gossip_out: u64,
    /// Total approximate bytes of produced gossip.
    pub gossip_out_bytes: u64,
    /// Descriptors purged by §10.2 local compaction ([`Replica::compact`]).
    pub compacted: u64,
}

/// What a crashed replica retains in stable storage (paper §9.3): its label
/// counter and the locally-generated labels that were system minima.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RecoveryStub {
    /// The replica's identity.
    pub id: ReplicaId,
    /// Label-counter floor, so fresh labels never collide with pre-crash
    /// ones.
    pub next_counter: u64,
    /// Locally-generated labels that were the replica's current minima:
    /// without these, a recovered replica could assign a *larger* label to
    /// an operation whose system-wide minimum it previously held, changing
    /// the eventual total order retroactively.
    pub local_min_labels: Vec<(OpId, Label)>,
}

/// Memoization state (paper §10.1, `ESDS-Alg′`): the *solid* prefix of the
/// local label order — operations at or below the largest stable label —
/// whose values and cumulative state never change (Lemma 10.2).
#[derive(Clone, Debug)]
struct Memo<T: SerialDataType> {
    /// Ids in memoized order (= label order restricted to the prefix).
    order: Vec<OpId>,
    /// Label of the last memoized operation.
    last_label: Option<Label>,
    /// `ms_r`: state after applying the memoized prefix.
    state: T::State,
    /// `mv_r`: fixed values of memoized operations.
    values: BTreeMap<OpId, T::Value>,
}

/// §10.3 eager-value state (Fig. 11): the current state `cs_r` and the
/// do-time values `val_r`.
#[derive(Clone, Debug)]
struct EagerState<T: SerialDataType> {
    cs: T::State,
    vals: BTreeMap<OpId, T::Value>,
}

/// Per-peer incremental-gossip watermark: what has already been sent.
#[derive(Clone, Debug, Default)]
struct Watermark {
    rcvd: BTreeSet<OpId>,
    done: BTreeSet<OpId>,
    labels: BTreeMap<OpId, Label>,
    stable: BTreeSet<OpId>,
}

/// The replica automaton of paper Fig. 7 (see module docs).
#[derive(Clone, Debug)]
pub struct Replica<T: SerialDataType> {
    dt: T,
    id: ReplicaId,
    n: usize,
    config: ReplicaConfig,

    pending: BTreeSet<OpId>,
    rcvd: BTreeMap<OpId, OpDescriptor<T::Operator>>,
    done: Vec<BTreeSet<OpId>>,
    stable: Vec<BTreeSet<OpId>>,
    labels: LabelMap,
    gen: LabelGenerator,

    /// Count of replicas `i` with `x ∈ done[i]` — when it reaches `n` the
    /// operation is done everywhere `r` knows of, i.e. stable at `r`
    /// (Invariant 7.2).
    done_at_count: BTreeMap<OpId, u32>,
    /// Count of replicas `i` with `x ∈ stable[i]`.
    stable_at_count: BTreeMap<OpId, u32>,
    /// `∩ᵢ stable_r[i]` — the strict-response gate.
    stable_everywhere: BTreeSet<OpId>,

    /// Dependency bookkeeping: ops blocked on a prev not yet done, and the
    /// reverse map from a missing prev to its dependents.
    blocked_on: BTreeMap<OpId, usize>,
    blockers: BTreeMap<OpId, Vec<OpId>>,
    ready: Vec<OpId>,

    memo: Option<Memo<T>>,
    /// §10.3 state: `cs_r` (current state over all done ops in do-order)
    /// and `val_r` (values fixed at do-time).
    eager: Option<EagerState<T>>,
    /// Ops newly done at this replica and not yet folded into `cs_r`.
    eager_backlog: Vec<OpId>,
    /// Ops newly done at this replica since the last [`Replica::take_newly_done`]
    /// drain (harness instrumentation for the Lemma 9.2 experiments).
    newly_done: Vec<OpId>,
    watermarks: BTreeMap<ReplicaId, Watermark>,

    /// Labels restored from stable storage after a crash (see
    /// [`RecoveryStub`]); consulted by `do_it`.
    persisted_labels: BTreeMap<OpId, Label>,
    /// Peers not yet heard from since recovery; `Some` = still recovering
    /// (the replica neither labels nor responds until this empties).
    recovering: Option<BTreeSet<ReplicaId>>,

    stats: ReplicaStats,
}

impl<T: SerialDataType> Replica<T> {
    /// Creates replica `id` of a service with `n` replicas (ids `0..n`).
    ///
    /// # Panics
    ///
    /// Panics if `id` is outside `0..n` or `n == 0`.
    pub fn new(dt: T, id: ReplicaId, n: usize, config: ReplicaConfig) -> Self {
        assert!(n > 0, "a service needs at least one replica");
        assert!((id.0 as usize) < n, "replica id out of range");
        if config.value_strategy == ValueStrategy::EagerCommute {
            assert!(
                config.memoize,
                "eager-commute mode needs memoization for strict responses (Fig. 11)"
            );
        }
        let memo = config.memoize.then(|| Memo {
            order: Vec::new(),
            last_label: None,
            state: dt.initial_state(),
            values: BTreeMap::new(),
        });
        let eager = (config.value_strategy == ValueStrategy::EagerCommute).then(|| EagerState {
            cs: dt.initial_state(),
            vals: BTreeMap::new(),
        });
        Replica {
            id,
            n,
            config,
            pending: BTreeSet::new(),
            rcvd: BTreeMap::new(),
            done: vec![BTreeSet::new(); n],
            stable: vec![BTreeSet::new(); n],
            labels: LabelMap::new(),
            gen: LabelGenerator::new(id),
            done_at_count: BTreeMap::new(),
            stable_at_count: BTreeMap::new(),
            stable_everywhere: BTreeSet::new(),
            blocked_on: BTreeMap::new(),
            blockers: BTreeMap::new(),
            ready: Vec::new(),
            memo,
            eager,
            eager_backlog: Vec::new(),
            newly_done: Vec::new(),
            watermarks: BTreeMap::new(),
            persisted_labels: BTreeMap::new(),
            recovering: None,
            dt,
            stats: ReplicaStats::default(),
        }
    }

    /// Recreates a replica from its stable-storage stub after a crash
    /// (paper §9.3). The replica stays passive — no labeling, no responses,
    /// no gossip content — until it has received gossip from every peer.
    pub fn recover(dt: T, stub: RecoveryStub, n: usize, config: ReplicaConfig) -> Self {
        assert!(
            !config.gc_gossip,
            "crash recovery requires ungarbage-collected gossip (see DESIGN.md)"
        );
        let mut r = Replica::new(dt, stub.id, n, config);
        r.gen = LabelGenerator::from_counter(stub.id, stub.next_counter);
        r.persisted_labels = stub.local_min_labels.into_iter().collect();
        let peers: BTreeSet<ReplicaId> = (0..n as u32)
            .map(ReplicaId)
            .filter(|p| *p != stub.id)
            .collect();
        r.recovering = if peers.is_empty() { None } else { Some(peers) };
        r
    }

    /// Simulates a crash with volatile memory: returns the stable-storage
    /// stub, consuming the replica.
    pub fn crash(self) -> RecoveryStub {
        let local_min_labels = self
            .labels
            .iter()
            .filter(|(_, l)| l.replica == self.id)
            .collect();
        RecoveryStub {
            id: self.id,
            next_counter: self.gen.next_counter(),
            local_min_labels,
        }
    }

    // ------------------------------------------------------------------
    // Accessors (used by checkers, experiments, and tests)
    // ------------------------------------------------------------------

    /// This replica's identity.
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// Number of replicas in the service.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The configuration.
    pub fn config(&self) -> ReplicaConfig {
        self.config
    }

    /// `pending_r`: requests not yet answered.
    pub fn pending(&self) -> &BTreeSet<OpId> {
        &self.pending
    }

    /// `rcvd_r`: all received operation descriptors.
    pub fn rcvd(&self) -> &BTreeMap<OpId, OpDescriptor<T::Operator>> {
        &self.rcvd
    }

    /// `done_r[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not a replica of this service.
    pub fn done(&self, i: ReplicaId) -> &BTreeSet<OpId> {
        &self.done[self.idx(i)]
    }

    /// `done_r[r]` — operations done at this replica.
    pub fn done_here(&self) -> &BTreeSet<OpId> {
        &self.done[self.idx(self.id)]
    }

    /// `stable_r[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not a replica of this service.
    pub fn stable(&self, i: ReplicaId) -> &BTreeSet<OpId> {
        &self.stable[self.idx(i)]
    }

    /// `stable_r[r]` — operations stable at this replica.
    pub fn stable_here(&self) -> &BTreeSet<OpId> {
        &self.stable[self.idx(self.id)]
    }

    /// `∩ᵢ stable_r[i]` — operations this replica knows are stable at every
    /// replica (the strict-response gate).
    pub fn stable_everywhere(&self) -> &BTreeSet<OpId> {
        &self.stable_everywhere
    }

    /// The label function `label_r`.
    pub fn labels(&self) -> &LabelMap {
        &self.labels
    }

    /// The local total order on done operations (ids sorted by label) —
    /// `lc_r` restricted to `done_r[r]` (Invariant 7.15).
    pub fn local_order(&self) -> Vec<OpId> {
        self.labels.ids_in_label_order()
    }

    /// Whether the replica is still waiting for post-recovery gossip.
    pub fn is_recovering(&self) -> bool {
        self.recovering.is_some()
    }

    /// Statistics counters.
    pub fn stats(&self) -> ReplicaStats {
        self.stats
    }

    /// Drains and returns the operations that became done at this replica
    /// since the last drain (harness instrumentation: the Lemma 9.2
    /// stabilization-time experiment watches these).
    pub fn take_newly_done(&mut self) -> Vec<OpId> {
        std::mem::take(&mut self.newly_done)
    }

    /// The ids of the memoized prefix, in order (empty when memoization is
    /// off). Exposed for the §10.1 invariant checks.
    pub fn memo_order(&self) -> &[OpId] {
        self.memo.as_ref().map_or(&[], |m| &m.order)
    }

    /// The memoized state `ms_r` (None when memoization is off).
    pub fn memo_state(&self) -> Option<&T::State> {
        self.memo.as_ref().map(|m| &m.state)
    }

    /// The memoized value of `id`, if memoized.
    pub fn memo_value(&self, id: OpId) -> Option<&T::Value> {
        self.memo.as_ref().and_then(|m| m.values.get(&id))
    }

    /// The §10.3 do-time value of `id` (eager-commute mode only).
    pub fn eager_value(&self, id: OpId) -> Option<&T::Value> {
        self.eager.as_ref().and_then(|e| e.vals.get(&id))
    }

    /// The §10.3 current state `cs_r` (eager-commute mode only).
    pub fn eager_state(&self) -> Option<&T::State> {
        self.eager.as_ref().map(|e| &e.cs)
    }

    /// The state after applying **all** currently-done operations in local
    /// label order — the replica's current view of the object. Used by
    /// convergence checks; linear in the number of unmemoized operations.
    pub fn current_state(&self) -> T::State {
        let (start_state, start_label) = match &self.memo {
            Some(m) => (m.state.clone(), m.last_label),
            None => (self.dt.initial_state(), None),
        };
        let mut s = start_state;
        let mut cursor = start_label;
        while let Some((l, id)) = self.labels.next_after(cursor) {
            let d = self.rcvd.get(&id).expect("done op has descriptor");
            s = self.dt.apply(&s, &d.op).0;
            cursor = Some(l);
        }
        s
    }

    fn idx(&self, i: ReplicaId) -> usize {
        let k = i.0 as usize;
        assert!(k < self.n, "unknown replica {i}");
        k
    }

    // ------------------------------------------------------------------
    // Input actions
    // ------------------------------------------------------------------

    /// Handles `receive_cr(⟨"request", x⟩)`: records the request as pending
    /// (even if previously received — the front end may legitimately retry,
    /// paper footnote 4) and runs the internal actions to fixpoint.
    pub fn on_request(&mut self, desc: OpDescriptor<T::Operator>) -> Vec<RespondEffect<T::Value>> {
        self.pending.insert(desc.id);
        self.admit(desc);
        self.step()
    }

    /// Handles `receive_{r'r}(⟨"gossip", R, D, L, S⟩)` (paper Fig. 7) and
    /// runs the internal actions to fixpoint.
    pub fn on_gossip(&mut self, g: GossipMsg<T::Operator>) -> Vec<RespondEffect<T::Value>> {
        self.stats.gossip_in += 1;
        let GossipMsg {
            from,
            rcvd,
            done,
            labels,
            stable,
        } = g;
        let from_idx = self.idx(from);
        let here = self.idx(self.id);

        // rcvd ← rcvd ∪ R.
        for d in rcvd {
            self.admit(d);
        }
        // label_r ← min(label_r, L) — before the done-set updates so every
        // newly-done operation is labeled (Invariant 7.5).
        for (id, l) in labels {
            let l = match self.persisted_labels.get(&id) {
                Some(p) if *p < l => *p,
                _ => l,
            };
            self.labels.merge_min(id, l);
        }
        // done_r[r'] ∪= D ∪ S ; done_r[r] ∪= D ∪ S ; done_r[i] ∪= S ∀i.
        for x in done.iter().chain(stable.iter()) {
            self.mark_done_at(*x, from_idx);
            self.mark_done_at(*x, here);
        }
        for x in &stable {
            for i in 0..self.n {
                self.mark_done_at(*x, i);
            }
        }
        // stable_r[r'] ∪= S ; stable_r[r] ∪= S (the ∩ᵢ done_r[i] part is
        // maintained incrementally by mark_done_at).
        for x in &stable {
            self.mark_stable_at(*x, from_idx);
            self.mark_stable_at(*x, here);
        }

        if let Some(waiting) = &mut self.recovering {
            waiting.remove(&from);
            if waiting.is_empty() {
                self.recovering = None;
            }
        }
        self.step()
    }

    /// Builds the gossip message for `peer` (`send_{rr'}` in Fig. 7) and
    /// updates incremental watermarks. A recovering replica gossips an
    /// empty message (it has nothing trustworthy to say yet, but peers
    /// learn it is alive).
    pub fn make_gossip(&mut self, peer: ReplicaId) -> GossipMsg<T::Operator> {
        let here = self.idx(self.id);
        let msg = if self.recovering.is_some() {
            GossipMsg {
                from: self.id,
                rcvd: Vec::new(),
                done: Vec::new(),
                labels: Vec::new(),
                stable: Vec::new(),
            }
        } else {
            match self.config.gossip {
                GossipStrategy::Full => {
                    let peer_stable = &self.stable[self.idx(peer)];
                    let skip =
                        |id: &OpId| -> bool { self.config.gc_gossip && peer_stable.contains(id) };
                    GossipMsg {
                        from: self.id,
                        rcvd: self
                            .rcvd
                            .values()
                            .filter(|d| !skip(&d.id))
                            .cloned()
                            .collect(),
                        done: self.done[here]
                            .iter()
                            .filter(|x| !skip(x))
                            .copied()
                            .collect(),
                        labels: self.labels.iter().filter(|(id, _)| !skip(id)).collect(),
                        // S is never pruned: peers still need stability votes.
                        stable: self.stable[here].iter().copied().collect(),
                    }
                }
                GossipStrategy::Incremental => {
                    let wm = self.watermarks.entry(peer).or_default();
                    let rcvd: Vec<_> = self
                        .rcvd
                        .values()
                        .filter(|d| !wm.rcvd.contains(&d.id))
                        .cloned()
                        .collect();
                    let done: Vec<_> = self.done[here]
                        .iter()
                        .filter(|x| !wm.done.contains(x))
                        .copied()
                        .collect();
                    let labels: Vec<_> = self
                        .labels
                        .iter()
                        .filter(|(id, l)| wm.labels.get(id).is_none_or(|sent| l < sent))
                        .collect();
                    let stable: Vec<_> = self.stable[here]
                        .iter()
                        .filter(|x| !wm.stable.contains(x))
                        .copied()
                        .collect();
                    wm.rcvd.extend(rcvd.iter().map(|d| d.id));
                    wm.done.extend(done.iter().copied());
                    for (id, l) in &labels {
                        wm.labels.insert(*id, *l);
                    }
                    wm.stable.extend(stable.iter().copied());
                    GossipMsg {
                        from: self.id,
                        rcvd,
                        done,
                        labels,
                        stable,
                    }
                }
            }
        };
        self.stats.gossip_out += 1;
        self.stats.gossip_out_bytes += msg.approx_bytes() as u64;
        msg
    }

    /// Forgets the incremental watermark for `peer` — the harness calls
    /// this at every healthy replica when `peer` recovers from a crash, so
    /// the next gossip to it is full ("requesting new gossip", §9.3).
    pub fn reset_watermark(&mut self, peer: ReplicaId) {
        self.watermarks.remove(&peer);
    }

    /// §10.2 local compaction: purges the full descriptors (operator and
    /// `prev` set) of operations that are **stable at this replica**,
    /// **memoized**, and **not pending**, keeping only what the paper says
    /// must survive — the identifier, its label, and its memoized value.
    /// Returns the number of descriptors purged.
    ///
    /// Soundness: stability at `r` means the operation is done at *every*
    /// replica (Invariant 7.2), so no replica will ever run `do_it` for it
    /// again — and `do_it` is the only consumer of `prev` (§10.2). The
    /// memoized prefix supplies the operation's fixed value and the state
    /// it folds into (Lemma 10.2), so the operator is never reapplied. A
    /// purged descriptor simply stops appearing in gossip `R` components;
    /// receivers only need `R` for their own `do_it`, which they have all
    /// performed.
    ///
    /// Interaction with crash recovery (§9.3): a replica that loses its
    /// volatile memory rebuilds `rcvd` from peers' gossip, so if **every**
    /// peer compacted an operation the recovering replica cannot replay it
    /// and would need a state-snapshot transfer instead. The paper presents
    /// the §9.3 recovery scheme and the §10.2 optimizations independently;
    /// so do we — deployments using [`Replica::crash`]/[`Replica::recover`]
    /// should leave at least one replica uncompacted or skip compaction,
    /// as `tests/faults.rs` does.
    ///
    /// No-op (returning 0) when memoization is disabled or the replica is
    /// recovering.
    pub fn compact(&mut self) -> usize {
        if self.recovering.is_some() {
            return 0;
        }
        let here = self.idx(self.id);
        let Some(memo) = &self.memo else {
            return 0;
        };
        let victims: Vec<OpId> = self.stable[here]
            .iter()
            .filter(|x| memo.values.contains_key(x))
            .filter(|x| !self.pending.contains(x))
            .filter(|x| self.rcvd.contains_key(x))
            .copied()
            .collect();
        for x in &victims {
            self.rcvd.remove(x);
        }
        self.stats.compacted += victims.len() as u64;
        victims.len()
    }

    /// Descriptors currently held in `rcvd` — the §10.2 memory-growth
    /// metric (`tab_memory` experiment).
    pub fn retained_descriptors(&self) -> usize {
        self.rcvd.len()
    }

    // ------------------------------------------------------------------
    // Internal actions
    // ------------------------------------------------------------------

    /// Adds a descriptor to `rcvd` and updates dependency bookkeeping.
    fn admit(&mut self, desc: OpDescriptor<T::Operator>) {
        let id = desc.id;
        if self.rcvd.contains_key(&id) {
            return;
        }
        let here = self.idx(self.id);
        let missing: Vec<OpId> = desc
            .prev
            .iter()
            .filter(|p| !self.done[here].contains(p))
            .copied()
            .collect();
        self.rcvd.insert(id, desc);
        if self.done[here].contains(&id) {
            // Already done via gossip D/S before the descriptor arrived in
            // R of the same message — nothing to schedule.
            return;
        }
        if missing.is_empty() {
            self.ready.push(id);
        } else {
            self.blocked_on.insert(id, missing.len());
            for m in missing {
                self.blockers.entry(m).or_default().push(id);
            }
        }
    }

    /// Marks `x` done at replica index `i`, maintaining the done-counts and
    /// the derived `stable_r[r] = ∩ᵢ done_r[i]` (Invariant 7.2).
    fn mark_done_at(&mut self, x: OpId, i: usize) {
        if !self.done[i].insert(x) {
            return;
        }
        debug_assert!(
            i != self.idx(self.id) || self.labels.is_labeled(x),
            "done op {x} must be labeled (Invariant 7.5)"
        );
        let c = self.done_at_count.entry(x).or_insert(0);
        *c += 1;
        if *c as usize == self.n {
            let here = self.idx(self.id);
            self.mark_stable_at(x, here);
        }
        let here = self.idx(self.id);
        if i == here {
            self.newly_done.push(x);
            if self.eager.is_some() {
                self.eager_backlog.push(x);
            }
            // x became done here: unblock dependents.
            if let Some(deps) = self.blockers.remove(&x) {
                for y in deps {
                    if let Some(left) = self.blocked_on.get_mut(&y) {
                        *left -= 1;
                        if *left == 0 {
                            self.blocked_on.remove(&y);
                            if !self.done[here].contains(&y) {
                                self.ready.push(y);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Marks `x` stable at replica index `i`, maintaining stable-counts and
    /// `∩ᵢ stable_r[i]`.
    fn mark_stable_at(&mut self, x: OpId, i: usize) {
        if !self.stable[i].insert(x) {
            return;
        }
        let c = self.stable_at_count.entry(x).or_insert(0);
        *c += 1;
        if *c as usize == self.n {
            self.stable_everywhere.insert(x);
        }
    }

    /// Runs `do_it` to fixpoint, advances the memo prefix, and computes
    /// responses for satisfiable pending requests.
    fn step(&mut self) -> Vec<RespondEffect<T::Value>> {
        if self.recovering.is_some() {
            return Vec::new();
        }
        // do_it: label every ready operation (ready ⇒ x ∈ rcvd − done[r]
        // and x.prev ⊆ done[r].id — exactly Fig. 7's precondition).
        while let Some(x) = self.ready.pop() {
            let here = self.idx(self.id);
            if self.done[here].contains(&x) {
                continue; // became done via gossip meanwhile
            }
            let l = match self.persisted_labels.get(&x) {
                // Our own pre-crash minimum: reuse it so the eventual order
                // is unchanged by the crash.
                Some(p) => *p,
                None => self.gen.fresh_above(self.labels.max_label()),
            };
            self.labels.merge_min(x, l);
            self.stats.do_its += 1;
            self.mark_done_at(x, here);
        }
        self.process_eager_backlog();
        self.advance_memo();
        self.respond_pending()
    }

    /// Folds newly-done operations into the eager current state `cs_r` in a
    /// CSC-consistent order (Fig. 11's "in any order consistent with
    /// CSC(D)"), fixing each operation's do-time value.
    fn process_eager_backlog(&mut self) {
        if self.eager.is_none() || self.eager_backlog.is_empty() {
            return;
        }
        let batch: Vec<OpId> = std::mem::take(&mut self.eager_backlog);
        let batch_set: BTreeSet<OpId> = batch.iter().copied().collect();
        let mut g: Digraph<OpId> = Digraph::new();
        for x in &batch {
            g.add_node(*x);
            for p in &self.rcvd[x].prev {
                if batch_set.contains(p) {
                    g.add_edge(*p, *x);
                }
            }
        }
        let order = g
            .topo_sort()
            .expect("client-specified constraints are acyclic");
        let eager = self.eager.as_mut().expect("checked above");
        for x in order {
            if eager.vals.contains_key(&x) {
                continue;
            }
            let d = self.rcvd.get(&x).expect("done op has descriptor");
            let (ns, v) = self.dt.apply(&eager.cs, &d.op);
            self.stats.eager_applies += 1;
            eager.cs = ns;
            eager.vals.insert(x, v);
        }
    }

    /// Advances the memoized prefix over all *solid* operations: those with
    /// label ≤ the largest stable label (Invariant 10.1). Solid labels are
    /// frozen (Lemma 10.2), so the prefix never has to be recomputed.
    fn advance_memo(&mut self) {
        let here = self.idx(self.id);
        let Some(memo) = &mut self.memo else {
            return;
        };
        // Boundary: largest label of a stable op. Stable ops hold their
        // system-minimum labels (Invariant 7.19), so this max is stable too.
        let boundary = self.stable[here]
            .iter()
            .filter_map(|x| self.labels.get(*x).finite())
            .max();
        let Some(boundary) = boundary else { return };
        while let Some((l, id)) = self.labels.next_after(memo.last_label) {
            if l > boundary {
                break;
            }
            let d = self.rcvd.get(&id).expect("done op has descriptor");
            let (ns, v) = self.dt.apply(&memo.state, &d.op);
            self.stats.memo_applies += 1;
            memo.state = ns;
            memo.values.insert(id, v);
            memo.order.push(id);
            memo.last_label = Some(l);
        }
    }

    /// `send_cr(⟨"response", x, v⟩)` for every satisfiable pending request:
    /// `x ∈ pending ∩ done[r]`, and strict operations must be stable at all
    /// replicas. The value is computed from the local label order
    /// (`valset(x, done_r[r], ≺_{lc_r})` is a singleton by Invariant 7.16).
    fn respond_pending(&mut self) -> Vec<RespondEffect<T::Value>> {
        let here = self.idx(self.id);
        let candidates: Vec<OpId> = self
            .pending
            .iter()
            .filter(|x| self.done[here].contains(x))
            .copied()
            .collect();
        let mut out = Vec::new();
        for x in candidates {
            let strict = self.rcvd[&x].strict;
            if strict && !self.stable_everywhere.contains(&x) {
                continue;
            }
            let value = self.compute_value(x);
            let witness = self.config.record_witness.then(|| self.witness_for(x));
            self.pending.remove(&x);
            self.stats.responses += 1;
            out.push(RespondEffect {
                client: x.client(),
                msg: ResponseMsg {
                    id: x,
                    value,
                    witness,
                },
            });
        }
        out
    }

    /// The value of done operation `x` under the local label order: the
    /// memoized value if fixed, else recomputed from the memo state (or
    /// initial state) over the unmemoized suffix.
    fn compute_value(&mut self, x: OpId) -> T::Value {
        // Memoized (eventual-order) values take precedence: strict
        // operations are always memoized by the time they respond.
        if let Some(m) = &self.memo {
            if let Some(v) = m.values.get(&x) {
                return v.clone();
            }
        }
        // §10.3 eager mode: the do-time value (sound under SafeUsers).
        if let Some(e) = &self.eager {
            return e
                .vals
                .get(&x)
                .cloned()
                .expect("eager value is fixed when the op is done");
        }
        let (mut s, mut cursor) = match &self.memo {
            Some(m) => (m.state.clone(), m.last_label),
            None => (self.dt.initial_state(), None),
        };
        let target = self
            .labels
            .get(x)
            .finite()
            .expect("responding to an unlabeled op");
        loop {
            let (l, id) = self
                .labels
                .next_after(cursor)
                .expect("target label must be reachable");
            let d = self.rcvd.get(&id).expect("done op has descriptor");
            let (ns, v) = self.dt.apply(&s, &d.op);
            self.stats.response_applies += 1;
            if l == target {
                debug_assert_eq!(id, x);
                return v;
            }
            s = ns;
            cursor = Some(l);
        }
    }

    /// Checks the §10.1 memoization invariants (Invariants 10.1, 10.4):
    /// the memoized prefix is exactly a label-order prefix of solid
    /// operations, `ms_r` equals the outcome of replaying it, and every
    /// memoized value matches a from-scratch recomputation. Returns a
    /// description of the first violation, if any. Intended for tests and
    /// the invariant harness; linear in the number of done operations.
    pub fn check_memo_consistency(&self) -> Result<(), String> {
        let Some(memo) = &self.memo else {
            return Ok(());
        };
        let here = self.idx(self.id);
        // Invariant 10.1: memoized ⊆ solid (labels ≤ the largest stable
        // label) and the prefix is in label order.
        let boundary = self.stable[here]
            .iter()
            .filter_map(|x| self.labels.get(*x).finite())
            .max();
        let mut prev: Option<Label> = None;
        for x in &memo.order {
            let l = self
                .labels
                .get(*x)
                .finite()
                .ok_or_else(|| format!("memoized op {x} has no label"))?;
            if let Some(p) = prev {
                if l <= p {
                    return Err(format!("memo order not label-sorted at {x}"));
                }
            }
            match boundary {
                Some(b) if l <= b => {}
                _ => return Err(format!("memoized op {x} is not solid (Invariant 10.1)")),
            }
            prev = Some(l);
        }
        if prev != memo.last_label {
            return Err("memo.last_label out of sync with memo.order".to_string());
        }
        // Invariant 10.4: ms = outcome(memoized, lc order) and mv matches a
        // recomputation from scratch. §10.2 compaction purges exactly the
        // replay material this diagnostic needs, so a compacted replica
        // skips the replay (the invariant held when the value was fixed;
        // Lemma 10.2 says it cannot change afterwards).
        if memo.order.iter().any(|x| !self.rcvd.contains_key(x)) {
            return Ok(());
        }
        let mut s = self.dt.initial_state();
        for x in &memo.order {
            let d = self
                .rcvd
                .get(x)
                .ok_or_else(|| format!("memoized op {x} missing descriptor"))?;
            let (ns, v) = self.dt.apply(&s, &d.op);
            if memo.values.get(x) != Some(&v) {
                return Err(format!("memoized value of {x} diverges (Invariant 10.4)"));
            }
            s = ns;
        }
        if s != memo.state {
            return Err("memo state diverges from replay (Invariant 10.4)".to_string());
        }
        Ok(())
    }

    /// The local label order up to and including `x` (checker witness).
    fn witness_for(&self, x: OpId) -> Vec<OpId> {
        let mut out = Vec::new();
        for id in self.local_order() {
            out.push(id);
            if id == x {
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal counter datatype for replica unit tests.
    #[derive(Clone, Copy, Debug)]
    struct Ctr;
    #[derive(Clone, PartialEq, Eq, Debug)]
    enum Op {
        Inc,
        Read,
    }
    impl SerialDataType for Ctr {
        type State = i64;
        type Operator = Op;
        type Value = i64;
        fn initial_state(&self) -> i64 {
            0
        }
        fn apply(&self, s: &i64, op: &Op) -> (i64, i64) {
            match op {
                Op::Inc => (s + 1, s + 1),
                Op::Read => (*s, *s),
            }
        }
    }

    fn id(c: u32, s: u64) -> OpId {
        OpId::new(ClientId(c), s)
    }

    fn two_replicas(config: ReplicaConfig) -> (Replica<Ctr>, Replica<Ctr>) {
        (
            Replica::new(Ctr, ReplicaId(0), 2, config),
            Replica::new(Ctr, ReplicaId(1), 2, config),
        )
    }

    /// Fully exchange gossip between two replicas once in each direction.
    fn sync(a: &mut Replica<Ctr>, b: &mut Replica<Ctr>) -> Vec<RespondEffect<i64>> {
        let mut effects = Vec::new();
        let ga = a.make_gossip(b.id());
        effects.extend(b.on_gossip(ga));
        let gb = b.make_gossip(a.id());
        effects.extend(a.on_gossip(gb));
        effects
    }

    #[test]
    fn nonstrict_request_answered_immediately() {
        let (mut a, _) = two_replicas(ReplicaConfig::default());
        let d = OpDescriptor::new(id(0, 0), Op::Inc);
        let fx = a.on_request(d);
        assert_eq!(fx.len(), 1);
        assert_eq!(fx[0].msg.id, id(0, 0));
        assert_eq!(fx[0].msg.value, 1);
        assert_eq!(fx[0].client, ClientId(0));
        assert!(a.pending().is_empty());
    }

    #[test]
    fn strict_request_waits_for_global_stability() {
        let (mut a, mut b) = two_replicas(ReplicaConfig::default());
        let d = OpDescriptor::new(id(0, 0), Op::Inc).with_strict(true);
        let fx = a.on_request(d);
        assert!(fx.is_empty(), "strict op must not answer before stability");

        // Round 1: b learns the op and does it; a learns b has it done →
        // a: done everywhere → stable at a. But a doesn't know b knows.
        let mut fx = sync(&mut a, &mut b);
        // Round 2: b learns a's stability, b stabilizes; a learns b's
        // stability → stable everywhere at a → respond.
        fx.extend(sync(&mut a, &mut b));
        // At most one extra round for the response.
        fx.extend(sync(&mut a, &mut b));
        let resp: Vec<_> = fx.iter().filter(|e| e.msg.id == id(0, 0)).collect();
        assert_eq!(resp.len(), 1, "exactly one response for the strict op");
        assert_eq!(resp[0].msg.value, 1);
    }

    #[test]
    fn prev_constraint_defers_do_it() {
        let (mut a, mut b) = two_replicas(ReplicaConfig::default());
        // y depends on x, but y is sent to b which has never seen x.
        let x = OpDescriptor::new(id(0, 0), Op::Inc);
        let y = OpDescriptor::new(id(0, 1), Op::Read).with_prev([id(0, 0)]);
        let fx = b.on_request(y);
        assert!(fx.is_empty(), "y must wait for x");
        assert!(b.done_here().is_empty());

        let _ = a.on_request(x);
        let fx = sync(&mut a, &mut b);
        // b now has x via gossip, does x then y; read sees the increment.
        let resp: Vec<_> = fx.iter().filter(|e| e.msg.id == id(0, 1)).collect();
        assert_eq!(resp.len(), 1);
        assert_eq!(resp[0].msg.value, 1);
    }

    #[test]
    fn labels_converge_to_minimum() {
        let (mut a, mut b) = two_replicas(ReplicaConfig::default());
        // Both replicas label the same op independently; after gossip both
        // hold the minimum.
        let d = OpDescriptor::new(id(0, 0), Op::Inc);
        let _ = a.on_request(d.clone());
        let _ = b.on_request(d);
        let la = a.labels().get(id(0, 0));
        let lb = b.labels().get(id(0, 0));
        let min = la.min(lb);
        sync(&mut a, &mut b);
        assert_eq!(a.labels().get(id(0, 0)), min);
        assert_eq!(b.labels().get(id(0, 0)), min);
    }

    #[test]
    fn duplicate_request_reanswered() {
        let (mut a, _) = two_replicas(ReplicaConfig::default());
        let d = OpDescriptor::new(id(0, 0), Op::Inc);
        let fx1 = a.on_request(d.clone());
        let fx2 = a.on_request(d);
        assert_eq!(fx1.len(), 1);
        assert_eq!(fx2.len(), 1, "retried request gets a fresh response");
        assert_eq!(fx1[0].msg.value, fx2[0].msg.value);
        assert_eq!(a.stats().do_its, 1, "but the op is done only once");
    }

    #[test]
    fn replicas_converge_after_gossip() {
        let (mut a, mut b) = two_replicas(ReplicaConfig::default());
        let _ = a.on_request(OpDescriptor::new(id(0, 0), Op::Inc));
        let _ = b.on_request(OpDescriptor::new(id(1, 0), Op::Inc));
        sync(&mut a, &mut b);
        sync(&mut a, &mut b);
        assert_eq!(a.local_order(), b.local_order());
        assert_eq!(a.current_state(), b.current_state());
        assert_eq!(a.current_state(), 2);
    }

    #[test]
    fn memoization_matches_basic_values() {
        let mut basic = Replica::new(Ctr, ReplicaId(0), 2, ReplicaConfig::basic());
        let mut memo = Replica::new(Ctr, ReplicaId(0), 2, ReplicaConfig::default());
        let mut peer_b = Replica::new(Ctr, ReplicaId(1), 2, ReplicaConfig::basic());
        let mut peer_m = Replica::new(Ctr, ReplicaId(1), 2, ReplicaConfig::default());

        for s in 0..20 {
            let op = if s % 3 == 0 { Op::Read } else { Op::Inc };
            let d = OpDescriptor::new(id(0, s), op);
            let fb = basic.on_request(d.clone());
            let fm = memo.on_request(d);
            assert_eq!(
                fb.iter()
                    .map(|e| (e.msg.id, e.msg.value))
                    .collect::<Vec<_>>(),
                fm.iter()
                    .map(|e| (e.msg.id, e.msg.value))
                    .collect::<Vec<_>>()
            );
            if s % 5 == 0 {
                sync(&mut basic, &mut peer_b);
                sync(&mut memo, &mut peer_m);
            }
        }
        sync(&mut memo, &mut peer_m);
        sync(&mut memo, &mut peer_m);
        // After enough gossip the memo prefix covers everything stable.
        assert!(!memo.memo_order().is_empty());
        assert_eq!(memo.current_state(), basic.current_state());
    }

    #[test]
    fn incremental_gossip_carries_only_deltas() {
        let cfg = ReplicaConfig::default().with_gossip(GossipStrategy::Incremental);
        let (mut a, mut b) = two_replicas(cfg);
        let _ = a.on_request(OpDescriptor::new(id(0, 0), Op::Inc));
        let g1 = a.make_gossip(ReplicaId(1));
        assert_eq!(g1.rcvd.len(), 1);
        let g2 = a.make_gossip(ReplicaId(1));
        assert!(g2.is_empty(), "nothing changed since last gossip");
        let _ = b.on_gossip(g1);
        let _ = b.on_gossip(g2);
        assert!(b.done_here().contains(&id(0, 0)));
    }

    #[test]
    fn gc_gossip_prunes_for_knowing_peer() {
        let cfg = ReplicaConfig::default().with_gc();
        let (mut a, mut b) = two_replicas(cfg);
        let _ = a.on_request(OpDescriptor::new(id(0, 0), Op::Inc));
        for _ in 0..4 {
            sync(&mut a, &mut b);
        }
        assert!(a.stable(ReplicaId(1)).contains(&id(0, 0)));
        let g = a.make_gossip(ReplicaId(1));
        assert!(
            g.rcvd.is_empty(),
            "R pruned for peers that have the op stable"
        );
        assert!(g.done.is_empty());
        assert!(g.labels.is_empty());
        assert_eq!(g.stable.len(), 1, "S is never pruned");
    }

    #[test]
    fn compact_purges_only_stable_memoized_descriptors() {
        let (mut a, mut b) = two_replicas(ReplicaConfig::default());
        let _ = a.on_request(OpDescriptor::new(id(0, 0), Op::Inc));
        let _ = a.on_request(OpDescriptor::new(id(0, 1), Op::Inc));
        // Nothing is stable yet: compaction must be a no-op.
        assert_eq!(a.compact(), 0);
        for _ in 0..4 {
            sync(&mut a, &mut b);
        }
        assert!(a.stable_here().contains(&id(0, 0)));
        let purged = a.compact();
        assert_eq!(purged, 2, "both stable memoized ops purged");
        assert_eq!(a.retained_descriptors(), 0);
        assert_eq!(a.stats().compacted, 2);
        // Values, labels, and the object state survive the purge.
        assert_eq!(a.memo_value(id(0, 1)), Some(&2));
        assert!(a.labels().is_labeled(id(0, 0)));
        assert_eq!(a.current_state(), 2);
        // Fresh operations still work on the compacted replica.
        let fx = a.on_request(OpDescriptor::new(id(0, 2), Op::Read));
        assert_eq!(fx.len(), 1);
        assert_eq!(fx[0].msg.value, 2, "read sees the compacted history");
    }

    #[test]
    fn compacted_op_can_still_be_answered_on_retry() {
        // A front end may retry an already-answered request (footnote 4);
        // the memoized value answers it even after compaction.
        let (mut a, mut b) = two_replicas(ReplicaConfig::default());
        let d = OpDescriptor::new(id(0, 0), Op::Inc);
        let _ = a.on_request(d.clone());
        for _ in 0..4 {
            sync(&mut a, &mut b);
        }
        assert_eq!(a.compact(), 1);
        let fx = a.on_request(d);
        assert_eq!(fx.len(), 1);
        assert_eq!(fx[0].msg.value, 1, "retry answered from the memoized value");
    }

    #[test]
    fn compact_requires_memoization() {
        let (mut a, mut b) = two_replicas(ReplicaConfig::basic());
        let _ = a.on_request(OpDescriptor::new(id(0, 0), Op::Inc));
        for _ in 0..4 {
            sync(&mut a, &mut b);
        }
        // basic() disables memoization: nothing can be purged safely.
        assert_eq!(a.compact(), 0);
        assert_eq!(a.retained_descriptors(), 1);
    }

    #[test]
    fn compacted_replica_keeps_gossiping_ids_and_labels() {
        let (mut a, mut b) = two_replicas(ReplicaConfig::default());
        let _ = a.on_request(OpDescriptor::new(id(0, 0), Op::Inc));
        for _ in 0..4 {
            sync(&mut a, &mut b);
        }
        let _ = a.compact();
        let g = a.make_gossip(ReplicaId(1));
        assert!(g.rcvd.is_empty(), "descriptor purged from R");
        assert!(g.done.contains(&id(0, 0)), "D still carries the id");
        assert!(
            g.labels.iter().any(|(i, _)| *i == id(0, 0)),
            "L still carries the label"
        );
        assert!(g.stable.contains(&id(0, 0)), "S still carries the vote");
        // The peer absorbs it without issue.
        let _ = b.on_gossip(g);
    }

    #[test]
    fn crash_recovery_preserves_minimum_labels() {
        let (mut a, mut b) = two_replicas(ReplicaConfig::basic());
        let _ = a.on_request(OpDescriptor::new(id(0, 0), Op::Inc));
        let pre_label = a.labels().get(id(0, 0));
        sync(&mut a, &mut b);

        let stub = a.crash();
        assert_eq!(stub.local_min_labels.len(), 1);
        let mut a = Replica::recover(Ctr, stub, 2, ReplicaConfig::basic());
        assert!(a.is_recovering());

        // Requests during recovery are buffered, not answered.
        let fx = a.on_request(OpDescriptor::new(id(0, 1), Op::Read));
        assert!(fx.is_empty());

        b.reset_watermark(ReplicaId(0));
        let g = b.make_gossip(ReplicaId(0));
        let fx = a.on_gossip(g);
        assert!(!a.is_recovering());
        // The buffered read now answers and sees the pre-crash increment.
        let resp: Vec<_> = fx.iter().filter(|e| e.msg.id == id(0, 1)).collect();
        assert_eq!(resp.len(), 1);
        assert_eq!(resp[0].msg.value, 1);
        // The op's label is unchanged by the crash.
        assert_eq!(a.labels().get(id(0, 0)), pre_label);
    }

    #[test]
    fn recovering_replica_gossips_empty() {
        let (a, _) = two_replicas(ReplicaConfig::basic());
        let stub = a.crash();
        let mut a = Replica::recover(Ctr, stub, 2, ReplicaConfig::basic());
        let g = a.make_gossip(ReplicaId(1));
        assert!(g.is_empty());
    }

    #[test]
    fn witness_records_local_prefix() {
        let cfg = ReplicaConfig::default().with_witness();
        let (mut a, _) = two_replicas(cfg);
        let _ = a.on_request(OpDescriptor::new(id(0, 0), Op::Inc));
        let fx = a.on_request(OpDescriptor::new(id(0, 1), Op::Read));
        let w = fx[0].msg.witness.as_ref().expect("witness recorded");
        assert_eq!(w, &vec![id(0, 0), id(0, 1)]);
    }

    #[test]
    #[should_panic(expected = "replica id out of range")]
    fn bad_replica_id_rejected() {
        let _ = Replica::new(Ctr, ReplicaId(5), 2, ReplicaConfig::default());
    }

    #[test]
    fn single_replica_service_stabilizes_alone() {
        let mut a = Replica::new(Ctr, ReplicaId(0), 1, ReplicaConfig::default());
        let d = OpDescriptor::new(id(0, 0), Op::Inc).with_strict(true);
        let fx = a.on_request(d);
        assert_eq!(fx.len(), 1, "n=1: done ⇒ stable everywhere");
        assert_eq!(fx[0].msg.value, 1);
    }
}

//! The replica automaton (paper Fig. 7) with the Section 10 optimizations.
//!
//! A replica is a *sans-IO* state machine: inputs are requests, gossip
//! messages, and "make a gossip message now" prompts; outputs are response
//! effects. Both the discrete-event simulator (`esds-harness`) and the
//! threaded runtime (`esds-runtime`) drive this same type, so properties
//! verified under simulation transfer to the deployment.
//!
//! ## The replica state, in the paper's vocabulary (§6.3)
//!
//! Every replica `r` maintains five components; understanding their roles
//! is most of understanding the algorithm:
//!
//! * **`pending_r`** — identifiers of requests received directly from
//!   front ends and not yet answered. Only entries of `pending_r` ever
//!   generate responses; operations learned through gossip are applied
//!   but answered by whichever replica received them firsthand.
//!
//! * **`rcvd_r`** — every operation descriptor `r` has *received*, whether
//!   directly or via gossip. This is the replica's knowledge of the
//!   operation set `O`; it only grows (until §10.2 compaction purges the
//!   descriptors — never the knowledge — of globally-finished
//!   operations).
//!
//! * **`done_r[i]`** (one set per replica `i`) — the operations `r`
//!   *knows* have been **done** at `i`, i.e. `i` has performed `do_it`
//!   for them: assigned a label and scheduled them into its local order.
//!   `done_r[r]` is ground truth about `r` itself; for `i ≠ r` the set is
//!   (possibly stale) knowledge learned from gossip, always a subset of
//!   the truth (Invariant 7.x monotonicity). An operation may only be
//!   done after every operation in its `prev` set is done (the
//!   client-specified constraints, §2.3).
//!
//! * **`stable_r[i]`** — the operations `r` knows are **stable** at `i`.
//!   An operation is stable at `r` when `r` knows it is done at *every*
//!   replica: `stable_r[r] = ∩ᵢ done_r[i]` (Invariant 7.2). Once stable
//!   at `r`, its label can never shrink again — no replica will relabel
//!   it — so the prefix of the local order up to the largest stable label
//!   is frozen (*solid*, §10.1), which is what memoization exploits. The
//!   intersection `∩ᵢ stable_r[i]` ("stable everywhere") is the gate for
//!   **strict** responses: a strict operation answers only when `r` knows
//!   every replica has it stable, making the response consistent with the
//!   eventual total order (Theorem 5.8).
//!
//! * **`label_r`** — the minimum label seen per operation (`∞` if
//!   unlabeled). Labels come from per-replica well-ordered label sets
//!   `𝓛ᵣ` (§6.3); gossip merges them by minimum, so all replicas converge
//!   to the system-wide minimum label per operation, and sorting by that
//!   minimum label *is* the eventual total order.
//!
//! Gossip (`send_{rr'}` / `receive_{r'r}`, Fig. 7) exchanges the four
//! knowledge components `(R, D, L, S)` = (`rcvd`, `done[r]`, `label`,
//! `stable[r]`); receiving merges by union/minimum, which is commutative
//! and idempotent — duplicated or reordered gossip is harmless.
//!
//! The paper's fine-grained actions (`do_it`, `send_response`) are run to
//! fixpoint inside each event handler; this batching is a refinement that
//! the conformance observer in `esds-harness` checks against `ESDS-II`.

use std::collections::{BTreeMap, BTreeSet};

use esds_core::{
    ClientId, Digraph, IdSummary, Label, LabelGenerator, LabelMap, OpDescriptor, OpId, ReplicaId,
    SerialDataType,
};

use crate::messages::{BatchedGossipMsg, GossipEnvelope, GossipMsg, ResponseMsg};

/// Which gossip construction [`Replica::make_gossip`] /
/// [`Replica::poll_gossip`] uses (paper §10.4).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum GossipStrategy {
    /// The paper's algorithm: every gossip message carries the full
    /// `(R, D, L, S)` snapshot.
    #[default]
    Full,
    /// Send only what changed since the last gossip to that peer. Safe on
    /// reliable channels (the components are merged with commutative set
    /// unions / label minima, so reordering is harmless), unsafe under
    /// message loss.
    Incremental,
    /// §10.2 + §10.4 combined: accumulate
    /// [`batch_interval`](ReplicaConfig::batch_interval) gossip intervals
    /// into one [`BatchedGossipMsg`] per peer, open each exchange with an
    /// [`IdSummary`] watermark handshake so descriptors the receiver's
    /// summary covers are never re-shipped, carry `done`/`stable` as
    /// summaries (the receiver folds in only the
    /// [`IdSummary::difference`]), and piggyback stable-prefix
    /// acknowledgements on the `stable` summary. Steady-state cost is
    /// O(delta + #clients) per exchange instead of O(history). Like
    /// [`Incremental`](GossipStrategy::Incremental), the `R`/`L` deltas
    /// assume reliable in-order channels; on a send failure call
    /// [`Replica::reset_watermark`] to rewind. Driven through
    /// [`Replica::poll_gossip`]; [`Replica::make_gossip`] falls back to a
    /// full snapshot (the always-safe resync message).
    Batched,
}

/// How response values are produced (paper §10.1 / §10.3).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum ValueStrategy {
    /// Recompute along the local label order on demand, starting from the
    /// memoized prefix when available (`ESDS-Alg` / `ESDS-Alg′`).
    #[default]
    Recompute,
    /// The `Commute` automaton of Fig. 11: maintain a *current state* `cs_r`
    /// updated as each operation is done (in a CSC-consistent order) and fix
    /// every value at do-time. Sound only for `SafeUsers` workloads that
    /// CSC-order all non-commuting operations (Lemma 10.6); see
    /// [`crate::commute`].
    EagerCommute,
}

/// Configuration of one replica.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct ReplicaConfig {
    /// Enable the §10.1 memoization of the solid prefix (`ESDS-Alg′`).
    pub memoize: bool,
    /// Value production strategy (§10.3).
    pub value_strategy: ValueStrategy,
    /// Gossip construction strategy (§10.4).
    pub gossip: GossipStrategy,
    /// Prune from gossip to peer `p` the `R`/`D`/`L` entries of operations
    /// `r` knows are stable at `p` (§10.2/§10.4 memory & message GC). The
    /// `S` component is never pruned (peers still count stability votes).
    /// Incompatible with crash-recovery experiments (see `DESIGN.md`).
    pub gc_gossip: bool,
    /// Attach to each response a witness: the local label order up to the
    /// answered operation (used by the `esds-spec` checkers; costs memory).
    pub record_witness: bool,
    /// How many gossip ticks [`Replica::poll_gossip`] accumulates per peer
    /// before emitting one batched exchange (only consulted under
    /// [`GossipStrategy::Batched`]; `1` = exchange on every tick, `k`
    /// trades response-time for 1/k the messages). Values below 1 are
    /// treated as 1.
    pub batch_interval: u32,
    /// Track a per-handler [`WalDelta`] (ids admitted to `rcvd`, label
    /// minima that changed) for a write-ahead log. Drivers drain it with
    /// [`Replica::take_wal_delta`] after every mutating input and hand it
    /// to a [`crate::Persistence`] backend *before* releasing the
    /// handler's effects — the sync-before-release discipline that makes
    /// §9.3 recovery from the log sound.
    pub durable: bool,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        ReplicaConfig {
            memoize: true,
            value_strategy: ValueStrategy::Recompute,
            gossip: GossipStrategy::Full,
            gc_gossip: false,
            record_witness: false,
            batch_interval: 1,
            durable: false,
        }
    }
}

impl ReplicaConfig {
    /// The paper's base algorithm, no optimizations (used as the ablation
    /// baseline).
    pub fn basic() -> Self {
        ReplicaConfig {
            memoize: false,
            ..Self::default()
        }
    }

    /// The `Commute` automaton of Fig. 11 (§10.3): eager values plus
    /// memoization (strict responses use the memoized, eventual-order
    /// value). Only sound for `SafeUsers` workloads.
    pub fn commute() -> Self {
        ReplicaConfig {
            value_strategy: ValueStrategy::EagerCommute,
            ..Self::default()
        }
    }

    /// Enables witness recording (checker support).
    #[must_use]
    pub fn with_witness(mut self) -> Self {
        self.record_witness = true;
        self
    }

    /// Sets the gossip strategy.
    #[must_use]
    pub fn with_gossip(mut self, g: GossipStrategy) -> Self {
        self.gossip = g;
        self
    }

    /// Enables batched gossip with one exchange per `every` gossip ticks.
    #[must_use]
    pub fn with_batched(mut self, every: u32) -> Self {
        self.gossip = GossipStrategy::Batched;
        self.batch_interval = every.max(1);
        self
    }

    /// Enables gossip GC.
    #[must_use]
    pub fn with_gc(mut self) -> Self {
        self.gc_gossip = true;
        self
    }

    /// Enables write-ahead-log delta tracking (see
    /// [`durable`](ReplicaConfig::durable)).
    #[must_use]
    pub fn with_durable(mut self) -> Self {
        self.durable = true;
        self
    }
}

/// What one event handler added to the replica's durable knowledge:
/// the identifiers newly admitted to `rcvd` and the label minima that
/// changed (by local `do_it` or by gossip merge). Drained by
/// [`Replica::take_wal_delta`]; a write-ahead log appends exactly these
/// as records, so replaying the log re-derives every externally-released
/// fact.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WalDelta {
    /// Ids admitted to `rcvd` since the last drain, in admission order.
    /// The descriptors themselves are still in [`Replica::rcvd`] at drain
    /// time (§10.2 compaction only runs under the driver's control,
    /// never inside a handler).
    pub admitted: Vec<OpId>,
    /// Per-op label minima that decreased since the last drain (only the
    /// final, lowest value per op is kept — the log needs the minimum,
    /// not the intermediate merge steps).
    pub labels: BTreeMap<OpId, Label>,
}

impl WalDelta {
    /// True when the handler changed nothing durable.
    pub fn is_empty(&self) -> bool {
        self.admitted.is_empty() && self.labels.is_empty()
    }
}

/// One operation of the snapshot prefix in a [`RestoreImage`]: its final
/// position (label), fixed value (Lemma 10.2), and the stability
/// knowledge that held when the snapshot was cut.
#[derive(Clone, Debug)]
pub struct PrefixEntry<T: SerialDataType> {
    /// The operation.
    pub id: OpId,
    /// Its frozen system-minimum label.
    pub label: Label,
    /// Its memoized value (`mv_r`).
    pub value: T::Value,
    /// Stable at the snapshotting replica (⇒ done at every replica,
    /// Invariant 7.2 — both facts are monotone, so restoring them is
    /// sound even though the knowledge is stale).
    pub stable_here: bool,
    /// Known stable at *every* replica (the strict-response gate).
    pub stable_everywhere: bool,
}

/// Everything [`Replica::restore`] needs to rebuild a replica from disk:
/// the snapshot's prefix image plus the write-ahead log's unstable
/// suffix. Produced by a persistence layer (e.g. `esds-store`) from a
/// snapshot + log replay.
#[derive(Clone, Debug)]
pub struct RestoreImage<T: SerialDataType> {
    /// The replica's identity.
    pub id: ReplicaId,
    /// Label-counter floor: at least one past every label this replica
    /// ever released, so fresh labels never collide with pre-crash ones.
    pub next_counter: u64,
    /// The memoized prefix at the snapshot fence, in strict label order.
    pub prefix: Vec<PrefixEntry<T>>,
    /// `ms_r`: the state after applying the prefix.
    pub state: T::State,
    /// Descriptors of logged operations past the fence (the unstable
    /// suffix); they are re-admitted and re-done with their pre-crash
    /// labels once recovery closes.
    pub suffix_rcvd: Vec<OpDescriptor<T::Operator>>,
    /// Logged label minima of suffix operations; they seed
    /// `persisted_labels` so the recovered replica neither re-mints nor
    /// contradicts a label it already released (§9.3).
    pub suffix_labels: Vec<(OpId, Label)>,
}

/// An output of the replica: send a response message to a client's front
/// end.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RespondEffect<V> {
    /// Destination front end.
    pub client: ClientId,
    /// The response message.
    pub msg: ResponseMsg<V>,
}

/// Counters for the experiments (ablations A1/A3 in `DESIGN.md`).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct ReplicaStats {
    /// `do_it` actions performed.
    pub do_its: u64,
    /// Responses computed.
    pub responses: u64,
    /// Data-type `apply` calls spent computing response values (the cost
    /// memoization attacks; excludes applies spent building memo state).
    pub response_applies: u64,
    /// Data-type `apply` calls spent advancing the memo prefix.
    pub memo_applies: u64,
    /// Data-type `apply` calls spent maintaining the eager current state
    /// (`cs_r` of Fig. 11; §10.3 mode only).
    pub eager_applies: u64,
    /// Gossip messages received.
    pub gossip_in: u64,
    /// Gossip messages produced.
    pub gossip_out: u64,
    /// Total approximate bytes of produced gossip.
    pub gossip_out_bytes: u64,
    /// Descriptors purged by §10.2 local compaction ([`Replica::compact`]).
    pub compacted: u64,
}

/// What a crashed replica retains in stable storage (paper §9.3): its label
/// counter and the locally-generated labels that were system minima.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RecoveryStub {
    /// The replica's identity.
    pub id: ReplicaId,
    /// Label-counter floor, so fresh labels never collide with pre-crash
    /// ones.
    pub next_counter: u64,
    /// Locally-generated labels that were the replica's current minima:
    /// without these, a recovered replica could assign a *larger* label to
    /// an operation whose system-wide minimum it previously held, changing
    /// the eventual total order retroactively.
    pub local_min_labels: Vec<(OpId, Label)>,
}

/// Memoization state (paper §10.1, `ESDS-Alg′`): the *solid* prefix of the
/// local label order — operations at or below the largest stable label —
/// whose values and cumulative state never change (Lemma 10.2).
#[derive(Clone, Debug)]
struct Memo<T: SerialDataType> {
    /// Ids in memoized order (= label order restricted to the prefix).
    order: Vec<OpId>,
    /// Label of the last memoized operation.
    last_label: Option<Label>,
    /// `ms_r`: state after applying the memoized prefix.
    state: T::State,
    /// `mv_r`: fixed values of memoized operations.
    values: BTreeMap<OpId, T::Value>,
}

/// §10.3 eager-value state (Fig. 11): the current state `cs_r` and the
/// do-time values `val_r`.
#[derive(Clone, Debug)]
struct EagerState<T: SerialDataType> {
    cs: T::State,
    vals: BTreeMap<OpId, T::Value>,
}

/// Per-peer incremental-gossip watermark: what has already been sent.
#[derive(Clone, Debug, Default)]
struct Watermark {
    rcvd: BTreeSet<OpId>,
    done: BTreeSet<OpId>,
    labels: BTreeMap<OpId, Label>,
    stable: BTreeSet<OpId>,
}

/// Per-peer batched-gossip state (§10.2/§10.4): what the peer has told us
/// it holds, what we have shipped it, and what of its knowledge we have
/// already folded in.
#[derive(Clone, Debug, Default)]
struct BatchState {
    /// Identifiers the peer has received, from its `known` handshakes.
    /// Descriptors these cover are never shipped to the peer.
    peer_rcvd: IdSummary,
    /// Identifiers whose descriptors we already shipped (suppresses
    /// re-sends between handshake updates; unwound by
    /// [`Replica::reset_watermark`] on connection loss).
    sent_rcvd: IdSummary,
    /// Lowest label shipped per operation (re-ship on decrease, like the
    /// incremental strategy — the delta rule the checkers' in-flight
    /// reasoning depends on).
    sent_labels: BTreeMap<OpId, Label>,
    /// The peer's `done`/`stable` summaries already folded into our state;
    /// incoming summaries are diffed against these so receives cost
    /// O(delta), not O(history).
    seen_done: IdSummary,
    seen_stable: IdSummary,
    /// Labels permanently retired from this peer's deltas: the op is
    /// stable at the peer, so the peer holds its frozen system-minimum
    /// label (Invariant 7.19) and the `sent_labels` entry can be dropped.
    /// Lives in the batch state — not derived from `stable[peer]` at send
    /// time — precisely so [`Replica::reset_watermark`] rewinds it: a
    /// crashed-and-recovered peer lost its labels and must be sent them
    /// again even though our (stale) knowledge still says it had them
    /// stable.
    label_gc: IdSummary,
    /// Gossip ticks accumulated since the last batched exchange.
    ticks: u32,
}

/// The replica automaton of paper Fig. 7 (see module docs).
#[derive(Clone, Debug)]
pub struct Replica<T: SerialDataType> {
    dt: T,
    id: ReplicaId,
    n: usize,
    config: ReplicaConfig,

    pending: BTreeSet<OpId>,
    rcvd: BTreeMap<OpId, OpDescriptor<T::Operator>>,
    done: Vec<BTreeSet<OpId>>,
    stable: Vec<BTreeSet<OpId>>,
    labels: LabelMap,
    gen: LabelGenerator,

    /// Count of replicas `i` with `x ∈ done[i]` — when it reaches `n` the
    /// operation is done everywhere `r` knows of, i.e. stable at `r`
    /// (Invariant 7.2).
    done_at_count: BTreeMap<OpId, u32>,
    /// Count of replicas `i` with `x ∈ stable[i]`.
    stable_at_count: BTreeMap<OpId, u32>,
    /// `∩ᵢ stable_r[i]` — the strict-response gate.
    stable_everywhere: BTreeSet<OpId>,

    /// Dependency bookkeeping: ops blocked on a prev not yet done, and the
    /// reverse map from a missing prev to its dependents.
    blocked_on: BTreeMap<OpId, usize>,
    blockers: BTreeMap<OpId, Vec<OpId>>,
    ready: Vec<OpId>,

    memo: Option<Memo<T>>,
    /// §10.3 state: `cs_r` (current state over all done ops in do-order)
    /// and `val_r` (values fixed at do-time).
    eager: Option<EagerState<T>>,
    /// Ops newly done at this replica and not yet folded into `cs_r`.
    eager_backlog: Vec<OpId>,
    /// Ops newly done at this replica since the last [`Replica::take_newly_done`]
    /// drain (harness instrumentation for the Lemma 9.2 experiments).
    newly_done: Vec<OpId>,
    watermarks: BTreeMap<ReplicaId, Watermark>,
    /// Per-peer batched-gossip state (`GossipStrategy::Batched` only).
    batch: BTreeMap<ReplicaId, BatchState>,
    /// Summary of every identifier ever admitted to `rcvd` (never pruned
    /// by §10.2 compaction — it encodes *knowledge*, not storage). This is
    /// the `known` handshake batched gossip advertises.
    rcvd_summary: IdSummary,
    /// `done[r]` as a summary, maintained incrementally for O(1)-amortized
    /// batched-gossip construction.
    done_here_summary: IdSummary,
    /// `stable[r]` as a summary.
    stable_here_summary: IdSummary,

    /// Pending write-ahead-log delta (`Some` iff
    /// [`ReplicaConfig::durable`]); see [`WalDelta`].
    wal_delta: Option<WalDelta>,
    /// Labels restored from stable storage after a crash (see
    /// [`RecoveryStub`]); consulted by `do_it`.
    persisted_labels: BTreeMap<OpId, Label>,
    /// Peers not yet heard from since recovery; `Some` = still recovering
    /// (the replica neither labels nor responds until this empties).
    recovering: Option<BTreeSet<ReplicaId>>,

    stats: ReplicaStats,
}

impl<T: SerialDataType> Replica<T> {
    /// Creates replica `id` of a service with `n` replicas (ids `0..n`).
    ///
    /// # Panics
    ///
    /// Panics if `id` is outside `0..n` or `n == 0`.
    pub fn new(dt: T, id: ReplicaId, n: usize, config: ReplicaConfig) -> Self {
        assert!(n > 0, "a service needs at least one replica");
        assert!((id.0 as usize) < n, "replica id out of range");
        if config.value_strategy == ValueStrategy::EagerCommute {
            assert!(
                config.memoize,
                "eager-commute mode needs memoization for strict responses (Fig. 11)"
            );
        }
        let memo = config.memoize.then(|| Memo {
            order: Vec::new(),
            last_label: None,
            state: dt.initial_state(),
            values: BTreeMap::new(),
        });
        let eager = (config.value_strategy == ValueStrategy::EagerCommute).then(|| EagerState {
            cs: dt.initial_state(),
            vals: BTreeMap::new(),
        });
        Replica {
            id,
            n,
            config,
            pending: BTreeSet::new(),
            rcvd: BTreeMap::new(),
            done: vec![BTreeSet::new(); n],
            stable: vec![BTreeSet::new(); n],
            labels: LabelMap::new(),
            gen: LabelGenerator::new(id),
            done_at_count: BTreeMap::new(),
            stable_at_count: BTreeMap::new(),
            stable_everywhere: BTreeSet::new(),
            blocked_on: BTreeMap::new(),
            blockers: BTreeMap::new(),
            ready: Vec::new(),
            memo,
            eager,
            eager_backlog: Vec::new(),
            newly_done: Vec::new(),
            watermarks: BTreeMap::new(),
            batch: BTreeMap::new(),
            rcvd_summary: IdSummary::new(),
            done_here_summary: IdSummary::new(),
            stable_here_summary: IdSummary::new(),
            wal_delta: config.durable.then(WalDelta::default),
            persisted_labels: BTreeMap::new(),
            recovering: None,
            dt,
            stats: ReplicaStats::default(),
        }
    }

    /// Recreates a replica from its stable-storage stub after a crash
    /// (paper §9.3). The replica stays passive — no labeling, no responses,
    /// no gossip content — until it has received gossip from every peer.
    pub fn recover(dt: T, stub: RecoveryStub, n: usize, config: ReplicaConfig) -> Self {
        assert!(
            !config.gc_gossip,
            "crash recovery requires ungarbage-collected gossip (see DESIGN.md)"
        );
        let mut r = Replica::new(dt, stub.id, n, config);
        r.gen = LabelGenerator::from_counter(stub.id, stub.next_counter);
        r.persisted_labels = stub.local_min_labels.into_iter().collect();
        let peers: BTreeSet<ReplicaId> = (0..n as u32)
            .map(ReplicaId)
            .filter(|p| *p != stub.id)
            .collect();
        r.recovering = if peers.is_empty() { None } else { Some(peers) };
        r
    }

    /// Rebuilds a replica from a durable snapshot + log image after a
    /// crash — the full-persistence variant of [`Replica::recover`].
    ///
    /// The prefix is installed as the §10.1 memo (order, values, state)
    /// with its recorded stability knowledge; prefix descriptors are
    /// *not* restored (the snapshot materialized their effects — this is
    /// exactly the post-[`Replica::compact`] shape, which every code path
    /// already tolerates). Suffix descriptors are re-admitted, and suffix
    /// labels seed `persisted_labels` so `do_it` re-assigns the pre-crash
    /// minima instead of minting fresh labels. Like
    /// [`Replica::recover`], the result stays passive until it has heard
    /// gossip from every peer and every operation it labeled pre-crash is
    /// re-received (here: immediately, since the log holds the suffix
    /// descriptors).
    ///
    /// # Panics
    ///
    /// Panics if `config` disables memoization, selects
    /// [`ValueStrategy::EagerCommute`], or enables `gc_gossip`; if the
    /// prefix is not in strictly increasing label order; or on the
    /// [`Replica::new`] conditions.
    pub fn restore(dt: T, img: RestoreImage<T>, n: usize, config: ReplicaConfig) -> Self {
        assert!(
            config.memoize && config.value_strategy == ValueStrategy::Recompute,
            "restore rebuilds the §10.1 memo prefix: it requires memoize + Recompute"
        );
        assert!(
            !config.gc_gossip,
            "crash recovery requires ungarbage-collected gossip (see DESIGN.md)"
        );
        let mut r = Replica::new(dt, img.id, n, config);
        r.gen = LabelGenerator::from_counter(img.id, img.next_counter);
        let here = r.idx(img.id);
        // Labels first (the done marks debug-assert Invariant 7.5).
        let mut prev: Option<Label> = None;
        for e in &img.prefix {
            assert!(
                prev.is_none_or(|p| p < e.label),
                "snapshot prefix must be in strictly increasing label order"
            );
            prev = Some(e.label);
            r.labels.merge_min(e.id, e.label);
        }
        for e in &img.prefix {
            if e.stable_here {
                // Stable-at-r ⇒ done at every replica (Invariant 7.2).
                for i in 0..n {
                    r.mark_done_at(e.id, i);
                }
            } else {
                r.mark_done_at(e.id, here);
            }
            // Knowledge outlives storage (§10.2): the handshake must keep
            // covering prefix ids even though their descriptors are gone.
            r.rcvd_summary.insert(e.id);
        }
        for e in &img.prefix {
            if e.stable_everywhere {
                for i in 0..n {
                    r.mark_stable_at(e.id, i);
                }
            }
        }
        let memo = r.memo.as_mut().expect("memoize asserted above");
        memo.order = img.prefix.iter().map(|e| e.id).collect();
        memo.last_label = img.prefix.last().map(|e| e.label);
        memo.values = img.prefix.iter().map(|e| (e.id, e.value.clone())).collect();
        memo.state = img.state;
        let prefix_ids: BTreeSet<OpId> = img.prefix.iter().map(|e| e.id).collect();
        for d in img.suffix_rcvd {
            r.admit(d);
        }
        // Prefix labels are frozen (Lemma 10.2) — a logged label for a
        // prefix op is a stale duplicate, not a clamp to keep.
        r.persisted_labels = img
            .suffix_labels
            .into_iter()
            .filter(|(id, _)| !prefix_ids.contains(id))
            .collect();
        // The restore itself is already durable — drop its tracking.
        r.newly_done.clear();
        if let Some(w) = &mut r.wal_delta {
            *w = WalDelta::default();
        }
        let peers: BTreeSet<ReplicaId> = (0..n as u32)
            .map(ReplicaId)
            .filter(|p| *p != img.id)
            .collect();
        r.recovering = (!peers.is_empty()).then_some(peers);
        r
    }

    /// Simulates a crash with volatile memory: returns the stable-storage
    /// stub, consuming the replica.
    pub fn crash(self) -> RecoveryStub {
        let local_min_labels = self
            .labels
            .iter()
            .filter(|(_, l)| l.replica == self.id)
            .collect();
        RecoveryStub {
            id: self.id,
            next_counter: self.gen.next_counter(),
            local_min_labels,
        }
    }

    // ------------------------------------------------------------------
    // Accessors (used by checkers, experiments, and tests)
    // ------------------------------------------------------------------

    /// This replica's identity.
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// Number of replicas in the service.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The configuration.
    pub fn config(&self) -> ReplicaConfig {
        self.config
    }

    /// `pending_r`: requests not yet answered.
    pub fn pending(&self) -> &BTreeSet<OpId> {
        &self.pending
    }

    /// `rcvd_r`: all received operation descriptors.
    pub fn rcvd(&self) -> &BTreeMap<OpId, OpDescriptor<T::Operator>> {
        &self.rcvd
    }

    /// `done_r[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not a replica of this service.
    pub fn done(&self, i: ReplicaId) -> &BTreeSet<OpId> {
        &self.done[self.idx(i)]
    }

    /// `done_r[r]` — operations done at this replica.
    pub fn done_here(&self) -> &BTreeSet<OpId> {
        &self.done[self.idx(self.id)]
    }

    /// `stable_r[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not a replica of this service.
    pub fn stable(&self, i: ReplicaId) -> &BTreeSet<OpId> {
        &self.stable[self.idx(i)]
    }

    /// `stable_r[r]` — operations stable at this replica.
    pub fn stable_here(&self) -> &BTreeSet<OpId> {
        &self.stable[self.idx(self.id)]
    }

    /// `∩ᵢ stable_r[i]` — operations this replica knows are stable at every
    /// replica (the strict-response gate).
    pub fn stable_everywhere(&self) -> &BTreeSet<OpId> {
        &self.stable_everywhere
    }

    /// The label function `label_r`.
    pub fn labels(&self) -> &LabelMap {
        &self.labels
    }

    /// The local total order on done operations (ids sorted by label) —
    /// `lc_r` restricted to `done_r[r]` (Invariant 7.15).
    pub fn local_order(&self) -> Vec<OpId> {
        self.labels.ids_in_label_order()
    }

    /// Whether the replica is still waiting for post-recovery gossip.
    pub fn is_recovering(&self) -> bool {
        self.recovering.is_some()
    }

    /// Statistics counters.
    pub fn stats(&self) -> ReplicaStats {
        self.stats
    }

    /// Drains and returns the operations that became done at this replica
    /// since the last drain (harness instrumentation: the Lemma 9.2
    /// stabilization-time experiment watches these).
    pub fn take_newly_done(&mut self) -> Vec<OpId> {
        std::mem::take(&mut self.newly_done)
    }

    /// Drains the pending write-ahead-log delta (empty unless
    /// [`ReplicaConfig::durable`] is set). Drivers call this after every
    /// mutating input and persist the result before releasing the
    /// handler's effects.
    pub fn take_wal_delta(&mut self) -> WalDelta {
        self.wal_delta
            .as_mut()
            .map(std::mem::take)
            .unwrap_or_default()
    }

    /// The label counter the next locally-minted label will draw from —
    /// what a snapshot records so a recovered replica never re-mints a
    /// released label (§9.3).
    pub fn next_label_counter(&self) -> u64 {
        self.gen.next_counter()
    }

    /// The ids of the memoized prefix, in order (empty when memoization is
    /// off). Exposed for the §10.1 invariant checks.
    pub fn memo_order(&self) -> &[OpId] {
        self.memo.as_ref().map_or(&[], |m| &m.order)
    }

    /// The memoized state `ms_r` (None when memoization is off).
    pub fn memo_state(&self) -> Option<&T::State> {
        self.memo.as_ref().map(|m| &m.state)
    }

    /// The memoized value of `id`, if memoized.
    pub fn memo_value(&self, id: OpId) -> Option<&T::Value> {
        self.memo.as_ref().and_then(|m| m.values.get(&id))
    }

    /// The §10.3 do-time value of `id` (eager-commute mode only).
    pub fn eager_value(&self, id: OpId) -> Option<&T::Value> {
        self.eager.as_ref().and_then(|e| e.vals.get(&id))
    }

    /// The §10.3 current state `cs_r` (eager-commute mode only).
    pub fn eager_state(&self) -> Option<&T::State> {
        self.eager.as_ref().map(|e| &e.cs)
    }

    /// The state after applying **all** currently-done operations in local
    /// label order — the replica's current view of the object. Used by
    /// convergence checks; linear in the number of unmemoized operations.
    pub fn current_state(&self) -> T::State {
        let (start_state, start_label) = match &self.memo {
            Some(m) => (m.state.clone(), m.last_label),
            None => (self.dt.initial_state(), None),
        };
        let mut s = start_state;
        let mut cursor = start_label;
        while let Some((l, id)) = self.labels.next_after(cursor) {
            let d = self.rcvd.get(&id).expect("done op has descriptor");
            s = self.dt.apply(&s, &d.op).0;
            cursor = Some(l);
        }
        s
    }

    fn idx(&self, i: ReplicaId) -> usize {
        let k = i.0 as usize;
        assert!(k < self.n, "unknown replica {i}");
        k
    }

    // ------------------------------------------------------------------
    // Input actions
    // ------------------------------------------------------------------

    /// Handles `receive_cr(⟨"request", x⟩)`: records the request as pending
    /// (even if previously received — the front end may legitimately retry,
    /// paper footnote 4) and runs the internal actions to fixpoint.
    pub fn on_request(&mut self, desc: OpDescriptor<T::Operator>) -> Vec<RespondEffect<T::Value>> {
        self.pending.insert(desc.id);
        self.admit(desc);
        self.step()
    }

    /// Handles `receive_{r'r}(⟨"gossip", R, D, L, S⟩)` (paper Fig. 7) and
    /// runs the internal actions to fixpoint.
    pub fn on_gossip(&mut self, g: GossipMsg<T::Operator>) -> Vec<RespondEffect<T::Value>> {
        self.stats.gossip_in += 1;
        let GossipMsg {
            from,
            rcvd,
            done,
            labels,
            stable,
        } = g;
        let from_idx = self.idx(from);
        let here = self.idx(self.id);

        // rcvd ← rcvd ∪ R.
        for d in rcvd {
            self.admit(d);
        }
        // label_r ← min(label_r, L) — before the done-set updates so every
        // newly-done operation is labeled (Invariant 7.5).
        for (id, l) in labels {
            let l = match self.persisted_labels.get(&id) {
                Some(p) if *p < l => *p,
                _ => l,
            };
            if self.labels.merge_min(id, l) {
                self.record_label(id, l);
            }
        }
        // done_r[r'] ∪= D ∪ S ; done_r[r] ∪= D ∪ S ; done_r[i] ∪= S ∀i.
        for x in done.iter().chain(stable.iter()) {
            self.mark_done_at(*x, from_idx);
            self.mark_done_at(*x, here);
        }
        for x in &stable {
            for i in 0..self.n {
                self.mark_done_at(*x, i);
            }
        }
        // stable_r[r'] ∪= S ; stable_r[r] ∪= S (the ∩ᵢ done_r[i] part is
        // maintained incrementally by mark_done_at).
        for x in &stable {
            self.mark_stable_at(*x, from_idx);
            self.mark_stable_at(*x, here);
        }

        if let Some(waiting) = &mut self.recovering {
            waiting.remove(&from);
            // Rejoining also requires every operation this replica had
            // labeled pre-crash to be back in `rcvd`: a persisted
            // minimum label may order its operation *before* ops the
            // group has since stabilized, so reporting done/stable
            // knowledge while such an operation is still missing would
            // let strict responses be answered against an order the
            // relearned label later contradicts. Descriptors return via
            // peer gossip or front-end retransmission; until then the
            // replica stays passive.
            if waiting.is_empty()
                && self
                    .persisted_labels
                    .keys()
                    .all(|id| self.rcvd.contains_key(id))
            {
                self.recovering = None;
            }
        }
        self.step()
    }

    /// Builds the gossip message for `peer` (`send_{rr'}` in Fig. 7) and
    /// updates incremental watermarks. A recovering replica gossips an
    /// empty message (it has nothing trustworthy to say yet, but peers
    /// learn it is alive). Under [`GossipStrategy::Batched`] this returns
    /// the full snapshot — the always-safe resync message — because the
    /// batched exchange (delta construction, pacing) lives in
    /// [`Replica::poll_gossip`].
    pub fn make_gossip(&mut self, peer: ReplicaId) -> GossipMsg<T::Operator> {
        let here = self.idx(self.id);
        let msg = if self.recovering.is_some() {
            GossipMsg {
                from: self.id,
                rcvd: Vec::new(),
                done: Vec::new(),
                labels: Vec::new(),
                stable: Vec::new(),
            }
        } else {
            match self.config.gossip {
                GossipStrategy::Full | GossipStrategy::Batched => {
                    let peer_stable = &self.stable[self.idx(peer)];
                    let skip =
                        |id: &OpId| -> bool { self.config.gc_gossip && peer_stable.contains(id) };
                    GossipMsg {
                        from: self.id,
                        rcvd: self
                            .rcvd
                            .values()
                            .filter(|d| !skip(&d.id))
                            .cloned()
                            .collect(),
                        done: self.done[here]
                            .iter()
                            .filter(|x| !skip(x))
                            .copied()
                            .collect(),
                        labels: self.labels.iter().filter(|(id, _)| !skip(id)).collect(),
                        // S is never pruned: peers still need stability votes.
                        stable: self.stable[here].iter().copied().collect(),
                    }
                }
                GossipStrategy::Incremental => {
                    let wm = self.watermarks.entry(peer).or_default();
                    let rcvd: Vec<_> = self
                        .rcvd
                        .values()
                        .filter(|d| !wm.rcvd.contains(&d.id))
                        .cloned()
                        .collect();
                    let done: Vec<_> = self.done[here]
                        .iter()
                        .filter(|x| !wm.done.contains(x))
                        .copied()
                        .collect();
                    let labels: Vec<_> = self
                        .labels
                        .iter()
                        .filter(|(id, l)| wm.labels.get(id).is_none_or(|sent| l < sent))
                        .collect();
                    let stable: Vec<_> = self.stable[here]
                        .iter()
                        .filter(|x| !wm.stable.contains(x))
                        .copied()
                        .collect();
                    wm.rcvd.extend(rcvd.iter().map(|d| d.id));
                    wm.done.extend(done.iter().copied());
                    for (id, l) in &labels {
                        wm.labels.insert(*id, *l);
                    }
                    wm.stable.extend(stable.iter().copied());
                    GossipMsg {
                        from: self.id,
                        rcvd,
                        done,
                        labels,
                        stable,
                    }
                }
            }
        };
        self.stats.gossip_out += 1;
        self.stats.gossip_out_bytes += msg.approx_bytes() as u64;
        msg
    }

    /// Forgets the per-peer delta state for `peer` — the incremental
    /// watermark and the batched handshake/sent summaries — so the next
    /// gossip to it carries everything again. Called at every healthy
    /// replica when `peer` recovers from a crash ("requesting new gossip",
    /// §9.3) and by transports when a connection to `peer` drops (a lost
    /// delta would otherwise never be re-shipped).
    pub fn reset_watermark(&mut self, peer: ReplicaId) {
        self.watermarks.remove(&peer);
        self.batch.remove(&peer);
    }

    /// Produces the gossip message for `peer` under the configured
    /// strategy's **pacing**: `Full`/`Incremental` emit a snapshot on
    /// every call; `Batched` returns `None` until
    /// [`batch_interval`](ReplicaConfig::batch_interval) ticks have
    /// accumulated for this peer, then one [`BatchedGossipMsg`] covering
    /// everything since the last exchange. Transports should call this
    /// once per peer per gossip tick and send only `Some` results.
    pub fn poll_gossip(&mut self, peer: ReplicaId) -> Option<GossipEnvelope<T::Operator>> {
        if self.config.gossip != GossipStrategy::Batched || self.recovering.is_some() {
            return Some(GossipEnvelope::Snapshot(self.make_gossip(peer)));
        }
        let interval = self.config.batch_interval.max(1);
        let bs = self.batch.entry(peer).or_default();
        bs.ticks += 1;
        if bs.ticks < interval {
            return None;
        }
        bs.ticks = 0;
        let msg = self.make_batched_gossip(peer);
        self.stats.gossip_out += 1;
        self.stats.gossip_out_bytes += msg.approx_bytes() as u64;
        Some(GossipEnvelope::Batched(msg))
    }

    /// Builds one batched exchange for `peer` (see
    /// [`GossipStrategy::Batched`]): `R`/`L` as deltas against what the
    /// peer's handshake covers and what we already shipped, `D`/`S` as
    /// complete summaries, plus our own `known` handshake. Unlike
    /// [`Replica::poll_gossip`] this ignores pacing and does not touch the
    /// stats counters.
    ///
    /// Wire bytes are O(delta + #clients); *construction* still scans the
    /// label map (like every other strategy — `LabelMap` has no
    /// changed-since index), but the per-peer memory is bounded: sent
    /// descriptors/knowledge live in summaries, and sent-label entries
    /// are dropped once the op is stable at the peer (vs the incremental
    /// strategy's ever-growing per-peer id sets).
    pub fn make_batched_gossip(&mut self, peer: ReplicaId) -> BatchedGossipMsg<T::Operator> {
        let peer_stable = &self.stable[self.idx(peer)];
        let bs = self.batch.entry(peer).or_default();
        let rcvd: Vec<OpDescriptor<T::Operator>> = self
            .rcvd
            .values()
            .filter(|d| !bs.peer_rcvd.contains(d.id) && !bs.sent_rcvd.contains(d.id))
            .cloned()
            .collect();
        for d in &rcvd {
            bs.sent_rcvd.insert(d.id);
        }
        // §10.2 label GC, mirroring `gc_gossip`'s `L` pruning: an op
        // stable at the peer holds its frozen system-minimum label there
        // (Invariant 7.19), so its shipped label is retired and its
        // sent-label bookkeeping dropped — `sent_labels` tracks only
        // labels still in flux, not all of history. Only *shipped* labels
        // retire (stability is reached through our own earlier batches),
        // and retirement lives in `label_gc` so `reset_watermark` rewinds
        // it for recovered peers.
        {
            let BatchState {
                sent_labels,
                label_gc,
                ..
            } = bs;
            sent_labels.retain(|id, _| {
                if peer_stable.contains(id) {
                    label_gc.insert(*id);
                    false
                } else {
                    true
                }
            });
        }
        let labels: Vec<(OpId, Label)> = self
            .labels
            .iter()
            .filter(|(id, l)| {
                !bs.label_gc.contains(*id) && bs.sent_labels.get(id).is_none_or(|sent| l < sent)
            })
            .collect();
        for (id, l) in &labels {
            bs.sent_labels.insert(*id, *l);
        }
        BatchedGossipMsg {
            from: self.id,
            rcvd,
            done: self.done_here_summary.clone(),
            labels,
            stable: self.stable_here_summary.clone(),
            known: self.rcvd_summary.clone(),
        }
    }

    /// Handles a batched gossip exchange: records the sender's `known`
    /// handshake, folds in only the [`IdSummary::difference`] of its
    /// `done`/`stable` summaries against what this replica has already
    /// seen from it (O(delta)), and merges the `R`/`L` deltas through the
    /// ordinary [`Replica::on_gossip`] path. Duplicated messages are
    /// no-ops (summaries are monotone); lost messages stall only the
    /// `R`/`L` deltas, which [`Replica::reset_watermark`] at the sender
    /// rewinds.
    pub fn on_batched_gossip(
        &mut self,
        g: BatchedGossipMsg<T::Operator>,
    ) -> Vec<RespondEffect<T::Value>> {
        let BatchedGossipMsg {
            from,
            rcvd,
            done,
            labels,
            stable,
            known,
        } = g;
        let bs = self.batch.entry(from).or_default();
        let new_done = done.difference(&bs.seen_done);
        let new_stable = stable.difference(&bs.seen_stable);
        bs.seen_done.merge(&done);
        bs.seen_stable.merge(&stable);
        bs.peer_rcvd.merge(&known);
        self.on_gossip(GossipMsg {
            from,
            rcvd,
            done: new_done.iter().collect(),
            labels,
            stable: new_stable.iter().collect(),
        })
    }

    /// Dispatches any replica-to-replica message to its handler.
    pub fn on_gossip_envelope(
        &mut self,
        env: GossipEnvelope<T::Operator>,
    ) -> Vec<RespondEffect<T::Value>> {
        match env {
            GossipEnvelope::Snapshot(g) => self.on_gossip(g),
            GossipEnvelope::Batched(b) => self.on_batched_gossip(b),
        }
    }

    /// §10.2 local compaction: purges the full descriptors (operator and
    /// `prev` set) of operations that are **stable at this replica**,
    /// **memoized**, and **not pending**, keeping only what the paper says
    /// must survive — the identifier, its label, and its memoized value.
    /// Returns the number of descriptors purged.
    ///
    /// Soundness: stability at `r` means the operation is done at *every*
    /// replica (Invariant 7.2), so no replica will ever run `do_it` for it
    /// again — and `do_it` is the only consumer of `prev` (§10.2). The
    /// memoized prefix supplies the operation's fixed value and the state
    /// it folds into (Lemma 10.2), so the operator is never reapplied. A
    /// purged descriptor simply stops appearing in gossip `R` components;
    /// receivers only need `R` for their own `do_it`, which they have all
    /// performed.
    ///
    /// Interaction with crash recovery (§9.3): a replica that loses its
    /// volatile memory rebuilds `rcvd` from peers' gossip, so if **every**
    /// peer compacted an operation the recovering replica cannot replay it
    /// and would need a state-snapshot transfer instead. The paper presents
    /// the §9.3 recovery scheme and the §10.2 optimizations independently;
    /// so do we — deployments using [`Replica::crash`]/[`Replica::recover`]
    /// should leave at least one replica uncompacted or skip compaction,
    /// as `tests/faults.rs` does.
    ///
    /// No-op (returning 0) when memoization is disabled or the replica is
    /// recovering.
    pub fn compact(&mut self) -> usize {
        if self.recovering.is_some() {
            return 0;
        }
        let here = self.idx(self.id);
        let Some(memo) = &self.memo else {
            return 0;
        };
        let victims: Vec<OpId> = self.stable[here]
            .iter()
            .filter(|x| memo.values.contains_key(x))
            .filter(|x| !self.pending.contains(x))
            .filter(|x| self.rcvd.contains_key(x))
            .copied()
            .collect();
        for x in &victims {
            self.rcvd.remove(x);
        }
        self.stats.compacted += victims.len() as u64;
        victims.len()
    }

    /// Descriptors currently held in `rcvd` — the §10.2 memory-growth
    /// metric (`tab_memory` experiment).
    pub fn retained_descriptors(&self) -> usize {
        self.rcvd.len()
    }

    // ------------------------------------------------------------------
    // Internal actions
    // ------------------------------------------------------------------

    /// Adds a descriptor to `rcvd` and updates dependency bookkeeping.
    fn admit(&mut self, desc: OpDescriptor<T::Operator>) {
        let id = desc.id;
        if self.rcvd.contains_key(&id) {
            return;
        }
        let here = self.idx(self.id);
        let missing: Vec<OpId> = desc
            .prev
            .iter()
            .filter(|p| !self.done[here].contains(p))
            .copied()
            .collect();
        self.rcvd.insert(id, desc);
        self.rcvd_summary.insert(id);
        if let Some(w) = &mut self.wal_delta {
            w.admitted.push(id);
        }
        if self.done[here].contains(&id) {
            // Already done via gossip D/S before the descriptor arrived in
            // R of the same message — nothing to schedule.
            return;
        }
        if missing.is_empty() {
            self.ready.push(id);
        } else {
            self.blocked_on.insert(id, missing.len());
            for m in missing {
                self.blockers.entry(m).or_default().push(id);
            }
        }
    }

    /// Records a decreased label minimum in the pending WAL delta.
    fn record_label(&mut self, id: OpId, l: Label) {
        if let Some(w) = &mut self.wal_delta {
            w.labels.insert(id, l);
        }
    }

    /// Marks `x` done at replica index `i`, maintaining the done-counts and
    /// the derived `stable_r[r] = ∩ᵢ done_r[i]` (Invariant 7.2).
    fn mark_done_at(&mut self, x: OpId, i: usize) {
        if !self.done[i].insert(x) {
            return;
        }
        debug_assert!(
            i != self.idx(self.id) || self.labels.is_labeled(x),
            "done op {x} must be labeled (Invariant 7.5)"
        );
        let c = self.done_at_count.entry(x).or_insert(0);
        *c += 1;
        if *c as usize == self.n {
            let here = self.idx(self.id);
            self.mark_stable_at(x, here);
        }
        let here = self.idx(self.id);
        if i == here {
            self.done_here_summary.insert(x);
            self.newly_done.push(x);
            if self.eager.is_some() {
                self.eager_backlog.push(x);
            }
            // x became done here: unblock dependents.
            if let Some(deps) = self.blockers.remove(&x) {
                for y in deps {
                    if let Some(left) = self.blocked_on.get_mut(&y) {
                        *left -= 1;
                        if *left == 0 {
                            self.blocked_on.remove(&y);
                            if !self.done[here].contains(&y) {
                                self.ready.push(y);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Marks `x` stable at replica index `i`, maintaining stable-counts and
    /// `∩ᵢ stable_r[i]`.
    fn mark_stable_at(&mut self, x: OpId, i: usize) {
        if !self.stable[i].insert(x) {
            return;
        }
        if i == self.idx(self.id) {
            self.stable_here_summary.insert(x);
        }
        let c = self.stable_at_count.entry(x).or_insert(0);
        *c += 1;
        if *c as usize == self.n {
            self.stable_everywhere.insert(x);
        }
    }

    /// Runs `do_it` to fixpoint, advances the memo prefix, and computes
    /// responses for satisfiable pending requests.
    fn step(&mut self) -> Vec<RespondEffect<T::Value>> {
        if self.recovering.is_some() {
            return Vec::new();
        }
        // do_it: label every ready operation (ready ⇒ x ∈ rcvd − done[r]
        // and x.prev ⊆ done[r].id — exactly Fig. 7's precondition).
        while let Some(x) = self.ready.pop() {
            let here = self.idx(self.id);
            if self.done[here].contains(&x) {
                continue; // became done via gossip meanwhile
            }
            let l = match self.persisted_labels.get(&x) {
                // Our own pre-crash minimum: reuse it so the eventual order
                // is unchanged by the crash.
                Some(p) => *p,
                None => self.gen.fresh_above(self.labels.max_label()),
            };
            if self.labels.merge_min(x, l) {
                self.record_label(x, l);
            }
            self.stats.do_its += 1;
            self.mark_done_at(x, here);
        }
        self.process_eager_backlog();
        self.advance_memo();
        self.respond_pending()
    }

    /// Folds newly-done operations into the eager current state `cs_r` in a
    /// CSC-consistent order (Fig. 11's "in any order consistent with
    /// CSC(D)"), fixing each operation's do-time value.
    fn process_eager_backlog(&mut self) {
        if self.eager.is_none() || self.eager_backlog.is_empty() {
            return;
        }
        let batch: Vec<OpId> = std::mem::take(&mut self.eager_backlog);
        let batch_set: BTreeSet<OpId> = batch.iter().copied().collect();
        let mut g: Digraph<OpId> = Digraph::new();
        for x in &batch {
            g.add_node(*x);
            for p in &self.rcvd[x].prev {
                if batch_set.contains(p) {
                    g.add_edge(*p, *x);
                }
            }
        }
        let order = g
            .topo_sort()
            .expect("client-specified constraints are acyclic");
        let eager = self.eager.as_mut().expect("checked above");
        for x in order {
            if eager.vals.contains_key(&x) {
                continue;
            }
            let d = self.rcvd.get(&x).expect("done op has descriptor");
            let (ns, v) = self.dt.apply(&eager.cs, &d.op);
            self.stats.eager_applies += 1;
            eager.cs = ns;
            eager.vals.insert(x, v);
        }
    }

    /// Advances the memoized prefix over all *solid* operations: those with
    /// label ≤ the largest stable label (Invariant 10.1). Solid labels are
    /// frozen (Lemma 10.2), so the prefix never has to be recomputed.
    fn advance_memo(&mut self) {
        let here = self.idx(self.id);
        let Some(memo) = &mut self.memo else {
            return;
        };
        // Boundary: largest label of a stable op. Stable ops hold their
        // system-minimum labels (Invariant 7.19), so this max is stable too.
        let boundary = self.stable[here]
            .iter()
            .filter_map(|x| self.labels.get(*x).finite())
            .max();
        let Some(boundary) = boundary else { return };
        while let Some((l, id)) = self.labels.next_after(memo.last_label) {
            if l > boundary {
                break;
            }
            let d = self.rcvd.get(&id).expect("done op has descriptor");
            let (ns, v) = self.dt.apply(&memo.state, &d.op);
            self.stats.memo_applies += 1;
            memo.state = ns;
            memo.values.insert(id, v);
            memo.order.push(id);
            memo.last_label = Some(l);
        }
    }

    /// `send_cr(⟨"response", x, v⟩)` for every satisfiable pending request:
    /// `x ∈ pending ∩ done[r]`, and strict operations must be stable at all
    /// replicas. The value is computed from the local label order
    /// (`valset(x, done_r[r], ≺_{lc_r})` is a singleton by Invariant 7.16).
    fn respond_pending(&mut self) -> Vec<RespondEffect<T::Value>> {
        let here = self.idx(self.id);
        let candidates: Vec<OpId> = self
            .pending
            .iter()
            .filter(|x| self.done[here].contains(x))
            .copied()
            .collect();
        let mut out = Vec::new();
        for x in candidates {
            let strict = self.rcvd[&x].strict;
            if strict && !self.stable_everywhere.contains(&x) {
                continue;
            }
            let value = self.compute_value(x);
            let witness = self.config.record_witness.then(|| self.witness_for(x));
            self.pending.remove(&x);
            self.stats.responses += 1;
            out.push(RespondEffect {
                client: x.client(),
                msg: ResponseMsg {
                    id: x,
                    value,
                    witness,
                },
            });
        }
        out
    }

    /// The value of done operation `x` under the local label order: the
    /// memoized value if fixed, else recomputed from the memo state (or
    /// initial state) over the unmemoized suffix.
    fn compute_value(&mut self, x: OpId) -> T::Value {
        // Memoized (eventual-order) values take precedence: strict
        // operations are always memoized by the time they respond.
        if let Some(m) = &self.memo {
            if let Some(v) = m.values.get(&x) {
                return v.clone();
            }
        }
        // §10.3 eager mode: the do-time value (sound under SafeUsers).
        if let Some(e) = &self.eager {
            return e
                .vals
                .get(&x)
                .cloned()
                .expect("eager value is fixed when the op is done");
        }
        let (mut s, mut cursor) = match &self.memo {
            Some(m) => (m.state.clone(), m.last_label),
            None => (self.dt.initial_state(), None),
        };
        let target = self
            .labels
            .get(x)
            .finite()
            .expect("responding to an unlabeled op");
        loop {
            let (l, id) = self
                .labels
                .next_after(cursor)
                .expect("target label must be reachable");
            let d = self.rcvd.get(&id).expect("done op has descriptor");
            let (ns, v) = self.dt.apply(&s, &d.op);
            self.stats.response_applies += 1;
            if l == target {
                debug_assert_eq!(id, x);
                return v;
            }
            s = ns;
            cursor = Some(l);
        }
    }

    /// Checks the §10.1 memoization invariants (Invariants 10.1, 10.4):
    /// the memoized prefix is exactly a label-order prefix of solid
    /// operations, `ms_r` equals the outcome of replaying it, and every
    /// memoized value matches a from-scratch recomputation. Returns a
    /// description of the first violation, if any. Intended for tests and
    /// the invariant harness; linear in the number of done operations.
    pub fn check_memo_consistency(&self) -> Result<(), String> {
        let Some(memo) = &self.memo else {
            return Ok(());
        };
        let here = self.idx(self.id);
        // Invariant 10.1: memoized ⊆ solid (labels ≤ the largest stable
        // label) and the prefix is in label order.
        let boundary = self.stable[here]
            .iter()
            .filter_map(|x| self.labels.get(*x).finite())
            .max();
        let mut prev: Option<Label> = None;
        for x in &memo.order {
            let l = self
                .labels
                .get(*x)
                .finite()
                .ok_or_else(|| format!("memoized op {x} has no label"))?;
            if let Some(p) = prev {
                if l <= p {
                    return Err(format!("memo order not label-sorted at {x}"));
                }
            }
            match boundary {
                Some(b) if l <= b => {}
                _ => return Err(format!("memoized op {x} is not solid (Invariant 10.1)")),
            }
            prev = Some(l);
        }
        if prev != memo.last_label {
            return Err("memo.last_label out of sync with memo.order".to_string());
        }
        // Invariant 10.4: ms = outcome(memoized, lc order) and mv matches a
        // recomputation from scratch. §10.2 compaction purges exactly the
        // replay material this diagnostic needs, so a compacted replica
        // skips the replay (the invariant held when the value was fixed;
        // Lemma 10.2 says it cannot change afterwards).
        if memo.order.iter().any(|x| !self.rcvd.contains_key(x)) {
            return Ok(());
        }
        let mut s = self.dt.initial_state();
        for x in &memo.order {
            let d = self
                .rcvd
                .get(x)
                .ok_or_else(|| format!("memoized op {x} missing descriptor"))?;
            let (ns, v) = self.dt.apply(&s, &d.op);
            if memo.values.get(x) != Some(&v) {
                return Err(format!("memoized value of {x} diverges (Invariant 10.4)"));
            }
            s = ns;
        }
        if s != memo.state {
            return Err("memo state diverges from replay (Invariant 10.4)".to_string());
        }
        Ok(())
    }

    /// The local label order up to and including `x` (checker witness).
    fn witness_for(&self, x: OpId) -> Vec<OpId> {
        let mut out = Vec::new();
        for id in self.local_order() {
            out.push(id);
            if id == x {
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal counter datatype for replica unit tests.
    #[derive(Clone, Copy, Debug)]
    struct Ctr;
    #[derive(Clone, PartialEq, Eq, Debug)]
    enum Op {
        Inc,
        Read,
    }
    impl SerialDataType for Ctr {
        type State = i64;
        type Operator = Op;
        type Value = i64;
        fn initial_state(&self) -> i64 {
            0
        }
        fn apply(&self, s: &i64, op: &Op) -> (i64, i64) {
            match op {
                Op::Inc => (s + 1, s + 1),
                Op::Read => (*s, *s),
            }
        }
    }

    fn id(c: u32, s: u64) -> OpId {
        OpId::new(ClientId(c), s)
    }

    fn two_replicas(config: ReplicaConfig) -> (Replica<Ctr>, Replica<Ctr>) {
        (
            Replica::new(Ctr, ReplicaId(0), 2, config),
            Replica::new(Ctr, ReplicaId(1), 2, config),
        )
    }

    /// Fully exchange gossip between two replicas once in each direction.
    fn sync(a: &mut Replica<Ctr>, b: &mut Replica<Ctr>) -> Vec<RespondEffect<i64>> {
        let mut effects = Vec::new();
        let ga = a.make_gossip(b.id());
        effects.extend(b.on_gossip(ga));
        let gb = b.make_gossip(a.id());
        effects.extend(a.on_gossip(gb));
        effects
    }

    #[test]
    fn nonstrict_request_answered_immediately() {
        let (mut a, _) = two_replicas(ReplicaConfig::default());
        let d = OpDescriptor::new(id(0, 0), Op::Inc);
        let fx = a.on_request(d);
        assert_eq!(fx.len(), 1);
        assert_eq!(fx[0].msg.id, id(0, 0));
        assert_eq!(fx[0].msg.value, 1);
        assert_eq!(fx[0].client, ClientId(0));
        assert!(a.pending().is_empty());
    }

    #[test]
    fn strict_request_waits_for_global_stability() {
        let (mut a, mut b) = two_replicas(ReplicaConfig::default());
        let d = OpDescriptor::new(id(0, 0), Op::Inc).with_strict(true);
        let fx = a.on_request(d);
        assert!(fx.is_empty(), "strict op must not answer before stability");

        // Round 1: b learns the op and does it; a learns b has it done →
        // a: done everywhere → stable at a. But a doesn't know b knows.
        let mut fx = sync(&mut a, &mut b);
        // Round 2: b learns a's stability, b stabilizes; a learns b's
        // stability → stable everywhere at a → respond.
        fx.extend(sync(&mut a, &mut b));
        // At most one extra round for the response.
        fx.extend(sync(&mut a, &mut b));
        let resp: Vec<_> = fx.iter().filter(|e| e.msg.id == id(0, 0)).collect();
        assert_eq!(resp.len(), 1, "exactly one response for the strict op");
        assert_eq!(resp[0].msg.value, 1);
    }

    #[test]
    fn prev_constraint_defers_do_it() {
        let (mut a, mut b) = two_replicas(ReplicaConfig::default());
        // y depends on x, but y is sent to b which has never seen x.
        let x = OpDescriptor::new(id(0, 0), Op::Inc);
        let y = OpDescriptor::new(id(0, 1), Op::Read).with_prev([id(0, 0)]);
        let fx = b.on_request(y);
        assert!(fx.is_empty(), "y must wait for x");
        assert!(b.done_here().is_empty());

        let _ = a.on_request(x);
        let fx = sync(&mut a, &mut b);
        // b now has x via gossip, does x then y; read sees the increment.
        let resp: Vec<_> = fx.iter().filter(|e| e.msg.id == id(0, 1)).collect();
        assert_eq!(resp.len(), 1);
        assert_eq!(resp[0].msg.value, 1);
    }

    #[test]
    fn labels_converge_to_minimum() {
        let (mut a, mut b) = two_replicas(ReplicaConfig::default());
        // Both replicas label the same op independently; after gossip both
        // hold the minimum.
        let d = OpDescriptor::new(id(0, 0), Op::Inc);
        let _ = a.on_request(d.clone());
        let _ = b.on_request(d);
        let la = a.labels().get(id(0, 0));
        let lb = b.labels().get(id(0, 0));
        let min = la.min(lb);
        sync(&mut a, &mut b);
        assert_eq!(a.labels().get(id(0, 0)), min);
        assert_eq!(b.labels().get(id(0, 0)), min);
    }

    #[test]
    fn duplicate_request_reanswered() {
        let (mut a, _) = two_replicas(ReplicaConfig::default());
        let d = OpDescriptor::new(id(0, 0), Op::Inc);
        let fx1 = a.on_request(d.clone());
        let fx2 = a.on_request(d);
        assert_eq!(fx1.len(), 1);
        assert_eq!(fx2.len(), 1, "retried request gets a fresh response");
        assert_eq!(fx1[0].msg.value, fx2[0].msg.value);
        assert_eq!(a.stats().do_its, 1, "but the op is done only once");
    }

    #[test]
    fn replicas_converge_after_gossip() {
        let (mut a, mut b) = two_replicas(ReplicaConfig::default());
        let _ = a.on_request(OpDescriptor::new(id(0, 0), Op::Inc));
        let _ = b.on_request(OpDescriptor::new(id(1, 0), Op::Inc));
        sync(&mut a, &mut b);
        sync(&mut a, &mut b);
        assert_eq!(a.local_order(), b.local_order());
        assert_eq!(a.current_state(), b.current_state());
        assert_eq!(a.current_state(), 2);
    }

    #[test]
    fn memoization_matches_basic_values() {
        let mut basic = Replica::new(Ctr, ReplicaId(0), 2, ReplicaConfig::basic());
        let mut memo = Replica::new(Ctr, ReplicaId(0), 2, ReplicaConfig::default());
        let mut peer_b = Replica::new(Ctr, ReplicaId(1), 2, ReplicaConfig::basic());
        let mut peer_m = Replica::new(Ctr, ReplicaId(1), 2, ReplicaConfig::default());

        for s in 0..20 {
            let op = if s % 3 == 0 { Op::Read } else { Op::Inc };
            let d = OpDescriptor::new(id(0, s), op);
            let fb = basic.on_request(d.clone());
            let fm = memo.on_request(d);
            assert_eq!(
                fb.iter()
                    .map(|e| (e.msg.id, e.msg.value))
                    .collect::<Vec<_>>(),
                fm.iter()
                    .map(|e| (e.msg.id, e.msg.value))
                    .collect::<Vec<_>>()
            );
            if s % 5 == 0 {
                sync(&mut basic, &mut peer_b);
                sync(&mut memo, &mut peer_m);
            }
        }
        sync(&mut memo, &mut peer_m);
        sync(&mut memo, &mut peer_m);
        // After enough gossip the memo prefix covers everything stable.
        assert!(!memo.memo_order().is_empty());
        assert_eq!(memo.current_state(), basic.current_state());
    }

    #[test]
    fn incremental_gossip_carries_only_deltas() {
        let cfg = ReplicaConfig::default().with_gossip(GossipStrategy::Incremental);
        let (mut a, mut b) = two_replicas(cfg);
        let _ = a.on_request(OpDescriptor::new(id(0, 0), Op::Inc));
        let g1 = a.make_gossip(ReplicaId(1));
        assert_eq!(g1.rcvd.len(), 1);
        let g2 = a.make_gossip(ReplicaId(1));
        assert!(g2.is_empty(), "nothing changed since last gossip");
        let _ = b.on_gossip(g1);
        let _ = b.on_gossip(g2);
        assert!(b.done_here().contains(&id(0, 0)));
    }

    /// Exchange one batched round in each direction via poll_gossip
    /// (batch_interval 1 ⇒ always due).
    fn sync_batched(a: &mut Replica<Ctr>, b: &mut Replica<Ctr>) -> Vec<RespondEffect<i64>> {
        let mut effects = Vec::new();
        if let Some(env) = a.poll_gossip(b.id()) {
            effects.extend(b.on_gossip_envelope(env));
        }
        if let Some(env) = b.poll_gossip(a.id()) {
            effects.extend(a.on_gossip_envelope(env));
        }
        effects
    }

    #[test]
    fn batched_gossip_converges_like_full() {
        let cfg = ReplicaConfig::default().with_batched(1);
        let (mut a, mut b) = two_replicas(cfg);
        let _ = a.on_request(OpDescriptor::new(id(0, 0), Op::Inc));
        let _ = b.on_request(OpDescriptor::new(id(1, 0), Op::Inc));
        for _ in 0..4 {
            sync_batched(&mut a, &mut b);
        }
        assert_eq!(a.local_order(), b.local_order());
        assert_eq!(a.current_state(), 2);
        assert!(a.stable_everywhere().contains(&id(0, 0)));
        assert!(b.stable_everywhere().contains(&id(1, 0)));
    }

    #[test]
    fn batched_strict_request_stabilizes() {
        let cfg = ReplicaConfig::default().with_batched(1);
        let (mut a, mut b) = two_replicas(cfg);
        let fx = a.on_request(OpDescriptor::new(id(0, 0), Op::Inc).with_strict(true));
        assert!(fx.is_empty());
        let mut fx = Vec::new();
        for _ in 0..4 {
            fx.extend(sync_batched(&mut a, &mut b));
        }
        let resp: Vec<_> = fx.iter().filter(|e| e.msg.id == id(0, 0)).collect();
        assert_eq!(resp.len(), 1);
        assert_eq!(resp[0].msg.value, 1);
    }

    #[test]
    fn batched_ships_descriptors_once_and_prunes_by_handshake() {
        let cfg = ReplicaConfig::default().with_batched(1);
        let (mut a, mut b) = two_replicas(cfg);
        let _ = a.on_request(OpDescriptor::new(id(0, 0), Op::Inc));
        let Some(GossipEnvelope::Batched(g1)) = a.poll_gossip(ReplicaId(1)) else {
            panic!("batch_interval 1 must emit");
        };
        assert_eq!(g1.rcvd.len(), 1, "first exchange ships the descriptor");
        let _ = b.on_gossip_envelope(GossipEnvelope::Batched(g1));
        // Second exchange: the descriptor was already sent.
        let Some(GossipEnvelope::Batched(g2)) = a.poll_gossip(ReplicaId(1)) else {
            panic!()
        };
        assert!(g2.rcvd.is_empty(), "sent_rcvd suppresses the re-send");
        // An op b learned elsewhere (directly) is covered by b's handshake:
        // a never ships its descriptor even though a also holds it.
        let _ = b.on_request(OpDescriptor::new(id(1, 0), Op::Inc));
        let Some(env) = b.poll_gossip(ReplicaId(0)) else {
            panic!()
        };
        let _ = a.on_gossip_envelope(env); // a learns b's handshake covers 1:0
        let Some(GossipEnvelope::Batched(g3)) = a.poll_gossip(ReplicaId(1)) else {
            panic!()
        };
        assert!(
            g3.rcvd.is_empty(),
            "peer_rcvd handshake prunes descriptors the peer already has"
        );
    }

    #[test]
    fn batched_interval_paces_exchanges() {
        let cfg = ReplicaConfig::default().with_batched(3);
        let (mut a, _) = two_replicas(cfg);
        let _ = a.on_request(OpDescriptor::new(id(0, 0), Op::Inc));
        assert!(a.poll_gossip(ReplicaId(1)).is_none(), "tick 1 accumulates");
        assert!(a.poll_gossip(ReplicaId(1)).is_none(), "tick 2 accumulates");
        let env = a.poll_gossip(ReplicaId(1)).expect("tick 3 emits the batch");
        match env {
            GossipEnvelope::Batched(b) => assert_eq!(b.rcvd.len(), 1),
            GossipEnvelope::Snapshot(_) => panic!("batched strategy emits batches"),
        }
        assert!(a.poll_gossip(ReplicaId(1)).is_none(), "pacing restarts");
    }

    #[test]
    fn batched_duplicate_delivery_is_idempotent() {
        let cfg = ReplicaConfig::default().with_batched(1);
        let (mut a, mut b) = two_replicas(cfg);
        let _ = a.on_request(OpDescriptor::new(id(0, 0), Op::Inc));
        let Some(GossipEnvelope::Batched(g)) = a.poll_gossip(ReplicaId(1)) else {
            panic!()
        };
        let _ = b.on_batched_gossip(g.clone());
        let before = (b.done_here().clone(), b.labels().clone());
        let _ = b.on_batched_gossip(g);
        assert_eq!(b.done_here(), &before.0);
        assert_eq!(b.labels(), &before.1);
    }

    #[test]
    fn batched_reset_watermark_reships_everything() {
        let cfg = ReplicaConfig::default().with_batched(1);
        let (mut a, mut b) = two_replicas(cfg);
        let _ = a.on_request(OpDescriptor::new(id(0, 0), Op::Inc));
        // First batch is "lost": b never sees it.
        let _ = a.poll_gossip(ReplicaId(1)).expect("emitted");
        let Some(GossipEnvelope::Batched(g2)) = a.poll_gossip(ReplicaId(1)) else {
            panic!()
        };
        assert!(
            g2.rcvd.is_empty(),
            "descriptor is not re-shipped by default"
        );
        a.reset_watermark(ReplicaId(1));
        let Some(GossipEnvelope::Batched(g3)) = a.poll_gossip(ReplicaId(1)) else {
            panic!()
        };
        assert_eq!(g3.rcvd.len(), 1, "reset rewinds the delta state");
        let _ = b.on_gossip_envelope(GossipEnvelope::Batched(g3));
        assert!(b.done_here().contains(&id(0, 0)));
    }

    #[test]
    fn batched_label_gc_retires_peer_stable_labels_until_reset() {
        // Once an op is stable at the peer its label is frozen there
        // (Invariant 7.19), so steady-state batches stop carrying it; but
        // the retirement is part of the rewindable delta state — after
        // reset_watermark (connection loss, peer recovery) the label
        // ships again, because a recovered peer has lost it.
        let cfg = ReplicaConfig::default().with_batched(1);
        let (mut a, mut b) = two_replicas(cfg);
        let _ = a.on_request(OpDescriptor::new(id(0, 0), Op::Inc));
        for _ in 0..4 {
            sync_batched(&mut a, &mut b);
        }
        assert!(a.stable(ReplicaId(1)).contains(&id(0, 0)));
        let g = a.make_batched_gossip(ReplicaId(1));
        assert!(g.labels.is_empty(), "peer-stable labels are retired");
        a.reset_watermark(ReplicaId(1));
        let g = a.make_batched_gossip(ReplicaId(1));
        assert_eq!(g.rcvd.len(), 1, "descriptor re-ships after reset");
        assert_eq!(g.labels.len(), 1, "label re-ships after reset");
    }

    #[test]
    fn batched_crash_recovery_relearns_labels() {
        // Regression (found in review): retiring labels by peek-at-
        // `stable[peer]` alone made them unrecoverable — a crashed peer
        // lost its labels, and the sender's stale stability knowledge
        // suppressed re-shipping them, so the recovered replica marked
        // ops done without labels (Invariant 7.5 violation).
        let cfg = ReplicaConfig::default().with_batched(1);
        let (mut a, mut b) = two_replicas(cfg);
        let _ = a.on_request(OpDescriptor::new(id(0, 0), Op::Inc));
        for _ in 0..4 {
            sync_batched(&mut a, &mut b);
        }
        assert!(a.stable(ReplicaId(1)).contains(&id(0, 0)));
        // Exchange once more so a's label GC retires the stable label.
        let _ = b.on_batched_gossip(a.make_batched_gossip(ReplicaId(1)));
        // b crashes and recovers; the harness protocol: peers reset.
        let stub = b.crash();
        let mut b = Replica::recover(Ctr, stub, 2, cfg);
        a.reset_watermark(ReplicaId(1));
        for _ in 0..4 {
            sync_batched(&mut a, &mut b);
        }
        assert!(!b.is_recovering());
        assert!(b.labels().is_labeled(id(0, 0)), "label re-learned");
        assert!(b.done_here().contains(&id(0, 0)));
        assert_eq!(b.current_state(), 1);
        assert_eq!(a.local_order(), b.local_order());
    }

    #[test]
    fn batched_summaries_survive_compaction() {
        // §10.2 compaction purges descriptors, not knowledge: the
        // handshake still covers compacted ids and D/S still carry them.
        let cfg = ReplicaConfig::default().with_batched(1);
        let (mut a, mut b) = two_replicas(cfg);
        let _ = a.on_request(OpDescriptor::new(id(0, 0), Op::Inc));
        for _ in 0..4 {
            sync_batched(&mut a, &mut b);
        }
        assert!(a.stable_here().contains(&id(0, 0)));
        assert_eq!(a.compact(), 1);
        let g = a.make_batched_gossip(ReplicaId(1));
        assert!(g.known.contains(id(0, 0)), "knowledge outlives storage");
        assert!(g.done.contains(id(0, 0)));
        assert!(g.stable.contains(id(0, 0)));
        let _ = b.on_batched_gossip(g);
    }

    #[test]
    fn batched_recovering_replica_gossips_empty_snapshot() {
        let cfg = ReplicaConfig::default().with_batched(2);
        let (a, _) = two_replicas(cfg);
        let stub = a.crash();
        let mut a = Replica::recover(Ctr, stub, 2, cfg);
        let env = a.poll_gossip(ReplicaId(1)).expect("liveness beacon");
        match env {
            GossipEnvelope::Snapshot(g) => assert!(g.is_empty()),
            GossipEnvelope::Batched(_) => panic!("recovering replicas send empty snapshots"),
        }
    }

    #[test]
    fn make_gossip_under_batched_falls_back_to_snapshot() {
        let cfg = ReplicaConfig::default().with_batched(4);
        let (mut a, _) = two_replicas(cfg);
        let _ = a.on_request(OpDescriptor::new(id(0, 0), Op::Inc));
        let g = a.make_gossip(ReplicaId(1));
        assert_eq!(g.rcvd.len(), 1, "resync message carries the snapshot");
        assert_eq!(g.done.len(), 1);
    }

    #[test]
    fn gc_gossip_prunes_for_knowing_peer() {
        let cfg = ReplicaConfig::default().with_gc();
        let (mut a, mut b) = two_replicas(cfg);
        let _ = a.on_request(OpDescriptor::new(id(0, 0), Op::Inc));
        for _ in 0..4 {
            sync(&mut a, &mut b);
        }
        assert!(a.stable(ReplicaId(1)).contains(&id(0, 0)));
        let g = a.make_gossip(ReplicaId(1));
        assert!(
            g.rcvd.is_empty(),
            "R pruned for peers that have the op stable"
        );
        assert!(g.done.is_empty());
        assert!(g.labels.is_empty());
        assert_eq!(g.stable.len(), 1, "S is never pruned");
    }

    #[test]
    fn compact_purges_only_stable_memoized_descriptors() {
        let (mut a, mut b) = two_replicas(ReplicaConfig::default());
        let _ = a.on_request(OpDescriptor::new(id(0, 0), Op::Inc));
        let _ = a.on_request(OpDescriptor::new(id(0, 1), Op::Inc));
        // Nothing is stable yet: compaction must be a no-op.
        assert_eq!(a.compact(), 0);
        for _ in 0..4 {
            sync(&mut a, &mut b);
        }
        assert!(a.stable_here().contains(&id(0, 0)));
        let purged = a.compact();
        assert_eq!(purged, 2, "both stable memoized ops purged");
        assert_eq!(a.retained_descriptors(), 0);
        assert_eq!(a.stats().compacted, 2);
        // Values, labels, and the object state survive the purge.
        assert_eq!(a.memo_value(id(0, 1)), Some(&2));
        assert!(a.labels().is_labeled(id(0, 0)));
        assert_eq!(a.current_state(), 2);
        // Fresh operations still work on the compacted replica.
        let fx = a.on_request(OpDescriptor::new(id(0, 2), Op::Read));
        assert_eq!(fx.len(), 1);
        assert_eq!(fx[0].msg.value, 2, "read sees the compacted history");
    }

    #[test]
    fn compacted_op_can_still_be_answered_on_retry() {
        // A front end may retry an already-answered request (footnote 4);
        // the memoized value answers it even after compaction.
        let (mut a, mut b) = two_replicas(ReplicaConfig::default());
        let d = OpDescriptor::new(id(0, 0), Op::Inc);
        let _ = a.on_request(d.clone());
        for _ in 0..4 {
            sync(&mut a, &mut b);
        }
        assert_eq!(a.compact(), 1);
        let fx = a.on_request(d);
        assert_eq!(fx.len(), 1);
        assert_eq!(fx[0].msg.value, 1, "retry answered from the memoized value");
    }

    #[test]
    fn compact_requires_memoization() {
        let (mut a, mut b) = two_replicas(ReplicaConfig::basic());
        let _ = a.on_request(OpDescriptor::new(id(0, 0), Op::Inc));
        for _ in 0..4 {
            sync(&mut a, &mut b);
        }
        // basic() disables memoization: nothing can be purged safely.
        assert_eq!(a.compact(), 0);
        assert_eq!(a.retained_descriptors(), 1);
    }

    #[test]
    fn compacted_replica_keeps_gossiping_ids_and_labels() {
        let (mut a, mut b) = two_replicas(ReplicaConfig::default());
        let _ = a.on_request(OpDescriptor::new(id(0, 0), Op::Inc));
        for _ in 0..4 {
            sync(&mut a, &mut b);
        }
        let _ = a.compact();
        let g = a.make_gossip(ReplicaId(1));
        assert!(g.rcvd.is_empty(), "descriptor purged from R");
        assert!(g.done.contains(&id(0, 0)), "D still carries the id");
        assert!(
            g.labels.iter().any(|(i, _)| *i == id(0, 0)),
            "L still carries the label"
        );
        assert!(g.stable.contains(&id(0, 0)), "S still carries the vote");
        // The peer absorbs it without issue.
        let _ = b.on_gossip(g);
    }

    #[test]
    fn crash_recovery_preserves_minimum_labels() {
        let (mut a, mut b) = two_replicas(ReplicaConfig::basic());
        let _ = a.on_request(OpDescriptor::new(id(0, 0), Op::Inc));
        let pre_label = a.labels().get(id(0, 0));
        sync(&mut a, &mut b);

        let stub = a.crash();
        assert_eq!(stub.local_min_labels.len(), 1);
        let mut a = Replica::recover(Ctr, stub, 2, ReplicaConfig::basic());
        assert!(a.is_recovering());

        // Requests during recovery are buffered, not answered.
        let fx = a.on_request(OpDescriptor::new(id(0, 1), Op::Read));
        assert!(fx.is_empty());

        b.reset_watermark(ReplicaId(0));
        let g = b.make_gossip(ReplicaId(0));
        let fx = a.on_gossip(g);
        assert!(!a.is_recovering());
        // The buffered read now answers and sees the pre-crash increment.
        let resp: Vec<_> = fx.iter().filter(|e| e.msg.id == id(0, 1)).collect();
        assert_eq!(resp.len(), 1);
        assert_eq!(resp[0].msg.value, 1);
        // The op's label is unchanged by the crash.
        assert_eq!(a.labels().get(id(0, 0)), pre_label);
    }

    #[test]
    fn recovery_waits_for_operations_it_labeled_before_the_crash() {
        // An op received and labeled locally but never gossiped out: the
        // crash keeps its minimum label in stable storage while every
        // peer is oblivious. The recovered replica must not rejoin on
        // peer gossip alone — its persisted label orders the op before
        // anything the group stabilizes meanwhile, so rejoining without
        // the descriptor would let strict responses be answered against
        // an order the relearned label later contradicts.
        let (mut a, mut b) = two_replicas(ReplicaConfig::basic());
        let _ = a.on_request(OpDescriptor::new(id(0, 0), Op::Inc));
        let stub = a.crash();
        assert_eq!(stub.local_min_labels.len(), 1);
        let mut a = Replica::recover(Ctr, stub, 2, ReplicaConfig::basic());

        // Full gossip from the only peer: it has never seen c0:0, so
        // recovery must stay open.
        b.reset_watermark(ReplicaId(0));
        let _ = a.on_gossip(b.make_gossip(ReplicaId(0)));
        assert!(a.is_recovering(), "peer gossip lacks the labeled op");

        // The front end retries the unanswered request; the next gossip
        // round closes recovery and the op keeps its pre-crash label.
        let pre = a.on_request(OpDescriptor::new(id(0, 0), Op::Inc));
        assert!(pre.is_empty(), "still passive until gossip re-checks");
        let _ = a.on_gossip(b.make_gossip(ReplicaId(0)));
        assert!(!a.is_recovering());
        assert!(a.done_here().contains(&id(0, 0)));
    }

    #[test]
    fn recovering_replica_gossips_empty() {
        let (a, _) = two_replicas(ReplicaConfig::basic());
        let stub = a.crash();
        let mut a = Replica::recover(Ctr, stub, 2, ReplicaConfig::basic());
        let g = a.make_gossip(ReplicaId(1));
        assert!(g.is_empty());
    }

    #[test]
    fn witness_records_local_prefix() {
        let cfg = ReplicaConfig::default().with_witness();
        let (mut a, _) = two_replicas(cfg);
        let _ = a.on_request(OpDescriptor::new(id(0, 0), Op::Inc));
        let fx = a.on_request(OpDescriptor::new(id(0, 1), Op::Read));
        let w = fx[0].msg.witness.as_ref().expect("witness recorded");
        assert_eq!(w, &vec![id(0, 0), id(0, 1)]);
    }

    #[test]
    #[should_panic(expected = "replica id out of range")]
    fn bad_replica_id_rejected() {
        let _ = Replica::new(Ctr, ReplicaId(5), 2, ReplicaConfig::default());
    }

    #[test]
    fn single_replica_service_stabilizes_alone() {
        let mut a = Replica::new(Ctr, ReplicaId(0), 1, ReplicaConfig::default());
        let d = OpDescriptor::new(id(0, 0), Op::Inc).with_strict(true);
        let fx = a.on_request(d);
        assert_eq!(fx.len(), 1, "n=1: done ⇒ stable everywhere");
        assert_eq!(fx[0].msg.value, 1);
    }
}

//! Support for the commutativity-exploiting algorithm variant (paper §10.3).
//!
//! The `Commute` automaton (Fig. 11) is [`crate::Replica`] configured with
//! [`crate::replica::ValueStrategy::EagerCommute`]
//! (see [`crate::ReplicaConfig::commute`]): it maintains a *current state*
//! `cs_r`, fixes each operation's value when the operation is done, and
//! never recomputes nonstrict values. By Lemma 10.6 this is sound only when
//! clients explicitly CSC-order every pair of **non-commuting** operations —
//! the `SafeUsers` well-formedness condition.
//!
//! [`SafeSubmitter`] is the client-side half: it tracks issued operations
//! and computes, for each new operation, the `prev` set that `SafeUsers`
//! requires (all earlier non-commuting operations, pruned to the minimal
//! frontier).

use std::collections::BTreeSet;

use esds_core::{CommutativitySpec, Digraph, OpId};

/// Tracks the operations a set of cooperating clients has issued and
/// produces the `prev` sets that make the workload a `SafeUsers` workload:
/// every pair of non-commuting operations is ordered by the
/// client-specified constraints.
///
/// The returned `prev` sets are pruned to the *frontier*: an earlier
/// conflicting operation is omitted when another conflicting operation
/// already follows it in the constraint graph (the constraint is implied by
/// transitivity).
///
/// # Examples
///
/// ```
/// use esds_alg::SafeSubmitter;
/// use esds_core::{ClientId, OpId};
/// use esds_datatypes::{Counter, CounterOp};
///
/// let mut s = SafeSubmitter::new(Counter);
/// let a = OpId::new(ClientId(0), 0);
/// let b = OpId::new(ClientId(0), 1);
///
/// // Increment conflicts with nothing issued yet.
/// assert!(s.prev_for(&CounterOp::Increment(1)).is_empty());
/// s.record(a, CounterOp::Increment(1));
///
/// // Double does not commute with the increment: must be ordered after it.
/// let prev = s.prev_for(&CounterOp::Double);
/// assert!(prev.contains(&a));
/// s.record_with_prev(b, CounterOp::Double, prev);
/// ```
#[derive(Clone, Debug)]
pub struct SafeSubmitter<T: CommutativitySpec> {
    dt: T,
    issued: Vec<(OpId, T::Operator)>,
    /// The CSC edges recorded so far (for frontier pruning).
    csc: Digraph<OpId>,
}

impl<T: CommutativitySpec> SafeSubmitter<T> {
    /// Creates a tracker for the given data type.
    pub fn new(dt: T) -> Self {
        SafeSubmitter {
            dt,
            issued: Vec::new(),
            csc: Digraph::new(),
        }
    }

    /// Number of operations recorded.
    pub fn len(&self) -> usize {
        self.issued.len()
    }

    /// Whether no operations were recorded.
    pub fn is_empty(&self) -> bool {
        self.issued.is_empty()
    }

    /// The `prev` set `SafeUsers` requires for a new operation `op`: the
    /// frontier of earlier operations that do not commute with it.
    pub fn prev_for(&self, op: &T::Operator) -> BTreeSet<OpId> {
        let conflicting: BTreeSet<OpId> = self
            .issued
            .iter()
            .filter(|(_, earlier)| !self.dt.commutes(earlier, op))
            .map(|(id, _)| *id)
            .collect();
        // Frontier pruning: drop y when some other conflicting z follows it
        // (y ≺ z already forces y ≺ op by transitivity).
        conflicting
            .iter()
            .filter(|y| {
                !conflicting
                    .iter()
                    .any(|z| z != *y && self.csc.precedes(y, z))
            })
            .copied()
            .collect()
    }

    /// Records an issued operation with no extra constraints.
    pub fn record(&mut self, id: OpId, op: T::Operator) {
        self.record_with_prev(id, op, BTreeSet::new());
    }

    /// Records an issued operation and the `prev` set it was issued with.
    pub fn record_with_prev(&mut self, id: OpId, op: T::Operator, prev: BTreeSet<OpId>) {
        self.csc.add_node(id);
        for p in prev {
            self.csc.add_edge(p, id);
        }
        self.issued.push((id, op));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esds_core::ClientId;
    use esds_datatypes::{Counter, CounterOp, GSet, GSetOp};

    fn id(s: u64) -> OpId {
        OpId::new(ClientId(0), s)
    }

    #[test]
    fn commuting_ops_need_no_constraints() {
        let mut s = SafeSubmitter::new(GSet);
        for i in 0..5 {
            let op = GSetOp::Add(i);
            assert!(s.prev_for(&op).is_empty(), "adds all commute");
            s.record(id(i), op);
        }
    }

    #[test]
    fn conflicting_ops_get_ordered() {
        let mut s = SafeSubmitter::new(Counter);
        s.record(id(0), CounterOp::Increment(1));
        s.record(id(1), CounterOp::Increment(2));
        let prev = s.prev_for(&CounterOp::Double);
        // Double conflicts with both increments; neither is ordered after
        // the other, so both stay in the frontier.
        assert_eq!(prev, [id(0), id(1)].into_iter().collect());
    }

    #[test]
    fn frontier_pruning_drops_implied_constraints() {
        use esds_datatypes::{Register, RegisterOp};
        let mut s = SafeSubmitter::new(Register);
        s.record(id(0), RegisterOp::Write(1));
        let prev1 = s.prev_for(&RegisterOp::Write(2));
        assert_eq!(prev1, [id(0)].into_iter().collect());
        s.record_with_prev(id(1), RegisterOp::Write(2), prev1);

        // A third write conflicts with both earlier writes, but write₀ ≺
        // write₁ is recorded, so only write₁ remains in the frontier.
        let prev2 = s.prev_for(&RegisterOp::Write(3));
        assert_eq!(prev2, [id(1)].into_iter().collect());
    }

    #[test]
    fn reads_conflict_with_nothing_statewise() {
        let mut s = SafeSubmitter::new(Counter);
        s.record(id(0), CounterOp::Increment(1));
        // Read commutes (state-wise) with everything: SafeUsers only
        // requires ordering non-commuting pairs (Lemma 10.6 fixes the
        // outcome; values of reads may still vary, which §10.3 permits for
        // nonstrict operations).
        assert!(s.prev_for(&CounterOp::Read).is_empty());
    }
}

//! Whole-system derived variables (paper §6.4, Fig. 8).
//!
//! These are *bird's-eye* quantities defined over the state of every
//! replica plus the messages in transit; the algorithm never computes them,
//! but the invariant checks (Sections 7–8) and the conformance observer are
//! phrased in terms of them:
//!
//! * `ops` — operations done at any replica;
//! * `minlabel` — the system-wide minimum label per operation (its position
//!   in the eventual total order);
//! * `lc_r` — replica `r`'s local constraints (order by `label_r`);
//! * `mc_r(m)` — the constraints `r` would have after receiving gossip `m`;
//! * `sc` — the system constraints agreed by all replicas and messages;
//! * `po` — the relation induced by `TC(CSC(ops) ∪ sc)` on `ops`.

use std::collections::{BTreeMap, BTreeSet};

use esds_core::{csc, Digraph, LabelSlot, OpDescriptor, OpId, ReplicaId, SerialDataType};

use crate::messages::GossipMsg;
use crate::replica::Replica;

/// A snapshot of the whole system, assembled by the harness: every replica,
/// every in-flight gossip message (with its destination), and the clients'
/// view (requested / waiting / responded operation ids).
pub struct SystemView<'a, T: SerialDataType> {
    /// All replicas, indexed by `ReplicaId(i) == replicas[i].id()`.
    pub replicas: Vec<&'a Replica<T>>,
    /// Gossip messages in transit, tagged with their destination replica.
    pub gossip_in_flight: Vec<(ReplicaId, GossipMsg<T::Operator>)>,
    /// Every operation ever requested by a client (the `Users` automaton's
    /// `requested` set).
    pub requested: BTreeMap<OpId, OpDescriptor<T::Operator>>,
    /// Ids in some front end's `wait` set.
    pub waiting: BTreeSet<OpId>,
    /// Ids with a response recorded at a front end or in flight.
    pub responded: BTreeSet<OpId>,
}

impl<'a, T: SerialDataType> SystemView<'a, T> {
    /// `ops = ∪_r done_r[r]`: operations done at some replica.
    pub fn ops(&self) -> BTreeSet<OpId> {
        let mut out = BTreeSet::new();
        for r in &self.replicas {
            out.extend(r.done_here().iter().copied());
        }
        out
    }

    /// The descriptors of `ops` (they are always requested, Invariant 7.6).
    pub fn op_descriptors(&self) -> BTreeMap<OpId, OpDescriptor<T::Operator>> {
        self.ops()
            .into_iter()
            .filter_map(|id| self.requested.get(&id).map(|d| (id, d.clone())))
            .collect()
    }

    /// `minlabel(id)`: the system-wide minimum label for `id` (`Inf` if no
    /// replica has labeled it).
    pub fn minlabel(&self, id: OpId) -> LabelSlot {
        self.replicas
            .iter()
            .map(|r| r.labels().get(id))
            .min()
            .unwrap_or(LabelSlot::Inf)
    }

    /// The eventual total order as far as currently determined: done
    /// operations sorted by `minlabel` (ties impossible — labels are
    /// unique).
    pub fn minlabel_order(&self) -> Vec<OpId> {
        let mut v: Vec<(LabelSlot, OpId)> = self
            .ops()
            .into_iter()
            .map(|id| (self.minlabel(id), id))
            .collect();
        v.sort();
        v.into_iter().map(|(_, id)| id).collect()
    }

    /// `lc_r` restricted to the given id set, as a digraph.
    pub fn lc(&self, r: ReplicaId, over: &BTreeSet<OpId>) -> Digraph<OpId> {
        let rep = self.replicas[r.0 as usize];
        let mut g = Digraph::new();
        let ids: Vec<OpId> = over.iter().copied().collect();
        for (i, a) in ids.iter().enumerate() {
            g.add_node(*a);
            for b in ids.iter().skip(i + 1) {
                if rep.labels().lc_precedes(*a, *b) {
                    g.add_edge(*a, *b);
                } else if rep.labels().lc_precedes(*b, *a) {
                    g.add_edge(*b, *a);
                }
            }
        }
        g
    }

    /// Whether `(a, b) ∈ mc_r(m)`: `min(label_r, L_m)(a) < min(label_r,
    /// L_m)(b)` — the constraints `r` would hold right after receiving `m`.
    pub fn mc_precedes(
        &self,
        dest: ReplicaId,
        msg: &GossipMsg<T::Operator>,
        a: OpId,
        b: OpId,
    ) -> bool {
        let rep = self.replicas[dest.0 as usize];
        let msg_label = |id: OpId| -> LabelSlot {
            msg.labels
                .iter()
                .find(|(i, _)| *i == id)
                .map(|(_, l)| LabelSlot::Fin(*l))
                .unwrap_or(LabelSlot::Inf)
        };
        let la = rep.labels().get(a).min(msg_label(a));
        let lb = rep.labels().get(b).min(msg_label(b));
        la < lb
    }

    /// The system constraints `sc = (∩_r lc_r) ∩ (∩_{m→r} mc_r(m))` over
    /// the current `ops` (paper Fig. 8). Quadratic in `|ops|`; intended for
    /// checker-sized systems.
    pub fn sc(&self) -> Digraph<OpId> {
        let ops: Vec<OpId> = self.ops().into_iter().collect();
        let mut g = Digraph::new();
        for a in &ops {
            g.add_node(*a);
        }
        for (i, a) in ops.iter().enumerate() {
            'pair: for b in ops.iter().skip(i + 1) {
                for (x, y) in [(*a, *b), (*b, *a)] {
                    // (x, y) ∈ sc iff every replica and every in-flight
                    // message agrees x precedes y.
                    let all_lc = self.replicas.iter().all(|r| r.labels().lc_precedes(x, y));
                    if !all_lc {
                        continue;
                    }
                    let all_mc = self
                        .gossip_in_flight
                        .iter()
                        .all(|(dest, m)| self.mc_precedes(*dest, m, x, y));
                    if all_mc {
                        g.add_edge(x, y);
                        continue 'pair;
                    }
                }
            }
        }
        g
    }

    /// `po`: the relation induced by `TC(CSC(ops) ∪ sc)` on `ops` — the
    /// specification-level partial order the algorithm maintains
    /// (Invariant 8.1 guarantees it is a strict partial order).
    pub fn po(&self) -> Digraph<OpId> {
        let descs = self.op_descriptors();
        let mut g = self.sc();
        for (a, b) in csc(descs.values()) {
            g.add_edge(a, b);
        }
        let ops = self.ops();
        g.induced_on(&ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replica::ReplicaConfig;
    use esds_core::ClientId;

    #[derive(Clone, Copy, Debug)]
    struct Ctr;
    #[derive(Clone, PartialEq, Eq, Debug)]
    enum Op {
        Inc,
    }
    impl SerialDataType for Ctr {
        type State = i64;
        type Operator = Op;
        type Value = i64;
        fn initial_state(&self) -> i64 {
            0
        }
        fn apply(&self, s: &i64, _op: &Op) -> (i64, i64) {
            (s + 1, s + 1)
        }
    }

    fn id(c: u32, s: u64) -> OpId {
        OpId::new(ClientId(c), s)
    }

    #[test]
    fn derived_variables_on_small_system() {
        let mut a = Replica::new(Ctr, ReplicaId(0), 2, ReplicaConfig::default());
        let mut b = Replica::new(Ctr, ReplicaId(1), 2, ReplicaConfig::default());
        let da = OpDescriptor::new(id(0, 0), Op::Inc);
        let db = OpDescriptor::new(id(1, 0), Op::Inc);
        let _ = a.on_request(da.clone());
        let _ = b.on_request(db.clone());

        let mut requested = BTreeMap::new();
        requested.insert(da.id, da.clone());
        requested.insert(db.id, db.clone());

        // Before gossip: each replica knows only its own op; sc has no
        // cross-constraints (the other replica has ∞ for the unseen op, and
        // ∞ < ∞ is false, so disagreement).
        let view = SystemView {
            replicas: vec![&a, &b],
            gossip_in_flight: Vec::new(),
            requested: requested.clone(),
            waiting: BTreeSet::new(),
            responded: [da.id, db.id].into_iter().collect(),
        };
        assert_eq!(view.ops().len(), 2);
        assert_eq!(view.sc().edge_count(), 0);
        assert!(view.po().is_strict_partial_order());

        // After full gossip both agree; sc totally orders the two ops.
        let g = a.make_gossip(ReplicaId(1));
        let _ = b.on_gossip(g);
        let g = b.make_gossip(ReplicaId(0));
        let _ = a.on_gossip(g);
        let view = SystemView {
            replicas: vec![&a, &b],
            gossip_in_flight: Vec::new(),
            requested,
            waiting: BTreeSet::new(),
            responded: [da.id, db.id].into_iter().collect(),
        };
        assert_eq!(view.sc().edge_count(), 1);
        let order = view.minlabel_order();
        assert_eq!(order.len(), 2);
        assert!(view.sc().precedes(&order[0], &order[1]));
    }

    #[test]
    fn in_flight_message_weakens_sc() {
        let mut a = Replica::new(Ctr, ReplicaId(0), 2, ReplicaConfig::default());
        let mut b = Replica::new(Ctr, ReplicaId(1), 2, ReplicaConfig::default());
        let da = OpDescriptor::new(id(0, 0), Op::Inc);
        let db = OpDescriptor::new(id(1, 0), Op::Inc);
        let _ = a.on_request(da.clone());
        // Sync so both know op a.
        let g = a.make_gossip(ReplicaId(1));
        let _ = b.on_gossip(g);
        // b now also does op b and sends gossip that is still in flight.
        let _ = b.on_request(db.clone());
        let in_flight = b.make_gossip(ReplicaId(0));
        let g2 = b.make_gossip(ReplicaId(0));
        let _ = a.on_gossip(g2);

        let mut requested = BTreeMap::new();
        requested.insert(da.id, da);
        requested.insert(db.id, db);
        let view = SystemView {
            replicas: vec![&a, &b],
            gossip_in_flight: vec![(ReplicaId(0), in_flight)],
            requested,
            waiting: BTreeSet::new(),
            responded: BTreeSet::new(),
        };
        // Even with the message in flight, sc is consistent (message labels
        // only confirm the agreed order here).
        assert!(view.po().is_strict_partial_order());
    }
}

//! The front-end automaton (paper Fig. 6 / §6.2).
//!
//! Each client accesses the service through a front end that assigns unique
//! operation identifiers, relays requests to one or more replicas, and
//! relays the first response back. Front ends may retry requests —
//! "repeatedly, requesting a response from different replicas, or even
//! repeatedly from the same replica" — which the paper allows for
//! performance and fault tolerance (footnote 3); the replicas tolerate
//! duplicates.

use std::collections::{BTreeMap, BTreeSet};

use esds_core::{ClientId, OpDescriptor, OpId, ReplicaId};

use crate::messages::{RequestMsg, ResponseMsg};

/// Which replica(s) a front end relays each request to.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum RelayPolicy {
    /// Always the same replica (the paper's locality note after Theorem
    /// 9.3: a client talking to one replica gets its own operations applied
    /// immediately).
    Fixed(ReplicaId),
    /// Rotate over all replicas (load balancing).
    RoundRobin,
    /// Send every request to every replica (maximum fault tolerance,
    /// duplicate responses are deduplicated).
    Broadcast,
}

/// A response delivered to the client (the `response(x, v)` output action).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ClientDelivery<V> {
    /// The operation answered.
    pub id: OpId,
    /// Its value.
    pub value: V,
}

/// The front end of one client (paper Fig. 6).
///
/// Sans-IO: methods return the request messages to transmit; the harness or
/// runtime owns actual channels and timers.
#[derive(Clone, Debug)]
pub struct FrontEnd<O, V> {
    client: ClientId,
    n_replicas: usize,
    policy: RelayPolicy,
    next_seq: u64,
    rr_cursor: usize,
    /// `wait_c`: requested but not yet responded to.
    wait: BTreeMap<OpId, OpDescriptor<O>>,
    /// Ids already answered (for deduplicating replica responses).
    answered: BTreeSet<OpId>,
    /// Completed operations and their values (client-side history,
    /// used by experiments and checkers; not part of the paper automaton).
    completed: BTreeMap<OpId, V>,
}

impl<O: Clone, V> FrontEnd<O, V> {
    /// Creates a front end for `client` against `n_replicas` replicas.
    ///
    /// # Panics
    ///
    /// Panics if `n_replicas` is zero or the fixed policy names an unknown
    /// replica.
    pub fn new(client: ClientId, n_replicas: usize, policy: RelayPolicy) -> Self {
        assert!(n_replicas > 0, "a service needs at least one replica");
        if let RelayPolicy::Fixed(r) = policy {
            assert!((r.0 as usize) < n_replicas, "fixed replica out of range");
        }
        FrontEnd {
            client,
            n_replicas,
            policy,
            next_seq: 0,
            rr_cursor: client.0 as usize % n_replicas,
            wait: BTreeMap::new(),
            answered: BTreeSet::new(),
            completed: BTreeMap::new(),
        }
    }

    /// The client this front end serves.
    pub fn client(&self) -> ClientId {
        self.client
    }

    /// `wait_c`: operations awaiting a response.
    pub fn waiting(&self) -> impl Iterator<Item = &OpDescriptor<O>> {
        self.wait.values()
    }

    /// Ids of operations awaiting a response.
    pub fn waiting_ids(&self) -> BTreeSet<OpId> {
        self.wait.keys().copied().collect()
    }

    /// Completed operations and their values, in id order.
    pub fn completed(&self) -> &BTreeMap<OpId, V> {
        &self.completed
    }

    /// The value returned for `id`, if it completed.
    pub fn value_of(&self, id: OpId) -> Option<&V> {
        self.completed.get(&id)
    }

    /// Builds a descriptor for the next operation of this client (unique
    /// identifier, given `prev`/`strict`), records it as waiting, and
    /// returns it with the relay targets.
    ///
    /// Well-formedness (paper §4) of `prev` is the caller's duty: it may
    /// only name operations already requested. The `Users`-automaton
    /// checker in `esds-spec` enforces it in tests.
    pub fn submit(
        &mut self,
        op: O,
        prev: impl IntoIterator<Item = OpId>,
        strict: bool,
    ) -> (OpId, Vec<(ReplicaId, RequestMsg<O>)>) {
        let id = OpId::new(self.client, self.next_seq);
        self.next_seq += 1;
        let desc = OpDescriptor::new(id, op)
            .with_prev(prev)
            .with_strict(strict);
        let sends = self.relay(&desc);
        self.wait.insert(id, desc);
        (id, sends)
    }

    /// Re-sends every waiting request (retry timer / fault tolerance).
    /// Round-robin policies rotate to the next replica on each retry, so a
    /// crashed replica is eventually routed around.
    pub fn resend_pending(&mut self) -> Vec<(ReplicaId, RequestMsg<O>)> {
        let descs: Vec<OpDescriptor<O>> = self.wait.values().cloned().collect();
        descs.iter().flat_map(|d| self.relay(d)).collect()
    }

    /// Handles a response message; returns the client delivery the first
    /// time each operation is answered (`response(x, v)` action), `None`
    /// for duplicates or answers to unknown/forgotten operations.
    pub fn on_response(&mut self, msg: ResponseMsg<V>) -> Option<ClientDelivery<V>>
    where
        V: Clone,
    {
        let ResponseMsg { id, value, .. } = msg;
        if self.wait.remove(&id).is_none() || !self.answered.insert(id) {
            return None;
        }
        self.completed.insert(id, value.clone());
        Some(ClientDelivery { id, value })
    }

    fn relay(&mut self, desc: &OpDescriptor<O>) -> Vec<(ReplicaId, RequestMsg<O>)> {
        let msg = |d: &OpDescriptor<O>| RequestMsg { desc: d.clone() };
        match self.policy {
            RelayPolicy::Fixed(r) => vec![(r, msg(desc))],
            RelayPolicy::RoundRobin => {
                let r = ReplicaId(self.rr_cursor as u32);
                self.rr_cursor = (self.rr_cursor + 1) % self.n_replicas;
                vec![(r, msg(desc))]
            }
            RelayPolicy::Broadcast => (0..self.n_replicas as u32)
                .map(|r| (ReplicaId(r), msg(desc)))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fe(policy: RelayPolicy) -> FrontEnd<&'static str, i64> {
        FrontEnd::new(ClientId(2), 3, policy)
    }

    #[test]
    fn submit_assigns_sequential_unique_ids() {
        let mut f = fe(RelayPolicy::Fixed(ReplicaId(0)));
        let (a, _) = f.submit("x", [], false);
        let (b, _) = f.submit("y", [a], true);
        assert_eq!(a, OpId::new(ClientId(2), 0));
        assert_eq!(b, OpId::new(ClientId(2), 1));
        assert_eq!(f.waiting_ids().len(), 2);
    }

    #[test]
    fn fixed_policy_targets_one_replica() {
        let mut f = fe(RelayPolicy::Fixed(ReplicaId(1)));
        let (_, sends) = f.submit("x", [], false);
        assert_eq!(sends.len(), 1);
        assert_eq!(sends[0].0, ReplicaId(1));
    }

    #[test]
    fn round_robin_rotates() {
        let mut f = fe(RelayPolicy::RoundRobin);
        let targets: Vec<ReplicaId> = (0..4).map(|_| f.submit("x", [], false).1[0].0).collect();
        assert_eq!(targets[0], targets[3]);
        assert_ne!(targets[0], targets[1]);
        assert_ne!(targets[1], targets[2]);
    }

    #[test]
    fn broadcast_targets_all() {
        let mut f = fe(RelayPolicy::Broadcast);
        let (_, sends) = f.submit("x", [], false);
        assert_eq!(sends.len(), 3);
    }

    #[test]
    fn response_dedup_and_delivery() {
        let mut f = fe(RelayPolicy::Broadcast);
        let (id, _) = f.submit("x", [], false);
        let msg = ResponseMsg {
            id,
            value: 9,
            witness: None,
        };
        let d = f.on_response(msg.clone()).expect("first response delivers");
        assert_eq!(d.value, 9);
        assert!(f.on_response(msg).is_none(), "duplicate suppressed");
        assert_eq!(f.value_of(id), Some(&9));
        assert!(f.waiting_ids().is_empty());
    }

    #[test]
    fn unknown_response_ignored() {
        let mut f = fe(RelayPolicy::Fixed(ReplicaId(0)));
        let msg = ResponseMsg {
            id: OpId::new(ClientId(2), 77),
            value: 1,
            witness: None,
        };
        assert!(f.on_response(msg).is_none());
    }

    #[test]
    fn resend_covers_all_waiting() {
        let mut f = fe(RelayPolicy::RoundRobin);
        let (a, _) = f.submit("x", [], false);
        let (_b, _) = f.submit("y", [], false);
        let resent = f.resend_pending();
        assert_eq!(resent.len(), 2);
        // Answer one; resend now covers only the other.
        f.on_response(ResponseMsg {
            id: a,
            value: 0,
            witness: None,
        });
        assert_eq!(f.resend_pending().len(), 1);
    }

    #[test]
    #[should_panic(expected = "fixed replica out of range")]
    fn fixed_policy_validated() {
        let _ = fe(RelayPolicy::Fixed(ReplicaId(9)));
    }
}

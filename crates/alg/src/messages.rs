//! Message alphabet of the algorithm (paper §6.1).
//!
//! Three message sets: requests (front end → replica), responses
//! (replica → front end), and gossip (replica → replica). A gossip message
//! `⟨"gossip", R, D, L, S⟩` carries the sender's received operations,
//! done set, label function, and stable set.

use esds_core::{Label, OpDescriptor, OpId, ReplicaId};
use serde::{Deserialize, Serialize};

/// A request message `⟨"request", x⟩` from a front end to a replica.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct RequestMsg<O> {
    /// The operation descriptor being requested.
    pub desc: OpDescriptor<O>,
}

/// A response message `⟨"response", x, v⟩` from a replica to a front end.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ResponseMsg<V> {
    /// The operation being answered.
    pub id: OpId,
    /// The computed return value.
    pub value: V,
    /// Optional checker witness: the ids the replica applied, in local
    /// label order, up to and including `id`. Present only when witness
    /// recording is enabled (testing); see `esds-spec`'s checkers.
    pub witness: Option<Vec<OpId>>,
}

/// A gossip message `⟨"gossip", R, D, L, S⟩` (paper §6.1, §6.3).
///
/// `R` carries full descriptors (receivers need `prev` sets to honour
/// do_it's precondition); `D` and `S` carry identifiers; `L` carries the
/// finite part of the sender's label function (absent entries are `∞`).
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct GossipMsg<O> {
    /// Sending replica.
    pub from: ReplicaId,
    /// `R`: operations the sender has received.
    pub rcvd: Vec<OpDescriptor<O>>,
    /// `D`: operations done at the sender.
    pub done: Vec<OpId>,
    /// `L`: the sender's minimum label for each labeled operation.
    pub labels: Vec<(OpId, Label)>,
    /// `S`: operations stable at the sender.
    pub stable: Vec<OpId>,
}

impl<O> GossipMsg<O> {
    /// Approximate wire size in bytes, for the §10.4 communication
    /// experiments: descriptors cost their id + prev entries + a small
    /// operator estimate, ids 16 bytes, label entries 32 bytes.
    pub fn approx_bytes(&self) -> usize {
        let desc_bytes: usize = self
            .rcvd
            .iter()
            .map(|d| 16 + 8 + 16 * d.prev.len() + 16)
            .sum();
        desc_bytes + 16 * self.done.len() + 32 * self.labels.len() + 16 * self.stable.len()
    }

    /// Total entries across all four components (a size proxy independent
    /// of encoding).
    pub fn entry_count(&self) -> usize {
        self.rcvd.len() + self.done.len() + self.labels.len() + self.stable.len()
    }

    /// Whether the message carries no information (incremental gossip can
    /// skip sending these).
    pub fn is_empty(&self) -> bool {
        self.entry_count() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esds_core::ClientId;

    #[test]
    fn approx_bytes_counts_components() {
        let id = OpId::new(ClientId(0), 0);
        let id2 = OpId::new(ClientId(0), 1);
        let g = GossipMsg {
            from: ReplicaId(0),
            rcvd: vec![
                OpDescriptor::new(id, ()),
                OpDescriptor::new(id2, ()).with_prev([id]),
            ],
            done: vec![id],
            labels: vec![(id, Label::new(0, ReplicaId(0)))],
            stable: vec![],
        };
        // 40 + (40 + 16) + 16 + 32 + 0
        assert_eq!(g.approx_bytes(), 144);
        assert_eq!(g.entry_count(), 4);
        assert!(!g.is_empty());
    }

    #[test]
    fn empty_message() {
        let g: GossipMsg<()> = GossipMsg {
            from: ReplicaId(1),
            rcvd: vec![],
            done: vec![],
            labels: vec![],
            stable: vec![],
        };
        assert!(g.is_empty());
        assert_eq!(g.approx_bytes(), 0);
    }
}

//! Message alphabet of the algorithm (paper §6.1).
//!
//! Three message sets: requests (front end → replica), responses
//! (replica → front end), and gossip (replica → replica). A gossip message
//! `⟨"gossip", R, D, L, S⟩` carries the sender's received operations,
//! done set, label function, and stable set. The summary-bearing variant
//! [`BatchedGossipMsg`] (§10.2 + §10.4) carries `D` and `S` as
//! [`IdSummary`] watermark vectors, `R`/`L` as deltas, and piggybacks the
//! watermark handshake that lets the sender prune future batches.

use esds_core::{IdSummary, Label, OpDescriptor, OpId, ReplicaId};
use serde::{Deserialize, Serialize};

/// A request message `⟨"request", x⟩` from a front end to a replica.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct RequestMsg<O> {
    /// The operation descriptor being requested.
    pub desc: OpDescriptor<O>,
}

/// A response message `⟨"response", x, v⟩` from a replica to a front end.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ResponseMsg<V> {
    /// The operation being answered.
    pub id: OpId,
    /// The computed return value.
    pub value: V,
    /// Optional checker witness: the ids the replica applied, in local
    /// label order, up to and including `id`. Present only when witness
    /// recording is enabled (testing); see `esds-spec`'s checkers.
    pub witness: Option<Vec<OpId>>,
}

/// A gossip message `⟨"gossip", R, D, L, S⟩` (paper §6.1, §6.3).
///
/// `R` carries full descriptors (receivers need `prev` sets to honour
/// do_it's precondition); `D` and `S` carry identifiers; `L` carries the
/// finite part of the sender's label function (absent entries are `∞`).
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct GossipMsg<O> {
    /// Sending replica.
    pub from: ReplicaId,
    /// `R`: operations the sender has received.
    pub rcvd: Vec<OpDescriptor<O>>,
    /// `D`: operations done at the sender.
    pub done: Vec<OpId>,
    /// `L`: the sender's minimum label for each labeled operation.
    pub labels: Vec<(OpId, Label)>,
    /// `S`: operations stable at the sender.
    pub stable: Vec<OpId>,
}

impl<O> GossipMsg<O> {
    /// Approximate wire size in bytes, for the §10.4 communication
    /// experiments: descriptors cost their id + prev entries + a small
    /// operator estimate, ids 16 bytes, label entries 32 bytes.
    pub fn approx_bytes(&self) -> usize {
        let desc_bytes: usize = self.rcvd.iter().map(OpDescriptor::approx_bytes).sum();
        desc_bytes + 16 * self.done.len() + 32 * self.labels.len() + 16 * self.stable.len()
    }

    /// Total entries across all four components (a size proxy independent
    /// of encoding).
    pub fn entry_count(&self) -> usize {
        self.rcvd.len() + self.done.len() + self.labels.len() + self.stable.len()
    }

    /// Whether the message carries no information (incremental gossip can
    /// skip sending these).
    pub fn is_empty(&self) -> bool {
        self.entry_count() == 0
    }
}

/// A **batched** gossip message (paper §10.2 + §10.4, the
/// `GossipStrategy::Batched` wire contract).
///
/// Relative to the snapshot message [`GossipMsg`]:
///
/// * `R` and `L` are *deltas*: descriptors the receiver's advertised
///   summary does not cover and labels that are new or lower than last
///   shipped to this peer;
/// * `D` and `S` are *complete* [`IdSummary`] encodings of the sender's
///   `done[r]`/`stable[r]` — O(#clients) bytes in steady state, and the
///   receiver folds in only the difference against what it has already
///   seen from this sender ([`IdSummary::difference`]), so `stable`
///   doubles as the piggybacked stable-prefix acknowledgement;
/// * `known` is the **watermark handshake**: a summary of every
///   identifier the sender has received. The receiver records it and
///   prunes its next batch to this sender accordingly, so in steady state
///   neither side re-ships history.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct BatchedGossipMsg<O> {
    /// Sending replica.
    pub from: ReplicaId,
    /// `R` delta: descriptors not known to have reached the receiver.
    pub rcvd: Vec<OpDescriptor<O>>,
    /// `D`: operations done at the sender, as a summary.
    pub done: IdSummary,
    /// `L` delta: labels new or lowered since the last batch to this peer.
    pub labels: Vec<(OpId, Label)>,
    /// `S`: operations stable at the sender, as a summary (the
    /// stable-prefix acknowledgement).
    pub stable: IdSummary,
    /// Handshake: every identifier the sender has received, as a summary.
    pub known: IdSummary,
}

impl<O> BatchedGossipMsg<O> {
    /// Approximate wire size in bytes, comparable to
    /// [`GossipMsg::approx_bytes`]. **Every** field is counted — the two
    /// knowledge summaries, the handshake summary, and the deltas — so the
    /// `tab_gossip_strategies` byte columns stay honest about the
    /// handshake overhead batching adds.
    pub fn approx_bytes(&self) -> usize {
        let desc_bytes: usize = self.rcvd.iter().map(OpDescriptor::approx_bytes).sum();
        desc_bytes
            + self.done.approx_bytes()
            + 32 * self.labels.len()
            + self.stable.approx_bytes()
            + self.known.approx_bytes()
    }
}

/// Any replica-to-replica message: a §6.1 snapshot or a §10.4 batch.
///
/// Transports (the simulator, the threaded runtime, the TCP layer) carry
/// this type; [`crate::Replica::poll_gossip`] produces it and
/// [`crate::Replica::on_gossip_envelope`] consumes it.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum GossipEnvelope<O> {
    /// A full or incremental `(R, D, L, S)` snapshot.
    Snapshot(GossipMsg<O>),
    /// A batched delta with summary watermarks.
    Batched(BatchedGossipMsg<O>),
}

impl<O> GossipEnvelope<O> {
    /// The sending replica.
    pub fn from(&self) -> ReplicaId {
        match self {
            GossipEnvelope::Snapshot(g) => g.from,
            GossipEnvelope::Batched(b) => b.from,
        }
    }

    /// Approximate wire size in bytes (see the per-variant methods).
    pub fn approx_bytes(&self) -> usize {
        match self {
            GossipEnvelope::Snapshot(g) => g.approx_bytes(),
            GossipEnvelope::Batched(b) => b.approx_bytes(),
        }
    }
}

impl<O: Clone> GossipEnvelope<O> {
    /// The snapshot-shaped view of this message: what the receiver will
    /// know after absorbing it (batched `D`/`S` summaries expanded to id
    /// lists). Used by in-flight tracking for the checkers; cost is
    /// O(len) for batched messages, so not for hot paths.
    pub fn to_snapshot(&self) -> GossipMsg<O> {
        match self {
            GossipEnvelope::Snapshot(g) => g.clone(),
            GossipEnvelope::Batched(b) => GossipMsg {
                from: b.from,
                rcvd: b.rcvd.clone(),
                done: b.done.iter().collect(),
                labels: b.labels.clone(),
                stable: b.stable.iter().collect(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esds_core::ClientId;

    #[test]
    fn approx_bytes_counts_components() {
        let id = OpId::new(ClientId(0), 0);
        let id2 = OpId::new(ClientId(0), 1);
        let g = GossipMsg {
            from: ReplicaId(0),
            rcvd: vec![
                OpDescriptor::new(id, ()),
                OpDescriptor::new(id2, ()).with_prev([id]),
            ],
            done: vec![id],
            labels: vec![(id, Label::new(0, ReplicaId(0)))],
            stable: vec![],
        };
        // 40 + (40 + 16) + 16 + 32 + 0
        assert_eq!(g.approx_bytes(), 144);
        assert_eq!(g.entry_count(), 4);
        assert!(!g.is_empty());
    }

    #[test]
    fn empty_message() {
        let g: GossipMsg<()> = GossipMsg {
            from: ReplicaId(1),
            rcvd: vec![],
            done: vec![],
            labels: vec![],
            stable: vec![],
        };
        assert!(g.is_empty());
        assert_eq!(g.approx_bytes(), 0);
    }

    #[test]
    fn batched_bytes_count_every_summary_field() {
        let id = OpId::new(ClientId(0), 0);
        let b: BatchedGossipMsg<()> = BatchedGossipMsg {
            from: ReplicaId(0),
            rcvd: vec![OpDescriptor::new(id, ())],
            done: IdSummary::from_ids([id]),
            labels: vec![(id, Label::new(0, ReplicaId(0)))],
            stable: IdSummary::new(),
            known: IdSummary::from_ids([id, OpId::new(ClientId(0), 1)]),
        };
        // 40 (descriptor) + 12 (done watermark) + 32 (label) + 0 (stable)
        // + 12 (known watermark): the handshake is NOT free.
        assert_eq!(b.approx_bytes(), 96);
        let without_known = 40 + 12 + 32;
        assert!(b.approx_bytes() > without_known);
        assert_eq!(GossipEnvelope::Batched(b.clone()).approx_bytes(), 96);
        assert_eq!(GossipEnvelope::Batched(b).from(), ReplicaId(0));
    }

    #[test]
    fn batched_summaries_stay_small_on_dense_history() {
        // 1000 done ids from 4 clients: a snapshot ships 16 kB of D ids, a
        // batch ships 4 watermark entries.
        let done: IdSummary = (0..4u32)
            .flat_map(|c| (0..250u64).map(move |s| OpId::new(ClientId(c), s)))
            .collect();
        let b: BatchedGossipMsg<()> = BatchedGossipMsg {
            from: ReplicaId(0),
            rcvd: vec![],
            done: done.clone(),
            labels: vec![],
            stable: done.clone(),
            known: done.clone(),
        };
        let snapshot: GossipMsg<()> = GossipMsg {
            from: ReplicaId(0),
            rcvd: vec![],
            done: done.iter().collect(),
            labels: vec![],
            stable: done.iter().collect(),
        };
        assert!(b.approx_bytes() * 50 < snapshot.approx_bytes());
    }

    #[test]
    fn envelope_snapshot_view_expands_batched_summaries() {
        let id0 = OpId::new(ClientId(0), 0);
        let id1 = OpId::new(ClientId(0), 1);
        let b: BatchedGossipMsg<()> = BatchedGossipMsg {
            from: ReplicaId(2),
            rcvd: vec![],
            done: IdSummary::from_ids([id0, id1]),
            labels: vec![(id0, Label::new(1, ReplicaId(2)))],
            stable: IdSummary::from_ids([id0]),
            known: IdSummary::new(),
        };
        let snap = GossipEnvelope::Batched(b).to_snapshot();
        assert_eq!(snap.from, ReplicaId(2));
        assert_eq!(snap.done, vec![id0, id1]);
        assert_eq!(snap.stable, vec![id0]);
        assert_eq!(snap.labels.len(), 1);
    }
}

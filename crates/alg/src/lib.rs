//! # esds-alg
//!
//! The lazy-replication algorithm of *Eventually-Serializable Data Services*
//! (paper Section 6) as sans-IO state machines, plus the Section 10
//! optimizations and the Sections 7–8 invariants as runtime checks:
//!
//! * [`Replica`] — the replica automaton (Fig. 7), with memoization
//!   (§10.1), gossip GC and local descriptor compaction (§10.2, see
//!   [`Replica::compact`]), incremental gossip (§10.4), and
//!   crash-recovery (§9.3);
//! * [`ReplicaConfig::commute`] + [`SafeSubmitter`] — the commutativity-
//!   exploiting variant (Fig. 11, §10.3) for `SafeUsers` workloads;
//! * [`FrontEnd`] — the client front end (Fig. 6);
//! * [`messages`] — the request/response/gossip message sets (§6.1);
//! * [`global`] — the derived whole-system variables of §6.4 (`ops`,
//!   `minlabel`, `lc`, `mc`, `sc`, `po`);
//! * [`invariants`] — Invariants 7.1–7.21, 8.1/8.3, and 10.1–10.5 as
//!   executable checks over a [`SystemView`].
//!
//! The state machines are deterministic; all scheduling (gossip timing,
//! channel behaviour) lives in the harness/runtime driving them.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod commute;
pub mod front_end;
pub mod global;
pub mod invariants;
pub mod messages;
pub mod persist;
pub mod replica;

pub use commute::SafeSubmitter;
pub use front_end::{ClientDelivery, FrontEnd, RelayPolicy};
pub use global::SystemView;
pub use invariants::{check_all, InvariantViolation, MonotonicityChecker};
pub use messages::{BatchedGossipMsg, GossipEnvelope, GossipMsg, RequestMsg, ResponseMsg};
pub use persist::Persistence;
pub use replica::{
    GossipStrategy, PrefixEntry, RecoveryStub, Replica, ReplicaConfig, ReplicaStats, RespondEffect,
    RestoreImage, ValueStrategy, WalDelta,
};
